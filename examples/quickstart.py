#!/usr/bin/env python
"""Quickstart: analyze one kernel for chainable operation sequences.

Compiles a small mini-C MAC kernel, runs the paper's pipeline (profile ->
optimize -> detect) at the three optimization levels, and prints the
sequences a designer would consider implementing as chained instructions.

Run:  python examples/quickstart.py
"""

import random

from repro.chaining.detect import detect_sequences
from repro.chaining.sequence import sequence_label
from repro.frontend import compile_source
from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim.machine import run_module

KERNEL = """
/* A toy DSP kernel: dot product with a guard. */
int x[64];
int h[64];
int out[1];
int n = 64;

int main() {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < n; i++) {
        if (x[i] != 0) {
            acc = acc + x[i] * h[i];
        }
    }
    out[0] = acc;
    return acc;
}
"""


def main():
    rng = random.Random(42)
    inputs = {
        "x": [rng.randint(-100, 100) for _ in range(64)],
        "h": [rng.randint(-8, 8) for _ in range(64)],
    }

    # Step 1 (paper fig. 2): the front end produces 3-address code.
    module = compile_source(KERNEL, "quickstart")
    print(f"compiled: {module.total_instructions()} three-address "
          f"instructions\n")

    reference = None
    for level in (OptLevel.NONE, OptLevel.PIPELINED, OptLevel.RENAMED):
        # Steps 2+3: optimize and profile on the sample data.
        graph_module, _report = optimize_module(module, level)
        result = run_module(graph_module, inputs)

        # The optimizer must never change program results.
        if reference is None:
            reference = result.return_value
        assert result.return_value == reference

        # Step 4: detect chainable sequences, weighted by profile.
        detection = detect_sequences(graph_module, result.profile,
                                     lengths=(2, 3))
        print(f"=== {level.label}  ({result.cycles} cycles)")
        for name, freq in detection.top(2, limit=5):
            print(f"    {sequence_label(name):24s} {freq:6.2f}%")
        print()

    print("Reading the output: multiply-add is the classic MAC; the "
          "sequences that appear only\nat the 'Pipelined' level are the "
          "ones compiler feedback uncovers for the designer.")


if __name__ == "__main__":
    main()
