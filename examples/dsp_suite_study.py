#!/usr/bin/env python
"""Reproduce the paper's experiments on the DSP benchmark suite.

Runs the full Figure-2 pipeline over Table 1's twelve benchmarks at the
three optimization levels, then prints every table and figure of the
evaluation section.

Run:  python examples/dsp_suite_study.py            # fast subset
      python examples/dsp_suite_study.py --full     # all 12 benchmarks
"""

import sys
import time

from repro.feedback.ilp import characterize_ilp, render_ilp_table
from repro.feedback.study import StudyConfig, run_study
from repro.reporting.figures import figure3, figure4, figure5, figure6
from repro.reporting.tables import table1, table2, table3

FAST_SUBSET = ("fir", "iir", "sewha", "dft", "bspline", "feowf")


def main(argv):
    full = "--full" in argv
    config = StudyConfig(benchmarks=None if full else FAST_SUBSET)

    print(table1())
    print()

    started = time.time()
    suite = "all 12 benchmarks" if full else \
        f"subset {', '.join(FAST_SUBSET)}"
    print(f"Running the study on {suite} at levels 0/1/2 "
          f"(each level verified against level 0)...")
    study = run_study(config,
                      progress=lambda name, level:
                      print(f"  {name} @ level {level}"))
    print(f"done in {time.time() - started:.1f}s\n")

    for artifact in (table2(study),
                     figure3(study),
                     figure4(study),
                     figure5(study),
                     figure6(study)):
        print(artifact)
        print()

    coverage_benches = [b for b in ("sewha", "feowf", "bspline", "edge",
                                    "iir") if b in study.benchmarks]
    print(table3(study, benchmarks=coverage_benches))
    print()

    print(render_ilp_table(characterize_ilp(study)))


if __name__ == "__main__":
    main(sys.argv[1:])
