#!/usr/bin/env python
"""Walk a custom kernel through every stage of the toolchain.

Shows the intermediate artifacts a compiler engineer would inspect: the
three-address code from the front end, the sequential program graph, the
percolation-scheduled graph, the profile, the detected sequences and the
iterative coverage analysis — all for a kernel you can edit below.

Run:  python examples/custom_benchmark.py
"""

import random

from repro.cfg.build import build_module_graphs
from repro.cfg.linearize import format_graph, schedule_stats
from repro.chaining.coverage import analyze_coverage
from repro.chaining.detect import detect_sequences
from repro.chaining.sequence import sequence_label
from repro.frontend import compile_source
from repro.ir.printer import format_module
from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim.machine import run_module

# Edit this kernel.  Supported: int/float scalars, fixed 1-D/2-D arrays,
# functions (arrays pass by reference), for/while/if, math intrinsics
# (sin, cos, sqrt, fabs, ...).
KERNEL = """
/* Complex magnitude-squared accumulation — a tiny radar-style kernel. */
float re[32];
float im[32];
float out[32];
int n = 32;

int main() {
    int i;
    float peak;
    peak = 0.0;
    for (i = 0; i < n; i++) {
        float p;
        p = re[i] * re[i] + im[i] * im[i];
        out[i] = p;
        if (p > peak) {
            peak = p;
        }
    }
    return 0;
}
"""


def main():
    rng = random.Random(0)
    inputs = {
        "re": [rng.uniform(-1, 1) for _ in range(32)],
        "im": [rng.uniform(-1, 1) for _ in range(32)],
    }

    print("=" * 72)
    print("STAGE 1 - front end: three-address code")
    print("=" * 72)
    module = compile_source(KERNEL, "custom")
    print(format_module(module))
    print()

    print("=" * 72)
    print("STAGE 2 - sequential program graph (one operation per cycle)")
    print("=" * 72)
    sequential = build_module_graphs(module)
    stats = schedule_stats(sequential.graphs["main"])
    print(f"{stats.nodes} nodes, {stats.operations} operations, "
          f"static ILP {stats.static_ilp:.2f}")
    base = run_module(sequential, inputs)
    print(f"simulated: {base.cycles} cycles, peak out[0..3] = "
          f"{[round(v, 3) for v in base.array('out')[:4]]}")
    print()

    print("=" * 72)
    print("STAGE 3 - percolation-scheduled graph (optimization level 1)")
    print("=" * 72)
    optimized, report = optimize_module(module, OptLevel.PIPELINED)
    graph = optimized.graphs["main"]
    stats = schedule_stats(graph)
    print(f"{stats.nodes} nodes, max {stats.max_width} parallel ops, "
          f"static ILP {stats.static_ilp:.2f}; "
          f"{report.total_moves()} percolation moves, "
          f"{report.total_unrolled()} loop(s) pipelined")
    print()
    print(format_graph(graph))
    print()

    result = run_module(optimized, inputs)
    assert result.globals_after == base.globals_after, \
        "optimizer must preserve semantics"
    print(f"simulated: {result.cycles} cycles "
          f"({base.cycles / result.cycles:.2f}x over sequential), "
          f"outputs bit-identical to the sequential run")
    print()

    print("=" * 72)
    print("STAGE 4 - chainable sequences (dynamic frequency)")
    print("=" * 72)
    detection = detect_sequences(optimized, result.profile, (2, 3, 4))
    for length in (2, 3, 4):
        rows = detection.top(length, limit=4)
        if not rows:
            continue
        print(f"length {length}:")
        for name, freq in rows:
            print(f"    {sequence_label(name):28s} {freq:6.2f}%")
    print()

    print("=" * 72)
    print("STAGE 5 - iterative coverage (which chains to build)")
    print("=" * 72)
    report = analyze_coverage(optimized, result.profile, threshold=3.0)
    for step in report.steps:
        print(f"    {step.label:28s} picked at {step.frequency:6.2f}%, "
              f"covers {step.contribution:5.2f}%")
    print(f"    total coverage: {report.coverage:.2f}% with "
          f"{report.sequence_count} chained instructions")


if __name__ == "__main__":
    main()
