#!/usr/bin/env python
"""Close the paper's Figure-1 loop: design an ASIP from compiler feedback.

Takes a benchmark from the Table-1 suite, runs the sequence analysis, and
explores chained-instruction sets under an area budget — each candidate
design is *measured* on the simulator (base processor vs extended ASIP,
outputs verified identical).

Run:  python examples/asip_designer.py [benchmark] [area_budget]
      python examples/asip_designer.py sewha 2500
"""

import sys

from repro.asip.explore import explore_designs
from repro.suite.registry import benchmark_names, get_benchmark
from repro.suite.runner import compile_benchmark


def main(argv):
    bench = argv[0] if argv else "sewha"
    budget = int(argv[1]) if len(argv) > 1 else 2500
    if bench not in benchmark_names():
        print(f"unknown benchmark {bench!r}; pick one of "
              f"{', '.join(benchmark_names())}")
        return 1

    spec = get_benchmark(bench)
    print(f"benchmark: {spec.name} — {spec.description}")
    print(f"area budget for chained-instruction extensions: {budget}\n")

    module = compile_benchmark(spec)
    inputs = spec.generate_inputs(seed=0)
    result = explore_designs(module, inputs, area_budget=budget,
                             max_candidates=8, measure_top=4)

    print("candidate sequences (from the compiler-feedback analysis):")
    print(f"  {'sequence':28s} {'freq':>7s} {'area':>6s} "
          f"{'saves/issue':>11s}")
    for cand in result.candidates:
        print(f"  {cand.label:28s} {cand.frequency:6.2f}% "
              f"{cand.area:6d} {cand.cycles_saved:11d}")
    print()

    if not result.measured:
        print("no viable design under this budget")
        return 0

    print("measured design points (simulator, outputs verified):")
    for point in sorted(result.measured, key=lambda p: -p.speedup):
        chains = ", ".join(point.labels()) or "(base only)"
        ev = point.evaluation
        print(f"  {ev.base_cycles:7d} -> {ev.chained_cycles:7d} cycles  "
              f"{point.speedup:6.3f}x  area {point.area:5d}  [{chains}]")

    best = result.best
    print(f"\nchosen ISA extension: {', '.join(best.labels())}")
    print(f"  speedup {best.speedup:.3f}x at area {best.area} "
          f"(budget {budget})")
    for pattern, issues in best.evaluation.chain_issues.items():
        print(f"  {'-'.join(pattern):28s} issued {issues} times "
              f"dynamically")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
