"""IR data-structure tests: values, instructions, builder, printer, verify."""

import pytest

from repro.errors import IRError
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.instr import Instruction
from repro.ir.module import Module
from repro.ir import ops
from repro.ir.ops import Op
from repro.ir.printer import format_function, format_instruction
from repro.ir.values import ArraySymbol, Constant, Label, VirtualReg
from repro.ir.verify import verify_function


class TestValues:
    def test_constant_coerces_int(self):
        assert Constant(3.0, False).value == 3
        assert isinstance(Constant(3.0, False).value, int)

    def test_constant_coerces_float(self):
        c = Constant(3, True)
        assert c.value == 3.0 and isinstance(c.value, float)

    def test_register_equality_by_value(self):
        assert VirtualReg("t1") == VirtualReg("t1")
        assert VirtualReg("t1") != VirtualReg("t1", is_float=True)

    def test_register_usable_in_sets(self):
        regs = {VirtualReg("a"), VirtualReg("a"), VirtualReg("b")}
        assert len(regs) == 2

    def test_array_symbol_str(self):
        assert str(ArraySymbol("x", 10)) == "@x[10]"


class TestOpClassification:
    def test_chain_class_vocabulary(self):
        assert ops.chain_class(Op.MUL) == "multiply"
        assert ops.chain_class(Op.FMUL) == "fmultiply"
        assert ops.chain_class(Op.SHL) == "shift"
        assert ops.chain_class(Op.CMPLT) == "compare"
        assert ops.chain_class(Op.FLOAD) == "fload"

    def test_moves_and_control_not_chainable(self):
        for op in (Op.MOV, Op.FMOV, Op.BR, Op.JMP, Op.RET, Op.CALL,
                   Op.INTRIN, Op.NOP, Op.CHAIN):
            assert ops.chain_class(op) is None
            assert not ops.is_chainable(op)

    def test_side_effects(self):
        assert ops.has_side_effects(Op.STORE)
        assert ops.has_side_effects(Op.CALL)
        assert not ops.has_side_effects(Op.ADD)
        assert not ops.has_side_effects(Op.LOAD)

    def test_result_types(self):
        assert ops.result_type(Op.FADD) == "float"
        assert ops.result_type(Op.FCMPLT) == "int"
        assert ops.result_type(Op.STORE) == "none"
        assert ops.result_type(Op.ITOF) == "float"

    def test_commutativity(self):
        assert ops.is_commutative(Op.ADD)
        assert not ops.is_commutative(Op.SUB)
        assert not ops.is_commutative(Op.SHL)


class TestInstruction:
    def test_uses_and_defs(self):
        a, b, d = VirtualReg("a"), VirtualReg("b"), VirtualReg("d")
        ins = Instruction(Op.ADD, dest=d, srcs=(a, b))
        assert ins.uses() == (a, b)
        assert ins.defs() == (d,)

    def test_constants_not_in_uses(self):
        a, d = VirtualReg("a"), VirtualReg("d")
        ins = Instruction(Op.ADD, dest=d, srcs=(a, Constant(1)))
        assert ins.uses() == (a,)

    def test_store_shape_enforced(self):
        arr = ArraySymbol("m", 4)
        with pytest.raises(IRError):
            Instruction(Op.STORE, dest=VirtualReg("d"),
                        srcs=(VirtualReg("v"), VirtualReg("i")), array=arr)

    def test_load_requires_array(self):
        with pytest.raises(IRError):
            Instruction(Op.LOAD, dest=VirtualReg("d"),
                        srcs=(VirtualReg("i"),))

    def test_branch_requires_single_condition(self):
        with pytest.raises(IRError):
            Instruction(Op.BR, srcs=(), true_label="a", false_label="b")

    def test_call_requires_callee(self):
        with pytest.raises(IRError):
            Instruction(Op.CALL, srcs=())

    def test_uids_unique(self):
        a = Instruction(Op.NOP)
        b = Instruction(Op.NOP)
        assert a.uid != b.uid

    def test_clone_preserves_origin(self):
        ins = Instruction(Op.ADD, dest=VirtualReg("d"),
                          srcs=(Constant(1), Constant(2)))
        dup = ins.clone()
        assert dup.uid != ins.uid
        assert dup.origin == ins.origin == ins.uid

    def test_clone_of_clone_keeps_original_origin(self):
        ins = Instruction(Op.ADD, dest=VirtualReg("d"),
                          srcs=(Constant(1), Constant(2)))
        dup2 = ins.clone().clone()
        assert dup2.origin == ins.uid

    def test_clone_with_reg_map(self):
        a, b = VirtualReg("a"), VirtualReg("b")
        ins = Instruction(Op.MOV, dest=a, srcs=(b,))
        dup = ins.clone(reg_map={b: VirtualReg("c")})
        assert dup.srcs[0].name == "c"

    def test_replace_uses(self):
        a, b, d = VirtualReg("a"), VirtualReg("b"), VirtualReg("d")
        ins = Instruction(Op.ADD, dest=d, srcs=(a, a))
        ins.replace_uses({a: b})
        assert ins.srcs == (b, b)


class TestBuilderAndPrinter:
    def make(self):
        fn = Function("f", return_type="int")
        return fn, IRBuilder(fn)

    def test_binary_allocates_temp(self):
        fn, b = self.make()
        dest = b.binary(Op.ADD, 1, 2)
        assert not dest.is_float
        assert fn.instruction_count() == 1

    def test_float_op_gets_float_temp(self):
        _fn, b = self.make()
        dest = b.binary(Op.FADD, 1.0, 2.0)
        assert dest.is_float

    def test_compare_gets_int_temp(self):
        _fn, b = self.make()
        dest = b.binary(Op.FCMPLT, 1.0, 2.0)
        assert not dest.is_float

    def test_store_and_load_text(self):
        fn, b = self.make()
        arr = ArraySymbol("buf", 8, is_float=True)
        v = b.load(arr, 3)
        b.store(arr, 3, v)
        lines = [format_instruction(i) for i in fn.instructions()]
        assert lines[0].endswith("fload @buf[3]")
        assert lines[1].startswith("fstore @buf[3]")

    def test_branch_text(self):
        fn, b = self.make()
        t = b.binary(Op.CMPLT, 1, 2)
        b.branch(t, ".a", ".b")
        text = format_instruction(list(fn.instructions())[-1])
        assert text == f"br {t}, .a, .b"

    def test_format_function_includes_labels(self):
        fn, b = self.make()
        label = b.label()
        b.place(label)
        b.ret(0)
        text = format_function(fn)
        assert label + ":" in text


class TestVerify:
    def build_valid(self):
        fn = Function("f", return_type="int")
        b = IRBuilder(fn)
        t = b.binary(Op.ADD, 1, 2)
        b.ret(t)
        return fn

    def test_valid_function_passes(self):
        verify_function(self.build_valid())

    def test_empty_function_rejected(self):
        with pytest.raises(IRError):
            verify_function(Function("f"))

    def test_missing_terminator_rejected(self):
        fn = Function("f")
        IRBuilder(fn).binary(Op.ADD, 1, 2)
        with pytest.raises(IRError):
            verify_function(fn)

    def test_unknown_label_rejected(self):
        fn = Function("f")
        b = IRBuilder(fn)
        t = b.binary(Op.CMPLT, 1, 2)
        b.branch(t, ".nowhere", ".nowhere")
        with pytest.raises(IRError):
            verify_function(fn)

    def test_use_before_def_rejected(self):
        fn = Function("f", return_type="int")
        b = IRBuilder(fn)
        ghost = VirtualReg("ghost")
        b.binary(Op.ADD, ghost, 1)
        b.ret(0)
        with pytest.raises(IRError):
            verify_function(fn)

    def test_param_counts_as_defined(self):
        p = VirtualReg("p")
        fn = Function("f", params=[p], return_type="int")
        b = IRBuilder(fn)
        t = b.binary(Op.ADD, p, 1)
        b.ret(t)
        verify_function(fn)

    def test_type_mismatch_rejected(self):
        fn = Function("f")
        b = IRBuilder(fn)
        f = b.binary(Op.FADD, 1.0, 2.0)
        fn.emit(Instruction(Op.ADD, dest=fn.new_temp(False), srcs=(f, f)))
        b.ret(0)
        with pytest.raises(IRError):
            verify_function(fn)

    def test_float_load_from_int_array_rejected(self):
        fn = Function("f")
        arr = ArraySymbol("a", 4, is_float=False)
        fn.emit(Instruction(Op.FLOAD, dest=fn.new_temp(True),
                            srcs=(Constant(0),), array=arr))
        IRBuilder(fn).ret()
        with pytest.raises(IRError):
            verify_function(fn)

    def test_module_requires_main(self):
        module = Module("m")
        with pytest.raises(IRError):
            module.entry


class TestModule:
    def test_duplicate_function_rejected(self):
        module = Module("m")
        module.add_function(Function("f"))
        with pytest.raises(IRError):
            module.add_function(Function("f"))

    def test_duplicate_array_rejected(self):
        module = Module("m")
        module.add_global_array(ArraySymbol("a", 4))
        with pytest.raises(IRError):
            module.add_global_array(ArraySymbol("a", 8))

    def test_oversized_initializer_rejected(self):
        module = Module("m")
        with pytest.raises(IRError):
            module.add_global_array(ArraySymbol("a", 2), [1, 2, 3])
