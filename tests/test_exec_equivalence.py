"""Differential harness for the study executor: parallel == serial == ref.

Every reported number flows through ``run_study``, so the parallel
executor must be *indistinguishable* from the serial path, which in turn
must be indistinguishable from the PR-1 baseline loop (compile once per
benchmark, level 0 as semantic oracle, levels ascending).  The harness
pins, for every suite benchmark at every level:

* cycle counts, return values and the full post-run memory state;
* complete node/edge/call profiles;
* detection results, compared through their *portable projection* —
  sequence names, occurrence node paths and traversal counts, total op
  counts, and ranked frequencies.  Raw instruction uids are allocated
  from a process-global counter, so they differ between any two runs
  (even two serial runs in one process) and are deliberately excluded;
* the rendered paper artifacts (Tables 2/3), end to end.

Scheduler semantics (dependency order, cycle detection, error
propagation) and the ``jobs`` knob resolution are unit-tested below.
"""

import os
import pickle

import pytest

from repro.cfg.build import build_module_graphs
from repro.errors import ReproError
from repro.exec import pool as pool_mod
from repro.exec.pool import (JOBS_ENV_VAR, PARALLEL_MIN_ITEMS,
                             available_cpus, parallel_map, resolve_jobs)
from repro.exec.scheduler import ScheduleStats, Task, run_tasks
from repro.feedback.study import (BenchmarkStudy, StudyConfig, StudyResult,
                                  run_study)
from repro.frontend import compile_source
from repro.opt.pipeline import OptLevel
from repro.reporting.tables import table2, table3
from repro.sim.engine import compile_module
from repro.suite.registry import all_benchmarks, get_benchmark
from repro.suite.runner import compile_benchmark, run_benchmark

SUITE = [spec.name for spec in all_benchmarks()]
LEVELS = (0, 1, 2)


# -- the three executions under comparison ----------------------------------------


def pr1_serial_baseline(config: StudyConfig) -> StudyResult:
    """The PR-1 ``run_study`` loop, inlined verbatim as the fixed point."""
    result = StudyResult(config=config)
    for spec in all_benchmarks():
        module = compile_benchmark(spec)
        study = BenchmarkStudy(spec=spec)
        reference = None
        for level in sorted(config.levels):
            run = run_benchmark(
                spec, OptLevel(level),
                lengths=config.lengths,
                seed=config.seed,
                unroll_factor=config.unroll_factor,
                check_against=reference if config.verify else None,
                module=module,
                engine=config.engine,
            )
            if level == 0 and config.verify:
                reference = run.machine_result
            study.runs[OptLevel(level)] = run
        result.benchmarks[spec.name] = study
    return result


@pytest.fixture(scope="module")
def baseline_study():
    return pr1_serial_baseline(StudyConfig())


@pytest.fixture(scope="module")
def serial_study():
    return run_study(StudyConfig(jobs=1))


@pytest.fixture(scope="module")
def parallel_study():
    return run_study(StudyConfig(jobs=2))


# -- comparison helpers ------------------------------------------------------------


def detection_projection(detection):
    """Everything a detection result *means*, minus process-local uids."""
    return {
        "total_ops": detection.total_ops,
        "lengths": detection.lengths,
        "sequences": {
            length: {
                name: sorted((occ.function, occ.nodes, occ.count)
                             for occ in seq.occurrences)
                for name, seq in by_name.items()
            }
            for length, by_name in detection.sequences.items()
        },
        "top": {length: detection.top(length)
                for length in detection.lengths},
    }


def assert_runs_identical(ra, rb):
    assert ra.cycles == rb.cycles
    assert ra.machine_result.return_value == rb.machine_result.return_value
    assert ra.machine_result.globals_after == rb.machine_result.globals_after
    assert ra.profile.node_counts == rb.profile.node_counts
    assert ra.profile.edge_counts == rb.profile.edge_counts
    assert ra.profile.call_counts == rb.profile.call_counts
    assert detection_projection(ra.detection) == \
        detection_projection(rb.detection)
    assert ra.seeds == rb.seeds
    assert [r.globals_after for r in ra.seed_results] == \
        [r.globals_after for r in rb.seed_results]
    assert [r.profile for r in ra.seed_results] == \
        [r.profile for r in rb.seed_results]


class TestStudyDifferential:
    """run_study(jobs=2) == run_study(jobs=1) == PR-1 baseline."""

    @pytest.mark.parametrize("name", SUITE)
    def test_parallel_equals_serial(self, name, serial_study,
                                    parallel_study):
        for level in LEVELS:
            assert_runs_identical(
                serial_study.benchmark(name).run_at(level),
                parallel_study.benchmark(name).run_at(level))

    @pytest.mark.parametrize("name", SUITE)
    def test_serial_equals_pr1_baseline(self, name, serial_study,
                                        baseline_study):
        for level in LEVELS:
            assert_runs_identical(
                baseline_study.benchmark(name).run_at(level),
                serial_study.benchmark(name).run_at(level))

    def test_benchmark_order_preserved(self, serial_study, parallel_study):
        assert parallel_study.names() == serial_study.names() == SUITE

    def test_rendered_tables_identical(self, serial_study, parallel_study,
                                       baseline_study):
        assert table2(parallel_study) == table2(serial_study) \
            == table2(baseline_study)
        assert table3(parallel_study) == table3(serial_study) \
            == table3(baseline_study)

    def test_suite_wide_combined_frequencies(self, serial_study,
                                             parallel_study):
        for level in LEVELS:
            a = serial_study.combined(level)
            b = parallel_study.combined(level)
            for length in (2, 3, 4, 5):
                assert a.top(length) == b.top(length)


class TestMultiSeedStudyDifferential:
    """The multi-seed matrix is equally jobs-invariant."""

    CONFIG = dict(benchmarks=("fir", "iir", "sewha"), seeds=(0, 1, 2))

    @pytest.fixture(scope="class")
    def serial(self):
        return run_study(StudyConfig(jobs=1, **self.CONFIG))

    @pytest.fixture(scope="class")
    def parallel(self):
        return run_study(StudyConfig(jobs=3, **self.CONFIG))

    def test_bit_identical(self, serial, parallel):
        for name in self.CONFIG["benchmarks"]:
            for level in LEVELS:
                ra = serial.benchmark(name).run_at(level)
                rb = parallel.benchmark(name).run_at(level)
                assert ra.seeds == (0, 1, 2) == rb.seeds
                assert_runs_identical(ra, rb)
                assert ra.cycles_by_seed() == rb.cycles_by_seed()

    def test_oracle_checks_every_seed(self, serial):
        # every level-1/2 cell was verified against all three level-0
        # seed results (a mismatch would have raised during the fixture);
        # spot-check the references really do differ per seed.
        run0 = serial.benchmark("fir").run_at(0)
        snapshots = [r.globals_after for r in run0.seed_results]
        assert len(snapshots) == 3
        assert snapshots[0] != snapshots[1]


class TestProgressReporting:
    def test_parallel_progress_covers_matrix(self):
        seen = []
        run_study(StudyConfig(benchmarks=("fir", "iir"), jobs=2),
                  progress=lambda name, level: seen.append((name, level)))
        assert sorted(seen) == sorted(
            (name, level) for name in ("fir", "iir") for level in LEVELS)

    def test_parallel_oracle_ordering(self):
        seen = []
        run_study(StudyConfig(benchmarks=("fir",), jobs=2),
                  progress=lambda name, level: seen.append(level))
        # level 0 is the semantic oracle: it must start first.
        assert seen[0] == 0


# -- scheduler unit tests ----------------------------------------------------------


def _double(x):
    return 2 * x


def _worker_pid(_item):
    return os.getpid()


def _add(*xs):
    return sum(xs)


def _boom():
    raise ValueError("worker exploded")


def _slow_sentinel(path):
    import time
    time.sleep(0.3)
    with open(path, "w") as fh:
        fh.write("done")
    return path


class TestScheduler:
    def _diamond(self):
        # a -> (b, c) -> d ; bind threads dependency results as args.
        return [
            Task("a", _double, (1,)),
            Task("b", _add, (10,), deps=("a",),
                 bind=lambda args, res: args + (res["a"],)),
            Task("c", _add, (100,), deps=("a",),
                 bind=lambda args, res: args + (res["a"],)),
            Task("d", _add, (), deps=("b", "c"),
                 bind=lambda args, res: (res["b"], res["c"])),
        ]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_diamond_dependency_results(self, jobs):
        results = run_tasks(self._diamond(), jobs=jobs)
        assert results == {"a": 2, "b": 12, "c": 102, "d": 114}

    def test_serial_respects_declaration_order(self):
        stats = ScheduleStats()
        run_tasks(self._diamond(), jobs=1, stats=stats)
        assert stats.order == ["a", "b", "c", "d"]
        assert stats.executed == 4

    def test_dependency_fires_before_dependent(self):
        stats = ScheduleStats()
        run_tasks(self._diamond(), jobs=2, stats=stats)
        assert stats.order.index("a") < stats.order.index("b")
        assert stats.order.index("a") < stats.order.index("c")
        assert stats.order.index("d") == 3

    def test_on_start_fires_per_task(self):
        started = []
        run_tasks(self._diamond(), jobs=2, on_start=started.append)
        assert sorted(started) == ["a", "b", "c", "d"]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_cycle_detected(self, jobs):
        tasks = [Task("a", _double, (1,), deps=("b",)),
                 Task("b", _double, (1,), deps=("a",))]
        with pytest.raises(ReproError, match="cycle"):
            run_tasks(tasks, jobs=jobs)

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ReproError, match="duplicate"):
            run_tasks([Task("a", _double, (1,)), Task("a", _double, (2,))])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ReproError, match="unknown task"):
            run_tasks([Task("a", _double, (1,), deps=("ghost",))])

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_worker_error_propagates(self, jobs):
        tasks = [Task("ok", _double, (1,)), Task("bad", _boom)]
        with pytest.raises(ValueError, match="worker exploded"):
            run_tasks(tasks, jobs=jobs)

    def test_empty_schedule(self):
        assert run_tasks([], jobs=2) == {}

    def test_error_drains_running_siblings(self, tmp_path):
        """A task failure must not leave siblings running in the
        persistent pool: run_tasks waits for in-flight work before
        re-raising, so callers find quiet workers afterwards."""
        sentinel = tmp_path / "sibling.done"
        tasks = [Task("slow", _slow_sentinel, (str(sentinel),)),
                 Task("bad", _boom)]
        with pytest.raises(ValueError, match="worker exploded"):
            run_tasks(tasks, jobs=2)
        assert sentinel.exists(), \
            "in-flight sibling was abandoned mid-run"


class TestPool:
    def test_parallel_map_preserves_order(self):
        items = list(range(20))
        assert parallel_map(_double, items, jobs=4) == \
            [2 * x for x in items]

    def test_parallel_map_serial_fallback(self):
        assert parallel_map(_double, [3], jobs=8) == [6]

    def test_resolve_explicit(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7
        assert resolve_jobs(0) == available_cpus()

    def test_resolve_negative_rejected(self):
        with pytest.raises(ReproError, match="jobs"):
            resolve_jobs(-2)

    def test_resolve_negative_from_env_names_variable(self, monkeypatch):
        """Satellite bugfix: a negative count coming from $REPRO_JOBS must
        name the variable, so CI misconfiguration is diagnosable."""
        monkeypatch.setenv(JOBS_ENV_VAR, "-3")
        with pytest.raises(ReproError, match=JOBS_ENV_VAR):
            resolve_jobs(None)
        # ...while an explicit knob stays attributed to the caller.
        monkeypatch.delenv(JOBS_ENV_VAR)
        with pytest.raises(ReproError) as excinfo:
            resolve_jobs(-3)
        assert JOBS_ENV_VAR not in str(excinfo.value)

    def test_resolve_env_default(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(None) == 1
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert resolve_jobs(None) == 3
        monkeypatch.setenv(JOBS_ENV_VAR, "0")
        assert resolve_jobs(None) == available_cpus()

    def test_resolve_env_invalid(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "lots")
        with pytest.raises(ReproError, match=JOBS_ENV_VAR):
            resolve_jobs(None)

    def test_env_does_not_override_explicit_jobs(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "5")
        assert resolve_jobs(1) == 1

    def test_small_map_cutoff_skips_pool(self, monkeypatch):
        """Satellite bugfix: <= PARALLEL_MIN_ITEMS items never pay pool
        dispatch — the serial path is faster and byte-identical."""
        def exploding_pool(_workers):
            raise AssertionError("small map must not touch the pool")

        monkeypatch.setattr(pool_mod, "get_pool", exploding_pool)
        items = list(range(PARALLEL_MIN_ITEMS))
        assert parallel_map(_double, items, jobs=4) == \
            [2 * x for x in items]

    def test_results_identical_across_the_cutoff(self):
        """The cutoff is invisible in results: maps one item below and
        one item above it agree with the plain serial map."""
        below = list(range(PARALLEL_MIN_ITEMS))
        above = list(range(PARALLEL_MIN_ITEMS + 1))
        assert parallel_map(_double, below, jobs=4) == \
            [_double(x) for x in below]
        assert parallel_map(_double, above, jobs=4) == \
            [_double(x) for x in above]

    def test_persistent_pool_reused_across_maps(self):
        """Tentpole rider: consecutive parallel operations share the same
        warm worker processes instead of respawning them.  (Which worker
        handles which chunk is scheduler-dependent, so the invariant is
        the executor and its process set, not the per-map pid split.)"""
        items = list(range(8))
        first_pids = set(parallel_map(_worker_pid, items, jobs=2))
        first_pool = pool_mod._pool
        workers = set(first_pool._processes)
        second_pids = set(parallel_map(_worker_pid, items, jobs=2))
        assert pool_mod._pool is first_pool
        assert set(first_pool._processes) == workers
        assert (first_pids | second_pids) <= workers
        assert os.getpid() not in first_pids | second_pids

    def test_persistent_pool_resized_on_demand(self):
        parallel_map(_double, list(range(8)), jobs=2)
        two_worker_pool = pool_mod._pool
        parallel_map(_double, list(range(8)), jobs=3)
        assert pool_mod._pool is not two_worker_pool
        pool_mod.shutdown_pool()
        assert pool_mod._pool is None

    def test_scheduler_shares_the_persistent_pool(self):
        run_tasks([Task(i, _double, (i,)) for i in range(6)], jobs=2)
        scheduler_pool = pool_mod._pool
        assert scheduler_pool is not None
        parallel_map(_double, list(range(8)), jobs=2)
        assert pool_mod._pool is scheduler_pool


class TestPickleBoundary:
    """Graph modules cross the pool boundary; compiled closures must not."""

    def test_compiled_cache_stripped_on_pickle(self):
        gm = build_module_graphs(compile_source(
            "int main() { return 41 + 1; }", "t"))
        compile_module(gm)
        assert "_compiled_cache" in gm.__dict__
        clone = pickle.loads(pickle.dumps(gm))
        assert "_compiled_cache" not in clone.__dict__
        # ...and the original keeps its cache.
        assert "_compiled_cache" in gm.__dict__

    def test_benchmark_run_round_trips(self):
        spec = get_benchmark("fir")
        run = run_benchmark(spec, OptLevel.PIPELINED)
        clone = pickle.loads(pickle.dumps(run))
        assert clone.cycles == run.cycles
        assert clone.machine_result.globals_after == \
            run.machine_result.globals_after
        assert clone.profile == run.profile


class TestStudyConfigErrors:
    def test_unknown_benchmark_rejected_before_spawn(self):
        with pytest.raises(ReproError, match="unknown benchmark"):
            run_study(StudyConfig(benchmarks=("nope",), jobs=2))

    def test_bad_jobs_rejected(self):
        with pytest.raises(ReproError, match="jobs"):
            run_study(StudyConfig(benchmarks=("fir",), jobs=-1))

    def test_duplicate_benchmarks_and_levels_match_serial(self):
        # The serial loop re-runs duplicate cells and keeps the last by
        # dict overwrite; the scheduler collapses them — same result.
        config = dict(benchmarks=("fir", "fir", "iir"), levels=(1, 1, 0))
        serial = run_study(StudyConfig(jobs=1, **config))
        parallel = run_study(StudyConfig(jobs=2, **config))
        assert parallel.names() == serial.names() == ["fir", "iir"]
        for name in serial.names():
            for level in (0, 1):
                assert_runs_identical(
                    serial.benchmark(name).run_at(level),
                    parallel.benchmark(name).run_at(level))


# -- PR-4 executor upgrades: shared compiles, sharding, recovery, validation -------


def _crash_worker(_item):
    os._exit(13)  # simulate a worker process dying mid-task


def _crash_once(args):
    # Dies the first time any worker runs it (filesystem sentinel), then
    # behaves: the shape of a transient worker death (OOM kill, stray
    # signal) that parallel_map's one-shot rebuild-and-retry absorbs.
    path, x = args
    try:
        with open(path, "x"):
            pass
    except FileExistsError:
        return 2 * x
    os._exit(13)


def _cached_probe(key):
    from repro.exec.pool import worker_cached
    first = worker_cached(key, object)
    second = worker_cached(key, object)
    return first is second


class TestSeedSharding:
    """Large multi-seed cells shard across workers, bit-identically."""

    SEEDS = tuple(range(6))  # >= SEED_SHARD_MIN: the sharded path
    CONFIG = dict(benchmarks=("fir", "sewha"), seeds=SEEDS)

    @pytest.fixture(scope="class")
    def serial(self):
        return run_study(StudyConfig(jobs=1, **self.CONFIG))

    @pytest.fixture(scope="class")
    def sharded(self):
        return run_study(StudyConfig(jobs=3, **self.CONFIG))

    def test_schedule_contains_shard_tasks(self):
        from repro.exec.study import build_schedule
        tasks = build_schedule(StudyConfig(**self.CONFIG),
                               ["fir", "sewha"], jobs=3)
        shard_keys = [t.key for t in tasks if len(t.key) == 3]
        assert shard_keys, "a 6-seed cell on 3 workers must shard"
        # every shard of a non-oracle level depends on the matching
        # level-0 shard, never on the whole cell
        for task in tasks:
            if len(task.key) == 3 and task.key[1] != 0:
                assert task.deps == ((task.key[0], 0, task.key[2]),)

    def test_shard_seeds_partitions_in_order(self):
        from repro.exec.study import shard_seeds
        shards = shard_seeds(self.SEEDS, 3)
        assert len(shards) == 3
        assert tuple(s for shard in shards for s in shard) == self.SEEDS
        assert shard_seeds(self.SEEDS, 1) == [self.SEEDS]
        assert shard_seeds((0, 1), 4) == [(0, 1)]  # below the minimum
        assert shard_seeds(None, 4) == [None]

    def test_bit_identical_to_serial(self, serial, sharded):
        for name in self.CONFIG["benchmarks"]:
            for level in LEVELS:
                ra = serial.benchmark(name).run_at(level)
                rb = sharded.benchmark(name).run_at(level)
                assert ra.seeds == self.SEEDS == rb.seeds
                assert_runs_identical(ra, rb)
                assert ra.cycles_by_seed() == rb.cycles_by_seed()
                for sa, sb in zip(ra.seed_results, rb.seed_results):
                    assert sa.globals_after == sb.globals_after
                    assert sa.profile == sb.profile

    def test_rendered_tables_identical(self, serial, sharded):
        assert table2(sharded) == table2(serial)

    def test_progress_fires_once_per_cell(self):
        seen = []
        run_study(StudyConfig(jobs=3, **self.CONFIG),
                  progress=lambda name, level: seen.append((name, level)))
        assert sorted(seen) == sorted(
            (name, level) for name in self.CONFIG["benchmarks"]
            for level in LEVELS)


class TestWorkerCompileCache:
    """One front-end compile per benchmark per process."""

    def test_worker_cached_memoizes(self):
        from repro.exec.pool import clear_worker_cache, worker_cached
        clear_worker_cache()
        calls = []

        def factory():
            calls.append(1)
            return "module"

        assert worker_cached(("frontend", "x"), factory) == "module"
        assert worker_cached(("frontend", "x"), factory) == "module"
        assert len(calls) == 1
        clear_worker_cache()

    def test_memo_lives_inside_the_worker(self):
        # the memo must be per-process (it is never pickled across), so
        # a worker probing its own cache twice sees one entry
        results = parallel_map(_cached_probe,
                               [("probe", i) for i in range(8)], jobs=2)
        assert all(results)

    def test_cells_share_the_frontend_compile(self, monkeypatch):
        """In one process, every cell of a benchmark reuses one front-end
        compile — the serial path's per-benchmark sharing, now in the
        executor too."""
        import repro.exec.study as study_mod
        from repro.exec.pool import clear_worker_cache
        clear_worker_cache()
        compiles = []
        real = study_mod.compile_benchmark

        def counting(spec):
            compiles.append(spec.name)
            return real(spec)

        monkeypatch.setattr(study_mod, "compile_benchmark", counting)
        config = StudyConfig(benchmarks=("fir", "iir"), jobs=1)
        from repro.exec.study import execute_study
        execute_study(config, jobs=1)
        assert sorted(compiles) == ["fir", "iir"], \
            "three levels per benchmark must share one compile"
        clear_worker_cache()

    def test_affinity_groups_benchmark_cells(self):
        from repro.exec.study import build_schedule
        tasks = build_schedule(StudyConfig(benchmarks=("fir", "iir")),
                               ["fir", "iir"])
        for task in tasks:
            assert task.affinity == task.key[0]


class TestBrokenPoolRecovery:
    """A worker crash mid-study discards the broken pool; the retried
    study starts on a fresh pool and still matches the serial result."""

    def test_crash_then_retry_matches_serial(self):
        from concurrent.futures.process import BrokenProcessPool

        # a schedule whose task kills its worker process outright
        with pytest.raises(BrokenProcessPool):
            run_tasks([Task("boom", _crash_worker, (0,))]
                      + [Task(i, _double, (i,)) for i in range(4)],
                      jobs=2)
        # the recovery path forgot the broken pool...
        assert pool_mod._pool is None
        # ...so the retried study builds a healthy one and is
        # indistinguishable from the serial run.
        config = dict(benchmarks=("fir", "iir"))
        retried = run_study(StudyConfig(jobs=2, **config))
        serial = run_study(StudyConfig(jobs=1, **config))
        assert pool_mod._pool is not None
        for name in serial.names():
            for level in LEVELS:
                assert_runs_identical(serial.benchmark(name).run_at(level),
                                      retried.benchmark(name).run_at(level))

    def test_parallel_map_crash_recovery(self):
        # A *persistently* crashing worker breaks the retried pool too:
        # the error still reaches the caller and the pool stays
        # discarded.
        from concurrent.futures.process import BrokenProcessPool
        with pytest.raises(BrokenProcessPool):
            parallel_map(_crash_worker, list(range(6)), jobs=2)
        assert pool_mod._pool is None
        assert parallel_map(_double, list(range(6)), jobs=2) == \
            [2 * x for x in range(6)]

    def test_parallel_map_transient_crash_retried_once(self, tmp_path):
        # A worker that dies once (then behaves) never surfaces to the
        # caller: the map is re-dispatched on a fresh pool and returns
        # the full, ordered result.
        sentinel = tmp_path / "crashed-once"
        results = parallel_map(_crash_once,
                               [(str(sentinel), x) for x in range(6)],
                               jobs=2)
        assert results == [2 * x for x in range(6)]
        assert sentinel.exists()  # the crash really happened
        assert pool_mod._pool is not None  # rebuilt and healthy


class TestInputValidation:
    """Satellite fix: misconfiguration raises clearly, up front."""

    def test_invalid_engine_rejected_before_any_work(self, monkeypatch):
        import repro.feedback.study as study_mod
        from repro.errors import SimulationError

        def exploding(*_a, **_k):
            raise AssertionError("must fail before compiling anything")

        monkeypatch.setattr(study_mod, "compile_benchmark", exploding)
        with pytest.raises(SimulationError, match="unknown engine"):
            run_study(StudyConfig(benchmarks=("fir",), engine="turbo"))

    def test_invalid_engine_from_env_names_variable(self):
        from repro.errors import SimulationError
        from repro.sim.machine import ENGINE_ENV_VAR
        os.environ[ENGINE_ENV_VAR] = "warp9"
        try:
            with pytest.raises(SimulationError, match=ENGINE_ENV_VAR):
                run_study(StudyConfig(benchmarks=("fir",), engine="warp9"))
        finally:
            del os.environ[ENGINE_ENV_VAR]

    def test_invalid_engine_rejected_in_run_benchmark(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError, match="unknown engine"):
            run_benchmark(get_benchmark("fir"), OptLevel.NONE,
                          engine="turbo")

    def test_invalid_engine_rejected_in_explore(self):
        from repro.asip.explore import explore_designs
        from repro.errors import SimulationError
        spec = get_benchmark("sewha")
        with pytest.raises(SimulationError, match="unknown engine"):
            explore_designs(compile_benchmark(spec),
                            spec.generate_inputs(0), engine="turbo")

    def test_empty_seeds_rejected(self):
        with pytest.raises(ReproError, match="StudyConfig.seeds is empty"):
            run_study(StudyConfig(benchmarks=("fir",), seeds=()))

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ReproError, match="duplicate seed"):
            run_study(StudyConfig(benchmarks=("fir",), seeds=(0, 1, 0)))

    def test_run_benchmark_seed_validation(self):
        with pytest.raises(ReproError, match="seeds= is empty"):
            run_benchmark(get_benchmark("fir"), OptLevel.NONE, seeds=())
        with pytest.raises(ReproError, match="duplicate seed"):
            run_benchmark(get_benchmark("fir"), OptLevel.NONE,
                          seeds=(3, 3))

    def test_valid_seeds_pass_through(self):
        from repro.suite.runner import validate_seeds
        assert validate_seeds(None) is None
        assert validate_seeds((2, 0, 1)) == (2, 0, 1)
        assert validate_seeds([5]) == (5,)


class TestPoolResizeFailure:
    """Satellite fix: a failed resize must not leave a dead pool behind."""

    def test_failed_resize_resets_state_and_recovers(self, monkeypatch):
        from concurrent.futures import ProcessPoolExecutor

        pool_mod.shutdown_pool()
        original = pool_mod.get_pool(1)
        assert pool_mod._pool_workers == 1

        def refuse(max_workers):
            raise RuntimeError("no workers for you")

        monkeypatch.setattr(pool_mod, "ProcessPoolExecutor", refuse)
        with pytest.raises(RuntimeError, match="no workers"):
            pool_mod.get_pool(2)  # resize: old pool shut down, new fails
        # The stale (pool, count) pair must be gone — before the fix,
        # get_pool(1) handed the shut-down executor straight back.
        assert pool_mod._pool is None
        assert pool_mod._pool_workers == 0

        monkeypatch.setattr(pool_mod, "ProcessPoolExecutor",
                            ProcessPoolExecutor)
        replacement = pool_mod.get_pool(1)
        assert replacement is not original
        assert replacement.submit(int, "7").result() == 7  # actually alive
        pool_mod.shutdown_pool()


class TestWorkerCacheEpochs:
    """Satellite fix: the per-worker memo is bounded per operation."""

    def test_same_epoch_keeps_memo_new_epoch_clears_it(self):
        from repro.exec.pool import (clear_worker_cache, next_epoch,
                                     sync_epoch, worker_cached)
        clear_worker_cache()
        first = next_epoch()
        sync_epoch(first)
        assert worker_cached("epoch-probe", lambda: "a") == "a"
        sync_epoch(first)  # same operation: memo survives
        assert worker_cached("epoch-probe", lambda: "b") == "a"
        sync_epoch(next_epoch())  # next operation: memo dropped
        assert worker_cached("epoch-probe", lambda: "c") == "c"
        clear_worker_cache()

    def test_none_epoch_is_a_no_op(self):
        from repro.exec.pool import (clear_worker_cache, sync_epoch,
                                     worker_cached)
        clear_worker_cache()
        assert worker_cached("noop-probe", lambda: 1) == 1
        sync_epoch(None)
        assert worker_cached("noop-probe", lambda: 2) == 1
        clear_worker_cache()

    def test_studies_do_not_accumulate_memo_entries(self):
        # Two serial studies through the executor: the second study's
        # epoch clears the first's derivations, so the memo holds one
        # study's worth of entries, not the union of every study ever.
        from repro.exec import pool as p
        from repro.exec.study import execute_study
        p.clear_worker_cache()
        execute_study(StudyConfig(benchmarks=("fir",), jobs=1), jobs=1)
        after_first = set(p._worker_cache)
        execute_study(StudyConfig(benchmarks=("iir",), jobs=1), jobs=1)
        after_second = set(p._worker_cache)
        assert any(key[1] == "fir" for key in after_first)
        assert all(key[1] != "fir" for key in after_second), \
            "the first study's compiles must not outlive it"
        assert any(key[1] == "iir" for key in after_second)
        p.clear_worker_cache()


class TestOptimizedSkipsFrontend:
    """Satellite fix: run_benchmark(optimized=...) must not recompile the
    front end it will never use."""

    def test_frontend_skipped_when_optimized_supplied(self, monkeypatch):
        import repro.suite.runner as runner_mod
        from repro.opt.pipeline import optimize_module
        spec = get_benchmark("fir")
        module = compile_benchmark(spec)
        optimized = optimize_module(module, OptLevel(1), unroll_factor=2)

        def exploding(_spec):
            raise AssertionError(
                "optimized= callers must not pay a front-end compile")

        monkeypatch.setattr(runner_mod, "compile_benchmark", exploding)
        run = runner_mod.run_benchmark(spec, OptLevel(1),
                                       optimized=optimized)
        assert run.module is None  # no front end was compiled
        assert run.graph_module is optimized[0]

    def test_optimized_with_module_keeps_module(self):
        from repro.opt.pipeline import optimize_module
        spec = get_benchmark("fir")
        module = compile_benchmark(spec)
        optimized = optimize_module(module, OptLevel(1), unroll_factor=2)
        run = run_benchmark(spec, OptLevel(1), module=module,
                            optimized=optimized)
        assert run.module is module

    def test_optimized_run_matches_plain_run(self):
        from repro.opt.pipeline import optimize_module
        spec = get_benchmark("fir")
        module = compile_benchmark(spec)
        optimized = optimize_module(module, OptLevel(1), unroll_factor=2)
        via_optimized = run_benchmark(spec, OptLevel(1),
                                      optimized=optimized)
        plain = run_benchmark(spec, OptLevel(1))
        assert_runs_identical(via_optimized, plain)
