"""CLI tests (fast paths only; the heavy study command is covered by the
benchmark harness)."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_levels_parsing(self):
        args = build_parser().parse_args(["study", "--levels", "2,0,0"])
        assert args.levels == (0, 2)

    def test_engine_choices_cover_all_five_tiers(self):
        from repro.sim.machine import ENGINES
        assert set(ENGINES) == {"compiled", "bytecode", "codegen",
                                "lanes", "reference"}
        for engine in ENGINES:
            args = build_parser().parse_args(
                ["study", "--engine", engine])
            assert args.engine == engine

    def test_invalid_engine_rejected_at_the_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "--engine", "turbo"])
        assert "--engine" in capsys.readouterr().err

    def test_seeds_parsing_keeps_order(self):
        args = build_parser().parse_args(["study", "--seeds", "3,0,2"])
        assert args.seeds == (3, 0, 2)

    def test_empty_seeds_rejected_at_the_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "--seeds", " , "])
        assert "--seeds" in capsys.readouterr().err

    def test_duplicate_seeds_rejected_at_the_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "--seeds", "1,2,1"])
        err = capsys.readouterr().err
        assert "--seeds" in err and "duplicate" in err

    def parse_normalized(self, *argv):
        from repro.cli import _normalize_argv
        return build_parser().parse_args(_normalize_argv(list(argv)))

    def test_negative_seeds_equals_form(self):
        args = self.parse_normalized("study", "--seeds=-1,3")
        assert args.seeds == (-1, 3)

    def test_negative_seeds_separate_token(self):
        # argparse alone swallows "-1,3" as an unknown option; the argv
        # normalization joins it onto the flag so the validator sees it.
        args = self.parse_normalized("study", "--seeds", "-1,3")
        assert args.seeds == (-1, 3)

    def test_single_negative_seed(self):
        args = self.parse_normalized("study", "--seeds", "-1")
        assert args.seeds == (-1,)

    def test_malformed_seeds_get_a_clear_error(self, capsys):
        with pytest.raises(SystemExit):
            self.parse_normalized("study", "--seeds", "1,x")
        err = capsys.readouterr().err
        assert "comma-separated integers" in err

    def test_malformed_negative_seeds_get_a_clear_error(self, capsys):
        # Starts like a negative seed, ends malformed: still reaches the
        # seed parser and its message, not argparse's generic complaint.
        with pytest.raises(SystemExit):
            self.parse_normalized("study", "--seeds", "-1,x")
        err = capsys.readouterr().err
        assert "comma-separated integers" in err

    def test_missing_seeds_value_still_errors(self, capsys):
        with pytest.raises(SystemExit):
            self.parse_normalized("study", "--seeds")
        assert "--seeds" in capsys.readouterr().err

    def test_normalization_leaves_other_flags_alone(self):
        args = self.parse_normalized("study", "--seeds", "4,5",
                                     "--seed", "3")
        assert args.seeds == (4, 5)
        assert args.seed == 3

    def test_empty_levels_rejected_at_the_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "--levels", " , "])
        assert "--levels is empty" in capsys.readouterr().err

    def test_malformed_levels_get_a_clear_error(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "--levels", "0,x"])
        err = capsys.readouterr().err
        assert "comma-separated optimization levels" in err

    def test_out_of_range_levels_rejected_at_the_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "--levels", "0,7"])
        err = capsys.readouterr().err
        assert "--levels contains 7" in err
        assert "0, 1, 2" in err

    def test_single_level_flag_validated(self, capsys):
        args = build_parser().parse_args(["explore", "sewha",
                                          "--level", "2"])
        assert args.level == 2
        for command in (["explore", "sewha"], ["explore-study"],
                        ["analyze", "k.c"]):
            for bad in ("7", "x"):
                with pytest.raises(SystemExit):
                    build_parser().parse_args(command + ["--level", bad])
                err = capsys.readouterr().err
                assert "one optimization level" in err

    def test_lengths_parsing_dedupes_and_sorts(self):
        args = build_parser().parse_args(["analyze", "k.c",
                                          "--lengths", "3,2,3"])
        assert args.lengths == (2, 3)

    def test_bad_lengths_rejected_at_the_flag(self, capsys):
        # Lengths are chain lengths, not levels: 4 and 5 are fine,
        # 1 is not ("chains have at least two operations").
        args = build_parser().parse_args(["analyze", "k.c",
                                          "--lengths", "4,5"])
        assert args.lengths == (4, 5)
        for value, message in ((" , ", "--lengths is empty"),
                               ("2,x", "comma-separated chain lengths"),
                               ("1,2", "at least two operations")):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["analyze", "k.c",
                                           "--lengths", value])
            assert message in capsys.readouterr().err

    def test_budgets_parsing(self):
        args = build_parser().parse_args(
            ["explore-study", "--budgets", "2500,1500,2500"])
        assert args.budgets == (2500, 1500)  # order kept, dupes dropped

    def test_bad_budgets_rejected_at_the_flag(self, capsys):
        for value in ("0", "1500,x", " , "):
            with pytest.raises(SystemExit):
                build_parser().parse_args(
                    ["explore-study", "--budgets", value])
            assert "--budgets" in capsys.readouterr().err

    def test_negative_budgets_get_the_parser_message(self, capsys):
        # Same normalization as --seeds: a leading-negative value must
        # reach _parse_budgets' message, not argparse's generic one.
        with pytest.raises(SystemExit):
            self.parse_normalized("explore-study", "--budgets",
                                  "-100,2500")
        assert "must be positive" in capsys.readouterr().err


class TestList:
    def test_lists_all_twelve(self):
        code, text = run_cli("list")
        assert code == 0
        assert len(text.strip().splitlines()) == 12
        assert "fir" in text and "feowf" in text


class TestAnalyze:
    KERNEL = """
    int x[16];
    int y[16];
    int n = 16;
    int main() {
        int i;
        for (i = 0; i < n; i++) { y[i] = x[i] * 3 + 1; }
        return 0;
    }
    """

    @pytest.fixture()
    def kernel_file(self, tmp_path):
        path = tmp_path / "kernel.c"
        path.write_text(self.KERNEL)
        return str(path)

    def test_analyze_reports_sequences(self, kernel_file):
        code, text = run_cli("analyze", kernel_file, "--lengths", "2,3")
        assert code == 0
        assert "multiply-add" in text
        assert "coverage" in text

    def test_analyze_level0(self, kernel_file):
        code, text = run_cli("analyze", kernel_file, "--level", "0")
        assert code == 0
        assert "level 0" in text

    def test_analyze_missing_file(self):
        code, _text = run_cli("analyze", "/nonexistent/path.c")
        assert code == 2

    def test_analyze_bad_source(self, tmp_path):
        path = tmp_path / "bad.c"
        path.write_text("int main( {")
        code, _text = run_cli("analyze", str(path))
        assert code == 2

    def test_analyze_seed_changes_inputs_not_structure(self, kernel_file):
        _code, a = run_cli("analyze", kernel_file, "--seed", "1")
        _code, b = run_cli("analyze", kernel_file, "--seed", "2")
        # Same static structure: same sequence names.
        names_a = {line.split()[0] for line in a.splitlines()
                   if "%" in line}
        names_b = {line.split()[0] for line in b.splitlines()
                   if "%" in line}
        assert names_a == names_b


class TestExplore:
    def test_explore_sewha(self):
        code, text = run_cli("explore", "sewha", "--budget", "1500")
        assert code == 0
        assert "best measured design" in text
        assert "x" in text  # speedup figure

    def test_explore_unknown_benchmark(self):
        code, _text = run_cli("explore", "nope")
        assert code == 2


class TestExploreStudy:
    def test_explore_study_on_a_subset(self):
        code, text = run_cli("explore-study", "--benchmarks", "sewha,dft",
                             "--budgets", "1500,2500")
        assert code == 0
        assert "sewha @ base" in text
        assert "sewha @ budget 1500" in text
        for row in ("sewha", "dft"):
            assert text.count(row + " ") >= 2  # one table row per budget
        assert "best design" in text

    def test_explore_study_json_export(self, tmp_path):
        out_file = tmp_path / "explore.json"
        code, text = run_cli("explore-study", "--benchmarks", "sewha",
                             "--budgets", "1500", "--json",
                             str(out_file))
        assert code == 0
        import json
        data = json.loads(out_file.read_text())
        assert data["config"]["budgets"] == [1500]
        assert data["cells"][0]["benchmark"] == "sewha"
        assert data["cells"][0]["best_speedup"] > 1.0

    def test_explore_study_unknown_benchmark(self):
        code, _text = run_cli("explore-study", "--benchmarks", "nope")
        assert code == 2


class TestFrontierStudy:
    def test_frontier_report_sections(self):
        code, text = run_cli("explore-study", "--frontier",
                             "--benchmarks", "sewha",
                             "--max-budget", "1200")
        assert code == 0
        assert "sewha @ base" in text
        assert "sewha @ frontier" in text
        assert "sewha @ measure" in text
        assert "# Frontier study report" in text
        assert "## Summary" in text
        assert "## Suite-wide chains" in text
        assert "## sewha: frontier breakpoints" in text
        assert "Sweep ceiling: 1200" in text
        assert "of 1 frontiers" in text

    def test_frontier_json_export(self, tmp_path):
        out_file = tmp_path / "frontier.json"
        code, text = run_cli("explore-study", "--frontier",
                             "--benchmarks", "sewha",
                             "--max-budget", "1200",
                             "--json", str(out_file))
        assert code == 0
        assert "written to" in text
        import json
        data = json.loads(out_file.read_text())
        assert data["config"]["max_budget"] == 1200
        assert data["frontiers"]["sewha"]["breakpoints"]
        assert data["cells"][0]["benchmark"] == "sewha"
        assert data["cells"][0]["speedup"] > 1.0
        assert data["suite_chains"][0]["frontier_count"] == 1
        assert "of 1 frontiers" in data["suite_chains"][0]["reason"]

    def test_frontier_unknown_benchmark(self):
        code, _text = run_cli("explore-study", "--frontier",
                              "--benchmarks", "nope")
        assert code == 2

    def test_frontier_bad_max_budget(self):
        code, _text = run_cli("explore-study", "--frontier",
                              "--max-budget", "0")
        assert code == 2


class TestCacheCommand:
    @pytest.fixture(autouse=True)
    def restore_cache_env(self, monkeypatch):
        # --cache-dir writes REPRO_CACHE (so pool workers inherit it);
        # re-register the current value with monkeypatch so the write is
        # undone when the test ends.
        import os
        current = os.environ.get("REPRO_CACHE")
        if current is None:
            monkeypatch.delenv("REPRO_CACHE", raising=False)
        else:
            monkeypatch.setenv("REPRO_CACHE", current)

    def test_show_clear_cycle(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code, text = run_cli("cache", "show", "--cache-dir", cache_dir)
        assert code == 0
        assert "entries:         none" in text
        # Prime the cache through a real command on a disk-cached tier.
        code, _ = run_cli("explore", "sewha", "--budget", "1500",
                          "--engine", "codegen", "--cache-dir", cache_dir)
        assert code == 0
        code, text = run_cli("cache", "show", "--cache-dir", cache_dir)
        assert code == 0
        assert "bytecode" in text and "codegen" in text
        code, text = run_cli("cache", "clear", "--cache-dir", cache_dir)
        assert code == 0
        assert "removed" in text
        code, text = run_cli("cache", "show", "--cache-dir", cache_dir)
        assert "entries:         none" in text

    def test_show_disabled(self):
        code, text = run_cli("cache", "show", "--cache-dir", "none")
        assert code == 0
        assert "disabled" in text

    def test_show_surfaces_store_failures(self, tmp_path, monkeypatch):
        # DiskCache.store never raises — a payload that cannot pickle
        # just bumps the ``failures`` counter.  ``cache show`` reuses
        # the live process-wide handle, so that counter must appear in
        # its per-kind line (it used to be silently dropped from the
        # counter-kind union).
        from repro.sim import diskcache
        monkeypatch.setenv(diskcache.CACHE_ENV_VAR, str(tmp_path))
        diskcache.reset_cache_state()
        try:
            cache = diskcache.get_cache()
            assert cache.store("codegen", "ab" * 32, lambda: None) is False
            assert cache.failures["codegen"] == 1
            code, text = run_cli("cache", "show")
            assert code == 0
            assert "this process:" in text
            assert "codegen" in text
            assert "1 store failure" in text
        finally:
            diskcache.reset_cache_state()

    def test_show_pluralizes_store_failures(self, tmp_path, monkeypatch):
        from repro.sim import diskcache
        monkeypatch.setenv(diskcache.CACHE_ENV_VAR, str(tmp_path))
        diskcache.reset_cache_state()
        try:
            cache = diskcache.get_cache()
            for _ in range(2):
                assert cache.store("bytecode", "cd" * 32,
                                   lambda: None) is False
            code, text = run_cli("cache", "show")
            assert code == 0
            assert "2 store failures" in text
        finally:
            diskcache.reset_cache_state()


class TestTables:
    def test_table1_fast_path(self):
        code, text = run_cli("tables", "1")
        assert code == 0
        assert "Table 1" in text

    def test_table2_on_subset(self):
        code, text = run_cli("tables", "2", "--benchmarks", "sewha,dft")
        assert code == 0
        assert "multiply-add" in text


class TestReport:
    def test_report_to_file(self, tmp_path):
        out_file = tmp_path / "report.md"
        code, text = run_cli("report", "--benchmarks", "sewha,dft",
                             "--output", str(out_file))
        assert code == 0
        assert "written to" in text
        content = out_file.read_text()
        assert content.startswith("# Study report")
        assert "## Iterative coverage" in content

    def test_report_to_stdout(self):
        code, text = run_cli("report", "--benchmarks", "dft",
                             "--levels", "0,1")
        assert code == 0
        assert "## Cycle counts" in text


class TestServeCommand:
    def test_serve_requires_endpoint(self):
        code, _text = run_cli("serve")
        assert code == 2

    def test_serve_status_queries_daemon(self, tmp_path, monkeypatch):
        from repro.serve import ReproServer, ServeClient
        from repro.sim import diskcache
        monkeypatch.setenv(diskcache.CACHE_ENV_VAR,
                           str(tmp_path / "cache"))
        diskcache.reset_cache_state()
        sock = str(tmp_path / "s.sock")
        srv = ReproServer(socket_path=sock, jobs=1)
        thread = srv.run_in_thread()
        try:
            code, text = run_cli("serve", "--socket", sock, "--status")
            assert code == 0
            assert '"result_cache_enabled"' in text
            assert '"stats"' in text
        finally:
            with ServeClient(socket_path=sock) as client:
                client.request({"op": "shutdown"})
            thread.join(30)
            diskcache.reset_cache_state()
        assert not thread.is_alive()

    def test_result_cache_flag_exports_env(self, tmp_path, monkeypatch):
        import os

        from repro.sim import diskcache
        # setenv first so monkeypatch restores the pre-test state even
        # though main() overwrites the variable.
        monkeypatch.setenv(diskcache.RESULT_ENV_VAR, "0")
        monkeypatch.setenv(diskcache.CACHE_ENV_VAR, str(tmp_path))
        diskcache.reset_cache_state()
        code, _text = run_cli("study", "--benchmarks", "sewha",
                              "--levels", "0", "--result-cache")
        assert code == 0
        assert os.environ[diskcache.RESULT_ENV_VAR] == "1"
        cache = diskcache.get_cache()
        assert cache.stores[diskcache.RESULT_KIND] == 1
        diskcache.reset_cache_state()
