"""Property-based differential fuzzing of the five simulation engines.

With five engines that must stay bit-identical, per-PR hand-written
differential tests stop scaling; this harness is the standing
equivalence oracle.  A seeded generator emits random mini-C programs
mixing the shapes the engines specialize on — arithmetic (including the
C-truncation division/modulo and shifts), memory traffic, branches,
nested loops and function calls — compiles each at optimization levels
0/1/2 (so post-opt graphs with compaction, percolation and pipelining
run too), and asserts that the reference interpreter, the compiled
closure engine, the bytecode tier, the exec-compiled codegen tier and
the lane-parallel tier produce identical outputs, cycle counts and
fully resolved profiles.  Programs that fault must fault *identically*
on every engine.

The lane tier additionally runs every case at batch widths 2, 4 and 9:
generated programs are closed (no external inputs), so every lane of
any width must reproduce the single-seed reference outcome —
per lane, including the fault message when the program traps.

The corpus is bounded for CI and deterministic (``REPRO_FUZZ_SEED``);
set ``REPRO_FUZZ_CASES`` to widen it locally, e.g.::

    REPRO_FUZZ_CASES=500 pytest tests/test_fuzz_engines.py
"""

import os
import random

import pytest

from repro.errors import SimulationError
from repro.frontend import compile_source
from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim.lanes import LaneEngine
from repro.sim.machine import ENGINES, run_module

#: Cases per CI run; widen locally via the environment.
CASES = int(os.environ.get("REPRO_FUZZ_CASES", "25"))
BASE_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "1995"))
LEVELS = (0, 1, 2)
LANE_WIDTHS = (2, 4, 9)


class ProgramGen:
    """Seeded random mini-C program generator.

    Every program is closed (no external inputs): arrays are filled by a
    deterministic seeding loop, so a program's behavior is a pure
    function of its source and the engines can be compared on outputs
    alone.  All loops have constant trip counts and all array indices
    are loop variables bounded by the array size or literals inside it,
    so generated programs terminate; faults (division traps cannot occur
    by construction, but overflow-free index arithmetic is *not*
    guaranteed under optimization) are tolerated as long as every engine
    faults identically.
    """

    def __init__(self, rng: random.Random, with_call: bool):
        self.rng = rng
        self.with_call = with_call
        self.arrays = []  # (name, size)
        self.scalars = []
        self.loop_depth = 0
        self.loop_vars = []  # (name, bound) currently in scope
        self.lines = []
        self.indent = 1
        self.next_loop = 0

    def emit(self, text):
        self.lines.append("    " * self.indent + text)

    # -- expressions ---------------------------------------------------------------

    def atom(self):
        rng = self.rng
        roll = rng.random()
        if roll < 0.3 and self.scalars:
            return rng.choice(self.scalars)
        if roll < 0.5 and self.loop_vars:
            return rng.choice(self.loop_vars)[0]
        if roll < 0.75 and self.arrays:
            name, size = rng.choice(self.arrays)
            return f"{name}[{self.index(size)}]"
        return str(rng.randint(-20, 20))

    def index(self, size):
        """An index expression guaranteed in ``[0, size)``."""
        rng = self.rng
        fitting = [v for v, bound in self.loop_vars if bound <= size]
        if fitting and rng.random() < 0.7:
            return rng.choice(fitting)
        return str(rng.randrange(size))

    def expr(self, depth=0):
        rng = self.rng
        if depth >= 2 or rng.random() < 0.35:
            return self.atom()
        a = self.expr(depth + 1)
        b = self.expr(depth + 1)
        op = rng.choice(("+", "-", "*", "&", "|", "^",
                         "/", "%", "<<", ">>",
                         "<", "<=", ">", ">=", "==", "!="))
        if op in ("/", "%"):
            return f"({a} {op} (({b}) | 1))"  # never a zero denominator
        if op in ("<<", ">>"):
            return f"(({a}) {op} {rng.randrange(4)})"
        if op == "*":
            # keep one factor small so nested loops cannot blow values
            # up into pathological bigints
            return f"(({a}) * {rng.randint(-6, 6)})"
        return f"(({a}) {op} ({b}))"

    # -- statements ----------------------------------------------------------------

    def assign(self):
        rng = self.rng
        if self.arrays and rng.random() < 0.45:
            name, size = rng.choice(self.arrays)
            self.emit(f"{name}[{self.index(size)}] = {self.expr()};")
        elif self.scalars:
            dest = rng.choice(self.scalars)
            op = rng.choice(("=", "+=", "-=", "^=", "="))
            self.emit(f"{dest} {op} {self.expr()};")

    def if_else(self, budget):
        self.emit(f"if ({self.expr()}) {{")
        self.indent += 1
        self.block(budget)
        self.indent -= 1
        if self.rng.random() < 0.6:
            self.emit("} else {")
            self.indent += 1
            self.block(budget)
            self.indent -= 1
        self.emit("}")

    def for_loop(self, budget):
        var = f"i{self.next_loop}"
        self.next_loop += 1
        bound = self.rng.randint(2, 6)
        self.emit(f"for ({var} = 0; {var} < {bound}; {var}++) {{")
        self.indent += 1
        self.loop_depth += 1
        self.loop_vars.append((var, bound))
        self.block(budget)
        self.loop_vars.pop()
        self.loop_depth -= 1
        self.indent -= 1
        self.emit("}")

    def while_loop(self, budget):
        var = f"i{self.next_loop}"
        self.next_loop += 1
        bound = self.rng.randint(2, 5)
        self.emit(f"{var} = {bound};")
        self.emit(f"while ({var} > 0) {{")
        self.indent += 1
        self.loop_depth += 1
        self.block(budget)
        self.emit(f"{var} = {var} - 1;")
        self.loop_depth -= 1
        self.indent -= 1
        self.emit("}")

    def call_stmt(self):
        dest = self.rng.choice(self.scalars)
        self.emit(f"{dest} = helper({self.expr(1)}, {self.expr(1)});")

    def block(self, budget):
        rng = self.rng
        for _ in range(rng.randint(1, 3)):
            roll = rng.random()
            if roll < 0.18 and budget > 0 and self.loop_depth < 2:
                self.for_loop(budget - 1)
            elif roll < 0.26 and budget > 0 and self.loop_depth < 2:
                self.while_loop(budget - 1)
            elif roll < 0.45 and budget > 0:
                self.if_else(budget - 1)
            elif roll < 0.55 and self.with_call and self.scalars:
                self.call_stmt()
            else:
                self.assign()

    # -- whole program -------------------------------------------------------------

    def generate(self) -> str:
        rng = self.rng
        self.arrays = [(f"a{i}", rng.randint(3, 9))
                       for i in range(rng.randint(1, 3))]
        self.scalars = [f"s{i}" for i in range(rng.randint(2, 4))]
        header = [f"int {name}[{size}];" for name, size in self.arrays]
        if self.with_call:
            header.append(
                "int helper(int x, int y) {\n"
                "    return ((x ^ y) + (x & 15)) - (y >> 1);\n"
                "}")
        body = self.lines
        self.emit("int chk;")
        max_loops = 12  # upper bound on loop-var declarations
        for i in range(max_loops):
            self.emit(f"int i{i};")
        for name in self.scalars:
            self.emit(f"int {name};")
        for name in self.scalars:
            self.emit(f"{name} = {rng.randint(-8, 8)};")
        # deterministic array seeding
        for name, size in self.arrays:
            var, bound = "i0", size
            self.emit(f"for ({var} = 0; {var} < {bound}; {var}++) {{")
            self.emit(f"    {name}[{var}] = ({var} * "
                      f"{rng.randint(1, 7)}) - {rng.randint(0, 9)};")
            self.emit("}")
        self.loop_vars = []
        self.block(budget=2)
        # checksum every array and scalar into the return value
        self.emit("chk = 0;")
        for name, size in self.arrays:
            self.emit(f"for (i0 = 0; i0 < {size}; i0++) {{")
            self.emit(f"    chk = (chk * 31 + {name}[i0]) % 100003;")
            self.emit("}")
        for name in self.scalars:
            self.emit(f"chk = chk ^ {name};")
        self.emit("return chk;")
        assert self.next_loop <= max_loops
        return "\n".join(header
                         + ["int main() {"] + body + ["}"])


def generate_case(case: int) -> str:
    rng = random.Random(BASE_SEED * 1_000_003 + case)
    return ProgramGen(rng, with_call=case % 2 == 1).generate()


def run_one(gm, engine):
    """(outcome, payload): completed results or the identical fault."""
    try:
        result = run_module(gm, engine=engine)
    except SimulationError as exc:
        return ("error", str(exc))
    return ("ok", result)


def assert_outcome_matches(outcome, reference, ctx):
    """One engine outcome vs the reference oracle's, faults included."""
    kind, payload = outcome
    assert kind == reference[0], (
        f"{ctx}: {kind} vs reference {reference[0]} ({payload})")
    if kind == "error":
        assert payload == reference[1], ctx
        return
    expected = reference[1]
    assert payload.return_value == expected.return_value, ctx
    assert payload.globals_after == expected.globals_after, ctx
    assert payload.cycles == expected.cycles, ctx
    assert payload.profile.node_counts == \
        expected.profile.node_counts, ctx
    assert payload.profile.edge_counts == \
        expected.profile.edge_counts, ctx
    assert payload.profile.call_counts == \
        expected.profile.call_counts, ctx


@pytest.mark.parametrize("case", range(CASES))
def test_engines_agree(case):
    source = generate_case(case)
    module = compile_source(source, f"fuzz{case}", filename=f"fuzz{case}.c")
    for level in LEVELS:
        gm, _ = optimize_module(module, OptLevel(level))
        outcomes = {engine: run_one(gm, engine) for engine in ENGINES}
        reference = outcomes["reference"]
        for engine in ENGINES:
            assert_outcome_matches(outcomes[engine], reference,
                                   f"case {case} level {level}: {engine}")


@pytest.mark.parametrize("case", range(CASES))
def test_lanes_agree_at_every_width(case):
    """Each lane of a 2/4/9-wide batch reproduces the single-seed
    reference outcome bit for bit (programs are closed, so all lanes
    share the one well-defined behavior — including faults)."""
    source = generate_case(case)
    module = compile_source(source, f"fuzz{case}", filename=f"fuzz{case}.c")
    for level in LEVELS:
        gm, _ = optimize_module(module, OptLevel(level))
        reference = run_one(gm, "reference")
        for width in LANE_WIDTHS:
            outcomes = LaneEngine(gm).run_batch_outcomes([None] * width)
            assert len(outcomes) == width
            for lane, outcome in enumerate(outcomes):
                assert_outcome_matches(
                    outcome, reference,
                    f"case {case} level {level} width {width} lane {lane}")


def test_generator_is_deterministic():
    """The corpus is reproducible: same seed, same programs."""
    assert generate_case(3) == generate_case(3)


def test_generator_covers_shapes():
    """Across the CI corpus the generator exercises every shape class
    the engines specialize on (loops, branches, memory, calls)."""
    sources = [generate_case(case) for case in range(max(CASES, 10))]
    assert any("for (" in src for src in sources)
    assert any("while (" in src for src in sources)
    assert any("if (" in src for src in sources)
    assert any("helper(" in src for src in sources)
    assert all("[" in src for src in sources)
