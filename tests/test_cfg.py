"""Program-graph construction and analysis tests."""

import pytest

from repro.cfg.build import build_graph, build_module_graphs
from repro.cfg.dataflow import compute_liveness, reaching_uses
from repro.cfg.dominators import compute_dominators, immediate_dominators
from repro.cfg.graph import ProgramGraph
from repro.cfg.linearize import format_graph, schedule_stats
from repro.cfg.loops import find_natural_loops
from repro.frontend import compile_source
from repro.ir.ops import Op
from repro.ir.values import VirtualReg


def graph_of(source, fn="main"):
    module = compile_source(source, "t")
    return build_graph(module.functions[fn])


LOOP_SRC = """
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 10; i++) { s += i; }
    return s;
}
"""

DIAMOND_SRC = """
int main() {
    int a; int b;
    a = 1;
    if (a > 0) { b = 2; } else { b = 3; }
    return b;
}
"""

NESTED_SRC = """
int main() {
    int i; int j; int s;
    s = 0;
    for (i = 0; i < 4; i++) {
        for (j = 0; j < 5; j++) { s += j; }
    }
    return s;
}
"""


class TestBuild:
    def test_one_op_per_node(self):
        g = graph_of(DIAMOND_SRC)
        for node in g.nodes.values():
            assert len(node.ops) + (1 if node.control else 0) <= 1 or \
                (len(node.ops) == 0 and node.control is not None) or \
                len(node.ops) == 1

    def test_every_node_single_op_or_control(self):
        g = graph_of(LOOP_SRC)
        for node in g.nodes.values():
            assert (len(node.ops), node.control is not None) in \
                ((1, False), (0, True))

    def test_branch_has_two_successors(self):
        g = graph_of(DIAMOND_SRC)
        branches = [n for n in g.nodes.values() if n.is_branch]
        assert branches and all(len(n.succs) == 2 for n in branches)

    def test_return_has_no_successors(self):
        g = graph_of(DIAMOND_SRC)
        rets = [n for n in g.nodes.values() if n.is_return]
        assert rets and all(not n.succs for n in rets)

    def test_jumps_dissolved_into_edges(self):
        g = graph_of(LOOP_SRC)
        for node in g.nodes.values():
            for ins in node.all_instructions():
                assert ins.op is not Op.JMP

    def test_edge_symmetry(self):
        g = graph_of(NESTED_SRC)
        for nid, node in g.nodes.items():
            for s in node.succs:
                assert nid in g.nodes[s].preds
            for p in node.preds:
                assert nid in g.nodes[p].succs

    def test_entry_reachable_everything(self):
        g = graph_of(NESTED_SRC)
        assert g.reachable() == set(g.nodes)

    def test_instructions_cloned_from_module(self):
        module = compile_source(LOOP_SRC, "t")
        g1 = build_graph(module.functions["main"])
        g2 = build_graph(module.functions["main"])
        uids1 = {ins.uid for n in g1.nodes.values()
                 for ins in n.all_instructions()}
        uids2 = {ins.uid for n in g2.nodes.values()
                 for ins in n.all_instructions()}
        assert not (uids1 & uids2)  # separate clones
        origins1 = {ins.origin for n in g1.nodes.values()
                    for ins in n.all_instructions()}
        origins2 = {ins.origin for n in g2.nodes.values()
                    for ins in n.all_instructions()}
        assert origins1 == origins2  # same provenance

    def test_module_graphs_includes_all_functions(self):
        module = compile_source(
            "int f() { return 1; } int main() { return f(); }", "t")
        gm = build_module_graphs(module)
        assert set(gm.graphs) == {"f", "main"}


class TestGraphOps:
    def test_rpo_starts_at_entry(self):
        g = graph_of(LOOP_SRC)
        assert g.rpo_order()[0] == g.entry

    def test_rpo_covers_all_nodes(self):
        g = graph_of(NESTED_SRC)
        assert sorted(g.rpo_order()) == sorted(g.nodes)

    def test_back_edges_in_loop(self):
        g = graph_of(LOOP_SRC)
        assert len(g.back_edges()) == 1

    def test_back_edges_nested(self):
        g = graph_of(NESTED_SRC)
        assert len(g.back_edges()) == 2

    def test_no_back_edges_in_diamond(self):
        g = graph_of(DIAMOND_SRC)
        assert g.back_edges() == []

    def test_copy_is_deep(self):
        g = graph_of(LOOP_SRC)
        dup = g.copy()
        node = next(n for n in dup.nodes.values() if n.ops)
        node.ops.clear()
        assert any(n.ops for n in g.nodes.values())

    def test_format_graph_mentions_entry(self):
        g = graph_of(DIAMOND_SRC)
        assert f"entry n{g.entry}" in format_graph(g)

    def test_schedule_stats(self):
        g = graph_of(DIAMOND_SRC)
        stats = schedule_stats(g)
        assert stats.nodes == g.node_count()
        assert stats.max_width == 1
        assert 0 < stats.static_ilp <= 1


class TestLiveness:
    def test_param_live_at_entry_when_used(self):
        module = compile_source(
            "int f(int a) { return a + 1; } int main() { return f(2); }",
            "t")
        g = build_graph(module.functions["f"])
        info = compute_liveness(g)
        assert VirtualReg("a") in info.live_in[g.entry]

    def test_dead_after_last_use(self):
        g = graph_of(DIAMOND_SRC)
        info = compute_liveness(g)
        rets = [n for n in g.nodes.values() if n.is_return]
        for node in rets:
            assert info.live_out[node.id] == set()

    def test_loop_carried_register_live_around_backedge(self):
        g = graph_of(LOOP_SRC)
        info = compute_liveness(g)
        (tail, head) = g.back_edges()[0]
        live_at_head = info.live_in[head]
        names = {r.name for r in live_at_head}
        assert "s" in names and "i" in names

    def test_reaching_uses_finds_consumer(self):
        g = graph_of("int main() { int a; a = 2; return a * 3; }")
        consumers = reaching_uses(g)
        movs = [ins for n in g.nodes.values() for ins in n.ops
                if ins.op is Op.MOV and ins.dest and ins.dest.name == "a"]
        # Declaration zero-init (killed before use) plus the real store.
        assert len(movs) == 2
        zero_init, real_def = movs
        assert consumers[zero_init.uid] == []  # killed by the second mov
        assert consumers[real_def.uid]         # feeds the multiply


class TestDominators:
    def test_entry_dominates_all(self):
        g = graph_of(NESTED_SRC)
        doms = compute_dominators(g)
        for nid in g.nodes:
            assert g.entry in doms[nid]

    def test_entry_has_no_idom(self):
        g = graph_of(LOOP_SRC)
        idom = immediate_dominators(g)
        assert idom[g.entry] is None

    def test_branch_dominates_both_arms_not_join(self):
        g = graph_of(DIAMOND_SRC)
        doms = compute_dominators(g)
        branch = next(n for n in g.nodes.values() if n.is_branch)
        t, f = branch.succs
        assert branch.id in doms[t] and branch.id in doms[f]
        # The join node is dominated by the branch but by neither arm.
        joins = [nid for nid, n in g.nodes.items() if len(n.preds) == 2]
        assert joins
        join = joins[0]
        assert branch.id in doms[join]
        assert not (t in doms[join] and f in doms[join])


class TestLoops:
    def test_single_loop_found(self):
        g = graph_of(LOOP_SRC)
        loops = find_natural_loops(g)
        assert len(loops) == 1
        assert len(loops[0].latches) == 1

    def test_nested_loops_found_inner_first(self):
        g = graph_of(NESTED_SRC)
        loops = find_natural_loops(g)
        assert len(loops) == 2
        assert loops[0].size < loops[1].size
        assert loops[0].is_innermost(loops)
        assert not loops[1].is_innermost(loops)

    def test_inner_body_subset_of_outer(self):
        g = graph_of(NESTED_SRC)
        inner, outer = find_natural_loops(g)
        assert inner.body < outer.body

    def test_loop_exits_outside_body(self):
        g = graph_of(LOOP_SRC)
        (loop,) = find_natural_loops(g)
        for e in loop.exits(g):
            assert e not in loop.body

    def test_loop_with_call_detected(self):
        g = graph_of("""
        int f() { return 1; }
        int main() { int i; int s; s = 0;
            for (i = 0; i < 3; i++) { s += f(); } return s; }
        """)
        (loop,) = find_natural_loops(g)
        assert loop.contains_call(g)
