"""Tests for the classic cleanups: fold, propagate, coalesce, DCE."""

import pytest

from repro.cfg.build import build_graph
from repro.frontend import compile_source
from repro.ir.ops import Op
from repro.ir.values import Constant
from repro.opt.classic import (coalesce_moves, constant_fold,
                               copy_propagate, dead_code_elimination,
                               run_cleanups, straight_chains)
from repro.sim.machine import run_module
from repro.cfg.build import build_module_graphs
from repro.opt.pipeline import OptLevel, optimize_module


def graph_of(source):
    module = compile_source(source, "t")
    return build_graph(module.functions["main"]), module


def all_ops(graph):
    return [ins for n in graph.nodes.values() for ins in n.ops]


def count(graph, op):
    return sum(1 for ins in all_ops(graph) if ins.op is op)


class TestStraightChains:
    def test_chains_partition_nodes(self):
        g, _ = graph_of("""
        int main() { int a; a = 1;
            if (a > 0) { a = 2; } else { a = 3; }
            return a; }
        """)
        chains = straight_chains(g)
        seen = [nid for chain in chains for nid in chain]
        assert sorted(seen) == sorted(g.nodes)
        assert len(seen) == len(set(seen))

    def test_chain_is_connected(self):
        g, _ = graph_of("int main() { int a; a = 1; a = a + 2; "
                        "return a; }")
        for chain in straight_chains(g):
            for a, b in zip(chain, chain[1:]):
                assert g.nodes[a].succs == [b]


class TestConstantFold:
    def test_folds_arithmetic(self):
        g, _ = graph_of("int main() { return 2 + 3 * 4; }")
        folded = constant_fold(g)
        assert folded >= 1
        movs = [ins for ins in all_ops(g) if ins.op is Op.MOV]
        assert any(isinstance(m.srcs[0], Constant)
                   and m.srcs[0].value == 12 for m in movs)

    def test_fold_propagate_iteration_reaches_final_value(self):
        g, _ = graph_of("int main() { return 2 + 3 * 4; }")
        run_cleanups(g)
        assert count(g, Op.MUL) == 0
        assert count(g, Op.ADD) == 0

    def test_division_by_zero_not_folded(self):
        g, _ = graph_of("int main() { int z; z = 0; return 5 / 0; }")
        before = count(g, Op.DIV)
        constant_fold(g)
        assert count(g, Op.DIV) == before

    def test_float_fold(self):
        g, _ = graph_of("float out[1]; int main() "
                        "{ out[0] = 1.5 * 4.0; return 0; }")
        constant_fold(g)
        assert count(g, Op.FMUL) == 0

    def test_compare_fold(self):
        g, _ = graph_of("int main() { return 3 < 5; }")
        constant_fold(g)
        assert count(g, Op.CMPLT) == 0


class TestCopyPropagate:
    def test_constant_propagates(self):
        g, _ = graph_of("int main() { int a; int b; a = 7; b = a + 1; "
                        "return b; }")
        rewritten = copy_propagate(g)
        assert rewritten >= 1
        adds = [ins for ins in all_ops(g) if ins.op is Op.ADD]
        assert any(isinstance(s, Constant) and s.value == 7
                   for ins in adds for s in ins.srcs)

    def test_propagation_stops_at_redefinition(self):
        g, _ = graph_of("""
        int main() { int a; int b; a = 7; a = 9; b = a + 1; return b; }
        """)
        copy_propagate(g)
        adds = [ins for ins in all_ops(g) if ins.op is Op.ADD]
        values = [s.value for ins in adds for s in ins.srcs
                  if isinstance(s, Constant) and s.value in (7, 9)]
        assert 7 not in values and 9 in values


class TestCoalesce:
    def test_temp_mov_var_coalesced(self):
        g, _ = graph_of("int x[2]; int main() { int a; a = x[0] * 3; "
                        "return a; }")
        before = count(g, Op.MOV)
        removed = coalesce_moves(g)
        assert removed >= 1
        assert count(g, Op.MOV) == before - removed
        mul = next(ins for ins in all_ops(g) if ins.op is Op.MUL)
        assert mul.dest.name == "a"

    def test_increment_pattern_coalesced(self):
        g, _ = graph_of("int main() { int i; i = 0; i = i + 1; "
                        "return i; }")
        removed = coalesce_moves(g)
        assert removed >= 1
        add = next(ins for ins in all_ops(g) if ins.op is Op.ADD)
        assert add.dest.name == "i"
        assert any(r.name == "i" for r in add.uses())

    def test_semantics_preserved_by_cleanups(self):
        src = """
        int x[8];
        int main() { int i; int s; s = 0;
            for (i = 0; i < 8; i++) { s = s + x[i] * 3; }
            return s; }
        """
        module = compile_source(src, "t")
        inputs = {"x": [5, -2, 7, 1, 0, 3, -9, 4]}
        gm = build_module_graphs(module)
        expected = run_module(gm, inputs).return_value
        gm2 = build_module_graphs(module)
        for g in gm2.graphs.values():
            run_cleanups(g)
        assert run_module(gm2, inputs).return_value == expected


class TestDCE:
    def test_dead_pure_op_removed(self):
        g, _ = graph_of("int main() { int a; int b; a = 1; b = a * 2; "
                        "return a; }")
        removed = dead_code_elimination(g)
        assert removed >= 1
        assert count(g, Op.MUL) == 0

    def test_transitively_dead_removed(self):
        g, _ = graph_of("int main() { int a; int b; int c; a = 1; "
                        "b = a + 1; c = b + 1; return a; }")
        dead_code_elimination(g)
        assert count(g, Op.ADD) == 0

    def test_stores_never_removed(self):
        g, _ = graph_of("int out[1]; int main() { out[0] = 5; "
                        "return 0; }")
        dead_code_elimination(g)
        assert count(g, Op.STORE) == 1

    def test_calls_never_removed(self):
        g, _ = graph_of("""
        int out[1];
        int f() { out[0] = 1; return 2; }
        int main() { int unused; unused = f(); return 0; }
        """)
        dead_code_elimination(g)
        assert count(g, Op.CALL) == 1

    def test_live_loop_carried_not_removed(self):
        g, _ = graph_of("""
        int main() { int i; int s; s = 0;
            for (i = 0; i < 4; i++) { s = s + i; }
            return s; }
        """)
        dead_code_elimination(g)
        assert count(g, Op.ADD) >= 2  # i increment and s accumulation


class TestRunCleanups:
    def test_reaches_fixpoint(self):
        g, _ = graph_of("int main() { int a; int b; a = 2 * 3; "
                        "b = a + 0 * 5; return b; }")
        stats = run_cleanups(g)
        assert stats["folded"] >= 1
        # A second invocation changes nothing.
        again = run_cleanups(g)
        assert all(v == 0 for v in again.values())
