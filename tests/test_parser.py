"""Parser unit tests."""

import pytest

from repro.errors import ParseError
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse


def parse_expr(text):
    """Parse an expression by wrapping it in a tiny program."""
    prog = parse("int main() { int z; z = %s; return 0; }" % text)
    assign = prog.functions[0].body.items[1]
    assert isinstance(assign, ast.Assign)
    return assign.value


def parse_stmt(text):
    prog = parse("int main() { %s return 0; }" % text)
    return prog.functions[0].body.items[0]


class TestTopLevel:
    def test_globals_and_functions_separated(self):
        prog = parse("int a; float b[4]; void f() { } int main() "
                     "{ return 0; }")
        assert [d.name for d in prog.globals] == ["a", "b"]
        assert [f.name for f in prog.functions] == ["f", "main"]

    def test_multi_declarator_line(self):
        prog = parse("int a, b, c; int main() { return 0; }")
        assert [d.name for d in prog.globals] == ["a", "b", "c"]

    def test_global_scalar_initializer(self):
        prog = parse("int n = 35; int main() { return 0; }")
        assert isinstance(prog.globals[0].init, ast.IntLit)

    def test_global_array_brace_initializer(self):
        prog = parse("float h[3] = { 1.0, 2.0, 3.0 }; "
                     "int main() { return 0; }")
        assert len(prog.globals[0].init) == 3

    def test_brace_initializer_trailing_comma(self):
        prog = parse("int c[2] = { 1, 2, }; int main() { return 0; }")
        assert len(prog.globals[0].init) == 2

    def test_two_dimensional_array(self):
        prog = parse("int img[24][24]; int main() { return 0; }")
        assert prog.globals[0].dims == (24, 24)

    def test_three_dimensional_array_rejected(self):
        with pytest.raises(ParseError):
            parse("int t[2][2][2]; int main() { return 0; }")

    def test_zero_extent_rejected(self):
        with pytest.raises(ParseError):
            parse("int t[0]; int main() { return 0; }")

    def test_void_variable_rejected(self):
        with pytest.raises(ParseError):
            parse("void v; int main() { return 0; }")

    def test_function_params(self):
        prog = parse("int f(int a, float b, float c[8]) { return a; } "
                     "int main() { return 0; }")
        params = prog.functions[0].params
        assert [p.name for p in params] == ["a", "b", "c"]
        assert params[2].dims == (8,)

    def test_unsized_array_param(self):
        prog = parse("void f(float v[]) { } int main() { return 0; }")
        assert prog.functions[0].params[0].dims == (None,)

    def test_stray_token_at_top_level(self):
        with pytest.raises(ParseError):
            parse("42; int main() { return 0; }")


class TestStatements:
    def test_if_else(self):
        stmt = parse_stmt("if (1) { } else { }")
        assert isinstance(stmt, ast.If)
        assert stmt.other is not None

    def test_dangling_else_binds_inner(self):
        stmt = parse_stmt("if (1) if (2) ; else ;")
        assert stmt.other is None
        assert isinstance(stmt.then, ast.If)
        assert stmt.then.other is not None

    def test_while(self):
        stmt = parse_stmt("while (x < 3) { }")
        assert isinstance(stmt, ast.While)

    def test_for_full(self):
        stmt = parse_stmt("for (i = 0; i < 4; i++) { }")
        assert isinstance(stmt, ast.For)
        assert stmt.init is not None and stmt.step is not None

    def test_for_empty_clauses(self):
        stmt = parse_stmt("for (;;) { break; }")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_compound_assign(self):
        stmt = parse_stmt("x += 2;")
        assert isinstance(stmt, ast.Assign)
        assert stmt.op == "+="

    def test_increment_desugars_to_plus_equals(self):
        stmt = parse_stmt("x++;")
        assert isinstance(stmt, ast.Assign)
        assert stmt.op == "+=" and stmt.value.value == 1

    def test_decrement(self):
        stmt = parse_stmt("x--;")
        assert stmt.op == "-="

    def test_assignment_to_rvalue_rejected(self):
        with pytest.raises(ParseError):
            parse_stmt("(x + 1) = 2;")

    def test_empty_statement(self):
        stmt = parse_stmt(";")
        assert isinstance(stmt, ast.Block) and stmt.items == []

    def test_return_without_value(self):
        prog = parse("void f() { return; } int main() { return 0; }")
        ret = prog.functions[0].body.items[0]
        assert isinstance(ret, ast.Return) and ret.value is None

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_stmt("x = 1")

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("int main() { return 0;")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.rhs.op == "*"

    def test_precedence_shift_below_add(self):
        expr = parse_expr("1 << 2 + 3")
        assert expr.op == "<<"
        assert expr.rhs.op == "+"

    def test_left_associativity(self):
        expr = parse_expr("10 - 4 - 3")
        assert expr.op == "-" and expr.lhs.op == "-"

    def test_comparison_chain_parses_left(self):
        expr = parse_expr("1 < 2 == 0")
        assert expr.op == "=="

    def test_logical_precedence(self):
        expr = parse_expr("1 || 2 && 3")
        assert expr.op == "||"
        assert expr.rhs.op == "&&"

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.lhs.op == "+"

    def test_unary_minus_nested(self):
        expr = parse_expr("--x" .replace("--", "- -"))
        assert isinstance(expr, ast.UnOp) and isinstance(expr.operand,
                                                         ast.UnOp)

    def test_unary_plus_is_identity(self):
        expr = parse_expr("+x")
        assert isinstance(expr, ast.Name)

    def test_cast(self):
        expr = parse_expr("(float) 3")
        assert isinstance(expr, ast.Cast) and expr.target == "float"

    def test_cast_binds_tighter_than_mul(self):
        expr = parse_expr("(int) 2.0 * 3")
        assert expr.op == "*"
        assert isinstance(expr.lhs, ast.Cast)

    def test_parenthesized_name_is_not_cast(self):
        expr = parse_expr("(x) + 1")
        assert expr.op == "+"

    def test_ternary(self):
        expr = parse_expr("1 ? 2 : 3")
        assert isinstance(expr, ast.Cond)

    def test_ternary_right_associative(self):
        expr = parse_expr("1 ? 2 : 3 ? 4 : 5")
        assert isinstance(expr.other, ast.Cond)

    def test_call_with_args(self):
        expr = parse_expr("f(1, x, 2.0)")
        assert isinstance(expr, ast.Call) and len(expr.args) == 3

    def test_index_one_dim(self):
        expr = parse_expr("a[i + 1]")
        assert isinstance(expr, ast.Index) and len(expr.indices) == 1

    def test_index_two_dims(self):
        expr = parse_expr("m[i][j]")
        assert isinstance(expr, ast.Index) and len(expr.indices) == 2

    def test_indexing_expression_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("f(1)[2]")

    def test_missing_operand(self):
        with pytest.raises(ParseError):
            parse_expr("1 + ")
