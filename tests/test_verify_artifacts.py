"""Mutation tests for the static artifact verifier (``repro.analysis``).

Every test seeds one specific corruption — a lowered word, a generated
source line, a disk-cache payload, a task graph — and asserts the
verifier rejects it *naming the violated invariant*.  Positive tests pin
that pristine artifacts of every tier pass with zero violations.
"""

from __future__ import annotations

import glob
import pickle

import pytest

from repro.analysis import VerificationError, VerifyResult
from repro.analysis.cfg import (build_word_cfg, immediate_dominators,
                                immediate_postdominators, verify_words)
from repro.analysis.lint import lint_determinism, lint_source
from repro.analysis.sweep import render_markdown, run_sweep, scan_cache_entries
from repro.analysis.taskgraph import check_task_graph, verify_task_graph
from repro.analysis.verify_codegen import (verify_generated_module,
                                           verify_generated_source,
                                           verify_lane_module)
from repro.analysis.verify_lowered import (verify_compiled_module,
                                           verify_graph,
                                           verify_lowered_module)
from repro.errors import IRError, ReproError
from repro.frontend import compile_source
from repro.ir.function import Function
from repro.ir.instr import Instruction
from repro.ir.module import Module
from repro.ir.ops import Op
from repro.ir.values import ArraySymbol, Constant, VirtualReg
from repro.ir.verify import verify_function
from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim import engine as _eng
from repro.sim import diskcache
from repro.sim.codegen import generate_module
from repro.sim.engine import compile_module, lower_module
from repro.sim.lanes import generate_lane_module

# Same kernels as tests/conftest.py (duplicated here rather than imported:
# `from conftest import ...` is ambiguous when the benchmark harness's
# conftest is also on the collection path).
FIR_LIKE_SOURCE = """
float x[40];
float h[8];
float y[40];
int n = 40;
int taps = 8;

int main() {
    int i; int k;
    for (i = 0; i < n; i++) {
        float acc;
        acc = 0.0;
        for (k = 0; k < taps; k++) {
            if (i - k >= 0) {
                acc += h[k] * x[i - k];
            }
        }
        y[i] = acc;
    }
    return 0;
}
"""

INT_KERNEL_SOURCE = """
int x[64];
int y[64];
int n = 64;

int main() {
    int i;
    y[0] = x[0];
    for (i = 1; i < n - 1; i++) {
        int acc;
        acc = x[i - 1] + 3 * x[i] + x[i + 1];
        y[i] = acc >> 2;
    }
    y[n - 1] = x[n - 1];
    return 0;
}
"""


def _graph_module(source=FIR_LIKE_SOURCE, level=1):
    module = compile_source(source)
    gm, _ = optimize_module(module, OptLevel(level))
    return gm


def _invariants(result: VerifyResult):
    return {v.invariant for v in result.violations}


# -- positive: pristine artifacts pass every tier ----------------------------------


class TestPristineArtifacts:
    @pytest.mark.parametrize("level", [0, 1, 2])
    def test_all_tiers_clean(self, level):
        gm = _graph_module(level=level)
        for graph in gm.graphs.values():
            assert verify_graph(graph).ok
        assert verify_compiled_module(gm, compile_module(gm)).ok
        lower_module(gm)
        lowered = verify_lowered_module(gm, gm._lowered_cache)
        assert lowered.ok and lowered.checks > 100
        assert verify_generated_module(gm, generate_module(gm)).ok
        assert verify_lane_module(gm, generate_lane_module(gm, 4)).ok

    def test_int_kernel_clean(self):
        gm = _graph_module(INT_KERNEL_SOURCE, level=2)
        lower_module(gm)
        assert verify_lowered_module(gm, gm._lowered_cache).ok
        assert verify_generated_module(gm, generate_module(gm)).ok

    def test_raise_if_failed(self):
        result = VerifyResult()
        result.check(False, "some-invariant", "broken thing")
        with pytest.raises(VerificationError, match="some-invariant"):
            result.raise_if_failed()
        assert VerifyResult().ok


# -- word-level mutations ----------------------------------------------------------


def _lowered_graph(gm):
    lower_module(gm)
    name = sorted(gm.graphs)[0]
    return name, gm._lowered_cache.graphs[name]


def _first_word(lg, op):
    for word in lg.words:
        if word[0] == op:
            return word
    raise AssertionError(f"no word with opcode {op}")


class TestWordMutations:
    def test_successor_ref_to_foreign_word(self):
        gm = _graph_module()
        name, lg = _lowered_graph(gm)
        br = _first_word(lg, _eng.BR)
        br[3] = [_eng.RET_N]  # a fresh list that is not a member word
        result = verify_lowered_module(gm, gm._lowered_cache)
        assert "successor-ref" in _invariants(result)

    def test_register_slot_above_frame(self):
        gm = _graph_module()
        name, lg = _lowered_graph(gm)
        word = next(w for w in lg.words
                    if w[0] in (_eng.ADD_RR, _eng.ADD_RR_J, _eng.ADD_RC,
                                _eng.ADD_RC_J, _eng.MOV_C, _eng.MOV_C_J))
        word[1] = lg.n_regs + 5
        result = verify_words(lg)
        assert "register-slot-range" in _invariants(result)

    def test_missing_terminator(self):
        gm = _graph_module()
        name, lg = _lowered_graph(gm)
        word = next(w for w in lg.words
                    if w and isinstance(w[-1], list))
        word[-1] = None
        result = verify_words(lg)
        assert "missing-terminator" in _invariants(result)

    def test_dead_word(self):
        gm = _graph_module()
        name, lg = _lowered_graph(gm)
        lg.words.append([_eng.RET_N])  # orphan: no word references it
        result = verify_lowered_module(gm, gm._lowered_cache)
        assert "dead-word" in _invariants(result)

    def test_edge_table_swap(self):
        gm = _graph_module()
        name, lg = _lowered_graph(gm)
        assert len(lg.edge_pairs) >= 2
        lg.edge_pairs[0], lg.edge_pairs[1] = \
            lg.edge_pairs[1], lg.edge_pairs[0]
        result = verify_lowered_module(gm, gm._lowered_cache)
        assert "edge-table" in _invariants(result)

    def test_branch_counter_pair(self):
        gm = _graph_module()
        name, lg = _lowered_graph(gm)
        br = _first_word(lg, _eng.BR)
        br[4] = br[2] + 2  # legs must carry adjacent counters
        result = verify_lowered_module(gm, gm._lowered_cache)
        assert "branch-counter-pair" in _invariants(result)

    def test_counter_out_of_range(self):
        gm = _graph_module()
        name, lg = _lowered_graph(gm)
        br = _first_word(lg, _eng.BR)
        br[2] = lg.n_counters + 7
        result = verify_words(lg)
        assert "edge-index-range" in _invariants(result)

    def test_unknown_opcode(self):
        gm = _graph_module()
        name, lg = _lowered_graph(gm)
        lg.words[0][0] = 10_000
        result = verify_words(lg)
        assert "unknown-opcode" in _invariants(result)


# -- CFG reconstruction ------------------------------------------------------------


class TestWordCFG:
    def test_dominators_and_postdominators(self):
        gm = _graph_module()
        _, lg = _lowered_graph(gm)
        cfg = build_word_cfg(lg)
        idom = immediate_dominators(cfg)
        ipdom = immediate_postdominators(cfg)
        assert idom[cfg.entry] == cfg.entry
        # every reachable non-entry word has a dominator
        for i in cfg.reachable:
            if i != cfg.entry:
                assert idom[i] is not None
        assert len(ipdom) == cfg.n

    def test_reachable_covers_member_words(self):
        gm = _graph_module(level=2)
        _, lg = _lowered_graph(gm)
        cfg = build_word_cfg(lg)
        assert set(range(len(lg.words))) <= cfg.reachable


# -- generated-source mutations ----------------------------------------------------


class TestCodegenSourceMutations:
    def _source_parts(self, gm):
        gen = generate_module(gm)
        return gen.lowered.graphs, gen.source, gen.consts

    def test_deleted_counter_writeback(self):
        gm = _graph_module()
        graphs, source, consts = self._source_parts(gm)
        lines = source.splitlines()
        idx = next(i for i, line in enumerate(lines)
                   if "eh[" in line and "+=" in line)
        mutated = "\n".join(lines[:idx] + lines[idx + 1:])
        result = verify_generated_source(gm, graphs, mutated, consts,
                                         lanes=False)
        assert "counter-writeback" in _invariants(result)

    def test_deleted_cycle_writeback(self):
        gm = _graph_module()
        graphs, source, consts = self._source_parts(gm)
        mutated = "\n".join(line for line in source.splitlines()
                            if line.strip() != "cyc[0] = n")
        result = verify_generated_source(gm, graphs, mutated, consts,
                                         lanes=False)
        assert "cycle-writeback" in _invariants(result)

    def test_deleted_limit_exit_writeback(self):
        # The cycle-limit guard raises instead of returning, so only the
        # limit-exit sweep sees it: drop just its write-back (the first
        # occurrence — the guard is emitted before any block body).
        gm = _graph_module()
        graphs, source, consts = self._source_parts(gm)
        mutated = source.replace("cyc[0] = n", "pass", 1)
        assert mutated != source
        result = verify_generated_source(gm, graphs, mutated, consts,
                                         lanes=False)
        assert "cycle-writeback" in _invariants(result)

    def test_disabled_bounds_guard(self):
        gm = _graph_module()
        graphs, source, consts = self._source_parts(gm)
        assert "if 0 <= " in source
        mutated = source.replace("if 0 <= ", "if True or 0 <= ", 1)
        result = verify_generated_source(gm, graphs, mutated, consts,
                                         lanes=False)
        assert "unguarded-load" in _invariants(result)

    def test_unbound_name(self):
        gm = _graph_module()
        graphs, source, consts = self._source_parts(gm)
        assert "limit = state.max_cycles" in source
        mutated = source.replace("limit = state.max_cycles",
                                 "limit = missing_state.max_cycles", 1)
        result = verify_generated_source(gm, graphs, mutated, consts,
                                         lanes=False)
        assert "unbound-name" in _invariants(result)

    def test_unknown_const_default(self):
        gm = _graph_module()
        graphs, source, consts = self._source_parts(gm)
        assert consts  # fir-like kernel folds constants
        key = sorted(consts)[0]
        broken = {k: v for k, v in consts.items() if k != key}
        result = verify_generated_source(gm, graphs, source, broken,
                                         lanes=False)
        assert "const-binding" in _invariants(result)

    def test_missing_function_def(self):
        gm = _graph_module()
        graphs, source, consts = self._source_parts(gm)
        mutated = source.replace("def _f0(", "def _g0(")
        result = verify_generated_source(gm, graphs, mutated, consts,
                                         lanes=False)
        assert "function-table" in _invariants(result)

    def test_syntax_error(self):
        gm = _graph_module()
        graphs, source, consts = self._source_parts(gm)
        result = verify_generated_source(gm, graphs, source + "\n  ):",
                                         consts, lanes=False)
        assert "source-syntax" in _invariants(result)


class TestLanesSourceMutations:
    def _parts(self, gm, n_lanes=4):
        lm = generate_lane_module(gm, n_lanes)
        return lm.lowered.graphs, lm.source, lm.consts, lm.bounds

    def test_deleted_counter_fold(self):
        gm = _graph_module()
        graphs, source, consts, bounds = self._parts(gm)
        lines = source.splitlines()
        idx = next(i for i, line in enumerate(lines)
                   if "_a[" in line and "+=" in line)
        mutated = "\n".join(lines[:idx] + lines[idx + 1:])
        result = verify_generated_source(gm, graphs, mutated, consts,
                                         lanes=True, n_lanes=4,
                                         bounds=bounds)
        assert "counter-fold" in _invariants(result)

    def test_reconvergence_respects_block_starts(self):
        gm = _graph_module()
        graphs, source, consts, bounds = self._parts(gm)
        clean = verify_generated_source(gm, graphs, source, consts,
                                        lanes=True, n_lanes=4,
                                        bounds=bounds)
        assert clean.ok
        # Pretend the emitter produced a single block: every branch
        # postdominator now falls mid-block and must be flagged.
        override = {name: [0] for name in graphs}
        result = verify_generated_source(gm, graphs, source, consts,
                                         lanes=True, n_lanes=4,
                                         bounds=bounds,
                                         starts_override=override)
        assert "lanes-reconvergence" in _invariants(result)


# -- disk cache: verify-on-load ----------------------------------------------------


@pytest.fixture
def verified_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(diskcache.CACHE_ENV_VAR, str(tmp_path))
    monkeypatch.setenv(diskcache.VERIFY_ENV_VAR, "1")
    diskcache.reset_cache_state()
    yield tmp_path
    diskcache.reset_cache_state()


def _entry_paths(kind):
    cache = diskcache.get_cache()
    return [path for k, path in cache.entries() if k == kind]


def _rewrite(path, mutate):
    with open(path, "rb") as fh:
        entry = pickle.load(fh)
    mutate(entry["payload"])
    with open(path, "wb") as fh:
        pickle.dump(entry, fh)


class TestVerifyOnLoad:
    def test_clean_warm_load_not_rejected(self, verified_cache):
        generate_module(_graph_module())
        diskcache.reset_cache_state()
        generate_module(_graph_module())
        cache = diskcache.get_cache()
        assert cache.hits["codegen"] == 1
        assert not cache.rejected

    def test_tampered_codegen_source_rejected(self, verified_cache):
        generate_module(_graph_module())
        [path] = _entry_paths("codegen")

        def strip_writeback(payload):
            lines = payload["source"].splitlines()
            idx = next(i for i, line in enumerate(lines)
                       if "eh[" in line and "+=" in line)
            payload["source"] = "\n".join(lines[:idx] + lines[idx + 1:])

        _rewrite(path, strip_writeback)
        diskcache.reset_cache_state()
        gm = _graph_module()
        generated = generate_module(gm)
        cache = diskcache.get_cache()
        assert cache.rejected["codegen"] == 1
        assert cache.stores["codegen"] == 1  # regenerated and re-stored
        assert verify_generated_module(gm, generated).ok

    def test_tampered_bytecode_word_rejected(self, verified_cache):
        gm = _graph_module()
        lower_module(gm)
        [path] = _entry_paths("bytecode")

        def corrupt_word(payload):
            name = sorted(payload["graphs"])[0]
            lg = payload["graphs"][name]
            word = next(w for w in lg.words
                        if w[0] in (_eng.ADD_RR, _eng.ADD_RR_J,
                                    _eng.MOV_C, _eng.MOV_C_J,
                                    _eng.ADD_RC, _eng.ADD_RC_J))
            word[1] = lg.n_regs + 9

        _rewrite(path, corrupt_word)
        diskcache.reset_cache_state()
        gm2 = _graph_module()
        lower_module(gm2)
        cache = diskcache.get_cache()
        assert cache.rejected["bytecode"] == 1
        assert verify_lowered_module(gm2, gm2._lowered_cache).ok

    def test_stripped_bounds_certificate_rejected(self, verified_cache):
        generated = generate_module(_graph_module())
        assert generated.bounds is not None
        [path] = _entry_paths("codegen")

        def strip(payload):
            assert payload["bounds"] is not None
            payload["bounds"] = None

        _rewrite(path, strip)
        diskcache.reset_cache_state()
        gm = _graph_module()
        regenerated = generate_module(gm)
        cache = diskcache.get_cache()
        # the unguarded loads now lack any proof: rejected, regenerated
        assert cache.rejected["codegen"] == 1
        assert cache.stores["codegen"] == 1
        assert regenerated.bounds is not None
        assert verify_generated_module(gm, regenerated).ok

    def test_corrupted_bounds_certificate_rejected(self, verified_cache):
        generate_module(_graph_module())
        [path] = _entry_paths("codegen")

        def shrink_claim(payload):
            cert = next(cg for cg in payload["bounds"]["graphs"].values()
                        if cg["envs"])
            idx = sorted(cert["envs"])[0]
            slot = sorted(cert["envs"][idx])[0]
            # tighter than the flow supports: no longer inductive
            cert["envs"][idx][slot] = [0, 0]

        _rewrite(path, shrink_claim)
        diskcache.reset_cache_state()
        gm = _graph_module()
        regenerated = generate_module(gm)
        cache = diskcache.get_cache()
        assert cache.rejected["codegen"] == 1
        assert cache.stores["codegen"] == 1
        assert verify_generated_module(gm, regenerated).ok

    def test_inflated_safe_set_rejected(self, verified_cache):
        generate_module(_graph_module())
        [path] = _entry_paths("codegen")

        def claim_everything_safe(payload):
            graphs = payload["graphs"]
            for name, cg in payload["bounds"]["graphs"].items():
                n = sum(1 for w in graphs[name].words
                        if isinstance(w, list))
                cg["safe"] = list(range(n))

        _rewrite(path, claim_everything_safe)
        diskcache.reset_cache_state()
        gm = _graph_module()
        regenerated = generate_module(gm)
        cache = diskcache.get_cache()
        assert cache.rejected["codegen"] == 1
        assert verify_generated_module(gm, regenerated).ok

    def test_stripped_lane_bounds_rejected(self, verified_cache):
        generate_lane_module(_graph_module(), 4)
        [path] = _entry_paths("lanes")

        def strip(payload):
            assert payload["bounds"] is not None
            payload["bounds"] = None

        _rewrite(path, strip)
        diskcache.reset_cache_state()
        gm = _graph_module()
        regenerated = generate_lane_module(gm, 4)
        cache = diskcache.get_cache()
        assert cache.rejected["lanes"] == 1
        assert verify_lane_module(gm, regenerated).ok

    def test_cache_scan_reports_corrupt_entry(self, verified_cache):
        generate_module(_graph_module())
        [path] = _entry_paths("codegen")
        well, corrupt, details = scan_cache_entries(diskcache.get_cache())
        assert corrupt == 0 and well >= 1

        def garble(payload):
            payload["source"] = "def _f0(:\n"

        _rewrite(path, garble)
        well, corrupt, details = scan_cache_entries(diskcache.get_cache())
        assert corrupt == 1
        assert any("source-syntax" in d for d in details)


# -- task graphs -------------------------------------------------------------------


def _noop(*args):
    return args


class TestTaskGraph:
    def test_cycle_named(self):
        from repro.exec.scheduler import Task
        tasks = [Task("a", _noop, deps=("c",)),
                 Task("b", _noop, deps=("a",)),
                 Task("c", _noop, deps=("b",))]
        result = verify_task_graph(tasks)
        assert "dependency-cycle" in _invariants(result)
        detail = next(v.detail for v in result.violations
                      if v.invariant == "dependency-cycle")
        assert "->" in detail
        with pytest.raises(ReproError,
                           match="dependency cycle in schedule"):
            check_task_graph(tasks)

    def test_unknown_dep_and_duplicates(self):
        from repro.exec.scheduler import Task
        result = verify_task_graph([Task("a", _noop, deps=("zz",)),
                                    Task("a", _noop)])
        invs = _invariants(result)
        assert "unknown-dep" in invs and "duplicate-task-key" in invs

    def test_affinity_hints(self):
        from repro.exec.scheduler import Task
        tasks = [Task("a", _noop, affinity="fir"),
                 Task("b", _noop, affinity="ghost")]
        result = verify_task_graph(tasks, affinities=["fir"])
        assert "unknown-affinity" in _invariants(result)
        assert verify_task_graph(tasks).ok  # hints unchecked without list

    def test_run_tasks_rejects_cycle_before_execution(self):
        from repro.exec.scheduler import Task, run_tasks
        ran = []
        tasks = [Task("ok", ran.append, ("x",)),
                 Task("a", _noop, deps=("b",)),
                 Task("b", _noop, deps=("a",))]
        with pytest.raises(ReproError,
                           match="dependency cycle in schedule"):
            run_tasks(tasks, jobs=1)
        assert ran == []  # validation happened before any task ran

    def test_run_tasks_names_cycle_members(self):
        from repro.exec.scheduler import Task, run_tasks
        tasks = [Task("lvl0", _noop, deps=("lvl1",)),
                 Task("lvl1", _noop, deps=("lvl0",))]
        with pytest.raises(ReproError, match="lvl0"):
            run_tasks(tasks, jobs=1)


# -- IR call sites -----------------------------------------------------------------


def _ret(value=None):
    return Instruction(Op.RET, srcs=(value,) if value is not None else ())


class TestIRCallSites:
    def _module_with(self, callee_params, return_type="void"):
        module = Module()
        callee = Function("g", params=callee_params,
                          return_type=return_type)
        callee.emit(_ret())
        module.add_function(callee)
        return module

    def test_argument_count_mismatch(self):
        module = self._module_with([VirtualReg("a", False)])
        caller = Function("main", return_type="int")
        caller.emit(Instruction(Op.CALL, srcs=(), callee="g"))
        caller.emit(_ret(Constant(0, False)))
        module.add_function(caller)
        with pytest.raises(IRError, match="passes 0 argument"):
            verify_function(caller, module)

    def test_scalar_class_mismatch(self):
        module = self._module_with([VirtualReg("a", True)])  # float param
        caller = Function("main", return_type="int")
        caller.emit(Instruction(Op.CALL, srcs=(Constant(1, False),),
                                callee="g"))
        caller.emit(_ret(Constant(0, False)))
        module.add_function(caller)
        with pytest.raises(IRError, match="register class mismatches"):
            verify_function(caller, module)

    def test_array_for_scalar_param(self):
        module = self._module_with([VirtualReg("a", False)])
        caller = Function("main", return_type="int")
        caller.emit(Instruction(
            Op.CALL, srcs=(ArraySymbol("x", 8, False),), callee="g"))
        caller.emit(_ret(Constant(0, False)))
        module.add_function(caller)
        with pytest.raises(IRError, match="must be a scalar"):
            verify_function(caller, module)

    def test_array_element_type_mismatch(self):
        module = self._module_with([ArraySymbol("p", 8, True)])
        caller = Function("main", return_type="int")
        caller.emit(Instruction(
            Op.CALL, srcs=(ArraySymbol("x", 8, False),), callee="g"))
        caller.emit(_ret(Constant(0, False)))
        module.add_function(caller)
        with pytest.raises(IRError, match="is int, parameter"):
            verify_function(caller, module)

    def test_void_call_must_not_define(self):
        module = self._module_with([])
        caller = Function("main", return_type="int")
        caller.emit(Instruction(Op.CALL, dest=VirtualReg("t0", False),
                                srcs=(), callee="g"))
        caller.emit(_ret(Constant(0, False)))
        module.add_function(caller)
        with pytest.raises(IRError, match="void function"):
            verify_function(caller, module)

    def test_valid_call_passes(self):
        module = self._module_with([VirtualReg("a", False)],
                                   return_type="int")
        caller = Function("main", return_type="int")
        caller.emit(Instruction(Op.CALL, dest=VirtualReg("t0", False),
                                srcs=(Constant(1, False),), callee="g"))
        caller.emit(_ret(Constant(0, False)))
        module.add_function(caller)
        verify_function(caller, module)  # must not raise

    def test_frontend_modules_pass(self):
        from repro.ir.verify import verify_module
        verify_module(compile_source(FIR_LIKE_SOURCE))


# -- determinism lint --------------------------------------------------------------


class TestDeterminismLint:
    def test_repo_is_clean(self):
        result = lint_determinism()
        assert result.ok, [str(v) for v in result.violations]

    def test_flags_set_iteration(self):
        source = ("def f(xs):\n"
                  "    s = set(xs)\n"
                  "    for x in s:\n"
                  "        print(x)\n")
        result = lint_source("x.py", source, VerifyResult())
        assert "unordered-set-iteration" in _invariants(result)

    def test_flags_dictcomp_over_set(self):
        # the exact shape of the lanes _LaneState bug
        source = ("def f(globals_):\n"
                  "    names = set()\n"
                  "    for g in globals_:\n"
                  "        names.update(g)\n"
                  "    return {n: 1 for n in names}\n")
        result = lint_source("x.py", source, VerifyResult())
        assert "unordered-set-iteration" in _invariants(result)

    def test_sorted_iteration_allowed(self):
        source = ("def f(xs):\n"
                  "    s = set(xs)\n"
                  "    return sorted(s), len(s), 3 in s\n")
        assert lint_source("x.py", source, VerifyResult()).ok

    def test_flags_unsorted_listdir(self):
        source = ("import os\n"
                  "def f():\n"
                  "    return [p for p in os.listdir('.')]\n")
        result = lint_source("x.py", source, VerifyResult())
        assert "unordered-fs-iteration" in _invariants(result)

    def test_sorted_listdir_allowed(self):
        source = ("import os\n"
                  "def f():\n"
                  "    return sorted(p for p in os.listdir('.'))\n")
        assert lint_source("x.py", source, VerifyResult()).ok

    def test_suppression_comment(self):
        source = ("def f(xs):\n"
                  "    s = set(xs)\n"
                  "    for x in s:  # lint: ordered\n"
                  "        print(x)\n")
        assert lint_source("x.py", source, VerifyResult()).ok


# -- sweep and CLI -----------------------------------------------------------------


class TestSweepAndCli:
    def test_sweep_single_benchmark(self):
        report = run_sweep(benchmarks=["fir"], levels=(1,))
        assert report.ok and report.checks > 1000
        text = render_markdown(report)
        assert "| fir | 1 |" in text
        assert "0 cell(s) failed" in text

    def test_cli_verify(self, capsys):
        from repro.cli import main
        code = main(["verify", "--benchmarks", "iir", "--levels", "0",
                     "--skip-lint"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Static artifact verification" in out

    def test_cli_cache_show_verify(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main
        monkeypatch.setenv(diskcache.CACHE_ENV_VAR, str(tmp_path))
        diskcache.reset_cache_state()
        generate_module(_graph_module())
        code = main(["cache", "show", "--verify"])
        out = capsys.readouterr().out
        assert code == 0
        assert "well-formed" in out
        diskcache.reset_cache_state()
