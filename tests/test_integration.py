"""End-to-end integration tests: mini-C programs with computed expected
results, checked at every optimization level."""

import math

import pytest

from tests.conftest import compile_and_run, run_all_levels


class TestNumericPrograms:
    def test_gcd(self):
        src = """
        int gcd(int a, int b) {
            while (b != 0) { int t; t = b; b = a % b; a = t; }
            return a;
        }
        int main() { return gcd(462, 1071); }
        """
        assert run_all_levels(src).return_value == 21

    def test_fibonacci_iterative(self):
        src = """
        int main() {
            int a; int b; int i;
            a = 0; b = 1;
            for (i = 0; i < 20; i++) { int t; t = a + b; a = b; b = t; }
            return a;
        }
        """
        assert run_all_levels(src).return_value == 6765

    def test_collatz_steps(self):
        src = """
        int main() {
            int n; int steps;
            n = 27; steps = 0;
            while (n != 1) {
                if (n % 2 == 0) { n = n / 2; }
                else { n = 3 * n + 1; }
                steps++;
            }
            return steps;
        }
        """
        assert run_all_levels(src).return_value == 111

    def test_integer_sqrt(self):
        src = """
        int isqrt(int n) {
            int r;
            r = 0;
            while ((r + 1) * (r + 1) <= n) { r++; }
            return r;
        }
        int main() { return isqrt(1000000) + isqrt(99); }
        """
        assert run_all_levels(src).return_value == 1000 + 9

    def test_prime_count_sieve(self):
        src = """
        int flags[100];
        int main() {
            int i; int j; int count;
            for (i = 0; i < 100; i++) { flags[i] = 1; }
            flags[0] = 0; flags[1] = 0;
            for (i = 2; i < 100; i++) {
                if (flags[i] == 1) {
                    for (j = i + i; j < 100; j += i) { flags[j] = 0; }
                }
            }
            count = 0;
            for (i = 0; i < 100; i++) { count += flags[i]; }
            return count;
        }
        """
        assert run_all_levels(src).return_value == 25

    def test_matrix_multiply(self):
        src = """
        int a[3][3];
        int b[3][3];
        int c[3][3];
        int main() {
            int i; int j; int k;
            for (i = 0; i < 3; i++) {
                for (j = 0; j < 3; j++) {
                    a[i][j] = i + j;
                    b[i][j] = i * 3 + j;
                }
            }
            for (i = 0; i < 3; i++) {
                for (j = 0; j < 3; j++) {
                    int s; s = 0;
                    for (k = 0; k < 3; k++) { s += a[i][k] * b[k][j]; }
                    c[i][j] = s;
                }
            }
            return c[2][2];
        }
        """
        # a[2][k] = 2+k; b[k][2] = 3k+2; sum = 2*2+3*5+4*8 = 51
        assert run_all_levels(src).return_value == 51

    def test_horner_polynomial(self):
        src = """
        float c[4] = { 2.0, -1.0, 0.5, 3.0 };
        float out[1];
        int main() {
            float x; float acc; int i;
            x = 2.0;
            acc = 0.0;
            for (i = 0; i < 4; i++) { acc = acc * x + c[i]; }
            out[0] = acc;
            return 0;
        }
        """
        expected = ((2.0 * 2 - 1.0) * 2 + 0.5) * 2 + 3.0
        result = run_all_levels(src)
        assert result.globals_after["out"][0] == pytest.approx(expected)

    def test_newton_sqrt(self):
        src = """
        float out[1];
        int main() {
            float x; float guess; int i;
            x = 2.0;
            guess = 1.0;
            for (i = 0; i < 8; i++) {
                guess = (guess + x / guess) / 2.0;
            }
            out[0] = guess;
            return 0;
        }
        """
        result = run_all_levels(src)
        assert result.globals_after["out"][0] == \
            pytest.approx(math.sqrt(2.0))

    def test_ackermann_small(self):
        src = """
        int ack(int m, int n) {
            if (m == 0) { return n + 1; }
            if (n == 0) { return ack(m - 1, 1); }
            return ack(m - 1, ack(m, n - 1));
        }
        int main() { return ack(2, 3); }
        """
        assert run_all_levels(src).return_value == 9

    def test_string_of_bits(self):
        src = """
        int main() {
            int x; int count;
            x = 1234567;
            count = 0;
            while (x != 0) { count += x & 1; x = x >> 1; }
            return count;
        }
        """
        assert run_all_levels(src).return_value == bin(1234567).count("1")


class TestInputDrivenPrograms:
    def test_running_maximum(self):
        src = """
        int x[10];
        int y[10];
        int main() {
            int i; int best;
            best = x[0];
            y[0] = best;
            for (i = 1; i < 10; i++) {
                if (x[i] > best) { best = x[i]; }
                y[i] = best;
            }
            return best;
        }
        """
        data = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3]
        result = run_all_levels(src, {"x": data})
        expected = [max(data[:i + 1]) for i in range(10)]
        assert result.globals_after["y"] == expected

    def test_dot_product(self):
        src = """
        float a[6];
        float b[6];
        float out[1];
        int main() {
            int i; float s;
            s = 0.0;
            for (i = 0; i < 6; i++) { s += a[i] * b[i]; }
            out[0] = s;
            return 0;
        }
        """
        a = [1.0, -2.0, 3.0, 0.5, 0.0, 4.0]
        b = [2.0, 2.0, 1.0, 4.0, 9.0, -1.0]
        result = run_all_levels(src, {"a": a, "b": b})
        assert result.globals_after["out"][0] == pytest.approx(
            sum(x * y for x, y in zip(a, b)))

    def test_insertion_sort(self):
        src = """
        int x[12];
        int main() {
            int i; int j;
            for (i = 1; i < 12; i++) {
                int key;
                key = x[i];
                j = i - 1;
                while (j >= 0 && x[j] > key) {
                    x[j + 1] = x[j];
                    j = j - 1;
                }
                x[j + 1] = key;
            }
            return x[0];
        }
        """
        data = [9, -3, 5, 0, 7, 7, 2, -8, 1, 4, 6, -1]
        result = run_all_levels(src, {"x": data})
        assert result.globals_after["x"] == sorted(data)

    def test_saturating_accumulate(self):
        src = """
        int x[16];
        int main() {
            int i; int acc;
            acc = 0;
            for (i = 0; i < 16; i++) {
                acc = acc + x[i];
                if (acc > 100) { acc = 100; }
                if (acc < -100) { acc = -100; }
            }
            return acc;
        }
        """
        data = [40, 50, 60, -10, -300, 20, 5, 5, 0, 1, 2, 3, 4, 5, 6, 7]
        acc = 0
        for v in data:
            acc = max(-100, min(100, acc + v))
        result = run_all_levels(src, {"x": data})
        assert result.return_value == acc


class TestLanguageCorners:
    def test_ternary_in_loop(self):
        src = """
        int x[8];
        int main() {
            int i; int s; s = 0;
            for (i = 0; i < 8; i++) { s += x[i] > 0 ? x[i] : -x[i]; }
            return s;
        }
        """
        data = [1, -2, 3, -4, 5, -6, 7, -8]
        result = run_all_levels(src, {"x": data})
        assert result.return_value == sum(abs(v) for v in data)

    def test_shadowing_keeps_outer_value(self):
        src = """
        int main() {
            int a; int out;
            a = 5;
            { int a; a = 99; out = a; }
            return a * 100 + out;
        }
        """
        assert run_all_levels(src).return_value == 5 * 100 + 99

    def test_short_circuit_protects_division(self):
        src = """
        int main() {
            int d; int hits; int i;
            int x[4];
            x[0] = 0; x[1] = 2; x[2] = 0; x[3] = 4;
            hits = 0;
            for (i = 0; i < 4; i++) {
                d = x[i];
                if (d != 0 && 100 / d > 20) { hits++; }
            }
            return hits;
        }
        """
        assert run_all_levels(src).return_value == 2

    def test_compound_shift_assign(self):
        src = """
        int main() {
            int v;
            v = 3;
            v <<= 4;
            v >>= 1;
            v |= 1;
            v ^= 2;
            v &= 63;
            return v;
        }
        """
        v = 3
        v <<= 4
        v >>= 1
        v |= 1
        v ^= 2
        v &= 63
        assert run_all_levels(src).return_value == v

    def test_break_and_continue_interplay(self):
        src = """
        int main() {
            int i; int s; s = 0;
            for (i = 0; i < 100; i++) {
                if (i % 3 == 0) { continue; }
                if (i > 20) { break; }
                s += i;
            }
            return s;
        }
        """
        expected = sum(i for i in range(21) if i % 3 != 0)
        assert run_all_levels(src).return_value == expected

    def test_global_state_across_calls(self):
        src = """
        int counter;
        void bump() { counter = counter + 1; }
        int main() {
            int i;
            counter = 0;
            for (i = 0; i < 7; i++) { bump(); }
            return counter;
        }
        """
        assert run_all_levels(src).return_value == 7
