"""Compiled-engine tests: differential equivalence, caching, chain commits.

The compiled engine (:mod:`repro.sim.engine`) must be indistinguishable from
the reference interpreter — return value, memory state and the *complete*
profile (node, edge and call counts).  The differential tests here sweep the
whole DSP suite at level 0 and level 1 (PIPELINED) and over chained
(post-``select_chains``) sequential modules, so every opcode, the VLIW
read/commit discipline, calls, and fused-chain forwarding are all covered.
"""

import pytest

from repro.asip.evaluate import evaluate_on_sequential
from repro.asip.isa import ChainedInstruction, InstructionSet
from repro.asip.resequence import resequence_module
from repro.asip.select import FusedInstruction, select_chains
from repro.cfg.build import build_module_graphs
from repro.cfg.graph import GraphModule, ProgramGraph
from repro.chaining.detect import detect_sequences
from repro.errors import SimulationError
from repro.frontend import compile_source
from repro.ir.instr import Instruction
from repro.ir.ops import Op
from repro.ir.values import ArraySymbol, Constant, VirtualReg
from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim.engine import CompiledEngine, compile_module
from repro.sim.machine import run_module, run_module_batch
from repro.sim.profile import ProfileData
from repro.suite.registry import all_benchmarks, get_benchmark
from repro.suite.runner import compile_benchmark

SUITE = [spec.name for spec in all_benchmarks()]


def assert_identical(reference, compiled):
    """Bit-identical MachineResults, profile included."""
    assert compiled.return_value == reference.return_value
    assert compiled.globals_after == reference.globals_after
    assert compiled.profile.node_counts == reference.profile.node_counts
    assert compiled.profile.edge_counts == reference.profile.edge_counts
    assert compiled.profile.call_counts == reference.profile.call_counts


def run_both(graph_module, inputs):
    reference = run_module(graph_module, inputs, engine="reference")
    compiled = run_module(graph_module, inputs, engine="compiled")
    assert_identical(reference, compiled)
    return reference, compiled


class TestSuiteDifferential:
    """Every suite program, both engines, bit-identical results."""

    @pytest.mark.parametrize("name", SUITE)
    def test_level0(self, name):
        spec = get_benchmark(name)
        gm = build_module_graphs(compile_benchmark(spec))
        run_both(gm, spec.generate_inputs(0))

    @pytest.mark.parametrize("name", SUITE)
    def test_pipelined(self, name):
        spec = get_benchmark(name)
        gm, _ = optimize_module(compile_benchmark(spec), OptLevel.PIPELINED)
        run_both(gm, spec.generate_inputs(0))

    @pytest.mark.parametrize("name", SUITE)
    def test_chained_sequential(self, name):
        """Re-sequentialize, fuse the program's own hottest sequences, and
        compare engines on the chained module (exercises Op.CHAIN)."""
        spec = get_benchmark(name)
        inputs = spec.generate_inputs(0)
        gm, _ = optimize_module(compile_benchmark(spec), OptLevel.PIPELINED)
        sequential = resequence_module(gm)
        profile = run_module(sequential, inputs).profile
        detection = detect_sequences(sequential, profile, (2, 3))
        isa = InstructionSet()
        for length in (3, 2):
            for pattern, _freq in detection.top(length, limit=1):
                if isa.find(pattern) is None:
                    isa.add_chain(ChainedInstruction.from_sequence(pattern))
        fused = sequential.copy()
        stats = select_chains(fused, isa)
        if isa.chains:
            assert stats.total_sites > 0, \
                f"{name}: no chain fused; test covers nothing"
        run_both(fused, inputs)


class TestEngineSelector:
    def test_unknown_engine_rejected(self):
        gm = build_module_graphs(
            compile_source("int main() { return 1; }", "t"))
        with pytest.raises(SimulationError):
            run_module(gm, engine="turbo")

    def test_reference_engine_still_selectable(self):
        gm = build_module_graphs(
            compile_source("int main() { return 41 + 1; }", "t"))
        assert run_module(gm, engine="reference").return_value == 42


class TestCompilationCache:
    def _graphs(self):
        return build_module_graphs(compile_source(
            "int x[4]; int main() { int i; int s; s = 0;"
            " for (i = 0; i < 4; i++) { s += x[i]; } return s; }", "t"))

    def test_cache_reused_across_runs(self):
        gm = self._graphs()
        first = compile_module(gm)
        assert compile_module(gm) is first
        run_module(gm, {"x": [1, 2, 3, 4]})
        assert compile_module(gm) is first

    def test_cache_invalidated_by_node_edit(self):
        gm = self._graphs()
        first = compile_module(gm)
        graph = gm.graphs["main"]
        node = next(n for n in graph.nodes.values() if n.ops)
        node.ops.append(Instruction(Op.NOP))
        assert compile_module(gm) is not first

    def test_cache_invalidated_by_operand_rewrite(self):
        gm = self._graphs()
        first = compile_module(gm)
        graph = gm.graphs["main"]
        ins = next(i for n in graph.nodes.values() for i in n.ops
                   if i.op is Op.ADD and i.dest is not None)
        ins.replace_uses({reg: Constant(7) for reg in ins.uses()})
        second = compile_module(gm)
        assert second is not first
        # ...and the recompiled module reflects the rewrite.
        run_module(gm, {"x": [1, 2, 3, 4]})

    def test_copy_does_not_share_cache(self):
        gm = self._graphs()
        compile_module(gm)
        assert "_compiled_cache" not in gm.copy().__dict__


class TestErrorParity:
    """The compiled engine raises the same SimulationErrors."""

    def _both_raise(self, gm, inputs=None, match=None):
        for engine in ("reference", "compiled"):
            with pytest.raises(SimulationError, match=match):
                run_module(gm, inputs, engine=engine)

    def test_out_of_bounds(self):
        gm = build_module_graphs(compile_source(
            "int a[4]; int n = 9; int main() { return a[n]; }", "t"))
        self._both_raise(gm, match="out of bounds")

    def test_division_by_zero(self):
        gm = build_module_graphs(compile_source(
            "int n = 0; int main() { return 5 / n; }", "t"))
        self._both_raise(gm, match="division by zero")

    def test_cycle_limit(self):
        gm = build_module_graphs(compile_source(
            "int main() { while (1) { } return 0; }", "t"))
        for engine in ("reference", "compiled"):
            with pytest.raises(SimulationError, match="cycle limit"):
                run_module(gm, max_cycles=500, engine=engine)

    def test_recursion_depth(self):
        gm = build_module_graphs(compile_source(
            "int f(int n) { return f(n + 1); }"
            " int main() { return f(0); }", "t"))
        self._both_raise(gm, match="depth")

    def test_undefined_register_read(self):
        """A register consumed before any write raises on both engines."""
        graph = ProgramGraph("main", return_type="int")
        n0 = graph.new_node()
        n1 = graph.new_node()
        ghost = VirtualReg("%ghost")
        n0.ops.append(Instruction(Op.ADD, dest=VirtualReg("%r"),
                                  srcs=(ghost, Constant(1))))
        n1.control = Instruction(Op.RET, srcs=(VirtualReg("%r"),))
        graph.entry = n0.id
        graph.add_edge(n0.id, n1.id)
        gm = GraphModule("t", {"main": graph}, {}, {}, {})
        self._both_raise(gm, match="undefined register")

    def test_undefined_register_move(self):
        """A MOV never coerces its operand, so the compiled engine needs an
        explicit check to match the reference interpreter's raise."""
        graph = ProgramGraph("main", return_type="int")
        n0 = graph.new_node()
        n1 = graph.new_node()
        n0.ops.append(Instruction(Op.MOV, dest=VirtualReg("%a"),
                                  srcs=(VirtualReg("%ghost"),)))
        n1.control = Instruction(Op.RET, srcs=(Constant(7),))
        graph.entry = n0.id
        graph.add_edge(n0.id, n1.id)
        gm = GraphModule("t", {"main": graph}, {}, {}, {})
        self._both_raise(gm, match="undefined register '%ghost'")


def _chain_module():
    """A hand-built graph exercising Op.CHAIN commit semantics.

    Node n1 carries, in order, a *non-chained* add reading register ``%s``
    and a fused chain whose first part rewrites ``%s`` and whose second part
    consumes it.  Under VLIW semantics the non-chained op must read the
    pre-cycle ``%s`` (100) while the chain's parts forward the fresh value
    (2 + 3 = 5) to each other within the cycle.
    """
    out = ArraySymbol("out", 3)
    a, b = VirtualReg("%a"), VirtualReg("%b")
    s, p, q = VirtualReg("%s"), VirtualReg("%p"), VirtualReg("%q")

    graph = ProgramGraph("main", return_type="int")
    n0, n1, n2, n3 = (graph.new_node() for _ in range(4))
    n0.ops = [Instruction(Op.MOV, dest=a, srcs=(Constant(2),)),
              Instruction(Op.MOV, dest=b, srcs=(Constant(3),)),
              Instruction(Op.MOV, dest=s, srcs=(Constant(100),))]
    chain = FusedInstruction(
        ChainedInstruction("add_mul", ("add", "multiply")),
        [Instruction(Op.ADD, dest=s, srcs=(a, b)),
         Instruction(Op.MUL, dest=p, srcs=(s, Constant(2)))])
    n1.ops = [Instruction(Op.ADD, dest=q, srcs=(s, Constant(0))),
              chain]
    n2.ops = [Instruction(Op.STORE, srcs=(q, Constant(0)), array=out),
              Instruction(Op.STORE, srcs=(s, Constant(1)), array=out),
              Instruction(Op.STORE, srcs=(p, Constant(2)), array=out)]
    n3.control = Instruction(Op.RET, srcs=(p,))
    graph.entry = n0.id
    for src, dst in ((n0, n1), (n1, n2), (n2, n3)):
        graph.add_edge(src.id, dst.id)
    return GraphModule("t", {"main": graph}, {"out": out}, {}, {})


class TestChainCommitSemantics:
    """Satellite: Op.CHAIN operand forwarding vs. pre-cycle reads."""

    @pytest.mark.parametrize("engine", ["reference", "compiled"])
    def test_forwarding_and_precycle_reads(self, engine):
        result = run_module(_chain_module(), engine=engine)
        out = result.array("out")
        assert out[0] == 100, "non-chained op must read pre-cycle state"
        assert out[1] == 5, "chain part 1 write must commit"
        assert out[2] == 10, "chain part 2 must see part 1's write"
        assert result.return_value == 10

    def test_identical_across_engines(self):
        run_both(_chain_module(), None)


class TestBaseResultReuse:
    """Satellite: evaluate_on_sequential(base_result=) caching."""

    def _sequential(self):
        gm = build_module_graphs(compile_source(
            "int x[16]; int y[16];"
            " int main() { int i;"
            "  for (i = 0; i < 16; i++) { y[i] = x[i] * 3 + 1; }"
            "  return y[15]; }", "t"))
        return resequence_module(gm)

    def test_cached_base_matches_fresh_base(self):
        inputs = {"x": list(range(16))}
        isa = InstructionSet()
        isa.add_chain(ChainedInstruction("mac", ("multiply", "add")))
        seq = self._sequential()
        fresh = evaluate_on_sequential(seq, isa, inputs)
        cached_base = run_module(seq, inputs)
        reused = evaluate_on_sequential(seq, isa, inputs,
                                        base_result=cached_base)
        assert reused.base_cycles == fresh.base_cycles
        assert reused.chained_cycles == fresh.chained_cycles
        assert reused.chain_issues == fresh.chain_issues

    def test_explore_designs_measures_with_shared_base(self):
        from repro.asip.explore import explore_designs
        spec = get_benchmark("sewha")
        module = compile_benchmark(spec)
        inputs = spec.generate_inputs(0)
        result = explore_designs(module, inputs, area_budget=2500,
                                 measure_top=2)
        assert result.measured, "exploration found no measurable design"
        base_cycles = {p.evaluation.base_cycles for p in result.measured}
        assert len(base_cycles) == 1, \
            "all finalists must share the single cached base simulation"
        assert all(p.evaluation.speedup >= 1.0 for p in result.measured)


class TestMergeArrays:
    """Satellite: the flat-counter fold entry point."""

    def test_merges_and_skips_zeros(self):
        profile = ProfileData()
        profile.merge_arrays("f", [0, 1, 2], [5, 0, 7],
                             [(0, 1), (1, 2)], [3, 0])
        assert profile.node_counts == {"f": {0: 5, 2: 7}}
        assert profile.edge_counts == {"f": {(0, 1): 3}}

    def test_all_zero_graph_leaves_no_entry(self):
        profile = ProfileData()
        profile.merge_arrays("g", [0, 1], [0, 0], [(0, 1)], [0])
        assert "g" not in profile.node_counts
        assert "g" not in profile.edge_counts

    def test_accumulates_onto_existing_counts(self):
        profile = ProfileData()
        profile.count_node("f", 0)
        profile.merge_arrays("f", [0], [4], [], [])
        assert profile.node_counts["f"][0] == 5


class TestBatchedSimulation:
    """Multi-seed property: ``run_module_batch`` over N input sets is
    bit-identical to N independent ``run_module`` calls — on both engines,
    across seeds 0-4 and optimization levels 0/1/2."""

    SEEDS = (0, 1, 2, 3, 4)
    BENCHES = ("fir", "smooth", "sewha")

    def _optimized(self, name, level):
        spec = get_benchmark(name)
        gm, _ = optimize_module(compile_benchmark(spec), OptLevel(level))
        return spec, gm

    @pytest.mark.parametrize("name", BENCHES)
    @pytest.mark.parametrize("level", (0, 1, 2))
    @pytest.mark.parametrize("engine", ["compiled", "reference"])
    def test_batch_matches_independent_runs(self, name, level, engine):
        spec, gm = self._optimized(name, level)
        inputs = [spec.generate_inputs(seed) for seed in self.SEEDS]
        batched = run_module_batch(gm, inputs, engine=engine)
        singles = [run_module(gm, i, engine=engine) for i in inputs]
        assert len(batched) == len(self.SEEDS)
        for one, many in zip(singles, batched):
            assert_identical(one, many)

    @pytest.mark.parametrize("name", BENCHES)
    def test_batch_engines_agree(self, name):
        spec, gm = self._optimized(name, 1)
        inputs = [spec.generate_inputs(seed) for seed in self.SEEDS]
        for ref, comp in zip(run_module_batch(gm, inputs,
                                              engine="reference"),
                             run_module_batch(gm, inputs,
                                              engine="compiled")):
            assert_identical(ref, comp)

    def test_seeds_actually_vary_the_run(self):
        spec, gm = self._optimized("fir", 0)
        results = run_module_batch(
            gm, [spec.generate_inputs(s) for s in self.SEEDS])
        snapshots = [r.globals_after for r in results]
        assert len({repr(s) for s in snapshots}) == len(self.SEEDS), \
            "every seed must produce distinct outputs or the sweep is moot"

    def test_batch_compiles_once(self, monkeypatch):
        import repro.sim.engine as engine_mod
        spec, gm = self._optimized("fir", 1)
        calls = []
        real = engine_mod.compile_module

        def counting(module):
            calls.append(module)
            return real(module)

        monkeypatch.setattr(engine_mod, "compile_module", counting)
        run_module_batch(gm, [spec.generate_inputs(s) for s in self.SEEDS],
                         engine="compiled")
        assert len(calls) == 1, "a batch must pay compilation exactly once"

    def test_empty_batch(self):
        _spec, gm = self._optimized("fir", 0)
        assert run_module_batch(gm, []) == []

    def test_unknown_engine_rejected(self):
        _spec, gm = self._optimized("fir", 0)
        with pytest.raises(SimulationError):
            run_module_batch(gm, [None], engine="turbo")

    def test_batch_profiles_are_independent(self):
        """Each batched run folds its own flat counters; nothing leaks."""
        _spec, gm = self._optimized("fir", 0)
        spec = get_benchmark("fir")
        inputs = spec.generate_inputs(0)
        twice = run_module_batch(gm, [inputs, inputs])
        assert twice[0].profile == twice[1].profile
        assert twice[0].cycles == run_module(gm, inputs).cycles


class TestCompiledEngineReuse:
    def test_engine_object_reusable_across_runs(self):
        spec = get_benchmark("sewha")
        gm = build_module_graphs(compile_benchmark(spec))
        engine = CompiledEngine(gm)
        first = engine.run(spec.generate_inputs(0))
        second = engine.run(spec.generate_inputs(0))
        assert first.return_value == second.return_value
        assert first.profile == second.profile

    def test_fresh_profile_each_run(self):
        gm = build_module_graphs(compile_source(
            "int main() { int i; int s; s = 0;"
            " for (i = 0; i < 10; i++) { s += i; } return s; }", "t"))
        first = run_module(gm)
        second = run_module(gm)
        assert first.cycles == second.cycles
