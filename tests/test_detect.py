"""Sequence-detection tests: data flow, adjacency, branch-and-bound."""

import pytest

from repro.cfg.build import build_module_graphs
from repro.chaining.detect import SequenceDetector, detect_sequences
from repro.chaining.sequence import sequence_label
from repro.frontend import compile_source
from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim.machine import run_module

from tests.conftest import (FIR_LIKE_SOURCE, INT_KERNEL_SOURCE,
                            fir_like_inputs, int_kernel_inputs)


def detect_for(source, inputs=None, level=0, lengths=(2, 3, 4, 5),
               **kwargs):
    module = compile_source(source, "t")
    gm, _ = optimize_module(module, OptLevel(level))
    result = run_module(gm, inputs)
    return detect_sequences(gm, result.profile, lengths, **kwargs), gm


class TestBasicDetection:
    def test_multiply_add_detected(self):
        det, _ = detect_for(
            "int x[4]; int main() { return x[0] * 3 + 1; }",
            {"x": [2, 0, 0, 0]})
        assert det.frequency(("multiply", "add")) > 0

    def test_chain_requires_dataflow(self):
        # Adjacency alone is not enough: the add executes right before the
        # multiply here but does not feed it, so add-multiply must not be
        # reported; the multiply feeding the xor in the next cycle is.
        det, _ = detect_for(
            "int x[4]; int main() { return (x[1] + 1) ^ (x[0] * 3); }",
            {"x": [2, 5, 0, 0]})
        assert det.frequency(("multiply", "add")) == 0.0
        assert det.frequency(("add", "multiply")) == 0.0
        assert det.frequency(("multiply", "logic")) > 0

    def test_address_dataflow_counts(self):
        # add feeding a load's index is a chain (add-load).
        det, _ = detect_for(
            "int x[8]; int main() { int i; i = 2; return x[i + 1]; }")
        assert det.frequency(("add", "load")) > 0

    def test_store_terminates_chain(self):
        det, _ = detect_for(
            "int out[2]; int main() { out[0] = 3 * 7; return 0; }")
        for seq in det.all_sequences():
            if "store" in seq.name:
                assert seq.name[-1] == "store"

    def test_moves_never_in_chains(self):
        det, _ = detect_for(FIR_LIKE_SOURCE, fir_like_inputs(), level=0)
        for seq in det.all_sequences():
            assert None not in seq.name

    def test_lengths_respected(self):
        det, _ = detect_for(INT_KERNEL_SOURCE, int_kernel_inputs(),
                            lengths=(3,))
        assert set(det.sequences) <= {3}
        for seq in det.all_sequences():
            assert seq.length == 3

    def test_length_below_two_rejected(self):
        module = compile_source("int main() { return 0; }", "t")
        gm, _ = optimize_module(module, OptLevel.NONE)
        result = run_module(gm)
        with pytest.raises(ValueError):
            SequenceDetector(gm, result.profile, lengths=(1, 2))

    def test_unexecuted_function_skipped(self):
        det, _ = detect_for(
            "int unused(int v) { return v * 2 + 1; } "
            "int main() { return 0; }")
        assert det.frequency(("multiply", "add")) == 0.0


class TestOccurrenceAccounting:
    def test_occurrence_count_matches_loop_trips(self):
        det, _ = detect_for(
            "int x[10]; int y[10]; int main() { int i; "
            "for (i = 0; i < 10; i++) { y[i] = x[i] * 5 + 2; } "
            "return 0; }", {"x": list(range(10))})
        seq = det.sequences[2][("multiply", "add")]
        assert seq.total_count == 10

    def test_frequency_uses_op_executions(self):
        det, _ = detect_for(
            "int x[4]; int main() { return x[0] * 3 + 1; }",
            {"x": [2, 0, 0, 0]})
        seq = det.sequences[2][("multiply", "add")]
        expected = 100.0 * seq.cycles_accounted / det.total_ops
        assert det.frequency(("multiply", "add")) == \
            pytest.approx(expected)

    def test_top_sorted_descending(self):
        det, _ = detect_for(FIR_LIKE_SOURCE, fir_like_inputs(), level=1)
        top = det.top(2)
        freqs = [f for _, f in top]
        assert freqs == sorted(freqs, reverse=True)

    def test_longer_chains_subsume_short_prefix(self):
        # A 3-chain's prefix is also reported as a 2-chain.
        det, _ = detect_for(
            "int x[4]; int out[1]; int main() "
            "{ out[0] = (x[0] * 3 + 1) * 1; return 0; }",
            {"x": [2, 0, 0, 0]}, lengths=(2, 3))
        assert det.frequency(("multiply", "add")) > 0


class TestBranchAndBound:
    def test_min_count_prunes(self):
        exhaustive, _ = detect_for(FIR_LIKE_SOURCE, fir_like_inputs(),
                                   level=1)
        module = compile_source(FIR_LIKE_SOURCE, "t")
        gm, _ = optimize_module(module, OptLevel.PIPELINED)
        result = run_module(gm, fir_like_inputs())
        bounded = detect_sequences(gm, result.profile, (2, 3, 4, 5),
                                   min_count=100)
        assert bounded.stats.subtrees_pruned > 0
        assert bounded.stats.extensions_explored <= \
            exhaustive.stats.extensions_explored
        assert bounded.stats.occurrences_found < \
            exhaustive.stats.occurrences_found
        for seq in bounded.all_sequences():
            assert all(occ.count >= 100 for occ in seq.occurrences)

    def test_bound_is_safe(self):
        """Pruning with min_count never loses sequences above the bound."""
        module = compile_source(FIR_LIKE_SOURCE, "t")
        gm, _ = optimize_module(module, OptLevel.PIPELINED)
        result = run_module(gm, fir_like_inputs())
        exhaustive = detect_sequences(gm, result.profile, (2, 3))
        bounded = detect_sequences(gm, result.profile, (2, 3),
                                   min_count=20)
        for seq in exhaustive.all_sequences():
            heavy = [o for o in seq.occurrences if o.count >= 20]
            if not heavy:
                continue
            found = bounded.sequences[seq.length].get(seq.name)
            assert found is not None, sequence_label(seq.name)
            heavy_found = {o.path for o in found.occurrences}
            assert {o.path for o in heavy}.issubset(heavy_found)

    def test_excluded_uids_ignored(self):
        module = compile_source(
            "int x[4]; int main() { return x[0] * 3 + 1; }", "t")
        gm, _ = optimize_module(module, OptLevel.NONE)
        result = run_module(gm, {"x": [2, 0, 0, 0]})
        full = detect_sequences(gm, result.profile, (2,))
        seq = full.sequences[2][("multiply", "add")]
        excluded = set(seq.occurrences[0].uids)
        filtered = detect_sequences(gm, result.profile, (2,),
                                    excluded_uids=excluded)
        assert ("multiply", "add") not in filtered.sequences.get(2, {})


class TestOptimizationLevels:
    def test_level1_detects_at_least_as_many_names(self):
        det0, _ = detect_for(FIR_LIKE_SOURCE, fir_like_inputs(), level=0,
                             lengths=(2,))
        det1, _ = detect_for(FIR_LIKE_SOURCE, fir_like_inputs(), level=1,
                             lengths=(2,))
        assert len(det1.sequences.get(2, {})) >= \
            len(det0.sequences.get(2, {}))

    def test_cross_iteration_sequence_appears_at_level1(self):
        # The loop-carried index add feeding next iteration's subtract is
        # only adjacent after pipelining.
        det0, _ = detect_for(FIR_LIKE_SOURCE, fir_like_inputs(), level=0,
                             lengths=(2,))
        det1, _ = detect_for(FIR_LIKE_SOURCE, fir_like_inputs(), level=1,
                             lengths=(2,))
        gain = det1.frequency(("add", "subtract")) \
            - det0.frequency(("add", "subtract"))
        assert gain > 1.0

    def test_renaming_reduces_detection(self):
        det1, _ = detect_for(FIR_LIKE_SOURCE, fir_like_inputs(), level=1,
                             lengths=(2,))
        det2, _ = detect_for(FIR_LIKE_SOURCE, fir_like_inputs(), level=2,
                             lengths=(2,))
        total1 = sum(f for _, f in det1.top(2))
        total2 = sum(f for _, f in det2.top(2))
        assert total2 < total1
