"""Codegen-engine tests: differential equivalence, caching, hardening.

The exec-compiled tier (:mod:`repro.sim.codegen`) must be
indistinguishable from the other three engines — return value, memory
state and the *complete* profile (node, edge and call counts).  The
differential harness here sweeps the whole 12-benchmark DSP suite at
levels 0, 1 and 2, chained (post-``select_chains``) modules, multi-seed
batches, and the study matrix under ``jobs=2``; the random-program fuzz
harness in ``tests/test_fuzz_engines.py`` extends the same oracle to
generated corpora.
"""

import pickle

import pytest

from repro.asip.isa import ChainedInstruction, InstructionSet
from repro.asip.resequence import resequence_module
from repro.asip.select import select_chains
from repro.cfg.build import build_module_graphs
from repro.chaining.detect import detect_sequences
from repro.errors import SimulationError
from repro.frontend import compile_source
from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim.codegen import generate_module
from repro.sim.engine import lower_module
from repro.sim.machine import (ENGINES, ensure_engine, run_module,
                               run_module_batch)
from repro.suite.registry import all_benchmarks, get_benchmark
from repro.suite.runner import compile_benchmark, run_benchmark

SUITE = [spec.name for spec in all_benchmarks()]
LEVELS = (0, 1, 2)


def assert_identical(expected, actual):
    """Bit-identical MachineResults, profile included."""
    assert actual.return_value == expected.return_value
    assert actual.globals_after == expected.globals_after
    assert actual.profile.node_counts == expected.profile.node_counts
    assert actual.profile.edge_counts == expected.profile.edge_counts
    assert actual.profile.call_counts == expected.profile.call_counts


class TestSuiteDifferential:
    """Every benchmark at every level: codegen == bytecode == reference."""

    @pytest.mark.parametrize("level", LEVELS)
    @pytest.mark.parametrize("name", SUITE)
    def test_levels(self, name, level):
        spec = get_benchmark(name)
        inputs = spec.generate_inputs(0)
        gm, _ = optimize_module(compile_benchmark(spec), OptLevel(level))
        reference = run_module(gm, inputs, engine="reference")
        bytecode = run_module(gm, inputs, engine="bytecode")
        codegen = run_module(gm, inputs, engine="codegen")
        assert_identical(reference, codegen)
        assert_identical(bytecode, codegen)

    @pytest.mark.parametrize("name", SUITE)
    def test_chained_sequential(self, name):
        """Fused-chain modules (Op.CHAIN commit semantics) agree too."""
        spec = get_benchmark(name)
        inputs = spec.generate_inputs(0)
        gm, _ = optimize_module(compile_benchmark(spec), OptLevel.PIPELINED)
        sequential = resequence_module(gm)
        profile = run_module(sequential, inputs).profile
        detection = detect_sequences(sequential, profile, (2, 3))
        isa = InstructionSet()
        for length in (3, 2):
            for pattern, _freq in detection.top(length, limit=1):
                if isa.find(pattern) is None:
                    isa.add_chain(ChainedInstruction.from_sequence(pattern))
        fused = sequential.copy()
        select_chains(fused, isa)
        assert_identical(run_module(fused, inputs, engine="compiled"),
                         run_module(fused, inputs, engine="codegen"))

    def test_benchmark_run_end_to_end(self):
        """run_benchmark(engine="codegen") matches compiled end to end,
        detection included (it only consumes the identical profile)."""
        spec = get_benchmark("sewha")
        compiled = run_benchmark(spec, OptLevel.PIPELINED)
        codegen = run_benchmark(spec, OptLevel.PIPELINED,
                                engine="codegen")
        assert codegen.cycles == compiled.cycles
        assert_identical(compiled.machine_result, codegen.machine_result)
        assert codegen.detection.total_ops == compiled.detection.total_ops
        for length in (2, 3, 4, 5):
            assert codegen.detection.top(length) == \
                compiled.detection.top(length)


class TestBatchedSimulation:
    """Multi-seed batches generate once and stay bit-identical."""

    SEEDS = (0, 1, 2, 3, 4)

    def _optimized(self, name, level=1):
        spec = get_benchmark(name)
        gm, _ = optimize_module(compile_benchmark(spec), OptLevel(level))
        return spec, gm

    @pytest.mark.parametrize("name", ("fir", "smooth", "sewha"))
    @pytest.mark.parametrize("level", LEVELS)
    def test_batch_matches_independent_runs(self, name, level):
        spec, gm = self._optimized(name, level)
        inputs = [spec.generate_inputs(seed) for seed in self.SEEDS]
        batched = run_module_batch(gm, inputs, engine="codegen")
        singles = [run_module(gm, i, engine="bytecode") for i in inputs]
        assert len(batched) == len(self.SEEDS)
        for one, many in zip(singles, batched):
            assert_identical(one, many)

    def test_batch_generates_once(self, monkeypatch):
        import repro.sim.codegen as codegen_mod
        spec, gm = self._optimized("fir")
        calls = []
        real = codegen_mod.generate_module

        def counting(module):
            calls.append(module)
            return real(module)

        monkeypatch.setattr(codegen_mod, "generate_module", counting)
        run_module_batch(gm, [spec.generate_inputs(s) for s in self.SEEDS],
                         engine="codegen")
        assert len(calls) == 1, "a batch must pay generation exactly once"

    def test_empty_batch(self):
        _spec, gm = self._optimized("fir")
        assert run_module_batch(gm, [], engine="codegen") == []


class TestStudyDifferential:
    """The study matrix on the codegen engine: serial == bytecode-engine
    study, and jobs=2 == jobs=1 (the exec scheduler with the new tier)."""

    CONFIG = dict(benchmarks=("fir", "iir", "sewha"), seeds=(0, 1, 2))

    @pytest.fixture(scope="class")
    def bytecode_study(self):
        from repro.feedback.study import StudyConfig, run_study
        return run_study(StudyConfig(jobs=1, engine="bytecode",
                                     **self.CONFIG))

    @pytest.fixture(scope="class")
    def codegen_study(self):
        from repro.feedback.study import StudyConfig, run_study
        return run_study(StudyConfig(jobs=1, engine="codegen",
                                     **self.CONFIG))

    @pytest.fixture(scope="class")
    def codegen_parallel_study(self):
        from repro.feedback.study import StudyConfig, run_study
        return run_study(StudyConfig(jobs=2, engine="codegen",
                                     **self.CONFIG))

    def test_engines_agree_across_matrix(self, bytecode_study,
                                         codegen_study):
        for name in self.CONFIG["benchmarks"]:
            for level in LEVELS:
                ra = bytecode_study.benchmark(name).run_at(level)
                rb = codegen_study.benchmark(name).run_at(level)
                assert ra.seeds == rb.seeds
                assert ra.cycles_by_seed() == rb.cycles_by_seed()
                for sa, sb in zip(ra.seed_results, rb.seed_results):
                    assert_identical(sa, sb)

    def test_jobs2_bit_identical(self, codegen_study,
                                 codegen_parallel_study):
        from repro.reporting.tables import table2
        for name in self.CONFIG["benchmarks"]:
            for level in LEVELS:
                ra = codegen_study.benchmark(name).run_at(level)
                rb = codegen_parallel_study.benchmark(name).run_at(level)
                assert_identical(ra.machine_result, rb.machine_result)
                for sa, sb in zip(ra.seed_results, rb.seed_results):
                    assert_identical(sa, sb)
        assert table2(codegen_parallel_study) == table2(codegen_study)


class TestErrorParity:
    """The codegen engine raises the same SimulationErrors."""

    def _all_raise(self, gm, inputs=None, match=None, max_cycles=None):
        for engine in ENGINES:
            kwargs = {"engine": engine}
            if max_cycles is not None:
                kwargs["max_cycles"] = max_cycles
            with pytest.raises(SimulationError, match=match):
                run_module(gm, inputs, **kwargs)

    def test_out_of_bounds(self):
        gm = build_module_graphs(compile_source(
            "int a[4]; int n = 9; int main() { return a[n]; }", "t"))
        self._all_raise(gm, match="out of bounds")

    def test_store_out_of_bounds(self):
        gm = build_module_graphs(compile_source(
            "int a[4]; int n = 9; int main() { a[n] = 1; return 0; }",
            "t"))
        self._all_raise(gm, match="out of bounds")

    def test_division_by_zero(self):
        gm = build_module_graphs(compile_source(
            "int n = 0; int main() { return 5 / n; }", "t"))
        self._all_raise(gm, match="division by zero")

    def test_cycle_limit(self):
        gm = build_module_graphs(compile_source(
            "int main() { while (1) { } return 0; }", "t"))
        self._all_raise(gm, match="cycle limit", max_cycles=500)

    def test_cycle_limit_bounded_overrun(self):
        """A terminating program exceeding the limit raises on every
        engine; the codegen tier checks sparsely (back-edges) and exactly
        post-run, like the bytecode tier."""
        spec = get_benchmark("fir")
        gm, _ = optimize_module(compile_benchmark(spec), OptLevel.NONE)
        inputs = spec.generate_inputs(0)
        true_cycles = run_module(gm, inputs).cycles
        self._all_raise(gm, inputs=inputs, match="cycle limit",
                        max_cycles=true_cycles // 2)
        result = run_module(gm, inputs, max_cycles=true_cycles,
                            engine="codegen")
        assert result.cycles == true_cycles

    def test_recursion_depth(self):
        gm = build_module_graphs(compile_source(
            "int f(int n) { return f(n + 1); }"
            " int main() { return f(0); }", "t"))
        self._all_raise(gm, match="depth")

    def test_undefined_register_read(self):
        from repro.cfg.graph import GraphModule, ProgramGraph
        from repro.ir.instr import Instruction
        from repro.ir.ops import Op
        from repro.ir.values import Constant, VirtualReg
        graph = ProgramGraph("main", return_type="int")
        n0 = graph.new_node()
        n1 = graph.new_node()
        ghost = VirtualReg("%ghost")
        n0.ops.append(Instruction(Op.ADD, dest=VirtualReg("%r"),
                                  srcs=(ghost, Constant(1))))
        n1.control = Instruction(Op.RET, srcs=(VirtualReg("%r"),))
        graph.entry = n0.id
        graph.add_edge(n0.id, n1.id)
        gm = GraphModule("t", {"main": graph}, {}, {}, {})
        self._all_raise(gm, match="undefined register")


class TestNonFiniteConstants:
    """Constant folding can bake inf/nan into the graph (1e308 * 1e308
    at level 1+); ``repr`` of those is a bare name, so the emitter must
    bind them instead of inlining — regression for a codegen-only
    NameError."""

    SRC = ("float out[2]; int main() { float x; float y; x = 1e308; "
           "y = x * x; out[0] = y; out[1] = 0.0 - y; return 0; }")

    @pytest.mark.parametrize("level", LEVELS)
    def test_folded_infinity_matches_reference(self, level):
        module = compile_source(self.SRC, "t")
        gm, _ = optimize_module(module, OptLevel(level))
        reference = run_module(gm, engine="reference")
        codegen = run_module(gm, engine="codegen")
        assert_identical(reference, codegen)
        assert codegen.array("out") == [float("inf"), float("-inf")]

    @pytest.mark.parametrize("level", LEVELS)
    def test_folded_nan_agrees_on_every_engine(self, level):
        import math
        src = ("float out[1]; int main() { float x; x = 1e308; "
               "out[0] = (x * x) - (x * x); return 0; }")
        gm, _ = optimize_module(compile_source(src, "t"), OptLevel(level))
        for engine in ENGINES:
            result = run_module(gm, engine=engine)
            assert math.isnan(result.array("out")[0]), (engine, level)


class TestGeneratedSource:
    """Sanity of the emitted Python: locals, structure, cache identity."""

    def _graphs(self):
        return build_module_graphs(compile_source(
            "int x[4]; int main() { int i; int s; s = 0;"
            " for (i = 0; i < 4; i++) { s += x[i]; } return s; }", "t"))

    def test_source_is_local_variable_code(self):
        gm = self._graphs()
        generated = generate_module(gm)
        assert "def _f0(" in generated.source
        # registers are locals, not list indexing
        assert "regs[" not in generated.source
        assert "while True:" in generated.source

    def test_cache_reused_across_runs(self):
        gm = self._graphs()
        first = generate_module(gm)
        assert generate_module(gm) is first
        run_module(gm, {"x": [1, 2, 3, 4]}, engine="codegen")
        assert generate_module(gm) is first

    def test_cache_shares_the_lowered_form(self):
        """Generation reuses (and caches) the bytecode tier's lowering —
        one structural signature governs all three caches."""
        gm = self._graphs()
        generated = generate_module(gm)
        assert lower_module(gm) is generated.lowered

    def test_cache_invalidated_by_node_edit(self):
        from repro.ir.instr import Instruction
        from repro.ir.ops import Op
        gm = self._graphs()
        first = generate_module(gm)
        graph = gm.graphs["main"]
        node = next(n for n in graph.nodes.values() if n.ops)
        node.ops.append(Instruction(Op.NOP))
        assert generate_module(gm) is not first
        run_module(gm, {"x": [1, 2, 3, 4]}, engine="codegen")

    def test_cache_stripped_on_pickle(self):
        gm = self._graphs()
        generate_module(gm)
        clone = pickle.loads(pickle.dumps(gm))
        assert "_codegen_cache" not in clone.__dict__
        assert "_codegen_cache" in gm.__dict__
        # the clone still runs (it regenerates lazily)
        assert run_module(clone, {"x": [1, 1, 1, 1]},
                          engine="codegen").return_value == 4

    def test_copy_does_not_share_cache(self):
        gm = self._graphs()
        generate_module(gm)
        assert "_codegen_cache" not in gm.copy().__dict__


class TestEngineSelection:
    def test_codegen_engine_listed(self):
        assert "codegen" in ENGINES

    def test_env_var_selects_default(self, monkeypatch):
        from repro.sim.machine import _default_engine
        monkeypatch.setenv("REPRO_ENGINE", "codegen")
        assert _default_engine() == "codegen"

    def test_ensure_engine_accepts_every_tier(self):
        for engine in ENGINES:
            assert ensure_engine(engine) == engine

    def test_ensure_engine_rejects_unknown(self):
        with pytest.raises(SimulationError, match="unknown engine"):
            ensure_engine("turbo")

    def test_explore_runs_on_codegen(self):
        from repro.asip.explore import explore_designs
        spec = get_benchmark("sewha")
        module = compile_benchmark(spec)
        inputs = spec.generate_inputs(0)
        compiled = explore_designs(module, inputs, area_budget=2500,
                                   measure_top=2, engine="compiled")
        codegen = explore_designs(module, inputs, area_budget=2500,
                                  measure_top=2, engine="codegen")
        assert [p.labels() for p in codegen.measured] == \
            [p.labels() for p in compiled.measured]
        assert [p.speedup for p in codegen.measured] == \
            [p.speedup for p in compiled.measured]
