"""Reporting-layer tests: tables and figures render real study data."""

import pytest

from repro.reporting.figures import (ascii_chart, figure5, figure6,
                                     figure_series)
from repro.reporting.tables import (TABLE2_SEQUENCES, render_table, table1,
                                    table2, table3, table3_rows)


class TestRenderTable:
    def test_alignment(self):
        text = render_table(("a", "long header"), [("xx", 1), ("y", 22)])
        lines = text.splitlines()
        assert len({line.index("|") for line in lines
                    if "|" in line}) == 1

    def test_title(self):
        text = render_table(("h",), [("v",)], title="My Table")
        assert text.startswith("My Table\n========")


class TestTable1:
    def test_all_benchmarks_listed(self):
        text = table1()
        for name in ("fir", "iir", "pse", "intfft", "compress", "flatten",
                     "smooth", "edge", "sewha", "dft", "bspline", "feowf"):
            assert name in text

    def test_data_inputs_listed(self):
        text = table1()
        assert "24x24 8-bit image" in text
        assert "Random array of 100 floating point values" in text


class TestTable2:
    def test_levels_and_sequences_present(self, mini_study):
        text = table2(mini_study)
        assert "level 0" in text and "level 2" in text
        for name in TABLE2_SEQUENCES:
            assert "-".join(name) in text

    def test_frequencies_are_percentages(self, mini_study):
        text = table2(mini_study)
        assert text.count("%") >= len(TABLE2_SEQUENCES) * 3


class TestTable3:
    def test_rows_have_both_settings(self, mini_study):
        rows = table3_rows(mini_study, benchmarks=("sewha",))
        assert set(rows["sewha"]) == {True, False}

    def test_optimized_coverage_dominates_per_sequence(self, mini_study):
        # The paper's claim is "higher coverage rates with fewer operation
        # sequences": compare the greedy prefixes head-to-head — with the
        # same number of chained instructions, the optimized analysis must
        # cover at least as much.
        rows = table3_rows(mini_study, benchmarks=("sewha", "bspline"))
        for name, pair in rows.items():
            k = min(len(pair[True].steps), len(pair[False].steps))
            assert k > 0, name
            with_opt = sum(s.contribution for s in pair[True].steps[:k])
            without = sum(s.contribution for s in pair[False].steps[:k])
            assert with_opt >= without, name

    def test_render(self, mini_study):
        text = table3(mini_study, benchmarks=("sewha",))
        assert "yes" in text and "no" in text
        assert "Coverage" in text


class TestFigures:
    def test_ascii_chart_bars_scale(self):
        lines = ascii_chart([10.0, 5.0], width=10)
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_ascii_chart_empty(self):
        assert ascii_chart([]) == ["(empty)"]

    def test_series_per_level(self, mini_study):
        series = figure_series(mini_study, 2)
        assert set(series) == {0, 1, 2}
        for values in series.values():
            assert values == sorted(values, reverse=True)

    def test_figure5_respects_threshold(self, mini_study):
        text = figure5(mini_study)
        for line in text.splitlines():
            if "%" in line and "#" in line:
                percent = float(line.split("%")[0].split()[-1])
                assert percent >= 5.0

    def test_figure6_renders_all_benchmarks(self, mini_study):
        text = figure6(mini_study)
        for name in ("sewha", "bspline", "dft"):
            assert f"--- {name}" in text
