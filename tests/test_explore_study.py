"""Differential harness for the suite-wide exploration executor.

``run_exploration_study`` must be indistinguishable from running the
paper's per-benchmark ``explore_designs`` loop yourself: same candidate
rankings, same finalist subsets, same measured cycle counts and chain
issues, for every benchmark and every budget — and identical for any
``jobs`` value.  The harness pins all of it over the full 12-benchmark
suite (the acceptance bar for the executor), plus seed sharding,
scheduling shape, config validation and the warm-disk-cache fast path.
"""

import pytest

from repro.asip.evaluate import merge_evaluations
from repro.asip.explore import (candidate_pool, explore_designs,
                                rank_candidates, select_finalists)
from repro.errors import ReproError
from repro.feedback.study import (ExplorationStudyConfig,
                                  ExplorationStudyResult,
                                  run_exploration_study)
from repro.opt.pipeline import OptLevel
from repro.suite.registry import all_benchmarks, get_benchmark
from repro.suite.runner import compile_benchmark

SUITE = [spec.name for spec in all_benchmarks()]
BUDGET = 2500


def evaluation_projection(evaluation):
    return {
        "base_cycles": evaluation.base_cycles,
        "chained_cycles": evaluation.chained_cycles,
        "area": evaluation.extension_area,
        "chain_issues": evaluation.chain_issues,
        "sites": evaluation.selection.sites,
        "nodes_removed": evaluation.selection.nodes_removed,
    }


def exploration_projection(result):
    """Everything one exploration *means*, minus process-local objects."""
    return {
        "candidates": [(c.pattern, c.frequency, c.area, c.cycles_saved)
                       for c in result.candidates],
        "measured": [
            (tuple(point.labels()), evaluation_projection(point.evaluation))
            for point in result.measured],
        "best": None if result.best is None
        else tuple(result.best.labels()),
    }


def study_projection(study: ExplorationStudyResult):
    return {key: exploration_projection(exploration)
            for key, exploration in study.explorations.items()}


@pytest.fixture(scope="module")
def serial_study():
    return run_exploration_study(
        ExplorationStudyConfig(budgets=(BUDGET,), jobs=1))


@pytest.fixture(scope="module")
def parallel_study():
    return run_exploration_study(
        ExplorationStudyConfig(budgets=(BUDGET,), jobs=2))


class TestSuiteEquivalence:
    def test_covers_the_whole_suite(self, serial_study):
        assert serial_study.names() == SUITE
        assert serial_study.budgets() == [BUDGET]
        assert len(serial_study.explorations) == len(SUITE)

    def test_parallel_identical_to_serial(self, serial_study,
                                          parallel_study):
        assert study_projection(parallel_study) == \
            study_projection(serial_study)

    def test_matches_per_benchmark_explore_designs(self, serial_study):
        for name in SUITE:
            spec = get_benchmark(name)
            solo = explore_designs(
                compile_benchmark(spec), spec.generate_inputs(0),
                area_budget=BUDGET, level=OptLevel(1))
            assert exploration_projection(solo) == \
                exploration_projection(
                    serial_study.exploration(name, BUDGET)), name

    def test_every_benchmark_found_a_design(self, serial_study):
        for name in SUITE:
            best = serial_study.best(name, BUDGET)
            assert best is not None, name
            assert best.speedup > 1.0, name
            assert best.area <= BUDGET, name


class TestBudgetMatrix:
    CONFIG = dict(benchmarks=("sewha", "edge"), budgets=(900, 1500, 2500))

    @pytest.fixture(scope="class")
    def matrix(self):
        return run_exploration_study(ExplorationStudyConfig(**self.CONFIG))

    def test_budget_cells_match_standalone_runs(self, matrix):
        for name in self.CONFIG["benchmarks"]:
            spec = get_benchmark(name)
            module = compile_benchmark(spec)
            for budget in self.CONFIG["budgets"]:
                solo = explore_designs(module, spec.generate_inputs(0),
                                       area_budget=budget,
                                       level=OptLevel(1))
                assert exploration_projection(solo) == \
                    exploration_projection(matrix.exploration(name, budget))

    def test_larger_budgets_never_hurt(self, matrix):
        for name in self.CONFIG["benchmarks"]:
            speedups = [matrix.best(name, b).speedup
                        for b in self.CONFIG["budgets"]]
            assert speedups == sorted(speedups)

    def test_duplicate_names_and_budgets_collapse(self):
        study = run_exploration_study(ExplorationStudyConfig(
            benchmarks=("sewha", "sewha"), budgets=(1500, 1500)))
        assert list(study.explorations) == [("sewha", 1500)]

    def test_unknown_cell_raises(self, matrix):
        with pytest.raises(ReproError, match="no cell"):
            matrix.exploration("sewha", 31337)


class TestMultiSeed:
    SEEDS = (0, 1, 2, 3, 4)
    NAMES = ("sewha", "dft")

    @pytest.fixture(scope="class")
    def sharded(self):
        # 5 seeds and jobs=3 forces seed sharding (>= SEED_SHARD_MIN).
        return run_exploration_study(ExplorationStudyConfig(
            benchmarks=self.NAMES, budgets=(BUDGET,), seeds=self.SEEDS,
            jobs=3))

    def test_sharded_identical_to_serial(self, sharded):
        serial = run_exploration_study(ExplorationStudyConfig(
            benchmarks=self.NAMES, budgets=(BUDGET,), seeds=self.SEEDS,
            jobs=1))
        assert study_projection(sharded) == study_projection(serial)

    def test_candidates_come_from_the_primary_seed(self, sharded):
        primary_only = run_exploration_study(ExplorationStudyConfig(
            benchmarks=("sewha",), budgets=(BUDGET,), seed=self.SEEDS[0]))
        assert exploration_projection(
            sharded.exploration("sewha", BUDGET))["candidates"] == \
            exploration_projection(
                primary_only.exploration("sewha", BUDGET))["candidates"]

    def test_aggregates_cycles_over_all_seeds(self, sharded):
        # The merged evaluation of each design point is exactly the
        # fold of independently-computed per-seed evaluations of the
        # same ISA: cycle totals sum, chain issues sum, area unchanged.
        from repro.asip.evaluate import evaluate_on_sequential
        from repro.asip.resequence import resequence_module
        from repro.opt.pipeline import optimize_module
        spec = get_benchmark("sewha")
        gm, _ = optimize_module(compile_benchmark(spec), OptLevel(1))
        sequential = resequence_module(gm)
        merged = sharded.exploration("sewha", BUDGET)
        assert merged.measured
        for point in merged.measured:
            per_seed = tuple(evaluate_on_sequential(
                sequential, point.isa, spec.generate_inputs(s))
                for s in self.SEEDS)
            assert point.evaluation.base_cycles == \
                sum(e.base_cycles for e in per_seed)
            assert point.evaluation.chained_cycles == \
                sum(e.chained_cycles for e in per_seed)
            assert evaluation_projection(point.evaluation) == \
                evaluation_projection(merge_evaluations(per_seed))


class TestScheduleShape:
    def test_base_gates_budget_cells(self):
        from repro.exec.explore import build_exploration_schedule
        config = ExplorationStudyConfig(benchmarks=("fir", "iir"),
                                        budgets=(1500, 2500))
        tasks = build_exploration_schedule(config, ["fir", "iir"])
        by_key = {task.key: task for task in tasks}
        assert set(by_key) == {
            ("base", "fir"), ("base", "iir"),
            ("fin", "fir", 1500, 0), ("fin", "fir", 2500, 0),
            ("fin", "iir", 1500, 0), ("fin", "iir", 2500, 0)}
        for key, task in by_key.items():
            assert task.affinity == key[1]
            if key[0] == "fin":
                assert task.deps == (("base", key[1]),)
            else:
                assert task.deps == ()

    def test_seed_shards_multiply_measurement_tasks(self):
        from repro.exec.explore import build_exploration_schedule
        config = ExplorationStudyConfig(benchmarks=("fir",),
                                        budgets=(2500,),
                                        seeds=(0, 1, 2, 3, 4))
        tasks = build_exploration_schedule(config, ["fir"], jobs=3)
        fins = [t for t in tasks if t.key[0] == "fin"]
        assert [t.key[3] for t in fins] == [0, 1, 2]
        # jobs=1 keeps the batch whole.
        tasks = build_exploration_schedule(config, ["fir"], jobs=1)
        assert sum(t.key[0] == "fin" for t in tasks) == 1

    def test_progress_reports_base_then_budgets(self):
        events = []
        run_exploration_study(
            ExplorationStudyConfig(benchmarks=("sewha",),
                                   budgets=(1500, 2500)),
            progress=lambda name, stage: events.append((name, stage)))
        assert events == [("sewha", "base"), ("sewha", "budget 1500"),
                          ("sewha", "budget 2500")]


class TestStageHelpers:
    """The pure stages explore_designs and the executor share."""

    @pytest.fixture(scope="class")
    def pool(self):
        from repro.asip.cost import DEFAULT_COST_MODEL
        from repro.chaining.detect import detect_sequences
        from repro.opt.pipeline import optimize_module
        from repro.sim.machine import run_module
        spec = get_benchmark("sewha")
        gm, _ = optimize_module(compile_benchmark(spec), OptLevel(1))
        profile = run_module(gm, spec.generate_inputs(0)).profile
        detection = detect_sequences(gm, profile, (2, 3))
        return candidate_pool(detection, DEFAULT_COST_MODEL)

    def test_pool_is_budget_agnostic(self, pool):
        assert pool  # sewha always has chainable sequences
        assert all(c.cycles_saved > 0 and c.frequency > 0 for c in pool)

    def test_rank_filters_by_area_and_truncates(self, pool):
        everything = rank_candidates(pool, 10 ** 9, max_candidates=1000)
        assert len(everything) == len(pool)
        estimates = [c.estimate for c in everything]
        assert estimates == sorted(estimates, reverse=True)
        tiny = rank_candidates(pool, 600, max_candidates=8)
        assert all(c.area <= 600 for c in tiny)
        assert len(rank_candidates(pool, 10 ** 9, max_candidates=3)) == 3

    def test_finalists_under_budget_and_canonical(self, pool):
        candidates = rank_candidates(pool, 2500, max_candidates=8)
        combos = select_finalists(candidates, 2500, measure_top=4)
        assert combos == sorted(combos)
        assert 1 <= len(combos) <= 5
        for combo in combos:
            assert sum(candidates[i].area for i in combo) <= 2500

    def test_no_candidates_no_finalists(self):
        assert select_finalists([], 2500, measure_top=4) == []


class TestValidation:
    def test_empty_budgets(self):
        with pytest.raises(ReproError, match="budgets is empty"):
            run_exploration_study(ExplorationStudyConfig(budgets=()))

    def test_non_positive_budget(self):
        with pytest.raises(ReproError, match="must be positive"):
            run_exploration_study(ExplorationStudyConfig(budgets=(2500, 0)))

    def test_bad_level(self):
        with pytest.raises(ReproError, match="optimization level"):
            run_exploration_study(ExplorationStudyConfig(level=7))

    def test_bad_engine(self):
        with pytest.raises(Exception, match="unknown engine"):
            run_exploration_study(ExplorationStudyConfig(engine="turbo"))

    def test_duplicate_seeds(self):
        with pytest.raises(ReproError, match="duplicate"):
            run_exploration_study(
                ExplorationStudyConfig(seeds=(1, 1)))

    def test_unknown_benchmark_fails_before_any_work(self):
        with pytest.raises(ReproError):
            run_exploration_study(
                ExplorationStudyConfig(benchmarks=("nope",)))


class TestDiskCacheIntegration:
    def test_warm_cache_exploration_identical_and_served(self, tmp_path,
                                                         monkeypatch):
        from repro.sim import diskcache
        config = ExplorationStudyConfig(benchmarks=("sewha",),
                                        budgets=(1500,), engine="codegen",
                                        jobs=1)  # counters live in-process
        monkeypatch.setenv(diskcache.CACHE_ENV_VAR, str(tmp_path))
        diskcache.reset_cache_state()
        cold = run_exploration_study(config)
        cache = diskcache.get_cache()
        assert cache.stores["codegen"] > 0
        stores_after_cold = cache.stores["codegen"]
        warm = run_exploration_study(config)
        assert study_projection(warm) == study_projection(cold)
        # Every module of the warm pass was served from disk: codegen
        # entries were hit, and nothing new needed storing.
        assert cache.hits["codegen"] >= stores_after_cold
        assert cache.stores["codegen"] == stores_after_cold
        diskcache.reset_cache_state()
