"""ASIP model tests: cost model, ISA, selection, evaluation, exploration."""

import pytest

from repro.asip.cost import DEFAULT_COST_MODEL, CostModel
from repro.asip.evaluate import evaluate_isa, evaluate_on_sequential
from repro.asip.explore import explore_designs
from repro.asip.isa import ChainedInstruction, InstructionSet
from repro.asip.resequence import resequence_module
from repro.asip.select import FusedInstruction, select_chains
from repro.cfg.build import build_module_graphs
from repro.errors import AsipError
from repro.frontend import compile_source
from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim.machine import run_module

from tests.conftest import FIR_LIKE_SOURCE, fir_like_inputs

MAC_SRC = """
int x[16]; int h[16]; int out[1];
int n = 16;
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < n; i++) { s = s + x[i] * h[i]; }
    out[0] = s;
    return s;
}
"""

MAC_INPUTS = {"x": list(range(16)), "h": [2] * 16}


class TestCostModel:
    def test_chain_area_below_sum_of_units(self):
        cost = DEFAULT_COST_MODEL
        pattern = ("multiply", "add")
        parts = cost.class_area("multiply") + cost.class_area("add")
        assert 0 < cost.chain_area(pattern) <= \
            parts + cost.chain_overhead_area

    def test_chain_delay_is_sum(self):
        cost = DEFAULT_COST_MODEL
        assert cost.chain_delay(("add", "add")) == \
            pytest.approx(2 * cost.class_delay("add"))

    def test_short_int_chain_single_cycle(self):
        assert DEFAULT_COST_MODEL.chain_cycles(("multiply", "add")) == 1

    def test_long_float_chain_multi_cycle(self):
        pattern = ("fload", "fmultiply", "fadd")
        assert DEFAULT_COST_MODEL.chain_cycles(pattern) == 2
        assert DEFAULT_COST_MODEL.cycles_saved_per_traversal(pattern) == 1

    def test_two_float_ops_no_saving(self):
        pattern = ("fload", "fmultiply")  # 10ns > 8ns cycle: 2 cycles
        assert DEFAULT_COST_MODEL.cycles_saved_per_traversal(pattern) == 0

    def test_unknown_class_rejected(self):
        with pytest.raises(AsipError):
            DEFAULT_COST_MODEL.chain_area(("frobnicate", "add"))

    def test_single_op_chain_rejected(self):
        with pytest.raises(AsipError):
            DEFAULT_COST_MODEL.chain_area(("add",))

    def test_custom_cycle_time(self):
        fast = CostModel(cycle_time=3.0)
        assert fast.chain_cycles(("multiply", "add")) > 1


class TestInstructionSet:
    def test_duplicate_pattern_rejected(self):
        isa = InstructionSet()
        isa.add_chain(ChainedInstruction("mac", ("multiply", "add")))
        with pytest.raises(AsipError):
            isa.add_chain(ChainedInstruction("mac2", ("multiply", "add")))

    def test_extension_area_sums(self):
        isa = InstructionSet()
        isa.add_chain(ChainedInstruction("mac", ("multiply", "add")))
        isa.add_chain(ChainedInstruction("aa", ("add", "add")))
        assert isa.extension_area() == \
            sum(c.area(isa.cost_model) for c in isa.chains)

    def test_from_sequence_names(self):
        chain = ChainedInstruction.from_sequence(("add", "compare"))
        assert chain.pattern == ("add", "compare")
        assert "add" in chain.name

    def test_find(self):
        isa = InstructionSet()
        isa.add_chain(ChainedInstruction("mac", ("multiply", "add")))
        assert isa.find(("multiply", "add")).name == "mac"
        assert isa.find(("add", "add")) is None

    def test_short_pattern_rejected(self):
        with pytest.raises(AsipError):
            ChainedInstruction("one", ("add",))


class TestResequence:
    @pytest.mark.parametrize("level", [1, 2])
    def test_resequenced_semantics_match(self, level):
        module = compile_source(FIR_LIKE_SOURCE, "t")
        gm, _ = optimize_module(module, OptLevel(level))
        inputs = fir_like_inputs()
        expected = run_module(gm, inputs)
        seq = resequence_module(gm)
        actual = run_module(seq, inputs)
        assert actual.globals_after == expected.globals_after
        assert actual.return_value == expected.return_value

    def test_one_op_per_node(self):
        module = compile_source(FIR_LIKE_SOURCE, "t")
        gm, _ = optimize_module(module, OptLevel.PIPELINED)
        seq = resequence_module(gm)
        for g in seq.graphs.values():
            for node in g.nodes.values():
                assert len(node.ops) + (1 if node.control else 0) == 1

    def test_input_graph_not_mutated(self):
        module = compile_source(FIR_LIKE_SOURCE, "t")
        gm, _ = optimize_module(module, OptLevel.PIPELINED)
        before = {nid: (list(n.ops), n.control)
                  for nid, n in gm.graphs["main"].nodes.items()}
        resequence_module(gm)
        after = {nid: (list(n.ops), n.control)
                 for nid, n in gm.graphs["main"].nodes.items()}
        assert before == after


class TestSelection:
    def _sequential(self, source):
        module = compile_source(source, "t")
        gm, _ = optimize_module(module, OptLevel.PIPELINED)
        return resequence_module(gm)

    def test_mac_fused(self):
        seq = self._sequential(MAC_SRC)
        isa = InstructionSet()
        isa.add_chain(ChainedInstruction("mac", ("multiply", "add")))
        fused = seq.copy()
        stats = select_chains(fused, isa)
        assert stats.sites.get(("multiply", "add"), 0) >= 1
        assert stats.nodes_removed >= 1

    def test_fused_run_matches_base(self):
        seq = self._sequential(MAC_SRC)
        isa = InstructionSet()
        isa.add_chain(ChainedInstruction("mac", ("multiply", "add")))
        fused = seq.copy()
        select_chains(fused, isa)
        base = run_module(seq, MAC_INPUTS)
        chained = run_module(fused, MAC_INPUTS)
        assert chained.globals_after == base.globals_after
        assert chained.cycles < base.cycles

    def test_longest_pattern_preferred(self):
        seq = self._sequential(MAC_SRC)
        isa = InstructionSet()
        isa.add_chain(ChainedInstruction("ma", ("multiply", "add")))
        isa.add_chain(ChainedInstruction("lma",
                                         ("load", "multiply", "add")))
        fused = seq.copy()
        stats = select_chains(fused, isa)
        if ("load", "multiply", "add") in stats.sites:
            assert stats.sites[("load", "multiply", "add")] >= 1

    def test_no_match_no_change(self):
        seq = self._sequential(MAC_SRC)
        isa = InstructionSet()
        isa.add_chain(ChainedInstruction("weird", ("divide", "divide")))
        fused = seq.copy()
        stats = select_chains(fused, isa)
        assert stats.total_sites == 0
        assert stats.nodes_removed == 0

    def test_fused_instruction_accessors(self):
        seq = self._sequential(MAC_SRC)
        isa = InstructionSet()
        isa.add_chain(ChainedInstruction("mac", ("multiply", "add")))
        fused = seq.copy()
        select_chains(fused, isa)
        fused_ops = [ins for g in fused.graphs.values()
                     for n in g.nodes.values() for ins in n.ops
                     if isinstance(ins, FusedInstruction)]
        assert fused_ops
        for ins in fused_ops:
            assert len(ins.parts) == 2
            assert ins.defs()  # intermediate + final destinations
            assert "mac {" in str(ins)


class TestEvaluation:
    def test_mac_speedup_measured(self):
        module = compile_source(MAC_SRC, "t")
        isa = InstructionSet()
        isa.add_chain(ChainedInstruction("mac", ("multiply", "add")))
        evaluation = evaluate_isa(module, isa, MAC_INPUTS)
        assert evaluation.speedup > 1.0
        assert evaluation.chain_issues.get(("multiply", "add"), 0) > 0
        assert evaluation.extension_area == isa.extension_area()

    def test_empty_isa_is_identity(self):
        module = compile_source(MAC_SRC, "t")
        evaluation = evaluate_isa(module, InstructionSet(), MAC_INPUTS)
        assert evaluation.speedup == 1.0
        assert evaluation.cycles_saved == 0

    def test_multicycle_chain_charged(self):
        # fload-fmultiply takes 2 issue cycles: fusing it buys nothing.
        src = """
        float a[8]; float out[8];
        int main() { int i;
            for (i = 0; i < 8; i++) { out[i] = a[i] * 2.0; }
            return 0; }
        """
        module = compile_source(src, "t")
        isa = InstructionSet()
        isa.add_chain(ChainedInstruction("lf", ("fload", "fmultiply")))
        evaluation = evaluate_isa(module, isa,
                                  {"a": [1.0] * 8})
        assert evaluation.speedup <= 1.0 + 1e-9


class TestExploration:
    def test_explore_finds_positive_speedup(self):
        module = compile_source(MAC_SRC, "t")
        result = explore_designs(module, MAC_INPUTS, area_budget=2500,
                                 max_candidates=5, measure_top=3)
        assert result.candidates
        assert result.best is not None
        assert result.best.speedup > 1.0

    def test_budget_respected(self):
        module = compile_source(MAC_SRC, "t")
        budget = 1500
        result = explore_designs(module, MAC_INPUTS, area_budget=budget,
                                 max_candidates=5, measure_top=3)
        for point in result.measured:
            assert point.area <= budget

    def test_zero_budget_yields_no_candidates(self):
        module = compile_source(MAC_SRC, "t")
        result = explore_designs(module, MAC_INPUTS, area_budget=0)
        assert result.candidates == []
        assert result.best is None
