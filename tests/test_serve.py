"""Repro-as-a-service: dedup, the whole-result tier, live-entry safety.

The daemon's contract, pinned here:

* N concurrent identical requests run **one** evaluation and every
  client receives bit-identical response bytes;
* a repeated request is served from the whole-result disk tier without
  touching the executors (and survives a daemon restart);
* while a request is live, its result-tier entry is pinned — an
  eviction pass under any cap must not remove it;
* a served ``explore-study`` answer is the same document a direct
  ``run_exploration_study`` call (tier off) produces;
* malformed requests are answered with ``ok: false`` and the daemon
  stays up.

Each test gets a private cache directory and its own daemon on a Unix
socket under ``tmp_path``.
"""

import json
import os
import threading
import time

import pytest

from repro.errors import ReproError
from repro.feedback import study as study_api
from repro.serve import ReproServer, ServeClient, wait_for_server
from repro.serve import protocol
from repro.sim import diskcache

EXPLORE_REQ = {"op": "explore-study", "benchmarks": ["sewha"],
               "budgets": [2500], "jobs": 1}

ANALYZE_SRC = ("int a[8]; int b[8]; void main() { int i; "
               "for (i = 0; i < 8; i = i + 1) "
               "{ b[i] = a[i] * 3 + 1; } }")


def wait_until(predicate, timeout=30.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture()
def serve_env(tmp_path, monkeypatch):
    monkeypatch.setenv(diskcache.CACHE_ENV_VAR, str(tmp_path / "cache"))
    monkeypatch.setenv(diskcache.RESULT_ENV_VAR, "1")
    monkeypatch.delenv(diskcache.MAX_MB_ENV_VAR, raising=False)
    diskcache.reset_cache_state()
    yield tmp_path
    diskcache.reset_cache_state()


@pytest.fixture()
def server(serve_env):
    srv = ReproServer(socket_path=str(serve_env / "serve.sock"), jobs=1)
    thread = srv.run_in_thread()
    yield srv
    if thread.is_alive():
        with ServeClient(socket_path=srv.socket_path) as client:
            client.request({"op": "shutdown"})
        thread.join(30)
    assert not thread.is_alive()


def connect(srv) -> ServeClient:
    return wait_for_server(socket_path=srv.socket_path)


class TestDedup:
    def test_concurrent_identical_requests_evaluate_once(
            self, server, monkeypatch):
        real = study_api.run_exploration_study
        calls = []
        entered = threading.Event()
        release = threading.Event()

        def gated(config, progress=None, stats=None):
            calls.append(config)
            entered.set()
            assert release.wait(60)
            return real(config, progress=progress, stats=stats)

        monkeypatch.setattr(study_api, "run_exploration_study", gated)
        raws = [None] * 4

        def post(i):
            with connect(server) as client:
                raws[i] = client.request_raw(EXPLORE_REQ)

        threads = [threading.Thread(target=post, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        assert entered.wait(30)
        # every other request coalesces onto the in-flight evaluation
        assert wait_until(
            lambda: server.stats.dedup_coalesced == 3)
        # the live request's result-tier key is pinned against eviction
        cache = diskcache.get_cache()
        key = study_api.result_request_key("explore-study", calls[0])
        assert cache.is_pinned(diskcache.RESULT_KIND, key)
        release.set()
        for t in threads:
            t.join(120)
        assert len(calls) == 1  # exactly one evaluation
        assert all(isinstance(raw, bytes) for raw in raws)
        assert len({raw for raw in raws}) == 1  # bit-identical bytes
        assert server.stats.dispatches == 1
        assert server.stats.result_misses == 1
        assert server.stats.result_hits == 0
        assert not cache.is_pinned(diskcache.RESULT_KIND, key)

    def test_served_answer_matches_direct_call(self, server,
                                               monkeypatch):
        with connect(server) as client:
            response = client.request(EXPLORE_REQ)
        assert response["ok"]
        # The same question answered directly by the library (tier off,
        # so it really evaluates) yields the same document.
        monkeypatch.setenv(diskcache.RESULT_ENV_VAR, "0")
        config = protocol.build_config(
            protocol.canonical_request(EXPLORE_REQ))
        direct = protocol.exploration_payload(
            study_api.run_exploration_study(config))
        assert response["result"] == json.loads(json.dumps(direct))


class TestResultTier:
    def test_repeat_served_from_disk_without_executors(
            self, server, monkeypatch):
        with connect(server) as client:
            first = client.request(EXPLORE_REQ)
            assert first["ok"]
            assert first["meta"]["result_cache"] == "miss"

            # From here on, any executor dispatch is an error: the
            # repeat must be answered entirely from the disk tier.
            import repro.exec.explore as explore_mod

            def boom(*_a, **_k):
                raise AssertionError(
                    "result-tier hit must not reach the executors")

            monkeypatch.setattr(explore_mod,
                                "execute_exploration_study", boom)
            second = client.request(EXPLORE_REQ)
        assert second["ok"]
        assert second["meta"]["result_cache"] == "hit"
        assert second["result"] == first["result"]
        assert server.stats.result_hits == 1

    def test_restart_serves_from_disk(self, serve_env, monkeypatch):
        sock_a = str(serve_env / "a.sock")
        srv_a = ReproServer(socket_path=sock_a, jobs=1)
        thread_a = srv_a.run_in_thread()
        with wait_for_server(socket_path=sock_a) as client:
            first = client.request(EXPLORE_REQ)
            assert first["ok"]
            client.request({"op": "shutdown"})
        thread_a.join(60)

        # A fresh daemon process-equivalent: new server, new cache
        # handle, executors booby-trapped — only the disk tier answers.
        diskcache.reset_cache_state()
        import repro.exec.explore as explore_mod

        def boom(*_a, **_k):
            raise AssertionError("restart repeat must not evaluate")

        monkeypatch.setattr(explore_mod, "execute_exploration_study",
                            boom)
        sock_b = str(serve_env / "b.sock")
        srv_b = ReproServer(socket_path=sock_b, jobs=1)
        thread_b = srv_b.run_in_thread()
        with wait_for_server(socket_path=sock_b) as client:
            second = client.request(EXPLORE_REQ)
            client.request({"op": "shutdown"})
        thread_b.join(60)
        assert second["ok"]
        assert second["meta"]["result_cache"] == "hit"
        assert second["result"] == first["result"]

    def test_eviction_under_cap_spares_live_entry(self, server,
                                                  monkeypatch):
        # Prime: the result entry lands on disk.
        with connect(server) as client:
            assert client.request(EXPLORE_REQ)["ok"]
        cache = diskcache.get_cache()
        config = protocol.build_config(
            protocol.canonical_request(EXPLORE_REQ))
        key = study_api.result_request_key("explore-study", config)
        entry = cache.entry_path(diskcache.RESULT_KIND, key)
        assert entry.exists()

        # Re-request with the evaluation gated open, then run an
        # eviction pass with a zero cap while the request is live: the
        # pinned entry must survive (everything else may go).
        real = study_api.run_exploration_study
        entered = threading.Event()
        release = threading.Event()

        def gated(cfg, progress=None, stats=None):
            entered.set()
            assert release.wait(60)
            return real(cfg, progress=progress, stats=stats)

        monkeypatch.setattr(study_api, "run_exploration_study", gated)
        responses = []

        def post():
            with connect(server) as client:
                responses.append(client.request(EXPLORE_REQ))

        thread = threading.Thread(target=post)
        thread.start()
        assert entered.wait(30)
        assert cache.is_pinned(diskcache.RESULT_KIND, key)
        cache.evict_to_cap(max_bytes=0)
        assert entry.exists(), "live request's entry was evicted"
        release.set()
        thread.join(120)
        assert responses[0]["ok"]
        assert responses[0]["meta"]["result_cache"] == "hit"


class TestSimpleOps:
    def test_analyze_round_trip_and_repeat_hit(self, server):
        request = {"op": "analyze", "source": ANALYZE_SRC}
        with connect(server) as client:
            first = client.request(request)
            second = client.request(request)
        assert first["ok"]
        assert first["result"]["cycles"] > 0
        assert first["result"]["total_ops"] > 0
        assert first["meta"]["result_cache"] == "miss"
        assert second["meta"]["result_cache"] == "hit"
        assert second["result"] == first["result"]

    def test_explore_round_trip(self, server):
        request = {"op": "explore", "benchmark": "sewha", "jobs": 1}
        with connect(server) as client:
            response = client.request(request)
        assert response["ok"]
        result = response["result"]
        assert result["candidates"]
        assert result["best"] is None or result["best"]["speedup"] > 0


class TestValidationAndStatus:
    def test_bad_requests_answered_daemon_stays_up(self, server):
        bad = [
            "not json at all",
            json.dumps(["a", "list"]),
            json.dumps({"op": "warp"}),
            json.dumps({"op": "explore-study", "bogus": 1}),
            json.dumps({"op": "explore-study", "budgets": []}),
            json.dumps({"op": "study", "seeds": [0, 0]}),
            json.dumps({"op": "study", "engine": "turbo"}),
            json.dumps({"op": "explore-study",
                        "benchmarks": ["no-such-benchmark"]}),
            json.dumps({"op": "analyze", "source": "   "}),
            json.dumps({"op": "explore", "benchmark": "sewha",
                        "budget": -5}),
        ]
        with connect(server) as client:
            for line in bad:
                raw = client.request_raw(
                    json.loads(line) if line.startswith(("{", "["))
                    else {"op": line})
                response = json.loads(raw.decode())
                assert response["ok"] is False
                assert response["error"]
            status = client.request({"op": "status"})
        assert status["ok"]
        assert status["result"]["stats"]["errors"] == len(bad)
        assert status["result"]["stats"]["evaluations"] == 0

    def test_field_errors_name_the_field(self, server):
        with connect(server) as client:
            response = client.request({"op": "study", "seed": "zero"})
            assert "'seed'" in response["error"]
            response = client.request({"op": "explore"})
            assert "'benchmark'" in response["error"]

    def test_status_shape(self, server):
        with connect(server) as client:
            status = client.request({"op": "status"})["result"]
        assert status["result_cache_enabled"] is True
        assert status["cache_max_bytes"] is None
        assert status["inflight"] == 0
        assert status["uptime_seconds"] >= 0
        assert set(status["pool"]) == {"alive", "workers"}
        stats = status["stats"]
        for field in ("requests", "errors", "dispatches",
                      "dedup_coalesced", "evaluations", "result_hits",
                      "result_misses", "evaluation_seconds",
                      "tasks_executed", "max_tasks_in_flight"):
            assert stats[field] >= 0
        cache_stats = status["cache"]
        assert cache_stats["pinned"] == 0

    def test_shutdown_is_clean(self, serve_env):
        sock = str(serve_env / "down.sock")
        srv = ReproServer(socket_path=sock, jobs=1)
        thread = srv.run_in_thread()
        with wait_for_server(socket_path=sock) as client:
            response = client.request({"op": "shutdown"})
        assert response["ok"] and response["result"]["stopping"]
        thread.join(30)
        assert not thread.is_alive()
        assert not os.path.exists(sock)  # socket file unlinked


class TestProtocol:
    def test_digest_ignores_spelled_out_defaults_and_order(self):
        a = protocol.canonical_request(dict(EXPLORE_REQ))
        b = protocol.canonical_request(
            {"budgets": [2500], "op": "explore-study", "jobs": 1,
             "benchmarks": ["sewha"], "seed": 0, "level": 1})
        assert protocol.request_digest(a) == protocol.request_digest(b)
        c = protocol.canonical_request(
            dict(EXPLORE_REQ, seed=1))
        assert protocol.request_digest(a) != protocol.request_digest(c)

    def test_jobs_changes_digest_but_not_result_key(self):
        # jobs=N is bit-identical by contract, so the *result* key
        # ignores it — but dedup keys on the full request.
        base = protocol.build_config(
            protocol.canonical_request(dict(EXPLORE_REQ)))
        other = protocol.build_config(
            protocol.canonical_request(dict(EXPLORE_REQ, jobs=2)))
        assert study_api.result_request_key("explore-study", base) == \
            study_api.result_request_key("explore-study", other)

    def test_server_requires_an_endpoint(self):
        with pytest.raises(ReproError, match="socket path or a TCP"):
            ReproServer()

    def test_tcp_port_zero_binds_ephemeral(self, serve_env):
        srv = ReproServer(port=0, jobs=1)
        thread = srv.run_in_thread()
        assert srv.bound_port
        with ServeClient(port=srv.bound_port) as client:
            assert client.request({"op": "status"})["ok"]
            client.request({"op": "shutdown"})
        thread.join(30)
        assert not thread.is_alive()
