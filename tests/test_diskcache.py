"""The compile-artifact disk cache: equivalence, robustness, lifecycle.

The disk tier may only ever change *wall time*: a run served from a warm
cache must be bit-identical to a regenerated run on every engine, any
broken entry must read as a miss (then be rewritten), and concurrent
writers must never publish a torn file.  Everything here runs against a
throwaway cache directory via ``REPRO_CACHE``.
"""

import os
import pickle
import subprocess
import sys
import threading

import pytest

from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim import diskcache
from repro.sim.diskcache import (DISABLE_VALUE, DiskCache, FORMAT_VERSION,
                                 get_cache, module_digest,
                                 resolve_cache_root)
from repro.sim.machine import ENGINES, run_module
from repro.suite.registry import get_benchmark
from repro.suite.runner import compile_benchmark

SPEC = get_benchmark("sewha")
INPUTS = SPEC.generate_inputs(0)
DISK_ENGINES = ("bytecode", "codegen")  # the tiers the disk cache holds


def fresh_graph_module(level=1):
    """A structurally-identical-but-new module: what a cold process (or a
    pool worker receiving a cache-stripped pickle) starts from."""
    gm, _ = optimize_module(compile_benchmark(SPEC), OptLevel(level))
    return gm


def result_projection(result):
    return (result.return_value, result.globals_after, result.cycles,
            result.profile.node_counts, result.profile.edge_counts,
            result.profile.call_counts)


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(diskcache.CACHE_ENV_VAR, str(tmp_path))
    diskcache.reset_cache_state()
    yield tmp_path
    diskcache.reset_cache_state()


class TestDigest:
    def test_process_invariant_across_recompiles(self):
        # Same source, two front-end runs: instruction uids differ, the
        # structural digest must not (it is the cold-process cache key).
        assert module_digest(fresh_graph_module()) == \
            module_digest(fresh_graph_module())

    def test_distinguishes_levels_and_benchmarks(self):
        digests = {module_digest(fresh_graph_module(level))
                   for level in (0, 1, 2)}
        assert len(digests) == 3
        other, _ = optimize_module(
            compile_benchmark(get_benchmark("dft")), OptLevel(1))
        assert module_digest(other) not in digests

    def test_changes_on_graph_mutation(self):
        gm = fresh_graph_module()
        before = module_digest(gm)
        graph = gm.entry
        node = next(iter(graph.nodes.values()))
        node.succs = list(node.succs)  # same structure: same digest
        assert module_digest(gm) == before
        nid = next(iter(graph.nodes))
        graph.nodes[nid].succs.append(nid)
        assert module_digest(gm) != before


class TestEquivalence:
    def test_warm_hit_bit_identical_on_all_engines(self, cache_dir,
                                                   monkeypatch):
        # Reference: the tier disabled entirely.
        monkeypatch.setenv(diskcache.CACHE_ENV_VAR, DISABLE_VALUE)
        diskcache.reset_cache_state()
        assert get_cache() is None
        reference = {(engine, level):
                     result_projection(run_module(
                         fresh_graph_module(level), INPUTS, engine=engine))
                     for engine in ENGINES for level in (0, 1, 2)}

        monkeypatch.setenv(diskcache.CACHE_ENV_VAR, str(cache_dir))
        diskcache.reset_cache_state()
        cold = {key: result_projection(run_module(
                    fresh_graph_module(key[1]), INPUTS, engine=key[0]))
                for key in reference}
        cache = get_cache()
        assert cache.stores["bytecode"] == 3
        assert cache.stores["codegen"] == 3
        warm = {key: result_projection(run_module(
                    fresh_graph_module(key[1]), INPUTS, engine=key[0]))
                for key in reference}
        assert cache.hits["bytecode"] >= 3
        assert cache.hits["codegen"] == 3
        assert not cache.corrupt
        assert cold == reference
        assert warm == reference

    def test_warm_hit_skips_lowering_and_generation(self, cache_dir,
                                                    monkeypatch):
        from repro.sim import codegen as codegen_mod
        from repro.sim import engine as engine_mod
        for engine in DISK_ENGINES:  # prime
            run_module(fresh_graph_module(), INPUTS, engine=engine)

        def refuse(*_args, **_kwargs):
            raise AssertionError(
                "warm disk cache must skip lowering/generation")
        monkeypatch.setattr(engine_mod.LoweredModule, "__init__", refuse)
        monkeypatch.setattr(codegen_mod, "_FunctionEmitter", refuse)
        before = dict(get_cache().hits)
        warm = {engine: result_projection(run_module(
                    fresh_graph_module(), INPUTS, engine=engine))
                for engine in DISK_ENGINES}
        assert warm["bytecode"] == warm["codegen"]
        assert get_cache().hits["bytecode"] > before.get("bytecode", 0)
        assert get_cache().hits["codegen"] > before.get("codegen", 0)

    def test_cold_process_hits_warm_cache(self, cache_dir):
        # A genuinely cold interpreter: prime from one subprocess, then
        # assert a second subprocess serves both tiers from disk and
        # produces the same outputs.
        script = (
            "import os, sys\n"
            "from repro.opt.pipeline import OptLevel, optimize_module\n"
            "from repro.sim.diskcache import get_cache\n"
            "from repro.sim.machine import run_module\n"
            "from repro.suite.registry import get_benchmark\n"
            "from repro.suite.runner import compile_benchmark\n"
            "spec = get_benchmark('sewha')\n"
            "gm, _ = optimize_module(compile_benchmark(spec), OptLevel(1))\n"
            "res = [run_module(gm, spec.generate_inputs(0), engine=e)\n"
            "       for e in ('bytecode', 'codegen')]\n"
            "cache = get_cache()\n"
            "print(sorted(cache.hits.items()), res[0].cycles,\n"
            "      res[0].return_value == res[1].return_value\n"
            "      and res[0].globals_after == res[1].globals_after)\n"
        )
        import repro
        src = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ, REPRO_CACHE=str(cache_dir),
                   PYTHONPATH=src)
        outputs = [subprocess.run(
            [sys.executable, "-c", script], env=env, text=True,
            capture_output=True, check=True).stdout for _ in range(2)]
        first_hits, cycles, agree = outputs[0].rsplit(maxsplit=2)
        second_hits, cycles2, agree2 = outputs[1].rsplit(maxsplit=2)
        # First interpreter: everything generated, nothing served.
        assert first_hits == "[]"
        # Second interpreter: both tiers served straight from disk.
        assert second_hits == "[('bytecode', 1), ('codegen', 1)]"
        assert cycles == cycles2 and agree == "True" and agree2 == "True"


class TestRobustness:
    def prime(self):
        run_module(fresh_graph_module(), INPUTS, engine="bytecode")
        cache = get_cache()
        digest = module_digest(fresh_graph_module())
        path = cache.entry_path("bytecode", digest)
        assert path.is_file()
        return cache, digest, path

    def test_truncated_entry_is_ignored_and_rewritten(self, cache_dir):
        cache, digest, path = self.prime()
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 3])
        assert cache.load("bytecode", digest) is None
        assert cache.corrupt["bytecode"] == 1
        # The normal run path regenerates and rewrites the entry...
        result = run_module(fresh_graph_module(), INPUTS,
                            engine="bytecode")
        assert cache.stores["bytecode"] >= 2
        # ...after which it is a valid hit again.
        assert cache.load("bytecode", digest) is not None
        assert result_projection(result) == result_projection(
            run_module(fresh_graph_module(), INPUTS, engine="bytecode"))

    def test_garbage_entry_is_ignored(self, cache_dir):
        cache, digest, path = self.prime()
        path.write_bytes(b"not a pickle at all")
        assert cache.load("bytecode", digest) is None
        run_module(fresh_graph_module(), INPUTS, engine="bytecode")

    def test_version_mismatch_is_a_miss(self, cache_dir):
        cache, digest, path = self.prime()
        entry = pickle.loads(path.read_bytes())
        entry["version"] = FORMAT_VERSION + 1
        path.write_bytes(pickle.dumps(entry))
        assert cache.load("bytecode", digest) is None

    def test_digest_mismatch_is_a_miss(self, cache_dir):
        cache, digest, path = self.prime()
        other = "0" * len(digest)
        path.rename(cache.entry_path("bytecode", other))
        assert cache.load("bytecode", other) is None

    def test_corrupted_marshal_blob_falls_back_to_source(self, cache_dir):
        # marshal.loads may hard-crash on damaged bytes, so a blob whose
        # checksum no longer matches must be rejected *before* marshal
        # sees it — the entry still serves via its stored source text.
        run_module(fresh_graph_module(), INPUTS, engine="codegen")
        cache = get_cache()
        digest = module_digest(fresh_graph_module())
        path = cache.entry_path("codegen", digest)
        entry = pickle.loads(path.read_bytes())
        blob = entry["payload"]["code"]
        entry["payload"]["code"] = blob[:10] + b"\xff" * 8 + blob[18:]
        path.write_bytes(pickle.dumps(entry))
        warm = run_module(fresh_graph_module(), INPUTS, engine="codegen")
        assert cache.hits["codegen"] == 1  # served (via the source text)
        assert result_projection(warm) == result_projection(
            run_module(fresh_graph_module(), INPUTS, engine="codegen"))

    def test_compiler_source_change_is_a_miss(self, cache_dir,
                                              monkeypatch):
        # Lowered words embed raw opcode numbers assigned by a counter
        # in engine.py, so entries must not survive a compiler edit:
        # the source token partitions the namespace and a changed token
        # simply misses (no manual FORMAT_VERSION bump required).
        cache, digest, path = self.prime()
        monkeypatch.setattr(diskcache, "_source_token_cache",
                            "fedcba987654")
        assert cache.load("bytecode", digest) is None
        run_module(fresh_graph_module(), INPUTS, engine="bytecode")
        assert cache.entry_path("bytecode", digest).is_file()

    def test_kind_mismatch_is_a_miss(self, cache_dir):
        cache, digest, path = self.prime()
        path.rename(cache.entry_path("codegen", digest))
        assert cache.load("codegen", digest) is None

    def test_concurrent_writers_publish_complete_entries(self, cache_dir):
        cache = DiskCache(cache_dir)
        payload = {"blob": list(range(4096))}
        errors = []

        def hammer():
            try:
                for _ in range(50):
                    assert cache.store("bytecode", "k" * 64, payload)
                    loaded = cache.load("bytecode", "k" * 64)
                    # A reader racing the writers sees a *complete*
                    # entry (atomic rename), never a torn one.
                    assert loaded == payload
            except BaseException as exc:  # surfaced on the main thread
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.load("bytecode", "k" * 64) == payload
        assert not list(cache_dir.glob("**/*.tmp"))

    def test_unpicklable_payload_counted_not_raised(self, cache_dir):
        cache = get_cache()
        assert not cache.store("bytecode", "x" * 64,
                               {"fn": lambda: None})
        assert cache.failures["bytecode"] == 1
        assert cache.load("bytecode", "x" * 64) is None

    def test_intrinsic_heavy_benchmarks_are_cacheable(self, cache_dir):
        # dft's sin/cos intrinsics are inlined as function objects in the
        # lowered words and codegen constants; they must pickle (named
        # module-level functions, not lambdas) or the whole benchmark
        # silently loses the disk tier.
        spec = get_benchmark("dft")
        gm, _ = optimize_module(compile_benchmark(spec), OptLevel(1))
        for engine in DISK_ENGINES:
            run_module(gm, spec.generate_inputs(0), engine=engine)
        cache = get_cache()
        assert not cache.failures
        assert cache.stores["bytecode"] == 1
        assert cache.stores["codegen"] == 1
        gm2, _ = optimize_module(compile_benchmark(spec), OptLevel(1))
        warm = run_module(gm2, spec.generate_inputs(0), engine="codegen")
        assert cache.hits["codegen"] == 1
        assert result_projection(warm) == result_projection(
            run_module(gm, spec.generate_inputs(0), engine="codegen"))

    def test_unwritable_directory_never_crashes(self, tmp_path,
                                                monkeypatch):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        monkeypatch.setenv(diskcache.CACHE_ENV_VAR, str(blocked))
        diskcache.reset_cache_state()
        result = run_module(fresh_graph_module(), INPUTS,
                            engine="bytecode")
        assert result.cycles > 0  # simulation unaffected
        diskcache.reset_cache_state()


class TestLifecycle:
    def test_none_disables(self, monkeypatch, tmp_path):
        monkeypatch.setenv(diskcache.CACHE_ENV_VAR, DISABLE_VALUE)
        diskcache.reset_cache_state()
        assert resolve_cache_root() is None
        assert get_cache() is None
        run_module(fresh_graph_module(), INPUTS, engine="codegen")
        diskcache.reset_cache_state()

    def test_default_root_used_when_unset(self, monkeypatch):
        monkeypatch.delenv(diskcache.CACHE_ENV_VAR, raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", "/tmp/xdg-probe")
        assert str(resolve_cache_root()) == "/tmp/xdg-probe/repro"

    def test_set_cache_dir_exports_to_environment(self, monkeypatch,
                                                  tmp_path):
        monkeypatch.setenv(diskcache.CACHE_ENV_VAR, DISABLE_VALUE)
        diskcache.set_cache_dir(str(tmp_path))
        assert os.environ[diskcache.CACHE_ENV_VAR] == str(tmp_path)
        assert resolve_cache_root() == tmp_path
        diskcache.set_cache_dir(None)
        assert resolve_cache_root() is None
        diskcache.reset_cache_state()

    def test_clear_spares_unrelated_directories(self, cache_dir):
        # A cache root pointed at a shared directory: clear() may only
        # touch the cache's own v<digits> layout, never siblings that
        # happen to start with "v".
        run_module(fresh_graph_module(), INPUTS, engine="bytecode")
        bystander = cache_dir / "vendor"
        bystander.mkdir()
        (bystander / "keep.txt").write_text("precious")
        assert get_cache().clear() == 1
        assert (bystander / "keep.txt").read_text() == "precious"

    def test_entries_and_clear(self, cache_dir):
        for level in (0, 1):
            for engine in DISK_ENGINES:
                run_module(fresh_graph_module(level), INPUTS,
                           engine=engine)
        cache = get_cache()
        kinds = sorted(kind for kind, _ in cache.entries())
        assert kinds == ["bytecode", "bytecode", "codegen", "codegen"]
        assert cache.clear() == 4
        assert list(cache.entries()) == []
        # clearing is idempotent and the tier keeps working afterwards
        assert cache.clear() == 0
        run_module(fresh_graph_module(), INPUTS, engine="bytecode")
        assert len(list(cache.entries())) == 1

    def test_worker_processes_share_the_cache(self, cache_dir):
        # A jobs=2 study on the codegen engine: pool workers inherit
        # REPRO_CACHE and publish their lowered/generated forms, so the
        # parent-side cache directory fills up from worker processes.
        # The persistent pool snapshots the environment when its workers
        # fork, so it is recycled around this test's private directory.
        from repro.exec.pool import shutdown_pool
        from repro.feedback.study import StudyConfig, run_study
        shutdown_pool()
        try:
            run_study(StudyConfig(benchmarks=("sewha", "dft"), jobs=2,
                                  engine="codegen"))
            kinds = {kind for kind, _ in get_cache().entries()}
            assert kinds == {"bytecode", "codegen"}
        finally:
            shutdown_pool()


class TestSizeCapEviction:
    """The LRU eviction pass (REPRO_CACHE_MAX_MB) and its accounting."""

    def fill(self, cache, count, kind="bytecode", size=4096):
        digests = []
        for i in range(count):
            digest = f"{i:064x}"
            assert cache.store(kind, digest, {"blob": "x" * size})
            digests.append(digest)
        return digests

    def backdate(self, cache, kind, digests, start=1_000_000_000):
        # Distinct, strictly increasing recencies, far in the past.
        for i, digest in enumerate(digests):
            path = cache.entry_path(kind, digest)
            os.utime(path, (start + i, start + i))

    def test_lru_order_oldest_first(self, cache_dir):
        cache = DiskCache(cache_dir)
        digests = self.fill(cache, 4)
        self.backdate(cache, "bytecode", digests)
        entry_size = cache.entry_path(
            "bytecode", digests[0]).stat().st_size
        evicted = cache.evict_to_cap(max_bytes=2 * entry_size)
        assert evicted == 2
        survivors = [d for d in digests
                     if cache.entry_path("bytecode", d).exists()]
        assert survivors == digests[2:]  # the two most recent
        assert cache.evictions["bytecode"] == 2
        assert cache.evicted_bytes["bytecode"] == 2 * entry_size
        assert cache.op_count["evict"] == 1
        assert cache.op_seconds["evict"] >= 0.0
        assert cache.total_bytes() <= 2 * entry_size

    def test_hit_refreshes_recency(self, cache_dir):
        cache = DiskCache(cache_dir)
        digests = self.fill(cache, 2)
        self.backdate(cache, "bytecode", digests)
        # digests[0] is the older entry, but a hit bumps its atime...
        assert cache.load("bytecode", digests[0]) is not None
        entry_size = cache.entry_path(
            "bytecode", digests[0]).stat().st_size
        cache.evict_to_cap(max_bytes=entry_size)
        # ...so the *unread* entry is the LRU one and goes first.
        assert cache.entry_path("bytecode", digests[0]).exists()
        assert not cache.entry_path("bytecode", digests[1]).exists()

    def test_pinned_entries_never_evicted(self, cache_dir):
        cache = DiskCache(cache_dir)
        digests = self.fill(cache, 3)
        self.backdate(cache, "bytecode", digests)
        cache.pin("bytecode", digests[0])
        cache.pin("bytecode", digests[0])  # refcounted: two holders
        assert cache.is_pinned("bytecode", digests[0])
        assert cache.evict_to_cap(max_bytes=0) == 2
        assert cache.entry_path("bytecode", digests[0]).exists()
        cache.unpin("bytecode", digests[0])
        assert cache.is_pinned("bytecode", digests[0])  # one holder left
        cache.unpin("bytecode", digests[0])
        assert not cache.is_pinned("bytecode", digests[0])
        assert cache.evict_to_cap(max_bytes=0) == 1
        assert not cache.entry_path("bytecode", digests[0]).exists()

    def test_store_triggers_eviction_under_env_cap(self, cache_dir,
                                                   monkeypatch):
        monkeypatch.setenv(diskcache.MAX_MB_ENV_VAR, "0.02")  # ~20 KiB
        cache = DiskCache(cache_dir)
        self.fill(cache, 12, size=4096)  # ~4 KiB+ each, 12 stores
        cap = diskcache.resolve_max_bytes()
        assert cap == int(0.02 * 1024 * 1024)
        assert cache.total_bytes() <= cap
        assert sum(cache.evictions.values()) > 0
        # the freshest entry always survives its own store's eviction
        assert cache.entry_path("bytecode", f"{11:064x}").exists()

    def test_malformed_cap_is_uncapped_on_hot_path(self, cache_dir,
                                                   monkeypatch):
        monkeypatch.setenv(diskcache.MAX_MB_ENV_VAR, "banana")
        assert diskcache.resolve_max_bytes() is None
        with pytest.raises(Exception, match="REPRO_CACHE_MAX_MB"):
            diskcache.resolve_max_bytes(strict=True)
        monkeypatch.setenv(diskcache.MAX_MB_ENV_VAR, "-3")
        assert diskcache.resolve_max_bytes() is None
        cache = DiskCache(cache_dir)
        self.fill(cache, 2)  # stores never raise under a bad knob
        assert not cache.evictions


class TestStaleTmpSweep:
    """Orphaned atomic-write temporaries are age-gated and reaped."""

    def plant(self, cache, age, name="deadbeef0000.orphan.tmp"):
        cache.entry_dir.mkdir(parents=True, exist_ok=True)
        orphan = cache.entry_dir / f".{name}"
        orphan.write_bytes(b"half-written entry")
        stamp = __import__("time").time() - age
        os.utime(orphan, (stamp, stamp))
        return orphan

    def test_eviction_scan_reaps_old_spares_fresh(self, cache_dir):
        cache = DiskCache(cache_dir)
        old = self.plant(cache, age=2 * diskcache.TMP_SWEEP_AGE_SECONDS)
        fresh = self.plant(cache, age=0, name="deadbeef0001.live.tmp")
        assert cache.evict_to_cap(max_bytes=1 << 30) == 0
        assert not old.exists()  # crashed writer's leftover: reaped
        assert fresh.exists()    # presumed still-racing writer: kept
        assert cache.tmp_swept == 1

    def test_clear_reaps_tmp_files_of_any_age(self, cache_dir):
        cache = DiskCache(cache_dir)
        run_module(fresh_graph_module(), INPUTS, engine="bytecode")
        live = get_cache()
        self.plant(live, age=0)
        assert live.clear() == 2  # one entry + one orphan
        assert not live.tmp_files()
        assert live.tmp_swept == 1
        _ = cache

    def test_sweep_is_idempotent(self, cache_dir):
        cache = DiskCache(cache_dir)
        self.plant(cache, age=2 * diskcache.TMP_SWEEP_AGE_SECONDS)
        assert cache.sweep_stale_tmp() == 1
        assert cache.sweep_stale_tmp() == 0
        assert cache.tmp_swept == 1


class TestCounterGuards:
    """unusable()/reject() can never drive the counters negative."""

    def seed_hit(self, cache):
        assert cache.store("bytecode", "a" * 64, {"blob": 1})
        assert cache.load("bytecode", "a" * 64) is not None

    def test_reject_without_hit_is_a_counted_noop(self, cache_dir):
        cache = DiskCache(cache_dir)
        assert cache.reject("bytecode") is False
        assert cache.unusable("bytecode") is False
        assert cache.hits["bytecode"] == 0
        assert cache.rejected["bytecode"] == 0
        assert cache.corrupt["bytecode"] == 0

    def test_double_reject_stops_at_zero(self, cache_dir):
        cache = DiskCache(cache_dir)
        self.seed_hit(cache)
        assert cache.reject("bytecode") is True
        assert cache.hits["bytecode"] == 0
        assert cache.rejected["bytecode"] == 1
        assert cache.misses["bytecode"] == 1
        # a second reclassification has no hit to convert
        assert cache.reject("bytecode") is False
        assert cache.unusable("bytecode") is False
        snapshot = cache.stats_snapshot()
        for kind_stats in snapshot["kinds"].values():
            for value in kind_stats.values():
                assert value >= 0

    def test_snapshot_shape_and_nonnegativity(self, cache_dir):
        cache = DiskCache(cache_dir)
        self.seed_hit(cache)
        cache.load("bytecode", "0" * 64)  # a miss
        cache.evict_to_cap(max_bytes=0)
        snapshot = cache.stats_snapshot()
        assert snapshot["root"] == str(cache_dir)
        assert set(snapshot["ops"]) == {"hit", "miss", "store", "evict"}
        for op_stats in snapshot["ops"].values():
            assert op_stats["count"] >= 1
            assert op_stats["seconds"] >= 0.0
        assert snapshot["pinned"] == 0
        assert snapshot["tmp_swept"] >= 0


class TestResultTier:
    """The whole-result tier: opt-in, round-trip, invalidation token."""

    def test_off_by_default(self, cache_dir, monkeypatch):
        monkeypatch.delenv(diskcache.RESULT_ENV_VAR, raising=False)
        assert not diskcache.result_cache_enabled()
        for truthy in ("1", "true", "ON", "yes"):
            monkeypatch.setenv(diskcache.RESULT_ENV_VAR, truthy)
            assert diskcache.result_cache_enabled()
        monkeypatch.setenv(diskcache.RESULT_ENV_VAR, "0")
        assert not diskcache.result_cache_enabled()

    def test_source_token_is_stable(self):
        token = diskcache.result_source_token()
        assert token == diskcache.result_source_token()
        assert len(token) == 16
        int(token, 16)  # hex

    def test_run_study_round_trips_through_disk(self, cache_dir,
                                                monkeypatch):
        from repro.feedback.results import study_summary
        from repro.feedback.study import StudyConfig, run_study
        monkeypatch.setenv(diskcache.RESULT_ENV_VAR, "1")
        config = StudyConfig(benchmarks=("sewha",), levels=(0, 1))
        first = run_study(config)
        cache = get_cache()
        assert cache.stores[diskcache.RESULT_KIND] == 1
        # The repeat is served whole from disk: no run_benchmark calls.
        import repro.feedback.study as study_mod

        def boom(*_a, **_k):
            raise AssertionError("result-tier hit must not simulate")

        monkeypatch.setattr(study_mod, "run_benchmark", boom)
        second = run_study(config)
        assert cache.hits[diskcache.RESULT_KIND] == 1
        assert study_summary(second) == study_summary(first)
        assert second.config is config  # jobs-twin config swapped in

    def test_jobs_knob_shares_one_result_key(self, cache_dir):
        from repro.feedback.study import StudyConfig, result_request_key
        base = StudyConfig(benchmarks=("sewha",))
        assert result_request_key("study", base) == \
            result_request_key("study", StudyConfig(benchmarks=("sewha",),
                                                    jobs=4))
        assert result_request_key("study", base) != \
            result_request_key("study", StudyConfig(benchmarks=("sewha",),
                                                    seed=1))
        assert result_request_key("study", base) != \
            result_request_key("explore-study", base)
