"""Simulator tests: scalar semantics, memory, calls, profiling, errors."""

import math

import pytest

from repro.errors import SimulationError
from repro.cfg.build import build_module_graphs
from repro.frontend import compile_source
from repro.sim.machine import run_module
from repro.sim.values import int_div, int_mod

from tests.conftest import compile_and_run


def run(source, inputs=None):
    return compile_and_run(source, inputs)


def ret(source, inputs=None):
    return run(source, inputs).return_value


class TestIntegerSemantics:
    def test_truncating_division_negative(self):
        assert ret("int main() { return -7 / 2; }") == -3

    def test_truncating_division_positive(self):
        assert ret("int main() { return 7 / 2; }") == 3

    def test_mod_sign_follows_dividend(self):
        assert ret("int main() { return -7 % 2; }") == -1
        assert ret("int main() { return 7 % -2; }") == 1

    def test_div_mod_invariant_helpers(self):
        for a in (-9, -1, 0, 5, 17):
            for b in (-4, -1, 2, 7):
                assert int_div(a, b) * b + int_mod(a, b) == a

    def test_division_by_zero_raises(self):
        with pytest.raises(SimulationError):
            run("int n = 0; int main() { return 5 / n; }")

    def test_shifts(self):
        assert ret("int main() { return (1 << 6) + (65 >> 3); }") == 72

    def test_arithmetic_right_shift_of_negative(self):
        assert ret("int main() { return -8 >> 1; }") == -4

    def test_negative_shift_amount_raises(self):
        with pytest.raises(SimulationError):
            run("int n = -1; int main() { return 4 << n; }")

    def test_bitwise_ops(self):
        assert ret("int main() { return (12 & 10) | (1 ^ 3); }") == 10

    def test_bitnot(self):
        assert ret("int main() { return ~5; }") == -6


class TestFloatSemantics:
    def test_float_arithmetic(self):
        result = run("float out[1]; int main() "
                     "{ out[0] = (1.5 + 2.25) * 2.0; return 0; }")
        assert result.array("out")[0] == 7.5

    def test_float_division_by_zero_raises(self):
        with pytest.raises(SimulationError):
            run("float z = 0.0; float out[1]; "
                "int main() { out[0] = 1.0 / z; return 0; }")

    def test_ftoi_truncates_toward_zero(self):
        assert ret("float f = -2.9; int main() { return (int) f; }") == -2

    def test_itof_exact(self):
        result = run("float out[1]; int main() { int i; i = 7; "
                     "out[0] = (float) i / 2.0; return 0; }")
        assert result.array("out")[0] == 3.5

    def test_intrinsics(self):
        result = run("float out[3]; int main() { "
                     "out[0] = sqrt(9.0); out[1] = fabs(-2.5); "
                     "out[2] = cos(0.0); return 0; }")
        assert result.array("out") == [3.0, 2.5, 1.0]

    def test_sqrt_domain_error(self):
        with pytest.raises(SimulationError):
            run("float v = -1.0; float out[1]; "
                "int main() { out[0] = sqrt(v); return 0; }")

    def test_sin_matches_math(self):
        result = run("float out[1]; float v = 0.7; "
                     "int main() { out[0] = sin(v); return 0; }")
        assert result.array("out")[0] == pytest.approx(math.sin(0.7))


class TestMemory:
    def test_inputs_bound_to_globals(self):
        result = run("int x[4]; int y[4]; int main() { int i; "
                     "for (i = 0; i < 4; i++) { y[i] = x[i] * 2; } "
                     "return 0; }", {"x": [1, 2, 3, 4]})
        assert result.array("y") == [2, 4, 6, 8]

    def test_unknown_input_name_raises(self):
        with pytest.raises(SimulationError):
            run("int x[4]; int main() { return 0; }", {"bogus": [1]})

    def test_oversized_input_raises(self):
        with pytest.raises(SimulationError):
            run("int x[2]; int main() { return 0; }", {"x": [1, 2, 3]})

    def test_load_out_of_bounds(self):
        with pytest.raises(SimulationError) as exc:
            run("int a[4]; int n = 9; int main() { return a[n]; }")
        assert "out of bounds" in str(exc.value)

    def test_store_out_of_bounds(self):
        with pytest.raises(SimulationError):
            run("int a[4]; int n = -1; "
                "int main() { a[n] = 3; return 0; }")

    def test_local_arrays_zero_initialized(self):
        assert ret("int main() { int buf[8]; return buf[5]; }") == 0

    def test_local_arrays_fresh_per_call(self):
        src = """
        int f(int v) { int buf[4]; buf[0] = buf[0] + v; return buf[0]; }
        int main() { int a; a = f(5); return f(3); }
        """
        assert ret(src) == 3  # not 8: storage is per activation

    def test_global_initializer_applied(self):
        assert ret("int c[3] = { 10, 20, 30 }; "
                   "int main() { return c[1]; }") == 20

    def test_uninitialized_tail_is_zero(self):
        assert ret("int c[4] = { 9 }; int main() { return c[3]; }") == 0


class TestCalls:
    def test_scalar_args_by_value(self):
        src = """
        int bump(int v) { v = v + 1; return v; }
        int main() { int a; a = 5; bump(a); return a; }
        """
        assert ret(src) == 5

    def test_array_args_by_reference(self):
        src = """
        int buf[4];
        void fill(int a[4], int v) { int i;
            for (i = 0; i < 4; i++) { a[i] = v; } }
        int main() { fill(buf, 7); return buf[3]; }
        """
        assert ret(src) == 7

    def test_local_array_passed_to_callee(self):
        src = """
        int total(int a[4]) { int s; int i; s = 0;
            for (i = 0; i < 4; i++) { s += a[i]; } return s; }
        int main() { int tmp[4]; int i;
            for (i = 0; i < 4; i++) { tmp[i] = i; }
            return total(tmp); }
        """
        assert ret(src) == 6

    def test_recursion(self):
        src = """
        int fact(int n) { if (n <= 1) { return 1; }
            return n * fact(n - 1); }
        int main() { return fact(6); }
        """
        assert ret(src) == 720

    def test_runaway_recursion_guard(self):
        src = """
        int loop(int n) { return loop(n + 1); }
        int main() { return loop(0); }
        """
        with pytest.raises(SimulationError) as exc:
            run(src)
        assert "depth" in str(exc.value)

    def test_mutual_recursion(self):
        src = """
        int is_odd(int n);
        """  # forward declarations unsupported; use ordering instead
        src = """
        int is_even(int n) { if (n == 0) { return 1; }
            return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) { return 0; }
            return is_even(n - 1); }
        int main() { return is_even(10) + is_odd(7) * 10; }
        """
        assert ret(src) == 11


class TestProfile:
    def test_cycle_limit(self):
        from repro.frontend import compile_source
        module = compile_source(
            "int main() { while (1) { } return 0; }", "t")
        gm = build_module_graphs(module)
        with pytest.raises(SimulationError):
            run_module(gm, max_cycles=1000)

    def test_node_counts_sum_to_cycles(self):
        result = run("int main() { int i; int s; s = 0; "
                     "for (i = 0; i < 10; i++) { s += i; } return s; }")
        total = sum(sum(c.values())
                    for c in result.profile.node_counts.values())
        assert total == result.cycles

    def test_edge_counts_conserve_flow(self):
        result = run("int main() { int i; int s; s = 0; "
                     "for (i = 0; i < 10; i++) { s += i; } return s; }")
        profile = result.profile
        for fn, edges in profile.edge_counts.items():
            outflow = {}
            for (src, _dst), count in edges.items():
                outflow[src] = outflow.get(src, 0) + count
            for src, total in outflow.items():
                # Every execution of a non-return node leaves it once.
                assert total == profile.node_counts[fn][src]

    def test_call_counts(self):
        result = run("int f() { return 1; } int main() "
                     "{ int i; int s; s = 0; for (i = 0; i < 5; i++) "
                     "{ s += f(); } return s; }")
        assert result.profile.call_counts["f"] == 5
        assert result.profile.call_counts["main"] == 1

    def test_loop_body_hotter_than_exit(self):
        result = run("int main() { int i; int s; s = 0; "
                     "for (i = 0; i < 100; i++) { s += i; } return s; }")
        counts = sorted(result.profile.node_counts["main"].values())
        assert counts[-1] >= 100  # hottest node runs per iteration
        assert counts[0] == 1     # entry/exit run once
