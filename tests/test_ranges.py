"""Value-range abstract interpretation and bounds-guard elimination.

Covers the interval domain in isolation, the whole-module analysis and
its proof certificates, the independent re-checker, the sweep/CLI
surface (``repro verify --ranges`` / ``--json``) and the runtime
contract: guard-eliminated artifacts stay bit-identical to the guarded
ones, and a violated premise falls back to the guarded build.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import ranges as R
from repro.analysis.sweep import report_json, run_sweep
from repro.frontend import compile_source
from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim.codegen import generate_module
from repro.sim.lanes import generate_lane_module
from repro.sim.machine import run_module, run_module_batch

# Same FIR-like kernel as tests/conftest.py (duplicated: importing from
# conftest is ambiguous when other conftests share the collection path).
FIR_LIKE_SOURCE = """
float x[40];
float h[8];
float y[40];
int n = 40;
int taps = 8;

int main() {
    int i; int k;
    for (i = 0; i < n; i++) {
        float acc;
        acc = 0.0;
        for (k = 0; k < taps; k++) {
            if (i - k >= 0) {
                acc += h[k] * x[i - k];
            }
        }
        y[i] = acc;
    }
    return 0;
}
"""

# A definite out-of-bounds read: constant index 12 into an 8-element
# array, no input can make it legal.
OOB_SOURCE = """
int x[8];

int main() {
    return x[12];
}
"""


def _inputs():
    import random
    rng = random.Random(7)
    return {
        "x": [rng.uniform(-1, 1) for _ in range(40)],
        "h": [rng.uniform(-1, 1) for _ in range(8)],
    }


def _graph_module(source=FIR_LIKE_SOURCE, level=2, name="t"):
    module = compile_source(source, name)
    gm, _ = optimize_module(module, OptLevel(level))
    return gm


# -- interval domain ---------------------------------------------------------------


class TestIntervalDomain:
    def test_join_meet(self):
        assert R._join_iv((0, 3), (2, 9)) == (0, 9)
        assert R._join_iv((None, 3), (2, 9)) == (None, 9)
        assert R._meet_iv((0, 9), (4, None)) == (4, 9)
        assert R._meet_iv((0, 3), (5, 9)) is None  # empty = dead edge

    def test_arithmetic(self):
        assert R._add_iv((1, 2), (10, 20)) == (11, 22)
        assert R._sub_iv((1, 2), (10, 20)) == (-19, -8)
        assert R._neg_iv((1, 2)) == (-2, -1)
        assert R._mul_iv((-2, 3), (4, 5)) == (-10, 15)
        assert R._mul_iv((0, None), (1, 1)) == R.TOP

    def test_widening_thresholds(self):
        # growing upper bound jumps to +inf, stable bounds survive
        assert R._widen_iv((0, 4), (0, 5)) == (0, None)
        assert R._widen_iv((0, 4), (0, 4)) == (0, 4)
        # shrinking lower bound pauses at the 0 threshold first
        assert R._widen_iv((2, 4), (1, 4)) == (0, 4)
        assert R._widen_iv((0, 4), (-1, 4)) == (None, 4)

    def test_classification(self):
        assert R._classify((0, 7), 8) == R.SAFE
        assert R._classify((0, 8), 8) == R.UNKNOWN
        assert R._classify((8, 12), 8) == R.UNSAFE
        assert R._classify((None, 7), 8) == R.UNKNOWN
        assert R._classify(None, 8) == R.UNKNOWN
        assert R._classify((0, 7), None) == R.UNKNOWN

    def test_refinement_narrows_on_both_edges(self):
        env = {3: (0, 100)}
        pred = ("cmp", "lt", ("r", 3), ("c", 10))
        assert R._refine(env, pred, True)[3] == (0, 9)
        assert R._refine(env, pred, False)[3] == (10, 100)

    def test_refinement_kills_dead_edge(self):
        env = {3: (20, 30)}
        pred = ("cmp", "lt", ("r", 3), ("c", 10))
        assert R._refine(env, pred, True) is None
        assert R._refine(env, pred, False)[3] == (20, 30)

    def test_truth_refinement_excludes_zero(self):
        env = {2: (0, 5)}
        assert R._refine(env, ("truth", 2), True)[2] == (1, 5)
        assert R._refine(env, ("truth", 2), False)[2] == (0, 0)
        assert R._refine({2: (0, 0)}, ("truth", 2), True) is None


# -- whole-module analysis ---------------------------------------------------------


class TestModuleAnalysis:
    def test_fir_like_proves_safe_loads(self):
        gm = _graph_module()
        mranges = R.analyze_module(gm)
        counts = mranges.counts()
        assert counts[R.SAFE] > 0
        assert counts[R.UNSAFE] == 0
        assert not mranges.unsafe_accesses()
        # the loop-bound premises are global scalars with stable values
        assert mranges.premises  # n / taps used to bound the loops

    def test_oob_program_classified_unsafe(self):
        gm = _graph_module(OOB_SOURCE)
        mranges = R.analyze_module(gm)
        assert mranges.counts()[R.UNSAFE] == 1
        [(graph, proof)] = mranges.unsafe_accesses()
        assert proof.index_interval == (12, 12)
        assert proof.length == 8

    def test_certificate_roundtrip_verifies(self):
        gm = _graph_module()
        from repro.sim.engine import lower_module
        lowered = lower_module(gm)
        mranges = R.analyze_lowered(gm, lowered)
        cert = R.module_certificates(lowered, mranges)
        verified, problems = R.check_bounds_payload(
            gm, lowered.graphs, cert)
        assert problems == []
        for name, cg in cert["graphs"].items():
            assert set(cg["safe"]) == verified[name]

    def test_tampered_certificate_interval_rejected(self):
        gm = _graph_module()
        from repro.sim.engine import lower_module
        lowered = lower_module(gm)
        mranges = R.analyze_lowered(gm, lowered)
        cert = R.module_certificates(lowered, mranges)
        name = next(n for n, cg in cert["graphs"].items() if cg["envs"])
        envs = cert["graphs"][name]["envs"]
        idx = next(iter(envs))
        slot = next(iter(envs[idx]))
        envs[idx][slot] = [0, 0]  # claim tighter than the flow supports
        verified, problems = R.check_bounds_payload(
            gm, lowered.graphs, cert)
        assert problems  # no longer inductive

    def test_fabricated_premise_rejected(self):
        gm = _graph_module()
        from repro.sim.engine import lower_module
        lowered = lower_module(gm)
        mranges = R.analyze_lowered(gm, lowered)
        cert = R.module_certificates(lowered, mranges)
        cert["premises"]["nonexistent"] = 4
        verified, problems = R.check_bounds_payload(
            gm, lowered.graphs, cert)
        assert problems

    def test_premises_hold_checks_storage(self):
        gm = _graph_module()
        mranges = R.analyze_module(gm)
        premises = dict(mranges.premises)
        assert premises
        state = run_module(gm, _inputs(), engine="reference")
        # globals_after maps name -> list of values
        class _S:  # ArrayStorage stand-in
            def __init__(self, data):
                self.data = data
        globals_ = {name: _S(list(values))
                    for name, values in state.globals_after.items()}
        assert R.premises_hold(premises, globals_)
        name = next(iter(premises))
        globals_[name].data[0] += 1
        assert not R.premises_hold(premises, globals_)


# -- sweep / CLI surface -----------------------------------------------------------


class TestVerifySurface:
    def test_sweep_reports_range_counts(self):
        report = run_sweep(benchmarks=["fir"], levels=[1],
                           tiers=("bytecode",), ranges=True)
        assert report.ok
        counts = report.ranges[("fir", 1)]
        assert counts[R.SAFE] > 0 and counts[R.UNSAFE] == 0

    def test_sweep_flags_seeded_oob_statically(self, monkeypatch):
        from repro.suite import registry
        from repro.suite.registry import BenchmarkSpec
        spec = BenchmarkSpec(
            name="oob", description="seeded out-of-bounds read",
            data_description="none", source=OOB_SOURCE,
            inputs=(), outputs=(), generator=lambda seed: {})
        monkeypatch.setitem(registry._REGISTRY, "oob", spec)
        # tiers=() : nothing is executed or even code-generated — the
        # UNSAFE verdict comes from the analysis alone
        report = run_sweep(benchmarks=["oob"], levels=[0], tiers=(),
                           ranges=True)
        assert not report.ok
        assert report.ranges[("oob", 0)][R.UNSAFE] == 1
        invariants = {v.invariant for _, v in report.violations}
        assert invariants == {"bounds-unsafe"}

    def test_report_json_shape(self):
        report = run_sweep(benchmarks=["fir"], levels=[1],
                           tiers=("bytecode",), ranges=True)
        doc = report_json(report)
        text = json.dumps(doc)  # must be serializable
        doc = json.loads(text)
        assert doc["ok"] is True
        assert doc["ranges"][0]["benchmark"] == "fir"
        assert {"SAFE", "UNKNOWN", "UNSAFE"} <= set(doc["ranges"][0])

    def test_cli_verify_json(self, capsys):
        from repro.cli import main
        rc = main(["verify", "--benchmarks", "fir", "--levels", "1",
                   "--tiers", "bytecode", "--ranges", "--json",
                   "--skip-lint"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True and doc["ranges"]


# -- runtime: elision is bit-identical, premises gate it ---------------------------


def _same_result(a, b):
    assert a.return_value == b.return_value
    assert a.globals_after == b.globals_after
    assert vars(a.profile) == vars(b.profile)


class TestGuardElimination:
    @pytest.mark.parametrize("level", [0, 1, 2])
    def test_codegen_elides_and_matches_reference(self, level,
                                                  monkeypatch):
        gm = _graph_module(level=level)
        generated = generate_module(gm)
        assert generated.bounds is not None
        # at least one load goes out unguarded under a proof
        assert any(cg["safe"]
                   for cg in generated.bounds["graphs"].values())
        inputs = _inputs()
        reference = run_module(gm, inputs, engine="reference")
        _same_result(run_module(gm, inputs, engine="codegen"), reference)
        # escape hatch: REPRO_RANGES=0 builds the fully guarded variant
        monkeypatch.setenv(R.RANGES_ENV_VAR, "0")
        gm2 = _graph_module(level=level)
        guarded = generate_module(gm2)
        assert guarded.bounds is None
        _same_result(run_module(gm2, inputs, engine="codegen"),
                     reference)

    def test_lanes_elide_and_match(self):
        gm = _graph_module()
        lm = generate_lane_module(gm, 4)
        assert lm.bounds is not None
        batch = [_inputs() for _ in range(4)]
        for seed, inputs in enumerate(batch):
            inputs["x"][0] += seed
        lanes = run_module_batch(gm, batch, engine="lanes")
        singles = [run_module(gm, inputs, engine="reference")
                   for inputs in batch]
        for got, want in zip(lanes, singles):
            _same_result(got, want)

    def test_premise_violation_falls_back_guarded(self):
        # taps=4 contradicts the analyzed premise taps=8: the runtime
        # check must reject the certificate and take the guarded build,
        # still bit-identical to the reference engine
        gm = _graph_module()
        inputs = _inputs()
        inputs["taps"] = [4]
        reference = run_module(gm, inputs, engine="reference")
        _same_result(run_module(gm, inputs, engine="codegen"), reference)
        batch = [dict(inputs) for _ in range(3)]
        lanes = run_module_batch(gm, batch, engine="lanes")
        for got in lanes:
            _same_result(got, reference)

    def test_unguarded_source_really_differs(self):
        gm = _graph_module()
        elided = generate_module(gm, ranges_on=True)
        guarded = generate_module(gm, ranges_on=False)
        assert elided.source != guarded.source
        assert guarded.source.count("if 0 <= ") \
            > elided.source.count("if 0 <= ")
