"""Lane-engine tests: per-lane equivalence, divergence, faults, caching.

The lane tier (:mod:`repro.sim.lanes`) runs every seed of a batch in one
generated pass, so its contract is *per lane*: each lane's result —
return value, memory, cycles, the fully resolved profile, and any fault
— must be bit-identical to that lane's own sequential ``run_module``
call on the reference oracle.  The differential harness here sweeps the
12-benchmark suite at levels 0–2, programs whose lanes genuinely
diverge at branches, and batches where some lanes fault mid-run while
the rest complete; the fuzz harness in ``tests/test_fuzz_engines.py``
extends the same per-lane oracle to generated corpora.
"""

import pickle

import pytest

from repro.cfg.build import build_module_graphs
from repro.errors import SimulationError
from repro.frontend import compile_source
from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim import diskcache
from repro.sim.lanes import LaneEngine, generate_lane_module
from repro.sim.machine import (ENGINES, LANE_SHARD_MIN, run_module,
                               run_module_batch, run_module_batch_auto)
from repro.suite.registry import all_benchmarks, get_benchmark
from repro.suite.runner import compile_benchmark

SUITE = [spec.name for spec in all_benchmarks()]
LEVELS = (0, 1, 2)
LANE_COUNTS = (2, 4, 9)


def assert_identical(expected, actual):
    """Bit-identical MachineResults, profile included."""
    assert actual.return_value == expected.return_value
    assert actual.globals_after == expected.globals_after
    assert actual.cycles == expected.cycles
    assert actual.profile.node_counts == expected.profile.node_counts
    assert actual.profile.edge_counts == expected.profile.edge_counts
    assert actual.profile.call_counts == expected.profile.call_counts


def reference_outcome(gm, inputs):
    try:
        return ("ok", run_module(gm, inputs, engine="reference"))
    except SimulationError as exc:
        return ("error", str(exc))


def assert_lanes_match_reference(gm, inputs_list):
    """Every lane of one batch == its own sequential reference run."""
    outcomes = LaneEngine(gm).run_batch_outcomes(inputs_list)
    assert len(outcomes) == len(inputs_list)
    for lane, (inputs, (kind, payload)) in enumerate(
            zip(inputs_list, outcomes)):
        ref_kind, ref_payload = reference_outcome(gm, inputs)
        assert kind == ref_kind, (lane, payload)
        if kind == "error":
            assert payload == ref_payload, lane
        else:
            assert_identical(ref_payload, payload)


class TestSuiteDifferential:
    """Every benchmark at every level, lane-by-lane vs the oracle."""

    @pytest.mark.parametrize("level", LEVELS)
    @pytest.mark.parametrize("name", SUITE)
    def test_levels(self, name, level):
        spec = get_benchmark(name)
        gm, _ = optimize_module(compile_benchmark(spec), OptLevel(level))
        assert_lanes_match_reference(
            gm, [spec.generate_inputs(seed) for seed in range(4)])

    @pytest.mark.parametrize("lanes", LANE_COUNTS)
    def test_lane_counts(self, lanes):
        spec = get_benchmark("sewha")
        gm, _ = optimize_module(compile_benchmark(spec), OptLevel(1))
        assert_lanes_match_reference(
            gm, [spec.generate_inputs(seed) for seed in range(lanes)])

    def test_single_lane_run(self):
        spec = get_benchmark("fir")
        gm, _ = optimize_module(compile_benchmark(spec), OptLevel(2))
        inputs = spec.generate_inputs(0)
        assert_identical(run_module(gm, inputs, engine="reference"),
                         run_module(gm, inputs, engine="lanes"))

    def test_empty_batch(self):
        spec = get_benchmark("fir")
        gm, _ = optimize_module(compile_benchmark(spec), OptLevel(0))
        assert run_module_batch(gm, [], engine="lanes") == []


class TestDivergence:
    """Lanes that take different branch paths split into groups; every
    group's counters and outputs must still match per-lane runs."""

    def _module(self, src):
        return build_module_graphs(compile_source(src, "t"))

    @pytest.mark.parametrize("level", LEVELS)
    def test_data_dependent_branch(self, level):
        src = ("int sel[1]; int out[1];"
               "int main() { int s; int i; s = 0;"
               " if (sel[0] > 0) { for (i = 0; i < 8; i++) { s += i; } }"
               " else { s = 0 - 5; }"
               " out[0] = s; return s; }")
        gm, _ = optimize_module(compile_source(src, "t"), OptLevel(level))
        inputs_list = [{"sel": [v]} for v in (1, -1, 0, 3, -2, 1, 0, 2, -9)]
        assert_lanes_match_reference(gm, inputs_list)

    def test_per_lane_trip_counts(self):
        """Back-edge divergence: each lane loops a different number of
        times, so cycle counts differ per lane."""
        src = ("int n[1];"
               "int main() { int s; int i; s = 0;"
               " for (i = 0; i < n[0]; i++) { s = s * 3 + i; }"
               " return s; }")
        gm = self._module(src)
        inputs_list = [{"n": [v]} for v in (0, 1, 5, 2, 9, 7, 3, 4, 6)]
        assert_lanes_match_reference(gm, inputs_list)
        results = LaneEngine(gm).run_batch(inputs_list)
        assert len({r.cycles for r in results}) > 1

    def test_divergence_inside_call(self):
        """A callee that diverges per lane: post-call regrouping by lane
        cycle count must keep the sparse counters exact."""
        src = ("int n[2];"
               "int f(int k) { int s; int i; s = 1;"
               " for (i = 0; i < k; i++) { s += s; } return s; }"
               "int main() { return f(n[0]) + f(n[1]); }")
        gm = self._module(src)
        inputs_list = [{"n": [a, b]}
                       for a, b in ((0, 4), (4, 0), (2, 2), (7, 1),
                                    (1, 7), (3, 5), (5, 3), (6, 6), (0, 0))]
        assert_lanes_match_reference(gm, inputs_list)


class TestFaultParity:
    """A faulting lane raises its own sequential error message while the
    other lanes of the batch complete bit-identically."""

    SRC = ("int a[4]; int idx[1];"
           "int main() { return a[idx[0]] + 1; }")

    def _module(self):
        return build_module_graphs(compile_source(self.SRC, "t"))

    def test_mid_batch_fault(self):
        gm = self._module()
        inputs_list = [{"a": [1, 2, 3, 4], "idx": [i]}
                       for i in (0, 2, 9, 1, 7, 3)]  # lanes 2 and 4 trap
        outcomes = LaneEngine(gm).run_batch_outcomes(inputs_list)
        kinds = [kind for kind, _ in outcomes]
        assert kinds == ["ok", "ok", "error", "ok", "error", "ok"]
        assert_lanes_match_reference(gm, inputs_list)

    def test_run_batch_raises_first_fault(self):
        gm = self._module()
        inputs_list = [{"a": [1, 2, 3, 4], "idx": [i]}
                       for i in (0, 9, 1, 7)]
        with pytest.raises(SimulationError,
                           match=r"load out of bounds: a\[9\]"):
            run_module_batch(gm, inputs_list, engine="lanes")

    def test_all_lanes_fault(self):
        gm = self._module()
        inputs_list = [{"a": [1, 2, 3, 4], "idx": [i]} for i in (8, 9)]
        outcomes = LaneEngine(gm).run_batch_outcomes(inputs_list)
        assert [kind for kind, _ in outcomes] == ["error", "error"]
        assert_lanes_match_reference(gm, inputs_list)

    def test_unknown_input_name_faults_only_that_lane(self):
        gm = self._module()
        inputs_list = [{"a": [1, 2, 3, 4], "idx": [0]},
                       {"bogus": [1]},
                       {"a": [5, 6, 7, 8], "idx": [1]}]
        outcomes = LaneEngine(gm).run_batch_outcomes(inputs_list)
        assert [kind for kind, _ in outcomes] == ["ok", "error", "ok"]
        assert "bogus" in outcomes[1][1]
        assert_lanes_match_reference(gm, inputs_list)

    def test_cycle_limit_parity(self):
        spec = get_benchmark("fir")
        gm, _ = optimize_module(compile_benchmark(spec), OptLevel(0))
        inputs = spec.generate_inputs(0)
        true_cycles = run_module(gm, inputs).cycles
        with pytest.raises(SimulationError, match="cycle limit"):
            LaneEngine(gm, max_cycles=true_cycles // 2).run_batch(
                [inputs, spec.generate_inputs(1)])
        results = LaneEngine(gm, max_cycles=true_cycles).run_batch(
            [inputs])
        assert results[0].cycles == true_cycles


class TestErrorParity:
    """The generated lane code raises the same SimulationErrors as the
    scalar engines, message for message."""

    def _outcomes(self, gm, lanes=3):
        return LaneEngine(gm).run_batch_outcomes([None] * lanes)

    def _assert_uniform_error(self, gm, fragment, exact=True):
        ref = reference_outcome(gm, None)
        assert ref[0] == "error" and fragment in ref[1]
        for kind, payload in self._outcomes(gm):
            assert kind == "error"
            if exact:
                assert payload == ref[1]
            else:
                assert fragment in payload

    def test_division_by_zero(self):
        gm = build_module_graphs(compile_source(
            "int n = 0; int main() { return 5 / n; }", "t"))
        self._assert_uniform_error(gm, "division by zero")

    def test_recursion_depth(self):
        gm = build_module_graphs(compile_source(
            "int f(int n) { return f(n + 1); }"
            " int main() { return f(0); }", "t"))
        self._assert_uniform_error(gm, "depth")

    def test_undefined_register_read(self):
        # Arithmetic on _UNDEF raises through the sentinel's dunders on
        # every compiled tier, which cannot name the register; match the
        # fragment like the other engines' suites do.
        from repro.cfg.graph import GraphModule, ProgramGraph
        from repro.ir.instr import Instruction
        from repro.ir.ops import Op
        from repro.ir.values import Constant, VirtualReg
        graph = ProgramGraph("main", return_type="int")
        n0 = graph.new_node()
        n1 = graph.new_node()
        ghost = VirtualReg("%ghost")
        n0.ops.append(Instruction(Op.ADD, dest=VirtualReg("%r"),
                                  srcs=(ghost, Constant(1))))
        n1.control = Instruction(Op.RET, srcs=(VirtualReg("%r"),))
        graph.entry = n0.id
        graph.add_edge(n0.id, n1.id)
        gm = GraphModule("t", {"main": graph}, {}, {}, {})
        self._assert_uniform_error(gm, "undefined register", exact=False)

    def test_undefined_register_move(self):
        from repro.cfg.graph import GraphModule, ProgramGraph
        from repro.ir.instr import Instruction
        from repro.ir.ops import Op
        from repro.ir.values import Constant, VirtualReg
        graph = ProgramGraph("main", return_type="int")
        n0 = graph.new_node()
        n1 = graph.new_node()
        n0.ops.append(Instruction(Op.MOV, dest=VirtualReg("%a"),
                                  srcs=(VirtualReg("%ghost"),)))
        n1.control = Instruction(Op.RET, srcs=(Constant(7),))
        graph.entry = n0.id
        graph.add_edge(n0.id, n1.id)
        gm = GraphModule("t", {"main": graph}, {}, {}, {})
        self._assert_uniform_error(gm, "undefined register '%ghost'")


class TestCaching:
    """Lane modules cache per width in memory and on disk, invalidate on
    module edits, and never cross a pickle boundary."""

    def _graphs(self):
        return build_module_graphs(compile_source(
            "int x[4]; int main() { int i; int s; s = 0;"
            " for (i = 0; i < 4; i++) { s += x[i]; } return s; }", "t"))

    def test_cache_partitioned_by_lane_count(self):
        gm = self._graphs()
        two = generate_lane_module(gm, 2)
        four = generate_lane_module(gm, 4)
        assert two is not four
        assert generate_lane_module(gm, 2) is two
        assert generate_lane_module(gm, 4) is four

    def test_batch_generates_once(self, monkeypatch):
        import repro.sim.lanes as lanes_mod
        gm = self._graphs()
        calls = []
        real = lanes_mod.generate_lane_module

        def counting(module, n_lanes):
            calls.append(n_lanes)
            return real(module, n_lanes)

        monkeypatch.setattr(lanes_mod, "generate_lane_module", counting)
        run_module_batch(gm, [{"x": [s, s, s, s]} for s in range(5)],
                         engine="lanes")
        assert calls == [5]

    def test_cache_invalidated_by_node_edit(self):
        from repro.ir.instr import Instruction
        from repro.ir.ops import Op
        gm = self._graphs()
        first = generate_lane_module(gm, 3)
        graph = gm.graphs["main"]
        node = next(n for n in graph.nodes.values() if n.ops)
        node.ops.append(Instruction(Op.NOP))
        assert generate_lane_module(gm, 3) is not first
        run_module_batch(gm, [{"x": [1, 2, 3, 4]}] * 1, engine="lanes")

    def test_cache_stripped_on_pickle(self):
        gm = self._graphs()
        generate_lane_module(gm, 2)
        clone = pickle.loads(pickle.dumps(gm))
        assert "_lanes_cache" not in clone.__dict__
        assert "_lanes_cache" in gm.__dict__
        results = run_module_batch(
            gm, [{"x": [1, 1, 1, 1]}, {"x": [2, 2, 2, 2]}], engine="lanes")
        assert [r.return_value for r in results] == [4, 8]

    def test_copy_does_not_share_cache(self):
        gm = self._graphs()
        generate_lane_module(gm, 2)
        assert "_lanes_cache" not in gm.copy().__dict__

    def test_disk_entries_partitioned_by_lane_count(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setenv(diskcache.CACHE_ENV_VAR, str(tmp_path))
        diskcache.reset_cache_state()
        try:
            gm = self._graphs()
            generate_lane_module(gm, 2)
            generate_lane_module(gm, 4)
            cache = diskcache.get_cache()
            assert cache.stores["lanes"] == 2
            # a cold, structurally identical module hits both widths
            cold = pickle.loads(pickle.dumps(gm))
            generate_lane_module(cold, 2)
            generate_lane_module(cold, 4)
            assert cache.hits["lanes"] == 2
            results = run_module_batch(
                cold, [{"x": [1, 2, 3, 4]}, {"x": [4, 3, 2, 1]}],
                engine="lanes")
            assert [r.return_value for r in results] == [10, 10]
        finally:
            diskcache.reset_cache_state()


class TestEngineSelection:
    def test_lanes_engine_listed(self):
        assert "lanes" in ENGINES

    def test_auto_upgrade_at_shard_min(self, monkeypatch):
        from repro.sim import machine
        seen = []
        real = machine.run_module_batch

        def spy(module, inputs_list, max_cycles=200_000_000,
                engine=machine.DEFAULT_ENGINE):
            seen.append(engine)
            return real(module, inputs_list, max_cycles, engine)

        monkeypatch.setattr(machine, "run_module_batch", spy)
        spec = get_benchmark("fir")
        gm, _ = optimize_module(compile_benchmark(spec), OptLevel(0))
        small = [spec.generate_inputs(s) for s in range(LANE_SHARD_MIN - 1)]
        big = [spec.generate_inputs(s) for s in range(LANE_SHARD_MIN)]
        run_module_batch_auto(gm, small, engine="compiled")
        run_module_batch_auto(gm, big, engine="compiled")
        run_module_batch_auto(gm, big, engine="reference")
        assert seen == ["compiled", "lanes", "reference"]

    def test_auto_upgrade_is_bit_identical(self):
        spec = get_benchmark("sewha")
        gm, _ = optimize_module(compile_benchmark(spec), OptLevel(1))
        inputs_list = [spec.generate_inputs(s)
                       for s in range(LANE_SHARD_MIN)]
        upgraded = run_module_batch_auto(gm, inputs_list, engine="codegen")
        for inputs, result in zip(inputs_list, upgraded):
            assert_identical(run_module(gm, inputs, engine="reference"),
                             result)
