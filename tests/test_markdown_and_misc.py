"""Markdown report tests plus coverage of smaller corners: pipeline
switches, graph copies, cost-model customization, error hierarchy."""

import pytest

from repro.cfg.build import build_module_graphs
from repro.errors import (AnalysisError, AsipError, IRError, LexerError,
                          LoweringError, OptimizationError, ParseError,
                          ReproError, SemanticError, SimulationError)
from repro.frontend import compile_source
from repro.opt.pipeline import OptLevel, optimize_module
from repro.reporting.markdown import (coverage_section, cycles_section,
                                      ilp_section, sequences_section,
                                      study_report)
from repro.sim.machine import run_module


class TestMarkdownReport:
    def test_full_report_structure(self, mini_study):
        text = study_report(mini_study, title="Nightly")
        assert text.startswith("# Nightly")
        for heading in ("## Cycle counts", "## Combined sequence",
                        "## Suite ILP", "## Iterative coverage"):
            assert heading in text

    def test_cycles_table_has_speedups(self, mini_study):
        text = cycles_section(mini_study)
        assert "speedup L1" in text and "x |" in text

    def test_sequences_table_lists_table2_names(self, mini_study):
        text = sequences_section(mini_study)
        assert "multiply-add" in text
        assert text.count("%") >= 15

    def test_ilp_table(self, mini_study):
        text = ilp_section(mini_study)
        assert "No Optimization" in text
        assert "Pipelined" in text

    def test_coverage_table(self, mini_study):
        text = coverage_section(mini_study, benchmarks=("sewha",))
        assert "sewha" in text
        assert text.count("%") >= 2

    def test_markdown_tables_well_formed(self, mini_study):
        text = study_report(mini_study)
        for block in text.split("\n\n"):
            lines = [ln for ln in block.splitlines()
                     if ln.startswith("|")]
            if not lines:
                continue
            widths = {ln.count("|") for ln in lines}
            assert len(widths) == 1, f"ragged table:\n{block}"


SRC = """
int x[8];
int main() {
    int i; int s; s = 0;
    for (i = 0; i < 8; i++) { s += x[i] * 5; }
    return s;
}
"""

INPUTS = {"x": [1, 2, 3, 4, 5, 6, 7, 8]}


class TestPipelineSwitches:
    def expected(self):
        return sum(v * 5 for v in INPUTS["x"])

    @pytest.mark.parametrize("kwargs", [
        dict(enable_pipelining=False),
        dict(enable_compaction=False),
        dict(enable_licm=False),
        dict(enable_pipelining=False, enable_compaction=False),
        dict(unroll_factor=3),
        dict(unroll_factor=4, max_width=2),
    ])
    def test_every_configuration_preserves_semantics(self, kwargs):
        module = compile_source(SRC, "t")
        gm, _ = optimize_module(module, OptLevel.PIPELINED, **kwargs)
        assert run_module(gm, INPUTS).return_value == self.expected()

    def test_level0_ignores_switches(self):
        module = compile_source(SRC, "t")
        gm, report = optimize_module(module, OptLevel.NONE,
                                     enable_pipelining=False)
        assert report.compaction == {}
        assert run_module(gm, INPUTS).return_value == self.expected()

    def test_higher_unroll_factor_copies_more(self):
        module = compile_source(SRC, "t")
        _, r2 = optimize_module(module, OptLevel.PIPELINED,
                                unroll_factor=2)
        _, r4 = optimize_module(module, OptLevel.PIPELINED,
                                unroll_factor=4)
        copies2 = sum(p.copies_made for p in r2.pipelining.values())
        copies4 = sum(p.copies_made for p in r4.pipelining.values())
        assert copies4 > copies2


class TestGraphModuleCopy:
    def test_copy_isolates_mutation(self):
        gm = build_module_graphs(compile_source(SRC, "t"))
        dup = gm.copy()
        graph = dup.graphs["main"]
        victim = next(n for n in graph.nodes.values() if n.ops)
        victim.ops.clear()
        original = gm.graphs["main"]
        assert any(n.ops for n in original.nodes.values())
        # The original still runs correctly.
        assert run_module(gm, INPUTS).return_value == \
            sum(v * 5 for v in INPUTS["x"])

    def test_copy_preserves_entry_and_edges(self):
        gm = build_module_graphs(compile_source(SRC, "t"))
        dup = gm.copy()
        g0, g1 = gm.graphs["main"], dup.graphs["main"]
        assert g0.entry == g1.entry
        assert {(nid, tuple(n.succs)) for nid, n in g0.nodes.items()} == \
            {(nid, tuple(n.succs)) for nid, n in g1.nodes.items()}


class TestCostModelCustomization:
    def test_zero_latch_credit_raises_area(self):
        from repro.asip.cost import CostModel
        generous = CostModel(link_latch_credit=0)
        default = CostModel()
        pattern = ("multiply", "add")
        assert generous.chain_area(pattern) > default.chain_area(pattern)

    def test_slow_clock_fuses_longer_chains(self):
        from repro.asip.cost import CostModel
        slow = CostModel(cycle_time=20.0)
        pattern = ("load", "multiply", "add", "add")
        assert slow.chain_cycles(pattern) == 1
        assert slow.cycles_saved_per_traversal(pattern) == 3


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc_type", [
        ParseError, SemanticError, LoweringError, IRError,
        SimulationError, OptimizationError, AnalysisError, AsipError,
    ])
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_lexer_error_formats_location(self):
        from repro.errors import SourceLocation
        err = LexerError("bad", SourceLocation(3, 7, "k.c"))
        assert "k.c:3:7" in str(err)

    def test_semantic_error_without_location(self):
        err = SemanticError("no main")
        assert str(err) == "semantic error: no main"

    def test_one_catch_covers_frontend(self):
        with pytest.raises(ReproError):
            compile_source("int main( {", "bad")
        with pytest.raises(ReproError):
            compile_source("int main() { return ghost; }", "bad")
