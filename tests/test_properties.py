"""Property-based tests (hypothesis) on core invariants.

The heavyweight property here is the compiler's *semantic preservation*:
random mini-C kernels must produce bit-identical outputs at every
optimization level.  Smaller properties pin down the scalar semantics
helpers, strength reduction, constant folding, and detection accounting.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.frontend import compile_source
from repro.lowering.lower import _shift_add_plan, strength_reduction_terms
from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim.machine import run_module
from repro.sim.values import int_div, int_mod

ints = st.integers(min_value=-10_000, max_value=10_000)
nonzero = ints.filter(lambda v: v != 0)
small_pos = st.integers(min_value=1, max_value=1 << 20)


class TestScalarSemantics:
    @given(a=ints, b=nonzero)
    def test_div_mod_identity(self, a, b):
        assert int_div(a, b) * b + int_mod(a, b) == a

    @given(a=ints, b=nonzero)
    def test_div_truncates_toward_zero(self, a, b):
        q = int_div(a, b)
        assert abs(q) == abs(a) // abs(b)

    @given(a=ints, b=nonzero)
    def test_mod_sign_follows_dividend(self, a, b):
        r = int_mod(a, b)
        assert r == 0 or (r > 0) == (a > 0)

    @given(a=ints, b=nonzero)
    def test_matches_c_semantics_via_float(self, a, b):
        assert int_div(a, b) == math.trunc(a / b)


class TestStrengthReductionPlan:
    @given(value=small_pos)
    def test_plan_reconstructs_value(self, value):
        with strength_reduction_terms(2):
            plan = _shift_add_plan(value)
        if plan is None:
            return
        acc = 0
        for sign, shift in plan:
            acc = acc + (1 << shift) if sign == "+" else acc - (1 << shift)
        assert acc == value

    @given(exp=st.integers(min_value=0, max_value=20))
    def test_powers_of_two_always_reducible(self, exp):
        plan = _shift_add_plan(1 << exp)
        assert plan == [("+", exp)]


# Random straight-line integer kernel generator: a sequence of assignments
# over a small set of variables, all initialized, combined with + - * and
# shifts by literal amounts, returned modulo nothing (Python bigints).
_var_names = ("a", "b", "c", "d")


@st.composite
def straight_line_program(draw):
    lines = ["int main() {"]
    for name in _var_names:
        lines.append(f"    int {name}; {name} = "
                     f"{draw(st.integers(-50, 50))};")
    n_stmts = draw(st.integers(min_value=1, max_value=8))
    for _ in range(n_stmts):
        target = draw(st.sampled_from(_var_names))
        lhs = draw(st.sampled_from(_var_names))
        rhs = draw(st.sampled_from(_var_names))
        op = draw(st.sampled_from(("+", "-", "*")))
        scale = draw(st.integers(min_value=0, max_value=4))
        lines.append(f"    {target} = ({lhs} {op} {rhs}) + "
                     f"({lhs} << {scale});")
    expr = " + ".join(_var_names)
    lines.append(f"    return {expr};")
    lines.append("}")
    return "\n".join(lines)


@st.composite
def branchy_program(draw):
    """Straight-line core plus a data-dependent branch and a short loop."""
    body = draw(straight_line_program())
    bound = draw(st.integers(min_value=0, max_value=6))
    pivot = draw(st.integers(min_value=-20, max_value=20))
    inner = body.replace("int main() {", "").rsplit("return", 1)
    decls_and_stmts = inner[0]
    expr = "a + b + c + d"
    return (
        "int main() {\n"
        + decls_and_stmts
        + f"    if (a > {pivot}) {{ b = b - c; }} else "
        + "{ b = b + c; }\n"
        + f"    {{ int i; for (i = 0; i < {bound}; i++) "
        + "{ a = a + b; c = c + 1; } }\n"
        + f"    return {expr};\n}}"
    )


class TestOptimizationPreservesSemantics:
    @given(source=straight_line_program())
    @settings(max_examples=40, deadline=None)
    def test_straight_line(self, source):
        module = compile_source(source, "p")
        reference = None
        for level in (0, 1, 2):
            gm, _ = optimize_module(module, OptLevel(level))
            result = run_module(gm)
            if reference is None:
                reference = result.return_value
            else:
                assert result.return_value == reference, (level, source)

    @given(source=branchy_program())
    @settings(max_examples=30, deadline=None)
    def test_branches_and_loops(self, source):
        module = compile_source(source, "p")
        reference = None
        for level in (0, 1, 2):
            gm, _ = optimize_module(module, OptLevel(level))
            result = run_module(gm)
            if reference is None:
                reference = result.return_value
            else:
                assert result.return_value == reference, (level, source)

    @given(source=straight_line_program(),
           terms=st.sampled_from((1, 2)))
    @settings(max_examples=20, deadline=None)
    def test_strength_reduction_setting_irrelevant_to_results(
            self, source, terms):
        with strength_reduction_terms(terms):
            module = compile_source(source, "p")
        gm, _ = optimize_module(module, OptLevel.NONE)
        result_a = run_module(gm).return_value
        module_b = compile_source(source, "p")
        gm_b, _ = optimize_module(module_b, OptLevel.NONE)
        result_b = run_module(gm_b).return_value
        assert result_a == result_b


class TestAssemblerRoundTrip:
    @given(source=straight_line_program())
    @settings(max_examples=25, deadline=None)
    def test_print_parse_preserves_behaviour(self, source):
        from repro.cfg.build import build_module_graphs
        from repro.ir.asm import parse_module
        from repro.ir.printer import format_module
        from repro.ir.verify import verify_module

        module = compile_source(source, "p")
        expected = run_module(build_module_graphs(module)).return_value

        reparsed = parse_module(format_module(module))
        verify_module(reparsed)
        actual = run_module(build_module_graphs(reparsed)).return_value
        assert actual == expected

    @given(source=branchy_program())
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_with_control_flow(self, source):
        from repro.cfg.build import build_module_graphs
        from repro.ir.asm import parse_module
        from repro.ir.printer import format_module

        module = compile_source(source, "p")
        expected = run_module(build_module_graphs(module)).return_value
        reparsed = parse_module(format_module(module))
        actual = run_module(build_module_graphs(reparsed)).return_value
        assert actual == expected


class TestDetectionInvariants:
    @given(source=branchy_program())
    @settings(max_examples=15, deadline=None)
    def test_frequencies_bounded_and_consistent(self, source):
        from repro.chaining.detect import detect_sequences

        module = compile_source(source, "p")
        gm, _ = optimize_module(module, OptLevel.PIPELINED)
        result = run_module(gm)
        detection = detect_sequences(gm, result.profile, (2, 3))
        for seq in detection.all_sequences():
            freq = detection.frequency(seq.name)
            assert 0.0 <= freq <= 100.0 + 1e-9
            assert detection.attributed_cycles(seq.name) <= \
                seq.cycles_accounted
            for occ in seq.occurrences:
                assert occ.count >= 1
                assert len(occ.path) == seq.length


class TestDetectionAccounting:
    @given(counts=st.lists(st.integers(min_value=1, max_value=1000),
                           min_size=1, max_size=10),
           length=st.integers(min_value=2, max_value=5))
    def test_cycles_accounted_additive(self, counts, length):
        from repro.chaining.sequence import DetectedSequence, Occurrence
        seq = DetectedSequence(tuple(["add"] * length))
        for i, count in enumerate(counts):
            path = tuple((i * 10 + j, i * 100 + j) for j in range(length))
            seq.add(Occurrence("main", path, count))
        assert seq.total_count == sum(counts)
        assert seq.cycles_accounted == sum(counts) * length

    @given(values=st.lists(
        st.tuples(st.integers(0, 1_000_000), st.integers(1, 2_000_000)),
        min_size=1, max_size=20))
    def test_frequency_bounds(self, values):
        from repro.chaining.frequency import dynamic_frequency
        for accounted, total in values:
            freq = dynamic_frequency(accounted, total)
            assert freq >= 0.0
            if accounted <= total:
                assert freq <= 100.0
