"""Coverage-analysis (paper §7) and cross-benchmark aggregation tests."""

import pytest

from repro.chaining.aggregate import combine_results
from repro.chaining.coverage import analyze_coverage
from repro.chaining.detect import detect_sequences
from repro.chaining.sequence import (DetectedSequence, Occurrence,
                                     sequence_label)
from repro.frontend import compile_source
from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim.machine import run_module

from tests.conftest import FIR_LIKE_SOURCE, fir_like_inputs


def prepare(source, inputs=None, level=1):
    module = compile_source(source, "t")
    gm, _ = optimize_module(module, OptLevel(level))
    result = run_module(gm, inputs)
    return gm, result.profile


class TestSequenceRecords:
    def test_label_format(self):
        assert sequence_label(("multiply", "add")) == "multiply-add"
        assert sequence_label(("fload", "fmultiply", "fadd")) == \
            "fload-fmultiply-fadd"

    def test_occurrence_accessors(self):
        occ = Occurrence("main", ((1, 10), (2, 11)), count=5)
        assert occ.length == 2
        assert occ.uids == (10, 11)
        assert occ.nodes == (1, 2)

    def test_detected_sequence_totals(self):
        seq = DetectedSequence(("add", "add"))
        seq.add(Occurrence("main", ((1, 10), (2, 11)), count=5))
        seq.add(Occurrence("main", ((3, 12), (4, 13)), count=7))
        assert seq.total_count == 12
        assert seq.cycles_accounted == 24
        assert seq.site_count == 2

    def test_length_mismatch_rejected(self):
        seq = DetectedSequence(("add", "add"))
        with pytest.raises(ValueError):
            seq.add(Occurrence("main", ((1, 10),), count=1))


class TestCoverage:
    def test_coverage_monotone_nonoverlapping(self):
        gm, profile = prepare(FIR_LIKE_SOURCE, fir_like_inputs())
        report = analyze_coverage(gm, profile, threshold=2.0)
        assert report.steps
        assert 0 < report.coverage <= 100.0
        # Greedy order: detector frequency non-increasing is not guaranteed
        # after exclusion, but contributions must all be positive.
        assert all(step.contribution > 0 for step in report.steps)

    def test_threshold_stops_iteration(self):
        gm, profile = prepare(FIR_LIKE_SOURCE, fir_like_inputs())
        strict = analyze_coverage(gm, profile, threshold=30.0)
        loose = analyze_coverage(gm, profile, threshold=2.0)
        assert len(strict.steps) <= len(loose.steps)
        for step in strict.steps:
            assert step.frequency >= 30.0

    def test_max_sequences_cap(self):
        gm, profile = prepare(FIR_LIKE_SOURCE, fir_like_inputs())
        capped = analyze_coverage(gm, profile, threshold=0.5,
                                  max_sequences=2)
        assert len(capped.steps) <= 2

    def test_optimized_coverage_beats_unoptimized(self):
        """The paper's Table-3 headline: optimization raises coverage."""
        gm0, profile0 = prepare(FIR_LIKE_SOURCE, fir_like_inputs(),
                                level=0)
        gm1, profile1 = prepare(FIR_LIKE_SOURCE, fir_like_inputs(),
                                level=1)
        cov0 = analyze_coverage(gm0, profile0)
        cov1 = analyze_coverage(gm1, profile1)
        assert cov1.coverage > cov0.coverage

    def test_picked_sequences_disjoint(self):
        gm, profile = prepare(FIR_LIKE_SOURCE, fir_like_inputs())
        report = analyze_coverage(gm, profile, threshold=1.0)
        # Re-derive: total contribution can never exceed 100%.
        assert report.coverage <= 100.0 + 1e-9

    def test_empty_program_coverage(self):
        gm, profile = prepare("int main() { return 0; }")
        report = analyze_coverage(gm, profile)
        assert report.steps == []
        assert report.coverage == 0.0


class TestAggregation:
    def _detections(self):
        gm1, profile1 = prepare(
            "int x[8]; int main() { int i; int s; s = 0; "
            "for (i = 0; i < 8; i++) { s += x[i] * 3; } return s; }",
            {"x": list(range(8))}, level=0)
        det1 = detect_sequences(gm1, profile1, (2,))
        gm2, profile2 = prepare(
            "int x[4]; int out[4]; int main() { int i; "
            "for (i = 0; i < 4; i++) { out[i] = x[i] + 1; } return 0; }",
            {"x": [1, 2, 3, 4]}, level=0)
        det2 = detect_sequences(gm2, profile2, (2,))
        return det1, det2

    def test_total_ops_summed(self):
        det1, det2 = self._detections()
        combined = combine_results([("a", det1), ("b", det2)])
        assert combined.total_ops == det1.total_ops + det2.total_ops
        assert combined.benchmarks == ["a", "b"]

    def test_combined_frequency_is_weighted(self):
        det1, det2 = self._detections()
        combined = combine_results([("a", det1), ("b", det2)])
        name = ("multiply", "add")
        seq = det1.sequences[2].get(name)
        if seq is not None:
            expected = 100.0 * seq.cycles_accounted / combined.total_ops
            assert combined.frequency(name) == pytest.approx(expected)

    def test_series_sorted_descending(self):
        det1, det2 = self._detections()
        combined = combine_results([("a", det1), ("b", det2)])
        series = combined.series(2)
        assert series == sorted(series, reverse=True)

    def test_top_filters_by_length(self):
        det1, det2 = self._detections()
        combined = combine_results([("a", det1), ("b", det2)])
        for name, _freq in combined.top(2):
            assert len(name) == 2

    def test_empty_combination(self):
        combined = combine_results([])
        assert combined.total_ops == 0
        assert combined.frequency(("add", "add")) == 0.0
        assert combined.series(2) == []
