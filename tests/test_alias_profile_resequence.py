"""Tests for the alias rules, profile accessors and re-sequentialization
corner cases."""

import pytest

from repro.cfg.build import build_module_graphs
from repro.cfg.graph import ProgramGraph
from repro.asip.resequence import resequence_module, _resequence_graph
from repro.frontend import compile_source
from repro.ir.instr import Instruction
from repro.ir.ops import Op
from repro.ir.values import ArraySymbol, Constant, VirtualReg
from repro.opt.alias import may_alias, memory_conflict
from repro.sim.machine import run_module


class TestAlias:
    def g(self, name, is_float=False):
        return ArraySymbol(name, 8, is_float, is_global=True)

    def p(self, name, is_float=False):
        return ArraySymbol(name, 8, is_float, is_global=False)

    def test_same_name_aliases(self):
        assert may_alias(self.g("a"), self.g("a"))

    def test_distinct_globals_do_not_alias(self):
        assert not may_alias(self.g("a"), self.g("b"))

    def test_parameter_aliases_same_type_global(self):
        assert may_alias(self.p("param"), self.g("a"))

    def test_type_mismatch_never_aliases(self):
        assert not may_alias(self.p("param", True), self.g("a", False))

    def test_load_load_never_conflicts(self):
        arr = self.g("a")
        la = Instruction(Op.LOAD, dest=VirtualReg("x"),
                         srcs=(Constant(0),), array=arr)
        lb = Instruction(Op.LOAD, dest=VirtualReg("y"),
                         srcs=(Constant(1),), array=arr)
        assert not memory_conflict(la, lb)

    def test_store_load_same_array_conflicts(self):
        arr = self.g("a")
        st = Instruction(Op.STORE, srcs=(VirtualReg("v"), Constant(0)),
                         array=arr)
        ld = Instruction(Op.LOAD, dest=VirtualReg("x"),
                         srcs=(Constant(1),), array=arr)
        assert memory_conflict(st, ld)

    def test_store_to_distinct_globals_no_conflict(self):
        st_a = Instruction(Op.STORE, srcs=(VirtualReg("v"), Constant(0)),
                           array=self.g("a"))
        st_b = Instruction(Op.STORE, srcs=(VirtualReg("w"), Constant(0)),
                           array=self.g("b"))
        assert not memory_conflict(st_a, st_b)

    def test_non_memory_ops_never_conflict(self):
        add = Instruction(Op.ADD, dest=VirtualReg("x"),
                          srcs=(Constant(1), Constant(2)))
        st = Instruction(Op.STORE, srcs=(VirtualReg("v"), Constant(0)),
                         array=self.g("a"))
        assert not memory_conflict(add, st)


class TestProfileAccessors:
    @pytest.fixture()
    def profiled(self):
        src = """
        int x[8];
        int main() { int i; int s; s = 0;
            for (i = 0; i < 8; i++) { s += x[i]; }
            return s; }
        """
        gm = build_module_graphs(compile_source(src, "t"))
        result = run_module(gm, {"x": [1] * 8})
        return gm, result.profile

    def test_instruction_counts_match_node_counts(self, profiled):
        gm, profile = profiled
        counts = profile.instruction_counts(gm)
        graph = gm.graphs["main"]
        for nid, node in graph.nodes.items():
            for ins in node.all_instructions():
                assert counts[ins.uid] == profile.node_count("main", nid)

    def test_origin_counts_match_uid_counts_before_unrolling(self,
                                                             profiled):
        # Graphs hold clones of the linear module's instructions, so the
        # keys differ (uid vs provenance origin) but without unrolling the
        # mapping is one-to-one: same number of entries, same counts.
        gm, profile = profiled
        uid_counts = profile.instruction_counts(gm)
        origin_counts = profile.origin_counts(gm)
        assert len(uid_counts) == len(origin_counts)
        assert sorted(uid_counts.values()) == \
            sorted(origin_counts.values())

    def test_dynamic_ilp_at_most_one_sequentially(self, profiled):
        gm, profile = profiled
        assert profile.dynamic_ilp(gm) <= 1.0

    def test_edge_count_query(self, profiled):
        gm, profile = profiled
        graph = gm.graphs["main"]
        (tail, head) = graph.back_edges()[0]
        assert profile.edge_count("main", tail, head) == 8


class TestResequenceCorners:
    def _run_both(self, graph_module, inputs=None):
        expected = run_module(graph_module, inputs)
        flat = resequence_module(graph_module)
        actual = run_module(flat, inputs)
        assert actual.return_value == expected.return_value
        assert actual.globals_after == expected.globals_after
        return flat

    def test_branch_condition_overwritten_in_same_node(self):
        # A node computing the next condition while branching on the old
        # one: sequentialization must capture the pre-cycle value.
        g = ProgramGraph("main")
        cond = VirtualReg("c")
        n_init = g.new_node()
        n_init.ops.append(Instruction(Op.MOV, dest=cond,
                                      srcs=(Constant(1),)))
        n_branch = g.new_node()
        # In the same cycle: branch on c and overwrite c with 0.
        n_branch.ops.append(Instruction(Op.MOV, dest=cond,
                                        srcs=(Constant(0),)))
        n_branch.control = Instruction(Op.BR, srcs=(cond,),
                                       true_label="t", false_label="f")
        n_true = g.new_node()
        n_true.control = Instruction(Op.RET, srcs=(Constant(10),))
        n_false = g.new_node()
        n_false.control = Instruction(Op.RET, srcs=(Constant(20),))
        g.add_edge(n_init.id, n_branch.id)
        g.add_edge(n_branch.id, n_true.id)
        g.add_edge(n_branch.id, n_false.id)
        g.entry = n_init.id

        flat, _ = _resequence_graph(g)
        from repro.cfg.graph import GraphModule
        gm = GraphModule("m", {"main": flat}, {}, {}, {})
        result = run_module(gm)
        assert result.return_value == 10  # branch saw the old value

    def test_register_swap_node(self):
        # Two parallel moves exchanging registers need a capture temp.
        g = ProgramGraph("main")
        a, b = VirtualReg("a"), VirtualReg("b")
        init = g.new_node()
        init.ops.append(Instruction(Op.MOV, dest=a, srcs=(Constant(1),)))
        init.ops.append(Instruction(Op.MOV, dest=b, srcs=(Constant(2),)))
        swap = g.new_node()
        swap.ops.append(Instruction(Op.MOV, dest=a, srcs=(b,)))
        swap.ops.append(Instruction(Op.MOV, dest=b, srcs=(a,)))
        done = g.new_node()
        result_reg = VirtualReg("r")
        done.ops.append(Instruction(Op.MUL, dest=result_reg,
                                    srcs=(a, Constant(10))))
        ret = g.new_node()
        ret.control = Instruction(Op.RET, srcs=(result_reg,))
        g.add_edge(init.id, swap.id)
        g.add_edge(swap.id, done.id)
        g.add_edge(done.id, ret.id)
        g.entry = init.id

        from repro.cfg.graph import GraphModule
        gm = GraphModule("m", {"main": g}, {}, {}, {})
        expected = run_module(gm)
        assert expected.return_value == 20  # a becomes old b

        flat, _ = _resequence_graph(g)
        gm_flat = GraphModule("m", {"main": flat}, {}, {}, {})
        assert run_module(gm_flat).return_value == 20

    def test_full_benchmark_resequence(self):
        from repro.opt.pipeline import OptLevel, optimize_module
        from repro.suite.registry import get_benchmark
        from repro.suite.runner import compile_benchmark
        spec = get_benchmark("flatten")
        module = compile_benchmark(spec)
        gm, _ = optimize_module(module, OptLevel.PIPELINED)
        self._run_both(gm, spec.generate_inputs(0))
