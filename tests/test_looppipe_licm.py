"""Loop pipelining (unroll-and-compact) and LICM tests."""

import pytest

from repro.cfg.build import build_module_graphs
from repro.cfg.loops import find_natural_loops
from repro.frontend import compile_source
from repro.ir.ops import Op
from repro.opt.licm import hoist_loop_invariants
from repro.opt.looppipe import pipeline_loops
from repro.opt.percolation import compact_graph
from repro.sim.machine import run_module


def graphs_of(source):
    return build_module_graphs(compile_source(source, "t"))


LOOP_SRC = """
int x[16];
int y[16];
int n = 16;
int main() {
    int i;
    for (i = 0; i < n; i++) { y[i] = x[i] * 3 + 1; }
    return 0;
}
"""

NESTED_SRC = """
int m[4][4];
int main() {
    int i; int j; int s;
    s = 0;
    for (i = 0; i < 4; i++) {
        for (j = 0; j < 4; j++) { s += m[i][j]; }
    }
    return s;
}
"""


class TestUnrolling:
    def test_unroll_duplicates_body(self):
        gm = graphs_of(LOOP_SRC)
        g = gm.graphs["main"]
        before = g.node_count()
        stats = pipeline_loops(g, factor=2)
        assert stats.loops_unrolled == 1
        assert g.node_count() > before
        assert stats.copies_made == g.node_count() - before

    def test_factor_one_is_noop(self):
        gm = graphs_of(LOOP_SRC)
        g = gm.graphs["main"]
        before = g.node_count()
        stats = pipeline_loops(g, factor=1)
        assert stats.loops_unrolled == 0
        assert g.node_count() == before

    def test_semantics_preserved_any_trip_count(self):
        # Trip count 16 is even; also check an odd bound via a different
        # program so partial last iterations exercise the per-copy exits.
        for bound in (0, 1, 5, 16):
            src = LOOP_SRC.replace("int n = 16;", f"int n = {bound};")
            inputs = {"x": list(range(16))}
            gm = graphs_of(src)
            expected = run_module(gm, inputs)
            gm2 = graphs_of(src)
            for g in gm2.graphs.values():
                pipeline_loops(g, factor=3)
            actual = run_module(gm2, inputs)
            assert actual.globals_after == expected.globals_after, bound

    def test_only_innermost_unrolled(self):
        gm = graphs_of(NESTED_SRC)
        g = gm.graphs["main"]
        stats = pipeline_loops(g, factor=2)
        assert stats.loops_unrolled == 1
        assert stats.loops_seen == 2

    def test_loop_with_call_skipped(self):
        gm = graphs_of("""
        int f(int v) { return v + 1; }
        int main() { int i; int s; s = 0;
            for (i = 0; i < 4; i++) { s = f(s); } return s; }
        """)
        g = gm.graphs["main"]
        stats = pipeline_loops(g, factor=2)
        assert stats.skipped_calls == 1
        assert stats.loops_unrolled == 0

    def test_oversized_loop_skipped(self):
        gm = graphs_of(LOOP_SRC)
        g = gm.graphs["main"]
        stats = pipeline_loops(g, factor=2, max_body_nodes=2)
        assert stats.skipped_size == 1

    def test_unroll_then_compact_preserves_and_speeds_up(self):
        inputs = {"x": list(range(16))}
        gm = graphs_of(LOOP_SRC)
        expected = run_module(gm, inputs)
        gm2 = graphs_of(LOOP_SRC)
        for g in gm2.graphs.values():
            pipeline_loops(g, factor=2)
            compact_graph(g)
        actual = run_module(gm2, inputs)
        assert actual.globals_after == expected.globals_after
        assert actual.cycles < expected.cycles

    def test_provenance_preserved_across_copies(self):
        gm = graphs_of(LOOP_SRC)
        g = gm.graphs["main"]
        origins_before = sorted(
            ins.origin for n in g.nodes.values() for ins in n.ops)
        pipeline_loops(g, factor=2)
        origins_after = {
            ins.origin for n in g.nodes.values() for ins in n.ops}
        assert origins_after == set(origins_before)


class TestLICM:
    def test_invariant_load_hoisted(self):
        gm = graphs_of(LOOP_SRC)
        g = gm.graphs["main"]
        hoisted = hoist_loop_invariants(g)
        assert hoisted >= 1
        loops = find_natural_loops(g)
        loop_nodes = set().union(*(lp.body for lp in loops))
        loads_in_loops = [
            ins for nid in loop_nodes for ins in g.nodes[nid].ops
            if ins.op is Op.LOAD and ins.array.name == "n"]
        assert loads_in_loops == []

    def test_variant_load_not_hoisted(self):
        gm = graphs_of(LOOP_SRC)
        g = gm.graphs["main"]
        hoist_loop_invariants(g)
        loops = find_natural_loops(g)
        loop_nodes = set().union(*(lp.body for lp in loops))
        x_loads = [
            ins for nid in loop_nodes for ins in g.nodes[nid].ops
            if ins.op is Op.LOAD and ins.array.name == "x"]
        assert x_loads  # depends on i: must stay inside

    def test_load_with_aliasing_store_not_hoisted(self):
        gm = graphs_of("""
        int a[4];
        int main() { int i; int s; s = 0;
            for (i = 0; i < 4; i++) { a[0] = i; s += a[0]; }
            return s; }
        """)
        g = gm.graphs["main"]
        hoist_loop_invariants(g)
        loops = find_natural_loops(g)
        loop_nodes = set().union(*(lp.body for lp in loops))
        a_loads = [
            ins for nid in loop_nodes for ins in g.nodes[nid].ops
            if ins.op is Op.LOAD and ins.array.name == "a"]
        assert a_loads

    def test_semantics_preserved(self):
        inputs = {"x": list(range(16))}
        gm = graphs_of(LOOP_SRC)
        expected = run_module(gm, inputs)
        gm2 = graphs_of(LOOP_SRC)
        for g in gm2.graphs.values():
            hoist_loop_invariants(g)
        actual = run_module(gm2, inputs)
        assert actual.globals_after == expected.globals_after

    def test_hoisting_plus_delete_reduces_cycles(self):
        # LICM empties loop nodes; the delete transformation reclaims the
        # cycles (exactly how the optimization pipeline pairs them).
        from repro.opt.percolation import delete_empty_nodes
        inputs = {"x": list(range(16))}
        gm = graphs_of(LOOP_SRC)
        before = run_module(gm, inputs).cycles
        for g in gm.graphs.values():
            hoist_loop_invariants(g)
            delete_empty_nodes(g)
        after = run_module(gm, inputs).cycles
        assert after < before

    def test_zero_trip_loop_with_hoisted_load_safe(self):
        # Hoisted constant-index loads execute even when the loop body
        # never runs; they must be in bounds and side-effect free.
        src = LOOP_SRC.replace("int n = 16;", "int n = 0;")
        inputs = {"x": list(range(16))}
        gm = graphs_of(src)
        expected = run_module(gm, inputs)
        gm2 = graphs_of(src)
        for g in gm2.graphs.values():
            hoist_loop_invariants(g)
        actual = run_module(gm2, inputs)
        assert actual.globals_after == expected.globals_after

    def test_dependent_invariants_hoist_over_rounds(self):
        gm = graphs_of("""
        int k = 3;
        int x[8];
        int main() { int i; int s; s = 0;
            for (i = 0; i < 8; i++) { s += x[i] * (k * 2 + 1); }
            return s; }
        """)
        g = gm.graphs["main"]
        hoisted = hoist_loop_invariants(g)
        assert hoisted >= 3  # load k, k*2, +1
        inputs = {"x": [1] * 8}
        assert run_module(gm, inputs).return_value == 8 * 7
