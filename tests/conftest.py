"""Shared fixtures for the test suite."""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile

import pytest

# Keep test runs hermetic: unless the caller pinned a cache location
# (CI's warm-cache pass sets REPRO_CACHE explicitly), point the
# compile-artifact disk cache at a throwaway directory instead of the
# user's ~/.cache/repro, so tests neither read stale entries nor leave
# thousands of fuzz-module entries behind.
if "REPRO_CACHE" not in os.environ:
    _cache_tmp = tempfile.mkdtemp(prefix="repro-test-cache-")
    os.environ["REPRO_CACHE"] = _cache_tmp
    atexit.register(shutil.rmtree, _cache_tmp, True)

from repro.cfg.build import build_module_graphs
from repro.frontend import compile_source
from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim.machine import run_module

# A small FIR-like kernel used by many optimizer / analysis tests: nested
# loops, a guard branch, float MACs, a global-scalar loop bound.
FIR_LIKE_SOURCE = """
float x[40];
float h[8];
float y[40];
int n = 40;
int taps = 8;

int main() {
    int i; int k;
    for (i = 0; i < n; i++) {
        float acc;
        acc = 0.0;
        for (k = 0; k < taps; k++) {
            if (i - k >= 0) {
                acc += h[k] * x[i - k];
            }
        }
        y[i] = acc;
    }
    return 0;
}
"""

# Integer variant with multiplies and shifts (chain-rich).
INT_KERNEL_SOURCE = """
int x[64];
int y[64];
int n = 64;

int main() {
    int i;
    y[0] = x[0];
    for (i = 1; i < n - 1; i++) {
        int acc;
        acc = x[i - 1] + 3 * x[i] + x[i + 1];
        y[i] = acc >> 2;
    }
    y[n - 1] = x[n - 1];
    return 0;
}
"""


def fir_like_inputs():
    import random
    rng = random.Random(7)
    return {
        "x": [rng.uniform(-1, 1) for _ in range(40)],
        "h": [rng.uniform(-1, 1) for _ in range(8)],
    }


def int_kernel_inputs():
    import random
    rng = random.Random(11)
    return {"x": [rng.randint(-256, 255) for _ in range(64)]}


@pytest.fixture(scope="session")
def fir_like_module():
    return compile_source(FIR_LIKE_SOURCE, "fir_like")


@pytest.fixture(scope="session")
def int_kernel_module():
    return compile_source(INT_KERNEL_SOURCE, "int_kernel")


@pytest.fixture(scope="session")
def fir_like_runs(fir_like_module):
    """(level -> (graph_module, MachineResult)) for the FIR-like kernel."""
    inputs = fir_like_inputs()
    runs = {}
    for level in (0, 1, 2):
        gm, _ = optimize_module(fir_like_module, OptLevel(level))
        runs[level] = (gm, run_module(gm, inputs))
    return runs


@pytest.fixture(scope="session")
def mini_study():
    """A small but real study over three fast benchmarks."""
    from repro.feedback.study import StudyConfig, run_study
    config = StudyConfig(benchmarks=("sewha", "bspline", "dft"),
                         lengths=(2, 3, 4))
    return run_study(config)


def compile_and_run(source: str, inputs=None, level: int = 0,
                    name: str = "t"):
    """Compile mini-C, optimize at *level*, simulate, return MachineResult."""
    module = compile_source(source, name)
    gm, _ = optimize_module(module, OptLevel(level))
    return run_module(gm, inputs)


def run_all_levels(source: str, inputs=None, name: str = "t"):
    """Run a program at levels 0/1/2 and assert identical outputs.

    Returns the level-0 MachineResult.
    """
    module = compile_source(source, name)
    reference = None
    for level in (0, 1, 2):
        gm, _ = optimize_module(module, OptLevel(level))
        result = run_module(gm, inputs)
        if reference is None:
            reference = result
        else:
            assert result.return_value == reference.return_value, \
                f"level {level} return value diverged"
            assert result.globals_after == reference.globals_after, \
                f"level {level} memory state diverged"
    return reference
