"""Lexer unit tests."""

import pytest

from repro.errors import LexerError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        (tok, _eof) = tokenize("alpha_1")
        assert tok.kind is TokenKind.IDENT
        assert tok.text == "alpha_1"

    def test_identifier_with_leading_underscore(self):
        (tok, _eof) = tokenize("_tmp")
        assert tok.kind is TokenKind.IDENT

    def test_keyword_recognized(self):
        (tok, _eof) = tokenize("while")
        assert tok.kind is TokenKind.KEYWORD

    def test_keyword_prefix_is_identifier(self):
        (tok, _eof) = tokenize("whiley")
        assert tok.kind is TokenKind.IDENT

    def test_int_literal(self):
        (tok, _eof) = tokenize("42")
        assert tok.kind is TokenKind.INT
        assert tok.text == "42"

    def test_float_literal_with_dot(self):
        (tok, _eof) = tokenize("3.25")
        assert tok.kind is TokenKind.FLOAT

    def test_float_literal_leading_dot(self):
        (tok, _eof) = tokenize(".5")
        assert tok.kind is TokenKind.FLOAT
        assert tok.text == ".5"

    def test_float_literal_exponent(self):
        (tok, _eof) = tokenize("1e-3")
        assert tok.kind is TokenKind.FLOAT

    def test_float_literal_exponent_with_dot(self):
        (tok, _eof) = tokenize("2.5E+10")
        assert tok.kind is TokenKind.FLOAT

    def test_int_followed_by_member_like_e(self):
        # "1e" without digits is an int then an identifier.
        toks = tokenize("1e")
        assert toks[0].kind is TokenKind.INT
        assert toks[1].kind is TokenKind.IDENT


class TestPunctuators:
    @pytest.mark.parametrize("punct", [
        "+", "-", "*", "/", "%", "<<", ">>", "==", "!=", "<=", ">=",
        "&&", "||", "+=", "-=", "*=", "/=", "++", "--", "<<=", ">>=",
        "&", "|", "^", "~", "!", "?", ":",
    ])
    def test_punctuator_roundtrip(self, punct):
        (tok, _eof) = tokenize(punct)
        assert tok.kind is TokenKind.PUNCT
        assert tok.text == punct

    def test_longest_match_wins(self):
        assert texts("a <<= 1") == ["a", "<<=", "1"]

    def test_shift_vs_relational(self):
        assert texts("a << b < c") == ["a", "<<", "b", "<", "c"]

    def test_increment_vs_plus(self):
        assert texts("a+++b") == ["a", "++", "+", "b"]


class TestTrivia:
    def test_whitespace_skipped(self):
        assert texts("  a \t b \n c ") == ["a", "b", "c"]

    def test_line_comment(self):
        assert texts("a // comment here\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexerError):
            tokenize("a /* never closed")

    def test_line_comment_at_eof(self):
        assert texts("a // trailing") == ["a"]


class TestLocations:
    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert toks[0].loc.line == 1 and toks[0].loc.column == 1
        assert toks[1].loc.line == 2 and toks[1].loc.column == 3

    def test_filename_recorded(self):
        toks = tokenize("x", filename="prog.c")
        assert toks[0].loc.filename == "prog.c"

    def test_location_after_block_comment(self):
        toks = tokenize("/* a\nb */ x")
        assert toks[0].loc.line == 2


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexerError) as exc:
            tokenize("a $ b")
        assert "$" in str(exc.value)

    def test_error_carries_location(self):
        with pytest.raises(LexerError) as exc:
            tokenize("ab\n  @")
        assert exc.value.location.line == 2

    def test_error_message_mentions_position(self):
        with pytest.raises(LexerError) as exc:
            tokenize("@", filename="f.c")
        assert "f.c:1:1" in str(exc.value)
