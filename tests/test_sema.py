"""Semantic-analysis unit tests."""

import pytest

from repro.errors import SemanticError
from repro.lang.parser import parse
from repro.lang.sema import analyze
from repro.lang.types import FLOAT, INT


def check(source):
    return analyze(parse(source))


def check_fails(source, fragment=None):
    with pytest.raises(SemanticError) as exc:
        check(source)
    if fragment is not None:
        assert fragment in str(exc.value)
    return exc.value


MAIN = "int main() { return 0; }"


class TestDeclarations:
    def test_minimal_program(self):
        table = check(MAIN)
        assert "main" in table.functions

    def test_missing_main(self):
        check_fails("int f() { return 1; }", "main")

    def test_main_with_params_rejected(self):
        check_fails("int main(int a) { return a; }")

    def test_duplicate_global(self):
        check_fails("int a; float a; " + MAIN, "redeclaration")

    def test_duplicate_function(self):
        check_fails("void f() { } void f() { } " + MAIN, "redefinition")

    def test_function_shadowing_intrinsic_rejected(self):
        check_fails("float sin(float v) { return v; } " + MAIN)

    def test_local_shadows_global(self):
        check("int a; int main() { int a; a = 1; return a; }")

    def test_duplicate_local_in_same_scope(self):
        check_fails("int main() { int a; int a; return 0; }")

    def test_shadowing_in_nested_scope_allowed(self):
        check("int main() { int a; a = 1; { int a; a = 2; } return a; }")

    def test_array_initializer_on_local_rejected(self):
        check_fails("int main() { int c[2] = {1, 2}; return 0; }",
                    "globals")

    def test_too_many_initializer_values(self):
        check_fails("int c[2] = {1, 2, 3}; " + MAIN)

    def test_scalar_initializer_on_array_rejected(self):
        check_fails("int c[2] = 5; " + MAIN)


class TestNameResolution:
    def test_undeclared_variable(self):
        check_fails("int main() { return zz; }", "zz")

    def test_undeclared_function(self):
        check_fails("int main() { return g(); }", "g")

    def test_forward_function_call_allowed(self):
        check("int main() { return helper(); } int helper() { return 3; }")

    def test_declaration_order_within_block(self):
        check_fails("int main() { x = 1; int x; return 0; }")


class TestTypes:
    def test_expression_annotation(self):
        prog = parse("float f; int main() { f = f + 1; return 0; }")
        analyze(prog)
        assign = prog.functions[0].body.items[0]
        assert assign.value.ty is FLOAT

    def test_comparison_yields_int(self):
        prog = parse("float f; int main() { int b; b = f < 1.0; "
                     "return b; }")
        analyze(prog)
        assign = prog.functions[0].body.items[1]
        assert assign.value.ty is INT

    def test_mod_requires_integers(self):
        check_fails("float f; int main() { return 3 % f; }")
        # well-typed version passes:
        check("int main() { return 7 % 3; }")

    def test_shift_of_float_rejected(self):
        check("int main() { return 1 << 2; }")  # baseline OK
        check_fails("float f; int main() { return 1 << f; }")

    def test_bitand_of_float_rejected(self):
        check_fails("float f; int main() { return 1 & f; }")

    def test_bitnot_of_float_rejected(self):
        check_fails("float f; int main() { return ~f; }")

    def test_array_index_must_be_int(self):
        check_fails("int a[4]; int main() { return a[1.5]; }", "indices")

    def test_indexing_scalar_rejected(self):
        check_fails("int a; int main() { return a[0]; }", "not an array")

    def test_rank_mismatch(self):
        check_fails("int m[4][4]; int main() { return m[1]; }", "rank")

    def test_whole_array_assignment_rejected(self):
        check_fails("int a[4]; int b[4]; "
                    "int main() { a = b; return 0; }")

    def test_void_function_value_use_rejected(self):
        check_fails("void f() { } int main() { return f() + 1; }")

    def test_return_value_from_void_rejected(self):
        check_fails("void f() { return 3; } " + MAIN)

    def test_missing_return_value_rejected(self):
        check_fails("int f() { return; } " + MAIN)

    def test_ternary_unifies_types(self):
        prog = parse("int main() { float f; f = 1 ? 1 : 2.0; return 0; }")
        analyze(prog)
        assign = prog.functions[0].body.items[1]
        assert assign.value.ty is FLOAT


class TestCalls:
    def test_arity_mismatch(self):
        check_fails("int f(int a) { return a; } "
                    "int main() { return f(1, 2); }", "argument")

    def test_intrinsic_arity(self):
        check_fails("int main() { float f; f = sin(1.0, 2.0); return 0; }")

    def test_intrinsic_returns_float(self):
        prog = parse("int main() { float f; f = sqrt(2.0); return 0; }")
        analyze(prog)

    def test_array_argument_ok(self):
        check("float v[8]; float total(float a[8]) { return a[0]; } "
              "int main() { float t; t = total(v); return 0; }")

    def test_array_argument_extent_mismatch(self):
        check_fails("float v[8]; float total(float a[4]) { return a[0]; } "
                    "int main() { float t; t = total(v); return 0; }",
                    "extent")

    def test_array_argument_element_mismatch(self):
        check_fails("int v[8]; float total(float a[8]) { return a[0]; } "
                    "int main() { float t; t = total(v); return 0; }")

    def test_unsized_array_param_accepts_any_length(self):
        check("float v[100]; float first(float a[]) { return a[0]; } "
              "int main() { float t; t = first(v); return 0; }")

    def test_scalar_for_array_param_rejected(self):
        check_fails("float g(float a[4]) { return a[0]; } "
                    "int main() { float t; t = g(1.0); return 0; }")


class TestControlChecks:
    def test_break_outside_loop(self):
        check_fails("int main() { break; return 0; }", "break")

    def test_continue_outside_loop(self):
        check_fails("int main() { continue; return 0; }", "continue")

    def test_break_inside_loop_ok(self):
        check("int main() { while (1) { break; } return 0; }")

    def test_continue_in_for_ok(self):
        check("int main() { int i; for (i = 0; i < 3; i++) { continue; } "
              "return 0; }")

    def test_break_in_if_inside_loop_ok(self):
        check("int main() { int i; for (i = 0; i < 3; i++) "
              "{ if (i == 1) { break; } } return 0; }")
