"""Differential harness for the incremental Pareto-frontier sweep.

``run_frontier_study`` must be indistinguishable from running the
per-budget ``run_exploration_study`` at every budget you could ever ask
for: one sweep per benchmark, answered by bisection, bit-identical to
re-ranking and re-measuring the cell — for every benchmark, every
optimization level, any ``jobs`` value, and any budget (a dense
64-point grid and seeded random fuzz, not just the budgets someone
thought to test).  Plus the cross-benchmark chain aggregation, the
schedule shape, config validation and the Markdown report.
"""

import random

import pytest

from repro.asip.explore import (candidate_pool, frontier_sweep,
                                rank_candidates, select_finalists)
from repro.chaining.aggregate import (FrontierChain,
                                      combine_frontier_chains)
from repro.errors import AsipError, ReproError
from repro.feedback.study import (ExplorationStudyConfig,
                                  FrontierStudyConfig,
                                  run_exploration_study,
                                  run_frontier_study)
from repro.opt.pipeline import OptLevel
from repro.reporting.frontier import frontier_report
from repro.suite.registry import all_benchmarks, get_benchmark
from repro.suite.runner import compile_benchmark

from test_explore_study import exploration_projection

SUITE = [spec.name for spec in all_benchmarks()]
#: The pre-existing explore-study budget grid (tests/test_explore_study)
#: — every cell of it must fall out of the frontier unchanged.
GRID = (900, 1500, 2500)
#: Sweep ceiling covering the whole grid with headroom.
CEILING = 2600


def frontier_projection(study):
    """Everything one frontier study *answers*, minus process-local
    objects: each benchmark's breakpoints plus the exact exploration
    answer at every one of them."""
    return {
        name: {
            "breakpoints": bench.breakpoints(),
            "total_ops": bench.total_ops,
            "answers": [exploration_projection(bench.result_at(b))
                        for b in bench.breakpoints()],
        }
        for name, bench in study.benchmarks.items()
    }


@pytest.fixture(scope="module")
def frontier_serial():
    return run_frontier_study(
        FrontierStudyConfig(max_budget=CEILING, jobs=1))


@pytest.fixture(scope="module")
def frontier_parallel():
    return run_frontier_study(
        FrontierStudyConfig(max_budget=CEILING, jobs=2))


@pytest.fixture(scope="module")
def grid_study():
    return run_exploration_study(
        ExplorationStudyConfig(budgets=GRID, jobs=1))


class TestSuiteEquivalence:
    def test_covers_the_whole_suite(self, frontier_serial):
        assert frontier_serial.names() == SUITE
        for name in SUITE:
            bench = frontier_serial.frontier(name)
            assert bench.frontier.segments, name
            assert bench.total_ops > 0, name
            assert bench.designs, name

    def test_grid_cells_fall_out_of_the_frontier(self, frontier_serial,
                                                 grid_study):
        for name in SUITE:
            for budget in GRID:
                assert exploration_projection(
                    frontier_serial.result_at(name, budget)) == \
                    exploration_projection(
                        grid_study.exploration(name, budget)), \
                    (name, budget)

    def test_parallel_identical_to_serial(self, frontier_serial,
                                          frontier_parallel):
        assert frontier_projection(frontier_parallel) == \
            frontier_projection(frontier_serial)

    def test_below_first_breakpoint_nothing_fits(self, frontier_serial):
        for name in SUITE:
            result = frontier_serial.result_at(name, 1)
            assert result.candidates == []
            assert result.measured == []
            assert result.best is None

    def test_query_above_ceiling_raises(self, frontier_serial):
        with pytest.raises(AsipError, match="beyond this frontier's "
                                            "sweep limit"):
            frontier_serial.result_at("sewha", CEILING + 1)

    def test_unknown_benchmark_raises(self, frontier_serial):
        with pytest.raises(ReproError, match="no benchmark"):
            frontier_serial.frontier("nope")

    def test_every_benchmark_found_a_design(self, frontier_serial):
        # (Speedup is *not* monotone in budget: max_candidates
        # truncation can swap candidates as the budget grows — the
        # frontier must mirror that, not paper over it, so the grid
        # equivalence above is the real invariant.)
        for name in SUITE:
            best = frontier_serial.frontier(name).best_at(GRID[-1])
            assert best is not None, name
            assert best.speedup > 1.0, name
            assert best.area <= GRID[-1], name


class TestDenseGrid:
    """The acceptance bar: one sweep answers a >= 64-budget dense grid
    bit-identical to running the per-budget study at each point."""

    NAME = "sewha"
    BUDGETS = tuple(range(150, 150 + 64 * 38, 38))  # 64 budgets <= 2544

    def test_64_budgets_bit_identical(self, frontier_serial):
        assert len(self.BUDGETS) >= 64
        assert max(self.BUDGETS) <= CEILING
        grid = run_exploration_study(ExplorationStudyConfig(
            benchmarks=(self.NAME,), budgets=self.BUDGETS, jobs=1))
        for budget in self.BUDGETS:
            assert exploration_projection(
                frontier_serial.result_at(self.NAME, budget)) == \
                exploration_projection(
                    grid.exploration(self.NAME, budget)), budget

    def test_answers_constant_between_breakpoints(self, frontier_serial):
        bench = frontier_serial.frontier(self.NAME)
        breakpoints = bench.breakpoints()
        assert len(breakpoints) >= 2
        for lo, hi in zip(breakpoints, breakpoints[1:]):
            left = exploration_projection(bench.result_at(lo))
            probe = exploration_projection(bench.result_at(hi - 1))
            assert probe == left, (lo, hi)


class TestLevels:
    """Levels 0 and 2 over the suite (level 1 is the default and
    covered above); a tighter ceiling keeps the measurement load sane.

    The image benchmarks (flatten/smooth/edge) are excluded at level 2:
    chained speculative loads on their unrolled kernels index out of
    bounds in the *per-budget* path too — a pre-existing level-2
    exploration limitation, orthogonal to the sweep (both paths raise
    the same ``SimulationError``, which is its own pin below)."""

    GRID = (900, 1500)
    CEIL = 1500
    LEVEL2_SKIP = ("flatten", "smooth", "edge")

    @pytest.mark.parametrize("level", (0, 2))
    def test_matches_grid_study(self, level):
        names = tuple(n for n in SUITE
                      if level != 2 or n not in self.LEVEL2_SKIP)
        frontier = run_frontier_study(FrontierStudyConfig(
            benchmarks=names, level=level, max_budget=self.CEIL, jobs=1))
        grid = run_exploration_study(ExplorationStudyConfig(
            benchmarks=names, level=level, budgets=self.GRID, jobs=1))
        assert frontier.names() == list(names)
        for name in names:
            for budget in self.GRID:
                assert exploration_projection(
                    frontier.result_at(name, budget)) == \
                    exploration_projection(
                        grid.exploration(name, budget)), \
                    (level, name, budget)

    @pytest.mark.parametrize("name", LEVEL2_SKIP)
    def test_level2_image_kernels_raise_in_both_paths(self, name):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError, match="out of bounds"):
            run_frontier_study(FrontierStudyConfig(
                benchmarks=(name,), level=2, max_budget=self.CEIL))
        with pytest.raises(SimulationError, match="out of bounds"):
            run_exploration_study(ExplorationStudyConfig(
                benchmarks=(name,), level=2, budgets=self.GRID))


class TestFuzzQueries:
    """Random budgets against brute-force re-ranking on real pools —
    the pure stages only, so hundreds of queries stay cheap."""

    NAMES = ("sewha", "dft", "edge")

    @pytest.fixture(scope="class")
    def pools(self):
        from repro.asip.cost import DEFAULT_COST_MODEL
        from repro.chaining.detect import detect_sequences
        from repro.opt.pipeline import optimize_module
        from repro.sim.machine import run_module
        pools = {}
        for name in self.NAMES:
            spec = get_benchmark(name)
            gm, _ = optimize_module(compile_benchmark(spec), OptLevel(1))
            profile = run_module(gm, spec.generate_inputs(0)).profile
            detection = detect_sequences(gm, profile, (2, 3))
            pools[name] = candidate_pool(detection, DEFAULT_COST_MODEL)
        return pools

    def test_random_budgets_match_brute_force(self, pools):
        rng = random.Random(1234)
        for name, pool in pools.items():
            frontier = frontier_sweep(pool, max_candidates=8,
                                      measure_top=4)
            ceiling = sum(c.area for c in pool) + 500
            for _ in range(250):
                budget = rng.randint(1, ceiling)
                expected = rank_candidates(pool, budget, 8)
                assert frontier.candidates_at(budget) == expected, \
                    (name, budget)
                combos = select_finalists(expected, budget, 4)
                segment = frontier.segment_at(budget)
                if segment is None:
                    assert not combos, (name, budget)
                else:
                    assert list(segment.combos) == combos, (name, budget)

    def test_bounded_sweep_matches_unbounded_within_ceiling(self, pools):
        rng = random.Random(99)
        for name, pool in pools.items():
            unbounded = frontier_sweep(pool, max_candidates=8,
                                       measure_top=4)
            bounded = frontier_sweep(pool, max_candidates=8,
                                     measure_top=4, max_budget=1500)
            for _ in range(100):
                budget = rng.randint(1, 1500)
                assert bounded.segment_at(budget) == \
                    unbounded.segment_at(budget), (name, budget)

    def test_breakpoints_sorted_and_coalesced(self, pools):
        for pool in pools.values():
            frontier = frontier_sweep(pool, max_candidates=8,
                                      measure_top=4)
            breakpoints = frontier.breakpoints()
            assert breakpoints == sorted(set(breakpoints))
            # Coalescing worked: no two consecutive segments answer
            # identically.
            for a, b in zip(frontier.segments, frontier.segments[1:]):
                assert (a.candidate_indices, a.combos) != \
                    (b.candidate_indices, b.combos)


class TestMultiSeed:
    SEEDS = (0, 1, 2, 3, 4)
    NAMES = ("sewha", "dft")
    CEIL = 1200

    def test_sharded_identical_to_serial(self):
        # 5 seeds and jobs=3 forces seed sharding *and* chunked
        # measurement fan-out.
        sharded = run_frontier_study(FrontierStudyConfig(
            benchmarks=self.NAMES, seeds=self.SEEDS,
            max_budget=self.CEIL, jobs=3))
        serial = run_frontier_study(FrontierStudyConfig(
            benchmarks=self.NAMES, seeds=self.SEEDS,
            max_budget=self.CEIL, jobs=1))
        assert frontier_projection(sharded) == \
            frontier_projection(serial)


class TestScheduleShape:
    def test_base_gates_frontier_gates_chunks(self):
        from repro.exec.explore import build_frontier_schedule
        config = FrontierStudyConfig(benchmarks=("fir", "iir"),
                                     max_budget=2000)
        tasks = build_frontier_schedule(config, ["fir", "iir"], jobs=2)
        by_key = {task.key: task for task in tasks}
        assert set(by_key) == {
            ("base", "fir"), ("base", "iir"),
            ("frontier", "fir"), ("frontier", "iir"),
            ("fchunk", "fir", 0, 0), ("fchunk", "fir", 1, 0),
            ("fchunk", "iir", 0, 0), ("fchunk", "iir", 1, 0)}
        for key, task in by_key.items():
            assert task.affinity == key[1]
            if key[0] == "base":
                assert task.deps == ()
            elif key[0] == "frontier":
                assert task.deps == (("base", key[1]),)
            else:
                assert task.deps == (("base", key[1]),
                                     ("frontier", key[1]))

    def test_serial_schedule_is_one_chunk(self):
        from repro.exec.explore import build_frontier_schedule
        config = FrontierStudyConfig(benchmarks=("fir",))
        tasks = build_frontier_schedule(config, ["fir"], jobs=1)
        assert sum(t.key[0] == "fchunk" for t in tasks) == 1

    def test_seed_shards_multiply_chunks(self):
        from repro.exec.explore import build_frontier_schedule
        config = FrontierStudyConfig(benchmarks=("fir",),
                                     seeds=(0, 1, 2, 3, 4))
        tasks = build_frontier_schedule(config, ["fir"], jobs=3)
        chunks = [t.key for t in tasks if t.key[0] == "fchunk"]
        # 3 measurement chunks x 3 seed shards.
        assert chunks == [("fchunk", "fir", c, j)
                          for c in range(3) for j in range(3)]

    def test_chunk_bounds_partition(self):
        from repro.exec.explore import _chunk_bounds
        for count in range(0, 23):
            for chunks in range(1, 6):
                bounds = _chunk_bounds(count, chunks)
                assert len(bounds) == chunks
                assert bounds[0][0] == 0 and bounds[-1][1] == count
                for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                    assert hi == lo

    def test_progress_reports_base_frontier_measure(self):
        events = []
        run_frontier_study(
            FrontierStudyConfig(benchmarks=("sewha",), max_budget=1200),
            progress=lambda name, stage: events.append((name, stage)))
        assert events == [("sewha", "base"), ("sewha", "frontier"),
                          ("sewha", "measure")]


class TestValidation:
    def test_non_positive_max_budget(self):
        for bad in (0, -5):
            with pytest.raises(ReproError, match="must be positive"):
                run_frontier_study(FrontierStudyConfig(max_budget=bad))

    def test_bad_level(self):
        with pytest.raises(ReproError, match="optimization level"):
            run_frontier_study(FrontierStudyConfig(level=7))

    def test_bad_engine(self):
        with pytest.raises(Exception, match="unknown engine"):
            run_frontier_study(FrontierStudyConfig(engine="turbo"))

    def test_duplicate_seeds(self):
        with pytest.raises(ReproError, match="duplicate"):
            run_frontier_study(FrontierStudyConfig(seeds=(1, 1)))

    def test_unknown_benchmark_fails_before_any_work(self):
        with pytest.raises(ReproError):
            run_frontier_study(FrontierStudyConfig(benchmarks=("nope",)))


class TestSuiteAggregation:
    """combine_frontier_chains in isolation, then on the real study."""

    ENTRIES = [
        ("a", 1000, {("add", "mul"): 300, ("load", "add"): 100},
         [("add", "mul")]),
        ("b", 3000, {("add", "mul"): 600, ("load", "add"): 900},
         [("add", "mul"), ("load", "add")]),
    ]

    def test_weighting_and_sorting(self):
        rows = combine_frontier_chains(self.ENTRIES)
        assert [r.name for r in rows] == [("add", "mul"), ("load", "add")]
        shared, solo = rows
        assert shared.frontier_count == 2
        assert shared.benchmarks == ["a", "b"]
        # Cycles sum over *all* entries, frontier member or not.
        assert shared.cycles_accounted == 900
        assert shared.suite_ops == 4000
        assert shared.combined_frequency == pytest.approx(22.5)
        # More-shared sorts first even at lower combined frequency.
        assert solo.combined_frequency == pytest.approx(25.0)
        assert solo.benchmarks == ["b"]

    def test_reason_strings(self):
        rows = combine_frontier_chains(self.ENTRIES)
        assert rows[0].reason(2) == ("on 2 of 2 frontiers (a, b); "
                                     "22.50% of suite dynamic ops")
        assert "on 1 of 2 frontiers (b)" in rows[1].reason(2)

    def test_chain_off_every_frontier_gets_no_row(self):
        entries = [("a", 100, {("add", "mul"): 50}, [])]
        assert combine_frontier_chains(entries) == []

    def test_zero_suite_ops(self):
        chain = FrontierChain(name=("add", "mul"))
        assert chain.combined_frequency == 0.0

    def test_real_study_suite_chains(self, frontier_serial):
        chains = frontier_serial.suite_chains()
        assert chains
        suite_ops = sum(b.total_ops
                        for b in frontier_serial.benchmarks.values())
        frontier_patterns = {
            name: set(bench.frontier_patterns())
            for name, bench in frontier_serial.benchmarks.items()}
        for chain in chains:
            assert 1 <= chain.frontier_count <= len(SUITE)
            assert chain.suite_ops == suite_ops
            for bench_name in chain.benchmarks:
                assert chain.name in frontier_patterns[bench_name]
        keys = [(-c.frontier_count, -c.combined_frequency, c.name)
                for c in chains]
        assert keys == sorted(keys)
        # Every frontier pattern of every benchmark made it into a row.
        rowed = {c.name for c in chains}
        for patterns in frontier_patterns.values():
            assert patterns <= rowed


class TestReport:
    def test_report_sections(self, frontier_serial):
        text = frontier_report(frontier_serial)
        assert text.startswith("# Frontier study report")
        assert "## Summary" in text
        assert "## Suite-wide chains" in text
        for name in SUITE:
            assert f"## {name}: frontier breakpoints" in text
        assert f"of {len(SUITE)} frontiers" in text
        assert "Sweep ceiling: 2600" in text

    def test_summary_rows_match_points(self, frontier_serial):
        rows = frontier_serial.summary_rows()
        assert rows
        for row in rows:
            best = frontier_serial.frontier(
                row["benchmark"]).best_at(row["budget"])
            assert best is not None
            assert row["speedup"] == best.speedup
            assert row["area"] == best.area
            assert row["chains"] == best.labels()
