"""IR assembler tests, including printer round-trips."""

import pytest

from repro.errors import IRError
from repro.cfg.build import build_module_graphs
from repro.frontend import compile_source
from repro.ir.asm import parse_function, parse_module
from repro.ir.ops import Op
from repro.ir.printer import format_module
from repro.ir.verify import verify_module
from repro.sim.machine import run_module


def run_text(text, inputs=None):
    module = parse_module(text)
    verify_module(module)
    return run_module(build_module_graphs(module), inputs)


class TestBasicParsing:
    def test_minimal_module(self):
        module = parse_module("""
        module tiny
        func int main() {
          t0 = add 1, 2
          ret t0
        }
        """)
        assert module.name == "tiny"
        assert run_text(format_module(module)).return_value == 3

    def test_global_scalar(self):
        result = run_text("""
        global int n = 42
        func int main() {
          t0 = load @n[0]
          ret t0
        }
        """)
        assert result.return_value == 42

    def test_global_array_with_initializer(self):
        result = run_text("""
        global int table[4] = { 5, 6, 7, 8 }
        func int main() {
          t0 = load @table[2]
          ret t0
        }
        """)
        assert result.return_value == 7

    def test_float_registers_inferred(self):
        fn = parse_function("""
        func float f(float a) {
          f0 = fmul a, 2.0
          ret f0
        }
        """)
        assert fn.params[0].is_float
        ops = list(fn.instructions())
        assert ops[0].dest.is_float

    def test_branches_and_labels(self):
        result = run_text("""
        func int main() {
          t0 = cmplt 1, 2
          br t0, .yes, .no
        .yes:
          ret 10
        .no:
          ret 20
        }
        """)
        assert result.return_value == 10

    def test_loop_with_jump(self):
        result = run_text("""
        func int main() {
          i = mov 0
          s = mov 0
        .head:
          t0 = cmplt i, 5
          br t0, .body, .exit
        .body:
          s = add s, i
          i = add i, 1
          jmp .head
        .exit:
          ret s
        }
        """)
        assert result.return_value == 10

    def test_local_arrays(self):
        result = run_text("""
        func int main() {
          local int buf[4]
          store @buf[1], 9
          t0 = load @buf[1]
          ret t0
        }
        """)
        assert result.return_value == 9

    def test_calls_with_array_args(self):
        result = run_text("""
        global int data[3] = { 1, 2, 3 }
        func int total(int a[3]) {
          t0 = load @a[0]
          t1 = load @a[1]
          t2 = load @a[2]
          t3 = add t0, t1
          t4 = add t3, t2
          ret t4
        }
        func int main() {
          t0 = call total(data)
          ret t0
        }
        """)
        assert result.return_value == 6

    def test_intrinsic(self):
        result = run_text("""
        global float out[1]
        func int main() {
          f0 = intrin sqrt(9.0)
          fstore @out[0], f0
          ret 0
        }
        """)
        assert result.array("out")[0] == 3.0

    def test_comments_ignored(self):
        module = parse_module("""
        # a comment
        // another
        func int main() {
          # inside too
          ret 0
        }
        """)
        assert run_text(format_module(module)).return_value == 0


class TestErrors:
    def test_unknown_opcode(self):
        with pytest.raises(IRError):
            parse_module("func int main() {\n t0 = frob 1\n ret 0\n}")

    def test_unknown_array(self):
        with pytest.raises(IRError):
            parse_module("func int main() {\n t0 = load @ghost[0]\n"
                         " ret t0\n}")

    def test_register_class_conflict(self):
        with pytest.raises(IRError):
            parse_module("""
            func int main() {
              t0 = add 1, 2
              f0 = fadd t0, 1.0
              ret 0
            }
            """)

    def test_store_kind_mismatch(self):
        with pytest.raises(IRError):
            parse_module("""
            global float x[2]
            func int main() {
              store @x[0], 1
              ret 0
            }
            """)

    def test_control_cannot_define(self):
        with pytest.raises(IRError):
            parse_module("func int main() {\n t0 = jmp .x\n.x:\n ret 0\n}")

    def test_unterminated_function(self):
        with pytest.raises(IRError):
            parse_module("func int main() {\n ret 0\n")

    def test_parse_function_requires_single(self):
        with pytest.raises(IRError):
            parse_function("""
            func int a() { ret 0 }
            """.replace("{ ret 0 }", "{\n ret 0\n}") + """
            func int b() {
              ret 1
            }
            """)


class TestRoundTrip:
    """print(compile(mini_c)) must re-assemble into an equivalent module."""

    SOURCES = {
        "arith": """
            int main() { int a; a = 6; return a * 7 + (a >> 1); }
        """,
        "loops": """
            int x[8];
            int main() { int i; int s; s = 0;
                for (i = 0; i < 8; i++) { s += x[i] * 3; }
                return s; }
        """,
        "floats": """
            float x[4]; float y[4];
            int main() { int i;
                for (i = 0; i < 4; i++) { y[i] = x[i] * 2.5 + 1.0; }
                return 0; }
        """,
        "calls": """
            int square(int v) { return v * v; }
            int main() { return square(9) + square(2); }
        """,
        "initializers": """
            float h[3] = { 0.25, 0.5, 0.25 };
            int n = 3;
            float out[1];
            int main() { int i; float s; s = 0.0;
                for (i = 0; i < n; i++) { s += h[i]; }
                out[0] = s; return 0; }
        """,
    }

    INPUTS = {
        "loops": {"x": [3, 1, 4, 1, 5, 9, 2, 6]},
        "floats": {"x": [0.5, -1.0, 2.0, 0.0]},
    }

    @pytest.mark.parametrize("name", sorted(SOURCES))
    def test_roundtrip(self, name):
        module = compile_source(self.SOURCES[name], name)
        inputs = self.INPUTS.get(name)
        expected = run_module(build_module_graphs(module), inputs)

        text = format_module(module)
        reparsed = parse_module(text)
        verify_module(reparsed)
        actual = run_module(build_module_graphs(reparsed), inputs)

        assert actual.return_value == expected.return_value
        assert actual.globals_after == expected.globals_after

    def test_double_roundtrip_is_stable(self):
        module = compile_source(self.SOURCES["loops"], "loops")
        once = format_module(parse_module(format_module(module)))
        twice = format_module(parse_module(once))
        assert once == twice
