"""Corner-case tests accumulated from review: builder coercions, study
configuration edges, detector self-loops, coverage exclusion interplay."""

import pytest

from repro.cfg.build import build_module_graphs
from repro.cfg.graph import GraphModule, ProgramGraph
from repro.chaining.detect import detect_sequences
from repro.errors import IRError
from repro.frontend import compile_source
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.instr import Instruction
from repro.ir.ops import Op
from repro.ir.values import Constant, VirtualReg
from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim.machine import run_module


class TestBuilderCoercions:
    def make(self):
        fn = Function("f", return_type="int")
        return fn, IRBuilder(fn)

    def test_python_int_becomes_int_constant(self):
        _fn, b = self.make()
        dest = b.binary(Op.ADD, 1, 2)
        assert not dest.is_float

    def test_python_float_to_float_op(self):
        fn, b = self.make()
        b.binary(Op.FADD, 1, 2)  # ints coerced to float constants
        ins = next(fn.instructions())
        assert all(s.is_float for s in ins.srcs)

    def test_bool_becomes_int(self):
        fn, b = self.make()
        b.move(True)
        ins = next(fn.instructions())
        assert ins.srcs[0] == Constant(1, False)

    def test_bad_operand_rejected(self):
        _fn, b = self.make()
        with pytest.raises(IRError):
            b.binary(Op.ADD, "nope", 1)

    def test_move_infers_class_from_source(self):
        _fn, b = self.make()
        f = b.binary(Op.FADD, 1.0, 2.0)
        copy = b.move(f)
        assert copy.is_float


class TestDetectorSelfLoop:
    def test_single_node_loop_chain_across_iterations(self):
        """A compacted one-node loop: producer feeds the consumer of the
        *next* iteration through the self edge."""
        g = ProgramGraph("main")
        i = VirtualReg("i")
        t = VirtualReg("t")
        init = g.new_node()
        init.ops.append(Instruction(Op.MOV, dest=i, srcs=(Constant(0),)))
        cond_init = VirtualReg("c")
        init.ops.append(Instruction(Op.MOV, dest=cond_init,
                                    srcs=(Constant(1),)))
        body = g.new_node()
        # One cycle: t = i * 3 (uses last cycle's i), i = i + 1, branch.
        body.ops.append(Instruction(Op.MUL, dest=t,
                                    srcs=(i, Constant(3))))
        body.ops.append(Instruction(Op.ADD, dest=i,
                                    srcs=(i, Constant(1),)))
        cond = VirtualReg("c")
        body.ops.append(Instruction(Op.CMPLT, dest=cond,
                                    srcs=(i, Constant(50))))
        body.control = Instruction(Op.BR, srcs=(cond,), true_label="b",
                                   false_label="x")
        exit_node = g.new_node()
        exit_node.control = Instruction(Op.RET, srcs=(t,))
        g.add_edge(init.id, body.id)
        g.add_edge(body.id, body.id)  # self loop (true arm)
        g.add_edge(body.id, exit_node.id)
        g.entry = init.id

        gm = GraphModule("m", {"main": g}, {}, {}, {})
        result = run_module(gm)
        detection = detect_sequences(gm, result.profile, (2,))
        # i's increment feeds next iteration's multiply and compare.
        assert detection.frequency(("add", "multiply")) > 0
        assert detection.frequency(("add", "compare")) > 0


class TestStudyConfigEdges:
    def test_single_level_study(self):
        from repro.feedback.study import StudyConfig, run_study
        study = run_study(StudyConfig(benchmarks=("dft",), levels=(1,)))
        bench = study.benchmark("dft")
        assert sorted(int(l) for l in bench.runs) == [1]
        combined = study.combined(1)
        assert combined.total_ops > 0

    def test_study_without_verification(self):
        from repro.feedback.study import StudyConfig, run_study
        study = run_study(StudyConfig(benchmarks=("dft",), levels=(0, 2),
                                      verify=False))
        assert set(int(l) for l in study.benchmark("dft").runs) == {0, 2}

    def test_different_seeds_change_profiles(self):
        from repro.feedback.study import StudyConfig, run_study
        a = run_study(StudyConfig(benchmarks=("sewha",), levels=(0,),
                                  seed=1))
        b = run_study(StudyConfig(benchmarks=("sewha",), levels=(0,),
                                  seed=2))
        # Same static structure, same cycle count shape, different data.
        ra = a.benchmark("sewha").run_at(0).machine_result
        rb = b.benchmark("sewha").run_at(0).machine_result
        assert ra.array("y") != rb.array("y")


class TestCoverageExclusionInterplay:
    def test_excluded_prefix_blocks_longer_chain(self):
        src = """
        int x[8]; int out[8];
        int main() { int i;
            for (i = 0; i < 8; i++) { out[i] = x[i] * 3 + 1; }
            return 0; }
        """
        gm, _ = optimize_module(compile_source(src, "t"), OptLevel.NONE)
        result = run_module(gm, {"x": list(range(8))})
        full = detect_sequences(gm, result.profile, (2, 3))
        three = full.sequences[3][("multiply", "add", "store")]
        # Exclude the multiply: both the 2-chain and 3-chain disappear.
        mul_uids = {occ.uids[0] for occ in three.occurrences}
        filtered = detect_sequences(gm, result.profile, (2, 3),
                                    excluded_uids=mul_uids)
        assert ("multiply", "add") not in filtered.sequences.get(2, {})
        assert ("multiply", "add", "store") not in \
            filtered.sequences.get(3, {})
        # But add-store (not involving the multiply) survives.
        assert ("add", "store") in filtered.sequences.get(2, {})


class TestUnreachableCodeHandling:
    def test_code_after_return_pruned(self):
        src = """
        int main() {
            int a;
            a = 1;
            return a;
        }
        """
        gm = build_module_graphs(compile_source(src, "t"))
        graph = gm.graphs["main"]
        assert graph.reachable() == set(graph.nodes)

    def test_dead_branch_still_simulates(self):
        src = """
        int main() {
            int a; a = 5;
            if (0 == 1) { a = 99; }
            return a;
        }
        """
        from tests.conftest import run_all_levels
        assert run_all_levels(src).return_value == 5

    def test_loop_never_entered(self):
        src = """
        int x[4];
        int main() { int i; int s; s = 0;
            for (i = 10; i < 4; i++) { s += x[i]; }
            return s; }
        """
        from tests.conftest import run_all_levels
        assert run_all_levels(src).return_value == 0
