"""Failure-injection tests: the safety nets must actually catch breakage.

A reproduction that silently mis-optimizes would still produce plausible
frequency tables; these tests corrupt the pipeline on purpose and assert
that the semantic oracles (simulator comparison, verifier, evaluator)
refuse to accept the result.
"""

import pytest

from repro.cfg.build import build_module_graphs
from repro.errors import AsipError, IRError, OptimizationError
from repro.frontend import compile_source
from repro.ir.instr import Instruction
from repro.ir.ops import Op
from repro.ir.values import Constant, VirtualReg
from repro.ir.verify import verify_module
from repro.opt.pipeline import OptLevel
from repro.sim.machine import run_module
from repro.suite.registry import get_benchmark
from repro.suite.runner import compile_benchmark, run_benchmark

SRC = """
int x[8];
int y[8];
int main() {
    int i;
    for (i = 0; i < 8; i++) { y[i] = x[i] * 3 + 1; }
    return y[7];
}
"""

INPUTS = {"x": [2, 4, 6, 8, 10, 12, 14, 16]}


def _graphs():
    return build_module_graphs(compile_source(SRC, "t"))


class TestRunnerOracle:
    def test_runner_rejects_diverging_run(self):
        spec = get_benchmark("sewha")
        module = compile_benchmark(spec)
        reference = run_benchmark(spec, OptLevel.NONE, module=module,
                                  lengths=(2,))
        # Corrupt the reference so the level-1 check must fire.
        reference.machine_result.globals_after["y"][0] += 1
        with pytest.raises(OptimizationError):
            run_benchmark(spec, OptLevel.PIPELINED, module=module,
                          lengths=(2,),
                          check_against=reference.machine_result)


class TestSimulatorAsOracle:
    def test_illegal_hoist_changes_outputs(self):
        """Manually perform a move that violates the true-dependence rule
        and show the simulator-comparison oracle notices."""
        gm = _graphs()
        expected = run_module(gm, INPUTS)

        broken = _graphs()
        graph = broken.graphs["main"]
        # Find a producer/consumer pair in consecutive nodes and merge the
        # consumer into the producer's node — illegal under VLIW
        # semantics (the consumer now reads the stale value).
        moved = False
        for nid, node in list(graph.nodes.items()):
            if len(node.succs) != 1 or not node.ops:
                continue
            succ = graph.nodes[node.succs[0]]
            if not succ.ops or succ.control is not None:
                continue
            producer = node.ops[0]
            consumer = succ.ops[0]
            if producer.dest is not None \
                    and producer.dest in consumer.uses() \
                    and not consumer.is_store:
                succ.ops.remove(consumer)
                node.ops.append(consumer)
                moved = True
                break
        assert moved, "test setup: no mergeable pair found"
        try:
            actual = run_module(broken, INPUTS)
        except Exception:
            return  # reading an undefined register is also a catch
        assert actual.globals_after != expected.globals_after or \
            actual.return_value != expected.return_value, \
            "oracle failed to observe the illegal transformation"


class TestVerifierCatchesCorruption:
    def test_dangling_branch_target(self):
        module = compile_source(SRC, "t")
        fn = module.functions["main"]
        branch = next(ins for ins in fn.instructions()
                      if ins.op is Op.BR)
        branch.true_label = ".nowhere"
        with pytest.raises(IRError):
            verify_module(module)

    def test_type_corruption(self):
        module = compile_source(SRC, "t")
        fn = module.functions["main"]
        add = next(ins for ins in fn.instructions() if ins.op is Op.ADD)
        add.srcs = (VirtualReg("bogus", is_float=True), add.srcs[1])
        with pytest.raises(IRError):
            verify_module(module)


class TestEvaluatorOracle:
    def test_broken_fusion_detected(self):
        """A chained instruction that drops one of its parts must be
        rejected by the base-vs-chained comparison."""
        from repro.asip.evaluate import evaluate_on_sequential
        from repro.asip.isa import ChainedInstruction, InstructionSet
        from repro.asip.resequence import resequence_module
        from repro.asip import select as select_mod

        gm = _graphs()
        sequential = resequence_module(gm)
        isa = InstructionSet()
        isa.add_chain(ChainedInstruction("mac", ("multiply", "add")))

        original_fuse = select_mod._fuse_run

        def sabotaged(graph, run, chain):
            original_fuse(graph, run, chain)
            # Drop the last part of the freshly fused instruction.
            head = graph.nodes[run[0]]
            head.ops[0].parts.pop()
            head.ops[0].chain = ChainedInstruction(
                chain.name, chain.pattern[:-1] + ("add",))

        select_mod._fuse_run = sabotaged
        try:
            # Either the output comparison (AsipError) or the simulator's
            # undefined-register guard must reject the broken binary.
            from repro.errors import SimulationError
            with pytest.raises((AsipError, SimulationError)):
                evaluate_on_sequential(sequential, isa, INPUTS)
        finally:
            select_mod._fuse_run = original_fuse


class TestSimulatorGuards:
    def test_wrong_arity_call(self):
        from repro.ir.asm import parse_module
        module = parse_module("""
        func int f(int a, int b) {
          t0 = add a, b
          ret t0
        }
        func int main() {
          t0 = call f(1)
          ret t0
        }
        """)
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            run_module(build_module_graphs(module))

    def test_malformed_graph_missing_successor(self):
        gm = _graphs()
        graph = gm.graphs["main"]
        victim = next(n for n in graph.nodes.values()
                      if len(n.succs) == 1 and n.ops)
        graph.remove_edge(victim.id, victim.succs[0])
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            run_module(gm, INPUTS)
