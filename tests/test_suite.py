"""Benchmark-suite tests: every Table-1 program compiles, runs and
produces plausible DSP output; the runner and study drivers work."""

import math

import pytest

from repro.errors import OptimizationError
from repro.opt.pipeline import OptLevel
from repro.suite.data import random_image, rng_for
from repro.suite.registry import (all_benchmarks, benchmark_names,
                                  get_benchmark)
from repro.suite.runner import (compile_benchmark, run_benchmark,
                                verify_semantics)
from repro.errors import ReproError


class TestRegistry:
    def test_twelve_benchmarks(self):
        assert len(all_benchmarks()) == 12

    def test_table1_order(self):
        assert benchmark_names()[0] == "fir"
        assert benchmark_names()[-1] == "feowf"

    def test_unknown_benchmark(self):
        with pytest.raises(ReproError):
            get_benchmark("nope")

    def test_specs_have_metadata(self):
        for spec in all_benchmarks():
            assert spec.description
            assert spec.data_description
            assert spec.source_lines > 10
            assert spec.inputs and spec.outputs

    def test_input_generation_deterministic(self):
        spec = get_benchmark("fir")
        assert spec.generate_inputs(3) == spec.generate_inputs(3)
        assert spec.generate_inputs(3) != spec.generate_inputs(4)

    def test_inputs_match_declared_arrays(self):
        for spec in all_benchmarks():
            module = compile_benchmark(spec)
            inputs = spec.generate_inputs(0)
            for name in spec.inputs:
                assert name in module.global_arrays
                assert len(inputs[name]) <= \
                    module.global_arrays[name].size
            for name in spec.outputs:
                assert name in module.global_arrays


class TestDataGenerators:
    def test_image_shape_and_range(self):
        img = random_image(rng_for("x", 0))
        assert len(img) == 24 * 24
        assert all(0 <= p <= 255 for p in img)

    def test_image_has_contrast(self):
        img = random_image(rng_for("x", 0))
        assert max(img) - min(img) > 60  # the bright patch


@pytest.mark.parametrize("name", benchmark_names())
class TestEveryBenchmark:
    def test_compiles(self, name):
        compile_benchmark(get_benchmark(name))

    def test_runs_and_levels_agree(self, name):
        spec = get_benchmark(name)
        module = compile_benchmark(spec)
        r0 = run_benchmark(spec, OptLevel.NONE, module=module,
                           lengths=(2,))
        r1 = run_benchmark(spec, OptLevel.PIPELINED, module=module,
                           lengths=(2,), check_against=r0.machine_result)
        assert r1.cycles < r0.cycles  # compaction always helps here
        assert r0.detection.total_ops > 0


class TestSemanticOracle:
    """The tightened preservation check: declared output arrays are
    compared explicitly (and first), so an array-only divergence is caught
    and reported against the array name."""

    def _reference(self, name="fir"):
        from repro.sim.machine import MachineResult
        spec = get_benchmark(name)
        run = run_benchmark(spec, OptLevel.NONE, lengths=(2,))
        base = run.machine_result
        tampered = MachineResult(
            base.return_value,
            {k: list(v) for k, v in base.globals_after.items()},
            base.profile)
        return spec, run, tampered

    def test_output_array_divergence_caught_and_named(self):
        spec, _run, tampered = self._reference()
        out = spec.outputs[0]
        tampered.globals_after[out][3] += 1  # array-only: same return value
        with pytest.raises(OptimizationError,
                           match=f"output array '{out}'"):
            run_benchmark(spec, OptLevel.PIPELINED, lengths=(2,),
                          check_against=tampered)

    def test_non_output_divergence_still_caught(self):
        spec, _run, tampered = self._reference()
        scratch = next(n for n in tampered.globals_after
                       if n not in spec.outputs)
        tampered.globals_after[scratch][0] += 1
        with pytest.raises(OptimizationError, match="outputs diverge"):
            run_benchmark(spec, OptLevel.PIPELINED, lengths=(2,),
                          check_against=tampered)

    def test_clean_reference_passes(self):
        spec, run, _tampered = self._reference()
        run_benchmark(spec, OptLevel.PIPELINED, lengths=(2,),
                      check_against=run.machine_result)

    def test_verify_semantics_direct(self):
        spec, run, tampered = self._reference()
        verify_semantics(spec, OptLevel.NONE, run.machine_result,
                         run.machine_result)  # identical: no raise
        out = spec.outputs[0]
        tampered.globals_after[out][0] -= 7
        with pytest.raises(OptimizationError, match=f"'{out}'"):
            verify_semantics(spec, OptLevel.NONE, run.machine_result,
                             tampered)

    def test_multi_seed_reference_length_mismatch(self):
        spec, run, _tampered = self._reference()
        with pytest.raises(OptimizationError, match="seeds"):
            run_benchmark(spec, OptLevel.PIPELINED, lengths=(2,),
                          seeds=(0, 1),
                          check_against=[run.machine_result])

    def test_multi_seed_divergence_in_later_seed_caught(self):
        spec = get_benchmark("fir")
        base = run_benchmark(spec, OptLevel.NONE, lengths=(2,),
                             seeds=(0, 1))
        refs = list(base.seed_results)
        from repro.sim.machine import MachineResult
        out = spec.outputs[0]
        tampered = MachineResult(
            refs[1].return_value,
            {k: list(v) for k, v in refs[1].globals_after.items()},
            refs[1].profile)
        tampered.globals_after[out][0] += 1
        refs[1] = tampered
        with pytest.raises(OptimizationError,
                           match=f"output array '{out}'"):
            run_benchmark(spec, OptLevel.PIPELINED, lengths=(2,),
                          seeds=(0, 1), check_against=refs)


class TestBenchmarkOutputs:
    """Spot-check each benchmark computes what it claims."""

    def run0(self, name):
        spec = get_benchmark(name)
        return spec, run_benchmark(spec, OptLevel.NONE, lengths=(2,))

    def test_fir_smooths(self):
        _spec, run = self.run0("fir")
        y = run.machine_result.array("y")
        x_inputs = get_benchmark("fir").generate_inputs(0)["x"]
        # A lowpass over zero-mean noise shrinks sample-to-sample jumps.
        def jumpiness(v):
            return sum(abs(a - b) for a, b in zip(v, v[1:])) / (len(v) - 1)
        assert jumpiness(y[40:]) < jumpiness(x_inputs[40:])

    def test_iir_output_bounded(self):
        _spec, run = self.run0("iir")
        y = run.machine_result.array("y")
        assert all(abs(v) < 10.0 for v in y)  # stable filter
        assert any(v != 0.0 for v in y)

    def test_pse_psd_nonnegative(self):
        _spec, run = self.run0("pse")
        psd = run.machine_result.array("psd")
        assert all(v >= 0.0 for v in psd)
        assert any(v > 0.0 for v in psd)

    def test_intfft_preserves_even_samples(self):
        _spec, run = self.run0("intfft")
        y = run.machine_result.array("y")
        x = get_benchmark("intfft").generate_inputs(0)["x"]
        # 2:1 interpolation: even outputs approximate the inputs (ringing
        # from the rectangular spectral window keeps this loose).
        errors = [abs(y[2 * i] - x[i]) for i in range(10, 40)]
        assert sum(errors) / len(errors) < 0.35

    def test_compress_reconstruction_close(self):
        _spec, run = self.run0("compress")
        recon = run.machine_result.array("recon")
        img = get_benchmark("compress").generate_inputs(0)["img"]
        rmse = math.sqrt(sum((a - b) ** 2 for a, b in zip(recon, img))
                         / len(img))
        assert rmse < 40.0  # 4:1 DCT keeps the image recognizable
        assert all(0 <= p <= 255 for p in recon)

    def test_flatten_spreads_histogram(self):
        _spec, run = self.run0("flatten")
        out = run.machine_result.array("out")
        img = get_benchmark("flatten").generate_inputs(0)["img"]
        assert max(out) - min(out) >= max(img) - min(img)
        assert max(out) > 200  # equalization reaches the bright end

    def test_smooth_reduces_variance(self):
        _spec, run = self.run0("smooth")
        out = run.machine_result.array("out")
        img = get_benchmark("smooth").generate_inputs(0)["img"]

        def variance(v):
            mean = sum(v) / len(v)
            return sum((p - mean) ** 2 for p in v) / len(v)

        assert variance(out) < variance(img)

    def test_edge_finds_the_patch(self):
        _spec, run = self.run0("edge")
        assert run.machine_result.return_value > 4  # patch perimeter
        edges = run.machine_result.array("edges")
        assert set(edges) <= {0, 1}

    def test_sewha_scales_down(self):
        _spec, run = self.run0("sewha")
        y = run.machine_result.array("y")
        x = get_benchmark("sewha").generate_inputs(0)["x"]
        assert max(abs(v) for v in y) <= max(abs(v) for v in x)

    def test_dft_power_nonnegative(self):
        _spec, run = self.run0("dft")
        assert run.machine_result.array("power")[0] >= 0.0

    def test_bspline_endpoints_copied(self):
        _spec, run = self.run0("bspline")
        y = run.machine_result.array("y")
        x = get_benchmark("bspline").generate_inputs(0)["x"]
        assert y[0] == x[0] and y[255] == x[255]

    def test_feowf_bounded_state(self):
        _spec, run = self.run0("feowf")
        y = run.machine_result.array("y")
        assert all(abs(v) < 50000 for v in y)  # contractive feedback
        assert any(v != 0 for v in y)


class TestStudy:
    def test_mini_study_shape(self, mini_study):
        assert set(mini_study.benchmarks) == {"sewha", "bspline", "dft"}
        for bench in mini_study.benchmarks.values():
            assert set(int(l) for l in bench.runs) == {0, 1, 2}

    def test_study_combined_levels_differ(self, mini_study):
        c0 = mini_study.combined(0)
        c1 = mini_study.combined(1)
        assert c0.total_ops != c1.total_ops or c0.cycles != c1.cycles

    def test_study_coverage_improves(self, mini_study):
        cov0 = mini_study.coverage("sewha", 0)
        cov1 = mini_study.coverage("sewha", 1)
        assert cov1.coverage > cov0.coverage

    def test_unknown_benchmark_raises(self, mini_study):
        with pytest.raises(ReproError):
            mini_study.benchmark("edge")

    def test_summary_serializes(self, mini_study):
        from repro.feedback.results import study_summary, summary_to_json
        summary = study_summary(mini_study)
        assert set(summary["benchmarks"]) == {"sewha", "bspline", "dft"}
        text = summary_to_json(mini_study)
        import json
        assert json.loads(text)["config"]["levels"] == [0, 1, 2]
