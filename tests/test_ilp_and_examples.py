"""ILP characterization tests and example-script smoke tests."""

import pathlib
import subprocess
import sys

import pytest

from repro.feedback.ilp import (characterize_ilp, render_ilp_table,
                                suite_ilp_summary)

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


class TestIlp:
    def test_rows_cover_matrix(self, mini_study):
        rows = characterize_ilp(mini_study)
        assert len(rows) == 3 * 3  # 3 benchmarks x 3 levels
        assert {r.benchmark for r in rows} == {"sewha", "bspline", "dft"}

    def test_level0_ilp_at_most_one(self, mini_study):
        for row in characterize_ilp(mini_study):
            if row.level == 0:
                assert row.ilp <= 1.0

    def test_level1_ilp_above_level0(self, mini_study):
        rows = characterize_ilp(mini_study)
        by_bench = {}
        for row in rows:
            by_bench.setdefault(row.benchmark, {})[row.level] = row
        for name, levels in by_bench.items():
            assert levels[1].ilp > levels[0].ilp, name
            assert levels[1].speedup > 1.0, name

    def test_speedup_baseline_is_level0(self, mini_study):
        for row in characterize_ilp(mini_study):
            if row.level == 0:
                assert row.speedup == pytest.approx(1.0)

    def test_summary_aggregates(self, mini_study):
        rows = characterize_ilp(mini_study)
        summary = suite_ilp_summary(rows)
        assert set(summary) == {0, 1, 2}
        assert summary[1] > summary[0]

    def test_render_table(self, mini_study):
        text = render_ilp_table(characterize_ilp(mini_study))
        assert "ILP" in text and "sewha" in text
        assert text.count("x") >= 9  # a speedup column entry per row


@pytest.mark.parametrize("script,args", [
    ("quickstart.py", []),
    ("asip_designer.py", ["dft", "2000"]),
    ("custom_benchmark.py", []),
    ("dsp_suite_study.py", []),
])
def test_example_runs(script, args):
    """Every example must run to completion from a clean interpreter."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
