"""Percolation-scheduling tests: legality, compaction, renaming, delete."""

import pytest

from repro.cfg.build import build_graph, build_module_graphs
from repro.cfg.graph import ProgramGraph
from repro.frontend import compile_source
from repro.ir.instr import Instruction
from repro.ir.ops import Op
from repro.ir.values import ArraySymbol, Constant, VirtualReg
from repro.opt.percolation import (CompactionStats, compact_graph,
                                   delete_empty_nodes)
from repro.sim.machine import run_module

from tests.conftest import FIR_LIKE_SOURCE, fir_like_inputs


def module_graphs(source):
    module = compile_source(source, "t")
    return build_module_graphs(module)


def run_value(gm, inputs=None):
    return run_module(gm, inputs)


class TestCompactionSemantics:
    """Compaction must never change observable behaviour."""

    CASES = [
        ("straight line",
         "int main() { int a; int b; a = 3; b = a * 2 + 1; return b; }",
         None),
        ("diamond",
         "int x[4]; int main() { int a; a = x[0];"
         " if (a > 0) { a = a * 2; } else { a = a - 1; } return a; }",
         {"x": [5, 0, 0, 0]}),
        ("loop with accumulator",
         "int x[8]; int main() { int i; int s; s = 0;"
         " for (i = 0; i < 8; i++) { s += x[i]; } return s; }",
         {"x": [1, 2, 3, 4, 5, 6, 7, 8]}),
        ("memory traffic",
         "int a[4]; int b[4]; int main() { int i;"
         " for (i = 0; i < 4; i++) { a[i] = i * 3; b[i] = a[i] + 1; }"
         " return b[3]; }",
         None),
        ("guarded store",
         "int out[4]; int x[4]; int main() { int i;"
         " for (i = 0; i < 4; i++) { if (x[i] > 0) { out[i] = x[i]; } }"
         " return out[0] + out[1] + out[2] + out[3]; }",
         {"x": [3, -1, 0, 9]}),
    ]

    @pytest.mark.parametrize("label,source,inputs",
                             CASES, ids=[c[0] for c in CASES])
    @pytest.mark.parametrize("rename", [False, True])
    def test_behaviour_preserved(self, label, source, inputs, rename):
        gm = module_graphs(source)
        expected = run_value(gm, inputs)
        gm2 = module_graphs(source)
        for g in gm2.graphs.values():
            compact_graph(g, rename=rename)
        actual = run_value(gm2, inputs)
        assert actual.return_value == expected.return_value
        assert actual.globals_after == expected.globals_after

    @pytest.mark.parametrize("rename", [False, True])
    def test_fir_like_kernel_preserved(self, rename):
        gm = module_graphs(FIR_LIKE_SOURCE)
        inputs = fir_like_inputs()
        expected = run_value(gm, inputs)
        gm2 = module_graphs(FIR_LIKE_SOURCE)
        for g in gm2.graphs.values():
            compact_graph(g, rename=rename)
        actual = run_value(gm2, inputs)
        assert actual.globals_after == expected.globals_after


class TestCompactionEffect:
    def test_compaction_reduces_cycles(self):
        gm = module_graphs(FIR_LIKE_SOURCE)
        inputs = fir_like_inputs()
        before = run_value(gm, inputs).cycles
        for g in gm.graphs.values():
            compact_graph(g)
        after = run_value(gm, inputs).cycles
        assert after < before

    def test_nodes_become_wider(self):
        gm = module_graphs(FIR_LIKE_SOURCE)
        g = gm.graphs["main"]
        compact_graph(g)
        assert max(len(n.ops) for n in g.nodes.values()) >= 2

    def test_width_limit_respected(self):
        gm = module_graphs(FIR_LIKE_SOURCE)
        g = gm.graphs["main"]
        compact_graph(g, max_width=2)
        assert max(len(n.ops) for n in g.nodes.values()) <= 2

    def test_stats_populated(self):
        gm = module_graphs(FIR_LIKE_SOURCE)
        stats = compact_graph(gm.graphs["main"])
        assert stats.moves > 0
        assert stats.passes >= 1
        assert stats.deleted_nodes > 0

    def test_renaming_only_at_level2(self):
        gm = module_graphs(FIR_LIKE_SOURCE)
        stats_plain = compact_graph(gm.graphs["main"], rename=False)
        assert stats_plain.renames == 0
        gm2 = module_graphs(FIR_LIKE_SOURCE)
        stats_renamed = compact_graph(gm2.graphs["main"], rename=True)
        assert stats_renamed.renames > 0

    def test_idempotent_at_fixpoint(self):
        gm = module_graphs(FIR_LIKE_SOURCE)
        g = gm.graphs["main"]
        compact_graph(g)
        second = compact_graph(g)
        assert second.moves == 0 and second.renames == 0


class TestLegalityRules:
    def _two_node_graph(self):
        """entry node -> second node, built by hand."""
        g = ProgramGraph("f")
        n1 = g.new_node()
        n2 = g.new_node()
        ret = g.new_node()
        ret.control = Instruction(Op.RET, srcs=(VirtualReg("r"),))
        g.add_edge(n1.id, n2.id)
        g.add_edge(n2.id, ret.id)
        g.entry = n1.id
        return g, n1, n2, ret

    def test_true_dependence_blocks_motion(self):
        g, n1, n2, _ret = self._two_node_graph()
        a, r = VirtualReg("a"), VirtualReg("r")
        n1.ops.append(Instruction(Op.MOV, dest=a, srcs=(Constant(1),)))
        n2.ops.append(Instruction(Op.ADD, dest=r, srcs=(a, Constant(2))))
        compact_graph(g)
        # The add must not join the node defining its operand.
        assert len(n1.ops) == 1
        assert n2.ops or any(
            ins.op is Op.ADD for ins in n1.ops)  # stayed put

    def test_independent_op_moves_up(self):
        g, n1, n2, ret = self._two_node_graph()
        a, b, r = VirtualReg("a"), VirtualReg("b"), VirtualReg("r")
        n1.ops.append(Instruction(Op.MOV, dest=a, srcs=(Constant(1),)))
        n2.ops.append(Instruction(Op.MOV, dest=b, srcs=(Constant(2),)))
        n2.ops.append(Instruction(Op.ADD, dest=r, srcs=(a,
                                                        Constant(3))))
        compact_graph(g)
        # b's definition is independent and should have moved into n1.
        assert any(ins.dest == b for ins in n1.ops)

    def test_store_does_not_speculate(self):
        src = """
        int out[2]; int x[2];
        int main() {
            if (x[0] > 0) { out[0] = 7; }
            return out[0];
        }
        """
        gm = module_graphs(src)
        g = gm.graphs["main"]
        compact_graph(g)
        # The store must stay strictly below the branch: on every path from
        # the entry, the branch comes first.
        branch_node = next(n for n in g.nodes.values() if n.is_branch)
        store_nodes = [n for n in g.nodes.values()
                       if any(ins.is_store for ins in n.ops)]
        assert store_nodes
        # A store node must not be an ancestor of the branch node, and must
        # not be the branch node's own node-set predecessor side.
        for sn in store_nodes:
            assert sn.id not in {branch_node.id} | set(branch_node.preds)

    def test_load_does_not_speculate_past_branch(self):
        src = """
        int x[2]; int idx[1];
        int main() {
            int v; v = 0;
            if (idx[0] < 2) { v = x[idx[0]]; }
            return v;
        }
        """
        gm = module_graphs(src)
        inputs = {"idx": [5], "x": [1, 2]}  # out-of-bounds if speculated
        expected = run_value(gm, inputs)
        gm2 = module_graphs(src)
        for graph in gm2.graphs.values():
            compact_graph(graph, rename=True)
        actual = run_value(gm2, inputs)  # must not fault
        assert actual.return_value == expected.return_value


class TestDeleteEmptyNodes:
    def test_empty_node_spliced(self):
        g = ProgramGraph("f")
        a, empty, b = g.new_node(), g.new_node(), g.new_node()
        a.ops.append(Instruction(Op.MOV, dest=VirtualReg("x"),
                                 srcs=(Constant(1),)))
        b.control = Instruction(Op.RET, srcs=())
        g.add_edge(a.id, empty.id)
        g.add_edge(empty.id, b.id)
        g.entry = a.id
        assert delete_empty_nodes(g) == 1
        assert g.nodes[a.id].succs == [b.id]

    def test_empty_entry_moves_entry(self):
        g = ProgramGraph("f")
        empty, b = g.new_node(), g.new_node()
        b.control = Instruction(Op.RET, srcs=())
        g.add_edge(empty.id, b.id)
        g.entry = empty.id
        delete_empty_nodes(g)
        assert g.entry == b.id

    def test_branch_node_kept(self):
        g = ProgramGraph("f")
        cond = VirtualReg("c")
        a, br, t, f = (g.new_node() for _ in range(4))
        a.ops.append(Instruction(Op.MOV, dest=cond, srcs=(Constant(1),)))
        br.control = Instruction(Op.BR, srcs=(cond,), true_label="x",
                                 false_label="y")
        t.control = Instruction(Op.RET, srcs=())
        f.control = Instruction(Op.RET, srcs=())
        g.add_edge(a.id, br.id)
        g.add_edge(br.id, t.id)
        g.add_edge(br.id, f.id)
        g.entry = a.id
        assert delete_empty_nodes(g) == 0
        assert br.id in g.nodes
