"""The benchmark trend checker (``benchmarks/trend.py``).

Loaded by path — the benchmarks directory is a sibling of the test
tree, not a package — and exercised on synthetic pytest-benchmark JSON:
the WARN threshold, one-sided names, and the end-to-end CLI including
the missing-baseline skip path.
"""

import importlib.util
import json
from pathlib import Path

import pytest

TREND_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / \
    "trend.py"


@pytest.fixture(scope="module")
def trend():
    spec = importlib.util.spec_from_file_location("trend", TREND_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def results_json(means):
    """Minimal pytest-benchmark ``--benchmark-json`` shape."""
    return {"benchmarks": [{"name": name, "stats": {"mean": mean}}
                           for name, mean in means.items()]}


class TestCompare:
    def test_flags_past_threshold_only(self, trend):
        rows = trend.compare({"a": 1.0, "b": 1.0}, {"a": 1.09, "b": 1.11},
                             threshold=0.10)
        flags = {name: flag for name, *_rest, flag in rows}
        assert flags == {"a": "ok", "b": "WARN"}

    def test_speedups_never_warn(self, trend):
        rows = trend.compare({"a": 1.0}, {"a": 0.5}, threshold=0.10)
        assert rows[0][4] == "ok"
        assert rows[0][3] == pytest.approx(0.5)

    def test_one_sided_names_listed_not_warned(self, trend):
        rows = trend.compare({"gone_leg": 1.0}, {"new_leg": 50.0},
                             threshold=0.10)
        flags = {name: flag for name, *_rest, flag in rows}
        assert flags == {"gone_leg": "gone", "new_leg": "new"}

    def test_render_counts_warnings(self, trend):
        rows = trend.compare({"a": 1.0, "b": 1.0}, {"a": 2.0, "b": 3.0},
                             threshold=0.10)
        text = trend.render(rows, 0.10)
        assert "WARNING: 2 benchmarks slower" in text
        assert "2.00x" in text and "3.00x" in text

    def test_render_clean_table_has_no_warning(self, trend):
        rows = trend.compare({"a": 1.0}, {"a": 1.0}, threshold=0.10)
        assert "WARNING" not in trend.render(rows, 0.10)


class TestMain:
    def test_end_to_end(self, trend, tmp_path, capsys):
        baseline_dir = tmp_path / "results"
        baseline_dir.mkdir()
        (baseline_dir / "bench_x.json").write_text(
            json.dumps(results_json({"fast": 0.1, "slow": 0.1})))
        fresh = tmp_path / "bench_x.json"
        fresh.write_text(
            json.dumps(results_json({"fast": 0.1, "slow": 0.2})))
        code = trend.main([str(fresh),
                           "--baseline-dir", str(baseline_dir)])
        out = capsys.readouterr().out
        assert code == 0  # informational: warns, never gates
        assert "slow" in out and "WARN" in out
        assert "WARNING: 1 benchmark slower" in out

    def test_missing_baseline_skipped(self, trend, tmp_path, capsys):
        baseline_dir = tmp_path / "results"
        baseline_dir.mkdir()
        fresh = tmp_path / "bench_new.json"
        fresh.write_text(json.dumps(results_json({"leg": 0.1})))
        code = trend.main([str(fresh),
                           "--baseline-dir", str(baseline_dir)])
        assert code == 0
        assert "no committed baseline" in capsys.readouterr().out

    def test_committed_baselines_parse(self, trend):
        results_dir = TREND_PATH.parent / "results"
        for path in results_dir.glob("*.json"):
            means = trend.load_means(path)
            assert means, path
            assert all(m > 0 for m in means.values()), path
