"""Bytecode-engine tests: differential equivalence, caching, hardening.

The bytecode tier (:mod:`repro.sim.bytecode`, lowered by
:func:`repro.sim.engine.lower_module`) must be indistinguishable from both
the closure-compiled engine and the tree-walking reference — return value,
memory state and the *complete* profile (node, edge and call counts).  The
differential harness here sweeps the whole 12-benchmark DSP suite at
levels 0, 1 and 2, chained (post-``select_chains``) modules, multi-seed
batches, and the study matrix under ``jobs=2``.
"""

import pickle

import pytest

from repro.asip.isa import ChainedInstruction, InstructionSet
from repro.asip.resequence import resequence_module
from repro.asip.select import select_chains
from repro.cfg.build import build_module_graphs
from repro.cfg.graph import GraphModule, ProgramGraph
from repro.chaining.detect import detect_sequences
from repro.errors import SimulationError
from repro.frontend import compile_source
from repro.ir.instr import Instruction
from repro.ir.ops import Op
from repro.ir.values import Constant, VirtualReg
from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim.engine import compile_module, lower_module
from repro.sim.machine import (ENGINES, _default_engine, run_module,
                               run_module_batch)
from repro.suite.registry import all_benchmarks, get_benchmark
from repro.suite.runner import compile_benchmark, run_benchmark

SUITE = [spec.name for spec in all_benchmarks()]
LEVELS = (0, 1, 2)


def assert_identical(expected, actual):
    """Bit-identical MachineResults, profile included."""
    assert actual.return_value == expected.return_value
    assert actual.globals_after == expected.globals_after
    assert actual.profile.node_counts == expected.profile.node_counts
    assert actual.profile.edge_counts == expected.profile.edge_counts
    assert actual.profile.call_counts == expected.profile.call_counts


class TestSuiteDifferential:
    """Every benchmark at every level: bytecode == compiled == reference."""

    @pytest.mark.parametrize("level", LEVELS)
    @pytest.mark.parametrize("name", SUITE)
    def test_levels(self, name, level):
        spec = get_benchmark(name)
        inputs = spec.generate_inputs(0)
        gm, _ = optimize_module(compile_benchmark(spec), OptLevel(level))
        reference = run_module(gm, inputs, engine="reference")
        compiled = run_module(gm, inputs, engine="compiled")
        bytecode = run_module(gm, inputs, engine="bytecode")
        assert_identical(reference, bytecode)
        assert_identical(compiled, bytecode)

    @pytest.mark.parametrize("name", SUITE)
    def test_chained_sequential(self, name):
        """Fused-chain modules (Op.CHAIN commit semantics) agree too."""
        spec = get_benchmark(name)
        inputs = spec.generate_inputs(0)
        gm, _ = optimize_module(compile_benchmark(spec), OptLevel.PIPELINED)
        sequential = resequence_module(gm)
        profile = run_module(sequential, inputs).profile
        detection = detect_sequences(sequential, profile, (2, 3))
        isa = InstructionSet()
        for length in (3, 2):
            for pattern, _freq in detection.top(length, limit=1):
                if isa.find(pattern) is None:
                    isa.add_chain(ChainedInstruction.from_sequence(pattern))
        fused = sequential.copy()
        select_chains(fused, isa)
        assert_identical(run_module(fused, inputs, engine="compiled"),
                         run_module(fused, inputs, engine="bytecode"))

    def test_benchmark_run_end_to_end(self):
        """run_benchmark(engine="bytecode") matches compiled end to end,
        detection included (it only consumes the identical profile)."""
        spec = get_benchmark("sewha")
        compiled = run_benchmark(spec, OptLevel.PIPELINED)
        bytecode = run_benchmark(spec, OptLevel.PIPELINED,
                                 engine="bytecode")
        assert bytecode.cycles == compiled.cycles
        assert_identical(compiled.machine_result, bytecode.machine_result)
        assert bytecode.detection.total_ops == compiled.detection.total_ops
        for length in (2, 3, 4, 5):
            assert bytecode.detection.top(length) == \
                compiled.detection.top(length)


class TestBatchedSimulation:
    """Multi-seed batches lower once and stay bit-identical."""

    SEEDS = (0, 1, 2, 3, 4)

    def _optimized(self, name, level=1):
        spec = get_benchmark(name)
        gm, _ = optimize_module(compile_benchmark(spec), OptLevel(level))
        return spec, gm

    @pytest.mark.parametrize("name", ("fir", "smooth", "sewha"))
    @pytest.mark.parametrize("level", LEVELS)
    def test_batch_matches_independent_runs(self, name, level):
        spec, gm = self._optimized(name, level)
        inputs = [spec.generate_inputs(seed) for seed in self.SEEDS]
        batched = run_module_batch(gm, inputs, engine="bytecode")
        singles = [run_module(gm, i, engine="compiled") for i in inputs]
        assert len(batched) == len(self.SEEDS)
        for one, many in zip(singles, batched):
            assert_identical(one, many)

    def test_batch_lowers_once(self, monkeypatch):
        import repro.sim.bytecode as bytecode_mod
        spec, gm = self._optimized("fir")
        calls = []
        real = bytecode_mod.lower_module

        def counting(module):
            calls.append(module)
            return real(module)

        monkeypatch.setattr(bytecode_mod, "lower_module", counting)
        run_module_batch(gm, [spec.generate_inputs(s) for s in self.SEEDS],
                         engine="bytecode")
        assert len(calls) == 1, "a batch must pay lowering exactly once"

    def test_empty_batch(self):
        _spec, gm = self._optimized("fir")
        assert run_module_batch(gm, [], engine="bytecode") == []


class TestStudyDifferential:
    """The study matrix on the bytecode engine: serial == compiled-engine
    study, and jobs=2 == jobs=1 (the exec scheduler with the new tier)."""

    CONFIG = dict(benchmarks=("fir", "iir", "sewha"), seeds=(0, 1, 2))

    @pytest.fixture(scope="class")
    def compiled_study(self):
        from repro.feedback.study import StudyConfig, run_study
        return run_study(StudyConfig(jobs=1, engine="compiled",
                                     **self.CONFIG))

    @pytest.fixture(scope="class")
    def bytecode_study(self):
        from repro.feedback.study import StudyConfig, run_study
        return run_study(StudyConfig(jobs=1, engine="bytecode",
                                     **self.CONFIG))

    @pytest.fixture(scope="class")
    def bytecode_parallel_study(self):
        from repro.feedback.study import StudyConfig, run_study
        return run_study(StudyConfig(jobs=2, engine="bytecode",
                                     **self.CONFIG))

    def test_engines_agree_across_matrix(self, compiled_study,
                                         bytecode_study):
        for name in self.CONFIG["benchmarks"]:
            for level in LEVELS:
                ra = compiled_study.benchmark(name).run_at(level)
                rb = bytecode_study.benchmark(name).run_at(level)
                assert ra.seeds == rb.seeds
                assert ra.cycles_by_seed() == rb.cycles_by_seed()
                for sa, sb in zip(ra.seed_results, rb.seed_results):
                    assert_identical(sa, sb)

    def test_jobs2_bit_identical(self, bytecode_study,
                                 bytecode_parallel_study):
        from repro.reporting.tables import table2
        for name in self.CONFIG["benchmarks"]:
            for level in LEVELS:
                ra = bytecode_study.benchmark(name).run_at(level)
                rb = bytecode_parallel_study.benchmark(name).run_at(level)
                assert_identical(ra.machine_result, rb.machine_result)
                for sa, sb in zip(ra.seed_results, rb.seed_results):
                    assert_identical(sa, sb)
        assert table2(bytecode_parallel_study) == table2(bytecode_study)


class TestErrorParity:
    """The bytecode engine raises the same SimulationErrors."""

    def _all_raise(self, gm, inputs=None, match=None, max_cycles=None):
        for engine in ENGINES:
            kwargs = {"engine": engine}
            if max_cycles is not None:
                kwargs["max_cycles"] = max_cycles
            with pytest.raises(SimulationError, match=match):
                run_module(gm, inputs, **kwargs)

    def test_out_of_bounds(self):
        gm = build_module_graphs(compile_source(
            "int a[4]; int n = 9; int main() { return a[n]; }", "t"))
        self._all_raise(gm, match="out of bounds")

    def test_store_out_of_bounds(self):
        gm = build_module_graphs(compile_source(
            "int a[4]; int n = 9; int main() { a[n] = 1; return 0; }",
            "t"))
        self._all_raise(gm, match="out of bounds")

    def test_division_by_zero(self):
        gm = build_module_graphs(compile_source(
            "int n = 0; int main() { return 5 / n; }", "t"))
        self._all_raise(gm, match="division by zero")

    def test_cycle_limit(self):
        gm = build_module_graphs(compile_source(
            "int main() { while (1) { } return 0; }", "t"))
        self._all_raise(gm, match="cycle limit", max_cycles=500)

    def test_cycle_limit_bounded_overrun(self):
        """A *terminating* program that exceeds the limit must raise on
        every engine.  The bytecode tier checks the limit sparsely while
        running (back-edges only), so this pins the exact post-run check
        that keeps complete-vs-abort decisions engine-invariant."""
        spec = get_benchmark("fir")
        gm, _ = optimize_module(compile_benchmark(spec), OptLevel.NONE)
        inputs = spec.generate_inputs(0)
        true_cycles = run_module(gm, inputs).cycles
        self._all_raise(gm, inputs=inputs, match="cycle limit",
                        max_cycles=true_cycles // 2)
        # ...and just above the true count, every engine completes.
        for engine in ENGINES:
            result = run_module(gm, inputs, max_cycles=true_cycles,
                                engine=engine)
            assert result.cycles == true_cycles

    def test_recursion_depth(self):
        gm = build_module_graphs(compile_source(
            "int f(int n) { return f(n + 1); }"
            " int main() { return f(0); }", "t"))
        self._all_raise(gm, match="depth")

    def test_undefined_register_read(self):
        graph = ProgramGraph("main", return_type="int")
        n0 = graph.new_node()
        n1 = graph.new_node()
        ghost = VirtualReg("%ghost")
        n0.ops.append(Instruction(Op.ADD, dest=VirtualReg("%r"),
                                  srcs=(ghost, Constant(1))))
        n1.control = Instruction(Op.RET, srcs=(VirtualReg("%r"),))
        graph.entry = n0.id
        graph.add_edge(n0.id, n1.id)
        gm = GraphModule("t", {"main": graph}, {}, {}, {})
        self._all_raise(gm, match="undefined register")

    def test_undefined_register_move(self):
        graph = ProgramGraph("main", return_type="int")
        n0 = graph.new_node()
        n1 = graph.new_node()
        n0.ops.append(Instruction(Op.MOV, dest=VirtualReg("%a"),
                                  srcs=(VirtualReg("%ghost"),)))
        n1.control = Instruction(Op.RET, srcs=(Constant(7),))
        graph.entry = n0.id
        graph.add_edge(n0.id, n1.id)
        gm = GraphModule("t", {"main": graph}, {}, {}, {})
        self._all_raise(gm, match="undefined register '%ghost'")


class TestVliwSemantics:
    """Hand-built nodes exercising the read/commit discipline on the
    lowered form: intra-node hazards (deferred or statically reordered),
    branch condition pre-reads, swap patterns."""

    def _module(self, build):
        graph = ProgramGraph("main", return_type="int")
        build(graph)
        return GraphModule("t", {"main": graph}, {}, {}, {})

    def test_parallel_swap(self):
        """{a=b; b=a} in one node: both read pre-cycle values (the true
        read/write cycle that forces the scratch-deferred path)."""
        def build(graph):
            a, b = VirtualReg("%a"), VirtualReg("%b")
            n0, n1, n2 = (graph.new_node() for _ in range(3))
            n0.ops = [Instruction(Op.MOV, dest=a, srcs=(Constant(1),)),
                      Instruction(Op.MOV, dest=b, srcs=(Constant(2),))]
            n1.ops = [Instruction(Op.MOV, dest=a, srcs=(b,)),
                      Instruction(Op.MOV, dest=b, srcs=(a,))]
            n2.control = Instruction(
                Op.RET, srcs=(VirtualReg("%r"),))
            n2.ops = []
            # r = 10*a + b computed in a separate node
            r = VirtualReg("%r")
            t = VirtualReg("%t")
            mid = graph.new_node()
            mid.ops = [Instruction(Op.MUL, dest=t, srcs=(a, Constant(10)))]
            mid2 = graph.new_node()
            mid2.ops = [Instruction(Op.ADD, dest=r, srcs=(t, b))]
            graph.entry = n0.id
            graph.add_edge(n0.id, n1.id)
            graph.add_edge(n1.id, mid.id)
            graph.add_edge(mid.id, mid2.id)
            graph.add_edge(mid2.id, n2.id)
        gm = self._module(build)
        for engine in ENGINES:
            assert run_module(gm, engine=engine).return_value == 21, engine

    def test_pipelined_increment_read(self):
        """{t=i; i=i+1} in one VLIW node: the reader sees the pre-cycle
        value (the reorder-to-direct path: reader emitted first)."""
        def build(graph):
            i, t = VirtualReg("%i"), VirtualReg("%t")
            n0, n1, n2 = (graph.new_node() for _ in range(3))
            n0.ops = [Instruction(Op.MOV, dest=i, srcs=(Constant(5),))]
            n1.ops = [Instruction(Op.ADD, dest=i, srcs=(i, Constant(1))),
                      Instruction(Op.MOV, dest=t, srcs=(i,))]
            n2.control = Instruction(Op.RET, srcs=(t,))
            graph.entry = n0.id
            graph.add_edge(n0.id, n1.id)
            graph.add_edge(n1.id, n2.id)
        gm = self._module(build)
        for engine in ENGINES:
            assert run_module(gm, engine=engine).return_value == 5, engine

    def test_branch_reads_precycle_condition(self):
        """A node computing its own branch condition register still
        branches on the *pre-cycle* value."""
        def build(graph):
            c = VirtualReg("%c")
            n0, nbr, ntrue, nfalse = (graph.new_node() for _ in range(4))
            n0.ops = [Instruction(Op.MOV, dest=c, srcs=(Constant(0),))]
            nbr.ops = [Instruction(Op.MOV, dest=c, srcs=(Constant(1),))]
            nbr.control = Instruction(Op.BR, srcs=(c,))
            ntrue.control = Instruction(Op.RET, srcs=(Constant(111),))
            nfalse.control = Instruction(Op.RET, srcs=(Constant(222),))
            graph.entry = n0.id
            graph.add_edge(n0.id, nbr.id)
            graph.add_edge(nbr.id, ntrue.id)
            graph.add_edge(nbr.id, nfalse.id)
        gm = self._module(build)
        for engine in ENGINES:
            assert run_module(gm, engine=engine).return_value == 222, engine

    def test_single_successor_branch_true_edge(self):
        """A malformed branch node with only a true edge still completes
        when the condition holds — on every engine (the missing false
        edge only raises if actually taken)."""
        def build(graph):
            c = VirtualReg("%c")
            n0, nbr, n2 = (graph.new_node() for _ in range(3))
            n0.ops = [Instruction(Op.MOV, dest=c, srcs=(Constant(1),))]
            nbr.control = Instruction(Op.BR, srcs=(c,))
            n2.control = Instruction(Op.RET, srcs=(Constant(7),))
            graph.entry = n0.id
            graph.add_edge(n0.id, nbr.id)
            graph.add_edge(nbr.id, n2.id)
        gm = self._module(build)
        for engine in ENGINES:
            assert run_module(gm, engine=engine).return_value == 7, engine

    def test_single_successor_branch_false_edge_raises(self):
        """...and the bytecode tier raises a clean SimulationError when
        the missing false edge is taken (the other engines crash with an
        IndexError there — a malformed graph either way)."""
        def build(graph):
            c = VirtualReg("%c")
            n0, nbr, n2 = (graph.new_node() for _ in range(3))
            n0.ops = [Instruction(Op.MOV, dest=c, srcs=(Constant(0),))]
            nbr.control = Instruction(Op.BR, srcs=(c,))
            n2.control = Instruction(Op.RET, srcs=(Constant(7),))
            graph.entry = n0.id
            graph.add_edge(n0.id, nbr.id)
            graph.add_edge(nbr.id, n2.id)
        gm = self._module(build)
        with pytest.raises(SimulationError, match="no false edge"):
            run_module(gm, engine="bytecode")
        for engine in ("reference", "compiled"):
            with pytest.raises((SimulationError, IndexError)):
                run_module(gm, engine=engine)

    def test_store_load_same_cycle(self):
        """A load in the same node as a store reads pre-cycle memory."""
        from repro.ir.values import ArraySymbol
        out = ArraySymbol("out", 2)
        graph = ProgramGraph("main", return_type="int")
        v, t = VirtualReg("%v"), VirtualReg("%t")
        n0, n1, n2 = (graph.new_node() for _ in range(3))
        n0.ops = [Instruction(Op.MOV, dest=v, srcs=(Constant(7),))]
        n1.ops = [Instruction(Op.STORE, srcs=(v, Constant(0)), array=out),
                  Instruction(Op.LOAD, dest=t, srcs=(Constant(0),),
                              array=out)]
        n2.ops = [Instruction(Op.STORE, srcs=(t, Constant(1)), array=out)]
        n2.control = Instruction(Op.RET, srcs=(t,))
        graph.entry = n0.id
        graph.add_edge(n0.id, n1.id)
        graph.add_edge(n1.id, n2.id)
        gm = GraphModule("t", {"main": graph}, {"out": out}, {}, {})
        for engine in ENGINES:
            result = run_module(gm, engine=engine)
            assert result.return_value == 0, engine
            assert result.array("out") == [7, 0], engine


class TestLoweredCache:
    """lower_module caches under the shared structural signature."""

    def _graphs(self):
        return build_module_graphs(compile_source(
            "int x[4]; int main() { int i; int s; s = 0;"
            " for (i = 0; i < 4; i++) { s += x[i]; } return s; }", "t"))

    def test_cache_reused_across_runs(self):
        gm = self._graphs()
        first = lower_module(gm)
        assert lower_module(gm) is first
        run_module(gm, {"x": [1, 2, 3, 4]}, engine="bytecode")
        assert lower_module(gm) is first

    def test_independent_of_compiled_cache(self):
        gm = self._graphs()
        lowered = lower_module(gm)
        compiled = compile_module(gm)
        assert lower_module(gm) is lowered
        assert compile_module(gm) is compiled

    def test_cache_invalidated_by_node_edit(self):
        gm = self._graphs()
        first = lower_module(gm)
        graph = gm.graphs["main"]
        node = next(n for n in graph.nodes.values() if n.ops)
        node.ops.append(Instruction(Op.NOP))
        assert lower_module(gm) is not first

    def test_cache_invalidated_by_operand_rewrite(self):
        gm = self._graphs()
        first = lower_module(gm)
        graph = gm.graphs["main"]
        ins = next(i for n in graph.nodes.values() for i in n.ops
                   if i.op is Op.ADD and i.dest is not None)
        ins.replace_uses({reg: Constant(7) for reg in ins.uses()})
        assert lower_module(gm) is not first
        run_module(gm, {"x": [1, 2, 3, 4]}, engine="bytecode")

    def test_cache_invalidated_by_edge_edit(self):
        gm = self._graphs()
        first = lower_module(gm)
        graph = gm.graphs["main"]
        nid, node = next((nid, n) for nid, n in graph.nodes.items()
                         if len(n.succs) == 1)
        graph.redirect_edge(nid, node.succs[0], nid)
        assert lower_module(gm) is not first

    def test_copy_does_not_share_cache(self):
        gm = self._graphs()
        lower_module(gm)
        assert "_lowered_cache" not in gm.copy().__dict__

    def test_cache_stripped_on_pickle(self):
        gm = self._graphs()
        lower_module(gm)
        compile_module(gm)
        clone = pickle.loads(pickle.dumps(gm))
        assert "_lowered_cache" not in clone.__dict__
        assert "_compiled_cache" not in clone.__dict__
        # ...and the original keeps both caches.
        assert "_lowered_cache" in gm.__dict__
        assert "_compiled_cache" in gm.__dict__
        # the clone still runs (it re-lowers lazily)
        assert run_module(clone, {"x": [1, 1, 1, 1]},
                          engine="bytecode").return_value == 4


class TestCompiledCacheEdgeEdit:
    """Satellite regression: the memoized-signature fast path must still
    invalidate on in-place edge edits (the closure cache shares the
    streaming validator with the lowered cache)."""

    def test_compiled_cache_invalidated_by_edge_edit(self):
        gm = build_module_graphs(compile_source(
            "int main() { int i; int s; s = 0;"
            " for (i = 0; i < 4; i++) { s += i; } return s; }", "t"))
        first = compile_module(gm)
        graph = gm.graphs["main"]
        nid, node = next((nid, n) for nid, n in graph.nodes.items()
                         if len(n.succs) == 1)
        graph.redirect_edge(nid, node.succs[0], nid)
        assert compile_module(gm) is not first


class TestEngineSelection:
    def test_bytecode_engine_listed(self):
        assert "bytecode" in ENGINES

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "bytecode")
        assert _default_engine() == "bytecode"
        monkeypatch.setenv("REPRO_ENGINE", "")
        assert _default_engine() == "compiled"
        monkeypatch.delenv("REPRO_ENGINE")
        assert _default_engine() == "compiled"

    def test_env_var_invalid_surfaces_at_run(self, monkeypatch):
        """An invalid REPRO_ENGINE is not an import-time crash: it raises
        a clean unknown-engine error naming the variable on the first
        simulation (inside the CLI's normal error handling)."""
        monkeypatch.setenv("REPRO_ENGINE", "turbo")
        assert _default_engine() == "turbo"
        gm = build_module_graphs(
            compile_source("int main() { return 1; }", "t"))
        with pytest.raises(SimulationError, match="REPRO_ENGINE"):
            run_module(gm, engine=_default_engine())

    def test_explore_runs_on_bytecode(self):
        from repro.asip.explore import explore_designs
        spec = get_benchmark("sewha")
        module = compile_benchmark(spec)
        inputs = spec.generate_inputs(0)
        compiled = explore_designs(module, inputs, area_budget=2500,
                                   measure_top=2, engine="compiled")
        bytecode = explore_designs(module, inputs, area_budget=2500,
                                   measure_top=2, engine="bytecode")
        assert [p.labels() for p in bytecode.measured] == \
            [p.labels() for p in compiled.measured]
        assert [p.speedup for p in bytecode.measured] == \
            [p.speedup for p in compiled.measured]
