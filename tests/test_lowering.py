"""Lowering tests: AST to three-address code."""

import pytest

from repro.frontend import compile_source
from repro.ir.ops import Op
from repro.ir.values import ArraySymbol, Constant
from repro.lowering.lower import _shift_add_plan, strength_reduction_terms

MAIN0 = "int main() { return 0; }"


def lower(source):
    return compile_source(source, "t")


def main_ops(module):
    return [ins.op for ins in module.functions["main"].instructions()]


def count_op(module, op, fn="main"):
    return sum(1 for ins in module.functions[fn].instructions()
               if ins.op is op)


class TestGlobals:
    def test_global_scalar_becomes_memory(self):
        m = lower("int n = 35; " + MAIN0)
        assert m.global_arrays["n"].size == 1
        assert m.array_initializers["n"] == [35]

    def test_negative_initializer(self):
        m = lower("float c = -2.5; " + MAIN0)
        assert m.array_initializers["c"] == [-2.5]

    def test_array_initializer_padding_left_to_storage(self):
        m = lower("float h[4] = { 1.0, 2.0 }; " + MAIN0)
        assert m.array_initializers["h"] == [1.0, 2.0]
        assert m.global_arrays["h"].size == 4

    def test_2d_array_flattened(self):
        m = lower("int img[4][6]; " + MAIN0)
        assert m.global_arrays["img"].size == 24

    def test_global_scalar_read_is_load(self):
        m = lower("int n = 3; int main() { return n; }")
        assert count_op(m, Op.LOAD) == 1

    def test_global_scalar_write_is_store(self):
        m = lower("int n; int main() { n = 7; return 0; }")
        assert count_op(m, Op.STORE) == 1

    def test_global_compound_assign_reads_then_writes(self):
        m = lower("int n = 1; int main() { n += 2; return 0; }")
        assert count_op(m, Op.LOAD) == 1
        assert count_op(m, Op.STORE) == 1
        assert count_op(m, Op.ADD) == 1


class TestExpressions:
    def test_mixed_arithmetic_inserts_itof(self):
        m = lower("int main() { float f; f = 1 + 2.0; return 0; }")
        # constant int folded directly into a float constant is fine too;
        # with a variable the conversion must be explicit:
        m = lower("int main() { int i; float f; i = 3; f = i + 2.0; "
                  "return 0; }")
        assert count_op(m, Op.ITOF) == 1
        assert count_op(m, Op.FADD) == 1

    def test_float_to_int_on_assignment(self):
        m = lower("int main() { int i; float f; f = 2.5; i = f; "
                  "return i; }")
        assert count_op(m, Op.FTOI) == 1

    def test_comparison_of_mixed_operands_promotes(self):
        m = lower("int main() { int i; i = 3; if (i < 2.5) { i = 0; } "
                  "return i; }")
        assert count_op(m, Op.FCMPLT) == 1

    def test_short_circuit_and_produces_branches(self):
        m = lower("int main() { int a; a = 1; if (a > 0 && a < 5) "
                  "{ a = 2; } return a; }")
        assert count_op(m, Op.BR) >= 2

    def test_logical_value_materializes_zero_one(self):
        m = lower("int main() { int a; int b; a = 1; b = a > 0 || a < -5; "
                  "return b; }")
        movs = [ins for ins in m.functions["main"].instructions()
                if ins.op is Op.MOV and isinstance(ins.srcs[0], Constant)
                and ins.srcs[0].value in (0, 1)]
        assert len(movs) >= 2

    def test_ternary_lowered_with_branches(self):
        m = lower("int main() { int a; a = 3; return a > 1 ? 10 : 20; }")
        assert count_op(m, Op.BR) == 1

    def test_not_of_condition_swaps_branches(self):
        m = lower("int main() { int a; a = 0; if (!(a < 1)) { a = 9; } "
                  "return a; }")
        assert count_op(m, Op.CMPLT) == 1


class TestStrengthReduction:
    def test_power_of_two_becomes_shift(self):
        m = lower("int main() { int i; i = 5; return i * 8; }")
        assert count_op(m, Op.SHL) == 1
        assert count_op(m, Op.MUL) == 0

    def test_non_power_of_two_stays_multiply(self):
        m = lower("int main() { int i; i = 5; return i * 24; }")
        assert count_op(m, Op.MUL) == 1
        assert count_op(m, Op.SHL) == 0

    def test_multiply_by_one_elided(self):
        m = lower("int main() { int i; i = 5; return i * 1; }")
        assert count_op(m, Op.MUL) == 0
        assert count_op(m, Op.SHL) == 0

    def test_multiply_by_zero_folds(self):
        m = lower("int main() { int i; i = 5; return i * 0; }")
        assert count_op(m, Op.MUL) == 0

    def test_constant_on_left_also_reduced(self):
        m = lower("int main() { int i; i = 5; return 4 * i; }")
        assert count_op(m, Op.SHL) == 1

    def test_float_multiply_never_reduced(self):
        m = lower("int main() { float f; f = 5.0; f = f * 8.0; "
                  "return 0; }")
        assert count_op(m, Op.FMUL) == 1

    def test_two_term_plan_when_enabled(self):
        with strength_reduction_terms(2):
            m = lower("int main() { int i; i = 5; return i * 24; }")
        assert count_op(m, Op.MUL) == 0
        assert count_op(m, Op.SHL) == 2
        assert count_op(m, Op.ADD) >= 1

    def test_shift_add_plan_values(self):
        with strength_reduction_terms(2):
            for value in (2, 3, 5, 6, 7, 12, 24, 255):
                plan = _shift_add_plan(value)
                assert plan is not None
                acc = 0
                for sign, shift in plan:
                    term = 1 << shift
                    acc = acc + term if sign == "+" else acc - term
                assert acc == value, value

    def test_shift_add_plan_rejects_nonpositive(self):
        assert _shift_add_plan(0) is None
        assert _shift_add_plan(-4) is None


class TestArrays:
    def test_2d_access_emits_row_arithmetic(self):
        m = lower("int img[4][6]; int main() { int r; int c; r = 1; c = 2;"
                  " return img[r][c]; }")
        assert count_op(m, Op.MUL) == 1  # r * 6
        assert count_op(m, Op.ADD) == 1  # + c

    def test_2d_access_power_of_two_stride_uses_shift(self):
        m = lower("int img[4][8]; int main() { int r; r = 1; "
                  "return img[r][3]; }")
        assert count_op(m, Op.SHL) == 1
        assert count_op(m, Op.MUL) == 0

    def test_constant_2d_index_folds_flat(self):
        m = lower("int img[4][6]; int main() { return img[2][3]; }")
        loads = [ins for ins in m.functions["main"].instructions()
                 if ins.op is Op.LOAD]
        assert loads[0].srcs[0] == Constant(15)

    def test_local_array_storage(self):
        m = lower("int main() { float buf[16]; buf[0] = 1.0; "
                  "return 0; }")
        assert len(m.functions["main"].local_arrays) == 1
        assert m.functions["main"].local_arrays[0].size == 16

    def test_compound_assign_to_element(self):
        m = lower("int a[4]; int main() { a[2] += 5; return 0; }")
        assert count_op(m, Op.LOAD) == 1
        assert count_op(m, Op.STORE) == 1


class TestFunctions:
    def test_array_argument_passed_as_symbol(self):
        m = lower("float v[8]; float f(float a[8]) { return a[0]; } "
                  "int main() { float t; t = f(v); return 0; }")
        call = next(ins for ins in m.functions["main"].instructions()
                    if ins.op is Op.CALL)
        assert isinstance(call.srcs[0], ArraySymbol)

    def test_scalar_argument_converted(self):
        m = lower("float f(float a) { return a; } "
                  "int main() { float t; int i; i = 2; t = f(i); "
                  "return 0; }")
        assert count_op(m, Op.ITOF) == 1

    def test_void_call_has_no_dest(self):
        m = lower("void f() { } int main() { f(); return 0; }")
        call = next(ins for ins in m.functions["main"].instructions()
                    if ins.op is Op.CALL)
        assert call.dest is None

    def test_missing_return_synthesized(self):
        m = lower("void f() { } " + MAIN0)
        body_ops = [ins.op for ins in m.functions["f"].instructions()]
        assert body_ops[-1] is Op.RET

    def test_intrinsic_lowered_to_intrin(self):
        m = lower("int main() { float f; f = sin(1.0); return 0; }")
        assert count_op(m, Op.INTRIN) == 1

    def test_every_declared_local_defined(self):
        # Even unassigned locals get a defining move, so the verifier's
        # def-before-use invariant holds for conditional code.
        m = lower("int main() { int a; if (1) { a = 2; } return a; }")
        # verify_module ran inside compile_source without raising.
        assert count_op(m, Op.MOV) >= 1


class TestControlFlow:
    def test_while_loop_shape(self):
        m = lower("int main() { int i; i = 0; while (i < 5) { i++; } "
                  "return i; }")
        assert count_op(m, Op.BR) == 1
        assert count_op(m, Op.JMP) >= 1

    def test_break_jumps_to_exit(self):
        m = lower("int main() { int i; i = 0; while (1) { i++; "
                  "if (i > 3) { break; } } return i; }")
        assert count_op(m, Op.JMP) >= 2

    def test_for_with_continue(self):
        m = lower("int main() { int i; int s; s = 0; "
                  "for (i = 0; i < 10; i++) { if (i % 2 == 0) "
                  "{ continue; } s += i; } return s; }")
        assert count_op(m, Op.MOD) == 1
