"""CI smoke test for the `repro serve` daemon.

Starts `python -m repro serve` as a real subprocess, issues two
identical explore requests plus one study request over the socket,
asserts the dedup/result-tier counters, and checks a clean shutdown
(exit code 0, socket unlinked).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile


def main() -> int:
    tmpdir = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    socket_path = os.path.join(tmpdir, "repro.sock")
    env = dict(os.environ)
    env.setdefault("REPRO_CACHE", os.path.join(tmpdir, "cache"))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", socket_path],
        env=env,
    )
    try:
        from repro.serve.client import wait_for_server

        explore = {"op": "explore", "benchmark": "sewha", "budget": 2500}
        with wait_for_server(socket_path=socket_path, timeout=120) as client:
            first = client.request(explore)
            assert first["ok"], first.get("error")
            assert first["meta"]["result_cache"] == "miss", first["meta"]
            second = client.request(explore)
            assert second["ok"], second.get("error")
            assert second["meta"]["result_cache"] == "hit", second["meta"]
            assert first["result"] == second["result"]

            study = client.request(
                {"op": "study", "benchmarks": ["sewha"], "levels": [0, 1]}
            )
            assert study["ok"], study.get("error")
            assert study["meta"]["result_cache"] == "miss", study["meta"]

            status = client.request({"op": "status"})
            assert status["ok"], status.get("error")
            payload = status["result"]
            stats = payload["stats"]
            print(json.dumps(stats, indent=2, sort_keys=True))
            assert stats["errors"] == 0, stats
            assert stats["dispatches"] == 3, stats
            assert stats["result_hits"] == 1, stats
            assert stats["result_misses"] == 2, stats
            assert stats["evaluations"] == 2, stats
            assert payload["result_cache_enabled"] is True, payload

            stopping = client.request({"op": "shutdown"})
            assert stopping["ok"], stopping.get("error")
            assert stopping["result"] == {"stopping": True}, stopping

        code = proc.wait(timeout=60)
        assert code == 0, f"serve exited with {code}"
        assert not os.path.exists(socket_path), "socket not unlinked"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    print("serve smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
