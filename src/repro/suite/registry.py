"""Benchmark registry: Table 1 as data.

Collects the twelve program modules into :class:`BenchmarkSpec` records
carrying the Table-1 columns (name, description, C line count, input data
description) plus everything the runner needs (source, input generator,
output array names).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.errors import ReproError
from repro.suite.programs import ALL_PROGRAMS


@dataclass(frozen=True)
class BenchmarkSpec:
    """One row of Table 1, with executable attachments."""

    name: str
    description: str
    data_description: str
    source: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    generator: Callable[[int], dict]

    @property
    def source_lines(self) -> int:
        """Non-blank source lines (Table 1's "Lines C-code" column)."""
        return sum(1 for line in self.source.splitlines() if line.strip())

    def generate_inputs(self, seed: int = 0) -> dict:
        return self.generator(seed)

    def __repr__(self) -> str:
        return f"<BenchmarkSpec {self.name}: {self.description}>"


def _build_registry() -> Dict[str, BenchmarkSpec]:
    registry: Dict[str, BenchmarkSpec] = {}
    for mod in ALL_PROGRAMS:
        spec = BenchmarkSpec(
            name=mod.NAME,
            description=mod.DESCRIPTION,
            data_description=mod.DATA_DESCRIPTION,
            source=mod.SOURCE,
            inputs=tuple(mod.INPUTS),
            outputs=tuple(mod.OUTPUTS),
            generator=mod.generate_inputs,
        )
        registry[spec.name] = spec
    return registry


_REGISTRY = _build_registry()

#: Table-1 order.
BENCHMARK_ORDER = ("fir", "iir", "pse", "intfft", "compress", "flatten",
                   "smooth", "edge", "sewha", "dft", "bspline", "feowf")


def benchmark_names() -> List[str]:
    """Benchmark names in Table-1 order."""
    return list(BENCHMARK_ORDER)


def get_benchmark(name: str) -> BenchmarkSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown benchmark {name!r}; available: "
            f"{', '.join(benchmark_names())}")


def all_benchmarks() -> List[BenchmarkSpec]:
    return [_REGISTRY[name] for name in BENCHMARK_ORDER]
