"""Run the full paper pipeline on one benchmark.

``run_benchmark`` chains every stage of Figure 2 — front end, optimization
at the requested level, simulation/profiling, sequence detection — and can
additionally check semantic preservation against the unoptimized program
(the optimized graph must produce bit-identical outputs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.cfg.graph import GraphModule
from repro.chaining.detect import (DEFAULT_LENGTHS, DetectionResult,
                                   detect_sequences)
from repro.errors import OptimizationError
from repro.frontend import compile_source
from repro.ir.module import Module
from repro.opt.pipeline import OptLevel, OptimizationReport, optimize_module
from repro.sim.machine import DEFAULT_ENGINE, MachineResult, run_module
from repro.suite.registry import BenchmarkSpec


@dataclass
class BenchmarkRun:
    """Everything one benchmark run produced."""

    spec: BenchmarkSpec
    level: OptLevel
    module: Module
    graph_module: GraphModule
    opt_report: OptimizationReport
    machine_result: MachineResult
    detection: DetectionResult

    @property
    def cycles(self) -> int:
        return self.machine_result.cycles

    @property
    def profile(self):
        return self.machine_result.profile

    def output_arrays(self) -> Dict[str, list]:
        return {name: self.machine_result.array(name)
                for name in self.spec.outputs}

    def __repr__(self) -> str:
        return (f"<BenchmarkRun {self.spec.name} @ level "
                f"{int(self.level)}: {self.cycles} cycles>")


def compile_benchmark(spec: BenchmarkSpec) -> Module:
    """Front-end only: compile the benchmark's mini-C source."""
    return compile_source(spec.source, spec.name, filename=f"{spec.name}.c")


def run_benchmark(spec: BenchmarkSpec,
                  level: OptLevel = OptLevel.NONE,
                  lengths: Sequence[int] = DEFAULT_LENGTHS,
                  seed: int = 0,
                  unroll_factor: int = 2,
                  check_against: Optional[MachineResult] = None,
                  module: Optional[Module] = None,
                  engine: str = DEFAULT_ENGINE) -> BenchmarkRun:
    """Compile, optimize, simulate and analyze one benchmark.

    ``check_against`` (typically the level-0 run's machine result) enables
    the semantic-preservation oracle: differing outputs raise
    :class:`~repro.errors.OptimizationError`.  Pass a pre-compiled
    ``module`` to skip the front end when running several levels.
    ``engine`` selects the simulation engine (see
    :func:`~repro.sim.machine.run_module`).
    """
    level = OptLevel(level)
    if module is None:
        module = compile_benchmark(spec)
    graph_module, report = optimize_module(module, level,
                                           unroll_factor=unroll_factor)
    inputs = spec.generate_inputs(seed)
    result = run_module(graph_module, inputs, engine=engine)
    if check_against is not None:
        if result.globals_after != check_against.globals_after \
                or result.return_value != check_against.return_value:
            raise OptimizationError(
                f"{spec.name}: level-{int(level)} outputs diverge from the "
                f"reference run — an optimization broke the program")
    detection = detect_sequences(graph_module, result.profile, lengths)
    return BenchmarkRun(
        spec=spec,
        level=level,
        module=module,
        graph_module=graph_module,
        opt_report=report,
        machine_result=result,
        detection=detection,
    )
