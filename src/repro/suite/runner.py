"""Run the full paper pipeline on one benchmark.

``run_benchmark`` chains every stage of Figure 2 — front end, optimization
at the requested level, simulation/profiling, sequence detection — and can
additionally check semantic preservation against the unoptimized program
(the optimized graph must produce bit-identical outputs).

A run may cover several input seeds at once (``seeds=``): the optimized
graph is compiled to the simulator's closure-specialized form once and
every seed's input set is batched through it
(:func:`~repro.sim.machine.run_module_batch_auto`, which runs big
batches as one lane-parallel pass).  The first seed is the
*primary* — its result feeds sequence detection and the reported cycle
count, keeping single-seed behavior unchanged — while every seed is held
in ``seed_results`` and checked by the semantic oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cfg.graph import GraphModule
from repro.chaining.detect import (DEFAULT_LENGTHS, DetectionResult,
                                   detect_sequences)
from repro.errors import OptimizationError, ReproError
from repro.frontend import compile_source
from repro.ir.module import Module
from repro.opt.pipeline import OptLevel, OptimizationReport, optimize_module
from repro.sim.machine import (DEFAULT_ENGINE, MachineResult, ensure_engine,
                               run_module, run_module_batch_auto)
from repro.suite.registry import BenchmarkSpec

#: ``check_against`` accepts the level-0 result for the primary seed or a
#: sequence of results, one per seed of a multi-seed run.
Reference = Union[MachineResult, Sequence[MachineResult]]


@dataclass
class BenchmarkRun:
    """Everything one benchmark run produced."""

    spec: BenchmarkSpec
    level: OptLevel
    #: The front-end module, or ``None`` for runs built from a
    #: pre-optimized pair only (``run_benchmark(optimized=...)`` with no
    #: ``module=``) — nothing downstream of the optimizer needs it.
    module: Optional[Module]
    graph_module: GraphModule
    opt_report: OptimizationReport
    machine_result: MachineResult
    detection: DetectionResult
    #: Seeds simulated, primary first; ``(seed,)`` for single-seed runs.
    seeds: Tuple[int, ...] = (0,)
    #: One result per entry of ``seeds``; ``seed_results[0]`` is
    #: ``machine_result``.
    seed_results: Tuple[MachineResult, ...] = field(default_factory=tuple)

    @property
    def cycles(self) -> int:
        return self.machine_result.cycles

    @property
    def profile(self):
        return self.machine_result.profile

    def result_for_seed(self, seed: int) -> MachineResult:
        try:
            return self.seed_results[self.seeds.index(seed)]
        except (ValueError, IndexError):
            # IndexError covers runs constructed without seed_results
            # (the field defaults to empty for backward compatibility).
            raise OptimizationError(
                f"{self.spec.name}: run covers seeds {self.seeds}, "
                f"not {seed}")

    def cycles_by_seed(self) -> Dict[int, int]:
        return {seed: result.cycles
                for seed, result in zip(self.seeds, self.seed_results)}

    def output_arrays(self) -> Dict[str, list]:
        return {name: self.machine_result.array(name)
                for name in self.spec.outputs}

    def __repr__(self) -> str:
        return (f"<BenchmarkRun {self.spec.name} @ level "
                f"{int(self.level)}: {self.cycles} cycles>")


def compile_benchmark(spec: BenchmarkSpec) -> Module:
    """Front-end only: compile the benchmark's mini-C source."""
    return compile_source(spec.source, spec.name, filename=f"{spec.name}.c")


def validate_seeds(seeds: Optional[Sequence[int]],
                   source: str = "seeds=") -> Optional[Tuple[int, ...]]:
    """Normalize a multi-seed list, rejecting the silently-wrong shapes.

    An *empty* list used to fall back to single-seed behavior without a
    word, and duplicate seeds simulated the same inputs twice while
    reporting them as distinct — both now raise up front, attributed to
    *source* (the knob the value came from), before any compilation or
    worker spawn.
    """
    if seeds is None:
        return None
    seeds = tuple(seeds)
    if not seeds:
        raise ReproError(
            f"{source} is empty: pass at least one input seed, or omit "
            f"it to simulate the single default seed")
    seen: set = set()
    repeated: set = set()
    for s in seeds:
        if s in seen:
            repeated.add(s)
        seen.add(s)
    duplicates = sorted(repeated)
    if duplicates:
        raise ReproError(
            f"{source} contains duplicate seed(s) "
            f"{', '.join(map(str, duplicates))}: each input seed must "
            f"be unique")
    return seeds


def verify_semantics(spec: BenchmarkSpec, level: OptLevel,
                     result: MachineResult,
                     reference: MachineResult) -> None:
    """The semantic-preservation oracle for one (result, reference) pair.

    Declared output arrays are compared first, each by name, so a broken
    optimization is reported against the array the paper's tables would
    actually misstate; the full memory state and return value are then
    compared so *any* divergence — scratch globals included — still
    raises.
    """
    for name in spec.outputs:
        if result.globals_after.get(name) != \
                reference.globals_after.get(name):
            raise OptimizationError(
                f"{spec.name}: level-{int(level)} output array {name!r} "
                f"diverges from the reference run — an optimization "
                f"broke the program")
    if result.globals_after != reference.globals_after \
            or result.return_value != reference.return_value:
        raise OptimizationError(
            f"{spec.name}: level-{int(level)} outputs diverge from the "
            f"reference run — an optimization broke the program")


def run_benchmark(spec: BenchmarkSpec,
                  level: OptLevel = OptLevel.NONE,
                  lengths: Sequence[int] = DEFAULT_LENGTHS,
                  seed: int = 0,
                  unroll_factor: int = 2,
                  check_against: Optional[Reference] = None,
                  module: Optional[Module] = None,
                  engine: str = DEFAULT_ENGINE,
                  seeds: Optional[Sequence[int]] = None,
                  optimized: Optional[Tuple[GraphModule,
                                            OptimizationReport]] = None
                  ) -> BenchmarkRun:
    """Compile, optimize, simulate and analyze one benchmark.

    ``check_against`` (typically the level-0 run's machine result, or its
    per-seed results for a multi-seed run) enables the semantic-
    preservation oracle: differing outputs raise
    :class:`~repro.errors.OptimizationError`.  Pass a pre-compiled
    ``module`` to skip the front end when running several levels, or a
    pre-optimized ``optimized=(graph_module, report)`` pair to skip the
    optimizer too (the study executor's per-worker memo).  ``engine``
    selects the simulation engine (see
    :func:`~repro.sim.machine.run_module`).  ``seeds`` batches several
    input seeds through one compiled program; it overrides ``seed`` and
    its first entry becomes the primary result.
    """
    level = OptLevel(level)
    ensure_engine(engine)
    seeds = validate_seeds(seeds)
    if optimized is not None:
        # The caller holds the optimized pair already (the study
        # executor's per-worker memo); compiling the front end here
        # would be pure waste — ``module`` stays ``None`` on the run
        # unless the caller supplied one.
        graph_module, report = optimized
    else:
        if module is None:
            module = compile_benchmark(spec)
        graph_module, report = optimize_module(module, level,
                                               unroll_factor=unroll_factor)
    if seeds:
        seed_list = tuple(seeds)
        results = run_module_batch_auto(
            graph_module, [spec.generate_inputs(s) for s in seed_list],
            engine=engine)
    else:
        seed_list = (seed,)
        results = [run_module(graph_module, spec.generate_inputs(seed),
                              engine=engine)]
    result = results[0]
    if check_against is not None:
        if isinstance(check_against, MachineResult):
            references: Sequence[MachineResult] = (check_against,)
        else:
            references = tuple(check_against)
        if len(references) != len(results):
            raise OptimizationError(
                f"{spec.name}: reference covers {len(references)} runs "
                f"but this run simulated {len(results)} seeds")
        for res, ref in zip(results, references):
            verify_semantics(spec, level, res, ref)
    detection = detect_sequences(graph_module, result.profile, lengths)
    return BenchmarkRun(
        spec=spec,
        level=level,
        module=module,
        graph_module=graph_module,
        opt_report=report,
        machine_result=result,
        detection=detection,
        seeds=seed_list,
        seed_results=tuple(results),
    )
