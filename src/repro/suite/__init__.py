"""The DSP benchmark suite of paper Table 1.

Twelve benchmarks re-written in mini-C from their Table-1 descriptions
(several, as in the paper, adapted from Embree & Kimble's *C Language
Algorithms for Digital Signal Processing*): FIR and IIR filters, FFT-based
power spectral estimation and 2:1 interpolation, DCT image compression,
histogram flattening, Gaussian smoothing, edge detection, and four small
integer stream filters (sewha, dft, bspline, feowf).

Each benchmark module exposes its mini-C ``SOURCE``, metadata matching
Table 1, and a deterministic input generator; :mod:`repro.suite.registry`
collects them and :mod:`repro.suite.runner` runs the full
compile → optimize → profile → detect pipeline on one benchmark.
"""

from repro.suite.registry import (BenchmarkSpec, all_benchmarks,
                                  benchmark_names, get_benchmark)
from repro.suite.runner import BenchmarkRun, run_benchmark

__all__ = [
    "BenchmarkSpec",
    "all_benchmarks",
    "benchmark_names",
    "get_benchmark",
    "BenchmarkRun",
    "run_benchmark",
]
