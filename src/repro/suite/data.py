"""Deterministic input generators for the benchmark suite.

Table 1 specifies each benchmark's input: random floating-point arrays,
random integer streams, or 24x24 8-bit images.  All generators take a seed
so every experiment is exactly reproducible; the "8-bit image" generator
synthesizes a blurred random field with a bright rectangle so edge/histogram
benchmarks see realistic structure instead of white noise.
"""

from __future__ import annotations

import random
from typing import List


def rng_for(name: str, seed: int = 0) -> random.Random:
    """A private RNG per (benchmark, seed) so benchmarks are independent."""
    return random.Random(f"{name}:{seed}")


def random_floats(rng: random.Random, count: int,
                  lo: float = -1.0, hi: float = 1.0) -> List[float]:
    """Uniform floats in [lo, hi] — Table 1's "random floating point"."""
    return [rng.uniform(lo, hi) for _ in range(count)]


def random_ints(rng: random.Random, count: int,
                lo: int = -512, hi: int = 511) -> List[int]:
    """Uniform integers — Table 1's "random integer values" streams."""
    return [rng.randint(lo, hi) for _ in range(count)]


def random_image(rng: random.Random, rows: int = 24,
                 cols: int = 24) -> List[int]:
    """A 24x24 8-bit image, row-major, with spatial structure.

    Base: smooth random field (box-blurred noise).  Feature: a brighter
    rectangle, so edge detection finds edges and histogram flattening sees
    a skewed distribution.
    """
    noise = [[rng.randint(0, 255) for _ in range(cols)]
             for _ in range(rows)]
    blurred = [[0] * cols for _ in range(rows)]
    for r in range(rows):
        for c in range(cols):
            total = 0
            count = 0
            for dr in (-1, 0, 1):
                for dc in (-1, 0, 1):
                    rr, cc = r + dr, c + dc
                    if 0 <= rr < rows and 0 <= cc < cols:
                        total += noise[rr][cc]
                        count += 1
            blurred[r][c] = total // count
    # Compress dynamic range into the dark half, then add a bright patch.
    r0, c0 = rng.randint(4, rows - 12), rng.randint(4, cols - 12)
    h, w = rng.randint(5, 8), rng.randint(5, 8)
    image = []
    for r in range(rows):
        for c in range(cols):
            value = blurred[r][c] // 2 + 32
            if r0 <= r < r0 + h and c0 <= c < c0 + w:
                value = min(255, value + 120)
            image.append(value)
    return image
