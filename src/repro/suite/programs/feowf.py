"""feowf — fifth-order elliptic wave filter over an integer stream.

The classic high-level-synthesis benchmark, realized here as a fifth-order
recursive integer structure: five one-pole sections in cascade with
shift-scaled feedback (every feedback gain < 1, so the fixed-point state
stays bounded) plus an elliptic-style feed-forward tap combination.  The
structure preserves what matters for the paper's analysis: a dense mesh of
integer multiply/add/shift operations with loop-carried dependences.
"""

NAME = "feowf"
DESCRIPTION = "Fifth order elliptic wave filter"
DATA_DESCRIPTION = "Stream of 256 random integer values"
INPUTS = ("x",)
OUTPUTS = ("y",)

SOURCE = r"""
/* Fifth-order recursive wave filter, fixed point.  Feedback products are
 * scaled by right shifts; all loop gains are below one. */

int x[256];
int y[256];
int N = 256;

int main() {
    int i;
    int d1;
    int d2;
    int d3;
    int d4;
    int d5;
    d1 = 0;
    d2 = 0;
    d3 = 0;
    d4 = 0;
    d5 = 0;
    for (i = 0; i < N; i++) {
        int in;
        int out;
        in = x[i];
        d1 = in + ((d1 * 3) >> 2);
        d2 = d1 + ((d2 * 5) >> 3);
        d3 = d2 + ((d3 * 9) >> 4);
        d4 = d3 + ((d4 * 7) >> 4);
        d5 = d4 + ((d5 * 3) >> 3);
        out = d5 - d3 + (d1 >> 2) + ((d4 * 3) >> 3);
        y[i] = out;
    }
    return 0;
}
"""


def generate_inputs(seed: int = 0):
    from repro.suite.data import random_ints, rng_for
    rng = rng_for(NAME, seed)
    return {"x": random_ints(rng, 256)}
