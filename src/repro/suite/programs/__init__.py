"""Mini-C sources of the twelve Table-1 benchmarks.

Each module exposes ``NAME``, ``DESCRIPTION``, ``DATA_DESCRIPTION`` (the
Table-1 columns), ``SOURCE`` (the mini-C text), ``INPUTS`` (global arrays
bound to generated data), ``OUTPUTS`` (global arrays read back as results)
and ``generate_inputs(seed)``.
"""

from repro.suite.programs import (bspline, compress, dft, edge, feowf, fir,
                                  flatten, iir, intfft, pse, sewha, smooth)

ALL_PROGRAMS = (fir, iir, pse, intfft, compress, flatten, smooth, edge,
                sewha, dft, bspline, feowf)

__all__ = ["ALL_PROGRAMS"] + [m.NAME for m in ALL_PROGRAMS]
