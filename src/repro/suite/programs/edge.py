"""edge — edge detection using two-dimensional convolution on a 24x24
image: Sobel gradients in both directions, absolute-sum magnitude,
threshold into a binary edge map, plus an edge-pixel count."""

NAME = "edge"
DESCRIPTION = "Edge detection using 2D convolution"
DATA_DESCRIPTION = "24x24 8-bit image"
INPUTS = ("img",)
OUTPUTS = ("mag", "edges")

SOURCE = r"""
/* Sobel edge detection.
 * Horizontal kernel gx:   -1 0 1      Vertical kernel gy:   -1 -2 -1
 *                         -2 0 2                             0  0  0
 *                         -1 0 1                             1  2  1
 * Magnitude |gx| + |gy|, then a fixed threshold produces the edge map. */

int img[24][24];
int mag[24][24];
int edges[24][24];
int nedges[1];
int ROWS = 24;
int COLS = 24;
int THRESH = 96;

int gradient_x(int r, int c) {
    int gx;
    gx = img[r - 1][c + 1] - img[r - 1][c - 1]
       + 2 * img[r][c + 1] - 2 * img[r][c - 1]
       + img[r + 1][c + 1] - img[r + 1][c - 1];
    return gx;
}

int gradient_y(int r, int c) {
    int gy;
    gy = img[r + 1][c - 1] - img[r - 1][c - 1]
       + 2 * img[r + 1][c] - 2 * img[r - 1][c]
       + img[r + 1][c + 1] - img[r - 1][c + 1];
    return gy;
}

void convolve2d() {
    int r;
    int c;
    for (r = 1; r < ROWS - 1; r++) {
        for (c = 1; c < COLS - 1; c++) {
            int gx;
            int gy;
            int m;
            gx = gradient_x(r, c);
            gy = gradient_y(r, c);
            if (gx < 0) {
                gx = -gx;
            }
            if (gy < 0) {
                gy = -gy;
            }
            m = gx + gy;
            if (m > 255) {
                m = 255;
            }
            mag[r][c] = m;
        }
    }
}

void threshold_map() {
    int r;
    int c;
    int count;
    count = 0;
    for (r = 0; r < ROWS; r++) {
        for (c = 0; c < COLS; c++) {
            if (mag[r][c] >= THRESH) {
                edges[r][c] = 1;
                count = count + 1;
            } else {
                edges[r][c] = 0;
            }
        }
    }
    nedges[0] = count;
}

int main() {
    convolve2d();
    threshold_map();
    return nedges[0];
}
"""


def generate_inputs(seed: int = 0):
    from repro.suite.data import random_image, rng_for
    rng = rng_for(NAME, seed)
    return {"img": random_image(rng)}
