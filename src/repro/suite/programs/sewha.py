"""sewha — Sewha's integer FIR filter.

A short symmetric integer FIR with explicitly written taps; the small
constant coefficients strength-reduce to shift/add combinations, which is
what makes this benchmark's chain profile (add-multiply, add-add-add in the
paper's Table 3) almost entirely integer-ALU traffic.
"""

NAME = "sewha"
DESCRIPTION = "Sewha's (FIR) filter"
DATA_DESCRIPTION = "Stream of 100 random integer values"
INPUTS = ("x",)
OUTPUTS = ("y",)

SOURCE = r"""
/* Sewha's filter: 7-tap symmetric integer lowpass, explicit taps. */

int x[100];
int y[100];
int N = 100;

int main() {
    int i;
    for (i = 0; i < 6; i++) {
        y[i] = 0;
    }
    for (i = 6; i < N; i++) {
        int acc;
        acc = x[i] + x[i - 6]
            + 3 * (x[i - 1] + x[i - 5])
            + 7 * (x[i - 2] + x[i - 4])
            + 12 * x[i - 3];
        y[i] = acc >> 5;
    }
    return 0;
}
"""


def generate_inputs(seed: int = 0):
    from repro.suite.data import random_ints, rng_for
    rng = rng_for(NAME, seed)
    return {"x": random_ints(rng, 100)}
