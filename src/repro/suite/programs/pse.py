"""pse — power spectral estimation using the FFT (Welch's method).

Three half-overlapping 128-sample segments of the 256-sample input are Hann
windowed, transformed with an in-place radix-2 FFT, and their squared
magnitudes averaged into the spectral estimate.
"""

NAME = "pse"
DESCRIPTION = "Power spectral estimation using FFT"
DATA_DESCRIPTION = "Random array of 256 floating point values"
INPUTS = ("x",)
OUTPUTS = ("psd",)

SOURCE = r"""
/* Welch power spectral estimation: 3 segments of 128 samples with 50%
 * overlap, Hann window, radix-2 decimation-in-time FFT, averaged
 * periodograms. */

float x[256];            /* input signal */
float psd[64];           /* one-sided spectral estimate */
float re[128];           /* FFT working buffers */
float im[128];

int NINPUT = 256;
int SEG = 128;
int NSEGS = 3;
float PI = 3.141592653589793;

/* In-place bit-reversal permutation of re/im. */
void bit_reverse() {
    int i;
    int j;
    int bit;
    j = 0;
    for (i = 1; i < SEG; i++) {
        bit = SEG >> 1;
        while ((j & bit) != 0) {
            j = j ^ bit;
            bit = bit >> 1;
        }
        j = j | bit;
        if (i < j) {
            float tr;
            float ti;
            tr = re[i];
            re[i] = re[j];
            re[j] = tr;
            ti = im[i];
            im[i] = im[j];
            im[j] = ti;
        }
    }
}

/* Radix-2 decimation-in-time FFT over re/im (forward transform). */
void fft() {
    int len;
    int half;
    int i;
    int k;
    bit_reverse();
    for (len = 2; len <= SEG; len = len << 1) {
        float ang;
        half = len >> 1;
        ang = 2.0 * PI / (float) len;
        for (i = 0; i < SEG; i += len) {
            for (k = 0; k < half; k++) {
                float cr;
                float ci;
                float vr;
                float vi;
                float ur;
                float ui;
                int lo;
                int hi;
                cr = cos(ang * (float) k);
                ci = -sin(ang * (float) k);
                lo = i + k;
                hi = lo + half;
                vr = re[hi] * cr - im[hi] * ci;
                vi = re[hi] * ci + im[hi] * cr;
                ur = re[lo];
                ui = im[lo];
                re[lo] = ur + vr;
                im[lo] = ui + vi;
                re[hi] = ur - vr;
                im[hi] = ui - vi;
            }
        }
    }
}

/* Load one Hann-windowed segment into the FFT buffers. */
void load_segment(int offset) {
    int i;
    for (i = 0; i < SEG; i++) {
        float w;
        w = 0.5 - 0.5 * cos(2.0 * PI * (float) i / (float) (SEG - 1));
        re[i] = x[offset + i] * w;
        im[i] = 0.0;
    }
}

int main() {
    int s;
    int k;
    int offset;
    for (k = 0; k < 64; k++) {
        psd[k] = 0.0;
    }
    for (s = 0; s < NSEGS; s++) {
        offset = s * 64;
        load_segment(offset);
        fft();
        for (k = 0; k < 64; k++) {
            psd[k] += (re[k] * re[k] + im[k] * im[k]) / (float) NSEGS;
        }
    }
    return 0;
}
"""


def generate_inputs(seed: int = 0):
    from repro.suite.data import random_floats, rng_for
    rng = rng_for(NAME, seed)
    return {"x": random_floats(rng, 256)}
