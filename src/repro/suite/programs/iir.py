"""iir — three-section IIR filter (Chebyshev-style, 1 dB passband ripple).

A cascade of three direct-form-II biquads with fixed coefficient tables,
matching the paper's "IIR filter - 3-section, 1dB passband ripple".
"""

NAME = "iir"
DESCRIPTION = "IIR filter - 3-section, 1dB passband ripple"
DATA_DESCRIPTION = "Random array of 100 floating point values"
INPUTS = ("x",)
OUTPUTS = ("y",)

SOURCE = r"""
/* 6th-order lowpass IIR as a cascade of three biquad sections,
 * direct form II.  Coefficients follow a Chebyshev type-I design with
 * 1 dB passband ripple. */

float x[100];
float y[100];

/* Per-section feed-forward coefficients. */
float b0[3] = { 0.0605, 0.0730, 0.0912 };
float b1[3] = { 0.1210, 0.1460, 0.1824 };
float b2[3] = { 0.0605, 0.0730, 0.0912 };

/* Per-section feedback coefficients (a0 normalized to 1). */
float a1[3] = { -1.1948, -1.2825, -1.4370 };
float a2[3] = {  0.4368,  0.5745,  0.8019 };

/* Direct-form-II delay elements for each section. */
float d1[3];
float d2[3];

int NSAMP = 100;
int NSEC = 3;

int main() {
    int i;
    int s;
    for (s = 0; s < NSEC; s++) {
        d1[s] = 0.0;
        d2[s] = 0.0;
    }
    for (i = 0; i < NSAMP; i++) {
        float v;
        v = x[i];
        for (s = 0; s < NSEC; s++) {
            float w;
            w = v - a1[s] * d1[s] - a2[s] * d2[s];
            v = b0[s] * w + b1[s] * d1[s] + b2[s] * d2[s];
            d2[s] = d1[s];
            d1[s] = w;
        }
        y[i] = v;
    }
    return 0;
}
"""


def generate_inputs(seed: int = 0):
    from repro.suite.data import random_floats, rng_for
    rng = rng_for(NAME, seed)
    return {"x": random_floats(rng, 100)}
