"""fir — 35-point lowpass floating-point FIR filter (cutoff 0.2).

The filter designs its own coefficients at run time (windowed sinc with a
Hamming window), then convolves the input stream — the classic Embree &
Kimble FIR example the paper adapted.
"""

NAME = "fir"
DESCRIPTION = "35-point lowpass fp FIR filter (cutoff 0.2)"
DATA_DESCRIPTION = "Random array of 100 floating point values"
INPUTS = ("x",)
OUTPUTS = ("y",)

SOURCE = r"""
/* 35-point lowpass FIR filter, cutoff 0.2 (normalized), Hamming window. */

float x[100];            /* input samples  */
float y[100];            /* filtered output */
float h[35];             /* filter coefficients */

int NSAMP = 100;
int NTAPS = 35;
float CUTOFF = 0.2;
float PI = 3.141592653589793;

/* Windowed-sinc lowpass design. */
void design_lowpass() {
    int k;
    int mid;
    float wc;
    mid = (NTAPS - 1) / 2;
    wc = PI * CUTOFF;
    for (k = 0; k < NTAPS; k++) {
        int m;
        float ideal;
        float window;
        m = k - mid;
        if (m == 0) {
            ideal = wc / PI;
        } else {
            float fm;
            fm = (float) m;
            ideal = sin(wc * fm) / (PI * fm);
        }
        window = 0.54 - 0.46 * cos(2.0 * PI * (float) k
                                   / (float) (NTAPS - 1));
        h[k] = ideal * window;
    }
}

/* Direct-form convolution; the start-up transient uses the available
 * history only. */
void fir_filter() {
    int i;
    int k;
    for (i = 0; i < NSAMP; i++) {
        float acc;
        acc = 0.0;
        for (k = 0; k < NTAPS; k++) {
            int j;
            j = i - k;
            if (j >= 0) {
                acc += h[k] * x[j];
            }
        }
        y[i] = acc;
    }
}

int main() {
    design_lowpass();
    fir_filter();
    return 0;
}
"""


def generate_inputs(seed: int = 0):
    from repro.suite.data import random_floats, rng_for
    rng = rng_for(NAME, seed)
    return {"x": random_floats(rng, 100)}
