"""flatten — histogram flattening (gray-level modification) of a 24x24
8-bit image: histogram, cumulative distribution, remap through a lookup
table so the output's gray levels are approximately uniform."""

NAME = "flatten"
DESCRIPTION = "Histogram flattening (gray level mod.)"
DATA_DESCRIPTION = "24x24 8-bit image"
INPUTS = ("img",)
OUTPUTS = ("out",)

SOURCE = r"""
/* Histogram equalization on an 8-bit image. */

int img[24][24];
int out[24][24];
int hist[256];
int lut[256];
int ROWS = 24;
int COLS = 24;
int LEVELS = 256;

void build_histogram() {
    int r;
    int c;
    int v;
    for (v = 0; v < LEVELS; v++) {
        hist[v] = 0;
    }
    for (r = 0; r < ROWS; r++) {
        for (c = 0; c < COLS; c++) {
            int p;
            p = img[r][c];
            hist[p] = hist[p] + 1;
        }
    }
}

void build_lut() {
    int v;
    int cdf;
    int total;
    cdf = 0;
    total = ROWS * COLS;
    for (v = 0; v < LEVELS; v++) {
        cdf = cdf + hist[v];
        lut[v] = (cdf * 255) / total;
    }
}

void remap() {
    int r;
    int c;
    for (r = 0; r < ROWS; r++) {
        for (c = 0; c < COLS; c++) {
            out[r][c] = lut[img[r][c]];
        }
    }
}

int main() {
    build_histogram();
    build_lut();
    remap();
    return 0;
}
"""


def generate_inputs(seed: int = 0):
    from repro.suite.data import random_image, rng_for
    rng = rng_for(NAME, seed)
    return {"img": random_image(rng)}
