"""dft — single-bin discrete Fourier transform (Goertzel recurrence).

Table 1 lists a 15-line "discrete fast fourier transform" over an integer
stream; the Goertzel algorithm is the canonical 15-line way to evaluate a
DFT bin with one multiply-add recurrence per sample — a MAC showcase.
"""

NAME = "dft"
DESCRIPTION = "Discrete fast fourier transform"
DATA_DESCRIPTION = "Stream of 256 random integer values"
INPUTS = ("x",)
OUTPUTS = ("power",)

SOURCE = r"""
/* Goertzel evaluation of DFT bin 8 over 256 integer samples. */

int x[256];
float power[1];
int N = 256;
float PI = 3.141592653589793;

int main() {
    int i;
    float s0;
    float s1;
    float s2;
    float coeff;
    coeff = 2.0 * cos(2.0 * PI * 8.0 / 256.0);
    s1 = 0.0;
    s2 = 0.0;
    for (i = 0; i < N; i++) {
        s0 = coeff * s1 - s2 + (float) x[i];
        s2 = s1;
        s1 = s0;
    }
    power[0] = s1 * s1 + s2 * s2 - coeff * s1 * s2;
    return 0;
}
"""


def generate_inputs(seed: int = 0):
    from repro.suite.data import random_ints, rng_for
    rng = rng_for(NAME, seed)
    return {"x": random_ints(rng, 256)}
