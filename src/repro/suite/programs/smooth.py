"""smooth — 3x3 Gaussian blur lowpass filter on a 24x24 8-bit image."""

NAME = "smooth"
DESCRIPTION = "3x3 Gaussian blur lowpass filter"
DATA_DESCRIPTION = "24x24 8-bit image"
INPUTS = ("img",)
OUTPUTS = ("out",)

SOURCE = r"""
/* 3x3 Gaussian smoothing with the binomial kernel
 *      1 2 1
 *      2 4 2   / 16
 *      1 2 1
 * Border pixels are copied through unchanged. */

int img[24][24];
int out[24][24];
int ROWS = 24;
int COLS = 24;

int main() {
    int r;
    int c;
    for (r = 0; r < ROWS; r++) {
        for (c = 0; c < COLS; c++) {
            if (r == 0 || r == ROWS - 1 || c == 0 || c == COLS - 1) {
                out[r][c] = img[r][c];
            } else {
                int acc;
                acc = img[r - 1][c - 1]
                    + 2 * img[r - 1][c]
                    + img[r - 1][c + 1]
                    + 2 * img[r][c - 1]
                    + 4 * img[r][c]
                    + 2 * img[r][c + 1]
                    + img[r + 1][c - 1]
                    + 2 * img[r + 1][c]
                    + img[r + 1][c + 1];
                out[r][c] = acc >> 4;
            }
        }
    }
    return 0;
}
"""


def generate_inputs(seed: int = 0):
    from repro.suite.data import random_image, rng_for
    rng = rng_for(NAME, seed)
    return {"img": random_image(rng)}
