"""compress — discrete cosine transform image compression (4:1).

The 24x24 image is processed as nine 8x8 blocks: forward 2-D DCT-II
(separable, via a runtime-built cosine basis), 4:1 compression by zeroing
all but the low-frequency 4x4 quadrant of each block, inverse DCT, and
clamped reconstruction.
"""

NAME = "compress"
DESCRIPTION = "Discrete cosine transformation (4:1 comp)"
DATA_DESCRIPTION = "24x24 8-bit image"
INPUTS = ("img",)
OUTPUTS = ("recon",)

SOURCE = r"""
/* 8x8 block DCT compression at 4:1 (keep the 4x4 low-frequency quadrant),
 * followed by the inverse transform for reconstruction. */

int img[24][24];
int recon[24][24];
float basis[8][8];       /* basis[k][n] = c(k) cos((2n+1) k pi / 16) */
float coef[8][8];        /* transform coefficients of one block */
int ROWS = 24;
int COLS = 24;
int BSIZE = 8;
int KEEP = 4;
float PI = 3.141592653589793;

void build_basis() {
    int k;
    int n;
    for (k = 0; k < BSIZE; k++) {
        float ck;
        if (k == 0) {
            ck = 0.3535533905932738;     /* sqrt(1/8) */
        } else {
            ck = 0.5;                    /* sqrt(2/8) */
        }
        for (n = 0; n < BSIZE; n++) {
            basis[k][n] = ck * cos((2.0 * (float) n + 1.0)
                                   * (float) k * PI / 16.0);
        }
    }
}

/* Forward 2-D DCT of the block at (br, bc): coef = B * block * B^T. */
void forward_block(int br, int bc) {
    float tmp[8][8];
    int u;
    int v;
    int n;
    for (u = 0; u < BSIZE; u++) {
        for (v = 0; v < BSIZE; v++) {
            float acc;
            acc = 0.0;
            for (n = 0; n < BSIZE; n++) {
                acc += basis[u][n] * (float) img[br + n][bc + v];
            }
            tmp[u][v] = acc;
        }
    }
    for (u = 0; u < BSIZE; u++) {
        for (v = 0; v < BSIZE; v++) {
            float acc;
            acc = 0.0;
            for (n = 0; n < BSIZE; n++) {
                acc += tmp[u][n] * basis[v][n];
            }
            coef[u][v] = acc;
        }
    }
}

/* 4:1 compression: zero everything outside the KEEP x KEEP quadrant. */
void quantize_block() {
    int u;
    int v;
    for (u = 0; u < BSIZE; u++) {
        for (v = 0; v < BSIZE; v++) {
            if (u >= KEEP || v >= KEEP) {
                coef[u][v] = 0.0;
            }
        }
    }
}

/* Inverse 2-D DCT: block = B^T * coef * B, clamped to 8 bits. */
void inverse_block(int br, int bc) {
    float tmp[8][8];
    int n;
    int m;
    int u;
    for (n = 0; n < BSIZE; n++) {
        for (m = 0; m < BSIZE; m++) {
            float acc;
            acc = 0.0;
            for (u = 0; u < BSIZE; u++) {
                acc += basis[u][n] * coef[u][m];
            }
            tmp[n][m] = acc;
        }
    }
    for (n = 0; n < BSIZE; n++) {
        for (m = 0; m < BSIZE; m++) {
            float acc;
            int pixel;
            acc = 0.0;
            for (u = 0; u < BSIZE; u++) {
                acc += tmp[n][u] * basis[u][m];
            }
            pixel = (int) (acc + 0.5);
            if (pixel < 0) {
                pixel = 0;
            }
            if (pixel > 255) {
                pixel = 255;
            }
            recon[br + n][bc + m] = pixel;
        }
    }
}

int main() {
    int br;
    int bc;
    build_basis();
    for (br = 0; br < ROWS; br += 8) {
        for (bc = 0; bc < COLS; bc += 8) {
            forward_block(br, bc);
            quantize_block();
            inverse_block(br, bc);
        }
    }
    return 0;
}
"""


def generate_inputs(seed: int = 0):
    from repro.suite.data import random_image, rng_for
    rng = rng_for(NAME, seed)
    return {"img": random_image(rng)}
