"""intfft — 2:1 interpolation using an FFT / inverse-FFT pair.

The 100-sample input is zero-padded to 128 points, transformed, its
spectrum zero-stuffed into a 256-point spectrum, and inverse-transformed to
produce the 2:1 interpolated signal.  Exercises a size-parameterized FFT
and array-parameter passing.
"""

NAME = "intfft"
DESCRIPTION = "Interpolate 2:1 using FFT and inverse FFT"
DATA_DESCRIPTION = "Random array of 100 floating point values"
INPUTS = ("x",)
OUTPUTS = ("y",)

SOURCE = r"""
/* 2:1 band-limited interpolation through the frequency domain:
 *   X = FFT_128(pad(x));  Y = zero-stuff(X);  y = 2 * IFFT_256(Y).    */

float x[100];            /* input samples */
float y[256];            /* interpolated output (first 200 meaningful) */
float re[256];           /* shared FFT working buffers */
float im[256];
float xr[128];           /* saved 128-point spectrum */
float xi[128];

int NIN = 100;
int NFFT = 128;
int NOUT = 256;
float PI = 3.141592653589793;

/* In-place bit reversal over the first n entries of re/im. */
void bit_reverse(int n) {
    int i;
    int j;
    int bit;
    j = 0;
    for (i = 1; i < n; i++) {
        bit = n >> 1;
        while ((j & bit) != 0) {
            j = j ^ bit;
            bit = bit >> 1;
        }
        j = j | bit;
        if (i < j) {
            float tr;
            float ti;
            tr = re[i];
            re[i] = re[j];
            re[j] = tr;
            ti = im[i];
            im[i] = im[j];
            im[j] = ti;
        }
    }
}

/* Radix-2 FFT over the first n entries; inverse != 0 gives the inverse
 * transform including the 1/n scale. */
void fft(int n, int inverse) {
    int len;
    int half;
    int i;
    int k;
    bit_reverse(n);
    for (len = 2; len <= n; len = len << 1) {
        float ang;
        half = len >> 1;
        ang = 2.0 * PI / (float) len;
        if (inverse != 0) {
            ang = -ang;
        }
        for (i = 0; i < n; i += len) {
            for (k = 0; k < half; k++) {
                float cr;
                float ci;
                float vr;
                float vi;
                float ur;
                float ui;
                int lo;
                int hi;
                cr = cos(ang * (float) k);
                ci = -sin(ang * (float) k);
                lo = i + k;
                hi = lo + half;
                vr = re[hi] * cr - im[hi] * ci;
                vi = re[hi] * ci + im[hi] * cr;
                ur = re[lo];
                ui = im[lo];
                re[lo] = ur + vr;
                im[lo] = ui + vi;
                re[hi] = ur - vr;
                im[hi] = ui - vi;
            }
        }
    }
    if (inverse != 0) {
        for (i = 0; i < n; i++) {
            re[i] = re[i] / (float) n;
            im[i] = im[i] / (float) n;
        }
    }
}

int main() {
    int i;
    int half;

    /* Forward 128-point transform of the zero-padded input. */
    for (i = 0; i < NFFT; i++) {
        if (i < NIN) {
            re[i] = x[i];
        } else {
            re[i] = 0.0;
        }
        im[i] = 0.0;
    }
    fft(NFFT, 0);
    for (i = 0; i < NFFT; i++) {
        xr[i] = re[i];
        xi[i] = im[i];
    }

    /* Zero-stuff into a 256-point spectrum: keep the low half at the
     * bottom and the high half at the top. */
    for (i = 0; i < NOUT; i++) {
        re[i] = 0.0;
        im[i] = 0.0;
    }
    half = NFFT >> 1;
    for (i = 0; i < half; i++) {
        re[i] = xr[i];
        im[i] = xi[i];
        re[NOUT - half + i] = xr[half + i];
        im[NOUT - half + i] = xi[half + i];
    }

    /* Inverse 256-point transform; factor 2 restores the amplitude. */
    fft(NOUT, 1);
    for (i = 0; i < NOUT; i++) {
        y[i] = 2.0 * re[i];
    }
    return 0;
}
"""


def generate_inputs(seed: int = 0):
    from repro.suite.data import random_floats, rng_for
    rng = rng_for(NAME, seed)
    return {"x": random_floats(rng, 100)}
