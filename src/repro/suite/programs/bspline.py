"""bspline — cubic B-spline FIR smoothing filter over an integer stream.

The cubic B-spline kernel (1, 4, 6, 4, 1)/16 applied to 256 integer
samples; the power-of-two-friendly weights become shift/add chains.
"""

NAME = "bspline"
DESCRIPTION = "B Spline (FIR) filter"
DATA_DESCRIPTION = "Stream of 256 random integer values"
INPUTS = ("x",)
OUTPUTS = ("y",)

SOURCE = r"""
/* Cubic B-spline smoothing: y = (x[-2] + 4x[-1] + 6x[0] + 4x[1] + x[2])/16 */

int x[256];
int y[256];
int N = 256;

int main() {
    int i;
    y[0] = x[0];
    y[1] = x[1];
    for (i = 2; i < N - 2; i++) {
        int acc;
        acc = x[i - 2]
            + 4 * x[i - 1]
            + 6 * x[i]
            + 4 * x[i + 1]
            + x[i + 2];
        y[i] = acc >> 4;
    }
    y[N - 2] = x[N - 2];
    y[N - 1] = x[N - 1];
    return 0;
}
"""


def generate_inputs(seed: int = 0):
    from repro.suite.data import random_ints, rng_for
    rng = rng_for(NAME, seed)
    return {"x": random_ints(rng, 256)}
