"""Diagnostics and exception hierarchy shared by every stage of the toolchain.

Every error raised by the front end, the lowering stage, the optimizer, the
simulator or the analysis tools derives from :class:`ReproError`, so callers
can catch one type to handle any toolchain failure.  Front-end errors carry a
:class:`SourceLocation` that points back into the mini-C source text.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position in a mini-C source file (1-based line and column)."""

    line: int
    column: int
    filename: str = "<source>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class ReproError(Exception):
    """Base class for every error raised by the toolchain."""


class LexerError(ReproError):
    """Raised when the lexer encounters a character it cannot tokenize."""

    def __init__(self, message: str, location: SourceLocation):
        super().__init__(f"{location}: lexical error: {message}")
        self.location = location


class ParseError(ReproError):
    """Raised when the parser cannot make sense of the token stream."""

    def __init__(self, message: str, location: SourceLocation):
        super().__init__(f"{location}: syntax error: {message}")
        self.location = location


class SemanticError(ReproError):
    """Raised by semantic analysis (type errors, undeclared names, ...)."""

    def __init__(self, message: str, location: SourceLocation = None):
        prefix = f"{location}: " if location is not None else ""
        super().__init__(f"{prefix}semantic error: {message}")
        self.location = location


class LoweringError(ReproError):
    """Raised when the AST-to-IR lowering hits an unsupported construct."""


class IRError(ReproError):
    """Raised when an IR invariant is violated (see :mod:`repro.ir.verify`)."""


class SimulationError(ReproError):
    """Raised by the simulator: bad memory access, missing entry point, ..."""


class OptimizationError(ReproError):
    """Raised when an optimizer transformation would break program semantics."""


class AnalysisError(ReproError):
    """Raised by the sequence-detection / coverage analysis tools."""


class AsipError(ReproError):
    """Raised by the ASIP model (unknown chain pattern, budget misuse, ...)."""


class VerificationError(ReproError):
    """Raised by the static artifact verifier (see :mod:`repro.analysis`)."""
