"""repro — compiler feedback in ASIP design.

A full reproduction of Onion, Nicolau & Dutt, *Incorporating Compiler
Feedback Into the Design of ASIPs* (DATE 1995): a mini-C front end, a
three-address program-graph IR, a profiling simulator, a percolation-
scheduling optimizer with loop pipelining and register renaming, the
chainable-sequence detection and coverage analyses, the Table-1 DSP
benchmark suite, and an ASIP synthesis model that closes the design loop.

Typical use::

    from repro import compile_source, optimize_module, OptLevel
    from repro import run_module, detect_sequences

    module = compile_source(open("kernel.c").read(), "kernel")
    graphs, _ = optimize_module(module, OptLevel.PIPELINED)
    result = run_module(graphs, {"x": samples})
    found = detect_sequences(graphs, result.profile, lengths=(2, 3))
    for name, freq in found.top(2, limit=5):
        print(name, freq)

Higher-level drivers live in :mod:`repro.feedback` (the whole experiment
matrix) and :mod:`repro.asip` (design-space exploration).
"""

from repro.errors import ReproError
from repro.frontend import compile_source
from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim.machine import run_module
from repro.chaining.detect import detect_sequences
from repro.chaining.coverage import analyze_coverage

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "compile_source",
    "optimize_module",
    "OptLevel",
    "run_module",
    "detect_sequences",
    "analyze_coverage",
    "__version__",
]
