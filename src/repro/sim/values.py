"""Scalar semantics of the simulated machine.

Integers follow C: division and modulo truncate toward zero, shifts are
arithmetic.  We deliberately keep Python's unbounded integers (the DSP
benchmarks never rely on 32-bit wraparound) — this matches the paper's
3-address simulator, which modelled word-size-agnostic operations.
"""

from __future__ import annotations

import math

from repro.errors import SimulationError


def int_div(a: int, b: int) -> int:
    """C-style truncating integer division."""
    if b == 0:
        raise SimulationError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def int_mod(a: int, b: int) -> int:
    """C-style remainder: ``a == int_div(a, b) * b + int_mod(a, b)``."""
    if b == 0:
        raise SimulationError("integer modulo by zero")
    return a - int_div(a, b) * b


def float_div(a: float, b: float) -> float:
    if b == 0.0:
        raise SimulationError("floating-point division by zero")
    return a / b


def shift_left(a: int, b: int) -> int:
    if b < 0:
        raise SimulationError("negative shift amount")
    return a << b


def shift_right(a: int, b: int) -> int:
    if b < 0:
        raise SimulationError("negative shift amount")
    return a >> b


# Named module-level functions, not lambdas: the bytecode/codegen
# tiers inline these objects into lowered words and generated-source
# constants, which the disk cache (sim/diskcache.py) pickles — and
# pickle serializes functions by qualified name, which lambdas lack.


def _intrin_sin(a):
    return math.sin(a)


def _intrin_cos(a):
    return math.cos(a)


def _intrin_sqrt(a):
    return math.sqrt(a) if a >= 0 else _domain("sqrt", a)


def _intrin_fabs(a):
    return abs(a)


def _intrin_exp(a):
    return math.exp(a)


def _intrin_log(a):
    return math.log(a) if a > 0 else _domain("log", a)


def _intrin_atan2(a, b):
    return math.atan2(a, b)


def _intrin_pow(a, b):
    return math.pow(a, b)


INTRINSIC_IMPL = {
    "sin": _intrin_sin,
    "cos": _intrin_cos,
    "sqrt": _intrin_sqrt,
    "fabs": _intrin_fabs,
    "exp": _intrin_exp,
    "log": _intrin_log,
    "atan2": _intrin_atan2,
    "pow": _intrin_pow,
    "abs": _intrin_fabs,
}


def _domain(name: str, value) -> float:
    raise SimulationError(f"math domain error: {name}({value})")
