"""Scalar semantics of the simulated machine.

Integers follow C: division and modulo truncate toward zero, shifts are
arithmetic.  We deliberately keep Python's unbounded integers (the DSP
benchmarks never rely on 32-bit wraparound) — this matches the paper's
3-address simulator, which modelled word-size-agnostic operations.
"""

from __future__ import annotations

import math

from repro.errors import SimulationError


def int_div(a: int, b: int) -> int:
    """C-style truncating integer division."""
    if b == 0:
        raise SimulationError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def int_mod(a: int, b: int) -> int:
    """C-style remainder: ``a == int_div(a, b) * b + int_mod(a, b)``."""
    if b == 0:
        raise SimulationError("integer modulo by zero")
    return a - int_div(a, b) * b


def float_div(a: float, b: float) -> float:
    if b == 0.0:
        raise SimulationError("floating-point division by zero")
    return a / b


def shift_left(a: int, b: int) -> int:
    if b < 0:
        raise SimulationError("negative shift amount")
    return a << b


def shift_right(a: int, b: int) -> int:
    if b < 0:
        raise SimulationError("negative shift amount")
    return a >> b


INTRINSIC_IMPL = {
    "sin": lambda a: math.sin(a),
    "cos": lambda a: math.cos(a),
    "sqrt": lambda a: math.sqrt(a) if a >= 0 else _domain("sqrt", a),
    "fabs": lambda a: abs(a),
    "exp": lambda a: math.exp(a),
    "log": lambda a: math.log(a) if a > 0 else _domain("log", a),
    "atan2": lambda a, b: math.atan2(a, b),
    "pow": lambda a, b: math.pow(a, b),
    "abs": lambda a: abs(a),
}


def _domain(name: str, value) -> float:
    raise SimulationError(f"math domain error: {name}({value})")
