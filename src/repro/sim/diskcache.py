"""The on-disk compile-artifact cache (the cold-start tier).

The in-memory caches (`compile_module` / `lower_module` /
`generate_module`) make *repeated* runs of one module cheap, but they
die with the process: every fresh CLI invocation and every pool worker
re-lowers and re-generates from scratch.  This module adds the tier
below them — a small content-addressed store on disk holding the
bytecode tier's lowered words and the codegen tier's generated source,
so a cold process whose module was ever compiled before skips the
lowering walk and the source emission entirely.

Keying.  Entries are addressed by :func:`module_digest`, a SHA-256 over
a canonical serialization of everything the lowered form depends on —
graph names, entry nodes, parameters, local arrays, node ids, successor
lists, and every instruction's opcode and operands — deliberately
*excluding* process-local instruction uids, so two processes compiling
the same source reach the same key.  The engine kind ("bytecode" / "codegen" / "lanes" —
lane entries additionally suffix the digest with the lane count, since
their generated source is width-specialized), the cache
:data:`FORMAT_VERSION` and the interpreter's
``cache_tag`` (the codegen entry embeds a marshalled code object, which
is CPython-version-specific) all partition the namespace: any mismatch
is a plain miss, never a crash.

Robustness rules, pinned by ``tests/test_diskcache.py``:

* **corruption-tolerant reads** — a truncated, garbled or
  wrong-versioned entry is ignored (counted, then rewritten by the
  normal store path); no cache state can make a run fail;
* **atomic writes** — entries are written to a unique temporary file
  and published with :func:`os.replace`, so two pool workers racing on
  one key both leave a complete entry behind;
* **strictly optional** — ``REPRO_CACHE=none`` (or ``--cache-dir
  none``) disables the tier; results are bit-identical either way,
  only cold-start wall time changes.

Location resolution: ``--cache-dir`` (exported to ``REPRO_CACHE`` so
pool workers inherit it) > ``REPRO_CACHE`` > ``~/.cache/repro`` (under
``XDG_CACHE_HOME`` when set).  ``python -m repro cache show|clear``
inspects and empties the store.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import tempfile
from collections import Counter
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from repro.ir.values import ArraySymbol, Constant, VirtualReg

#: Environment variable naming the cache directory (``none`` disables).
CACHE_ENV_VAR = "REPRO_CACHE"

#: When set truthy, every payload served from disk is statically verified
#: against the module before use (see :mod:`repro.analysis`); a payload
#: that fails verification is treated as a miss, counted under
#: ``rejected``, and regenerated — exactly the corruption path.
VERIFY_ENV_VAR = "REPRO_VERIFY"

#: The value of :data:`CACHE_ENV_VAR` (or ``--cache-dir``) that disables
#: the disk tier entirely.
DISABLE_VALUE = "none"

#: Bumped whenever the entry payload layout changes; older entries
#: become plain misses.
FORMAT_VERSION = 1

#: Marshalled code objects are interpreter-specific; the tag partitions
#: entries per CPython version (e.g. ``cpython-311``).
_CACHE_TAG = getattr(sys.implementation, "cache_tag", None) or \
    "py%d%d" % sys.version_info[:2]

_source_token_cache: Optional[str] = None


def _source_token() -> str:
    """A short hash over the compiler sources entries depend on.

    Lowered words embed raw opcode numbers (assigned by a counter in
    ``engine.py``) and the codegen entry embeds generated source — both
    are artifacts of the *current* compiler code, not just the module
    structure.  Folding a digest of the engine/bytecode/codegen sources
    into the entry namespace turns any edit to them (an inserted
    opcode, a changed emitter) into plain misses, instead of relying on
    a hand-maintained :data:`FORMAT_VERSION` bump to avoid silently
    executing stale entries.
    """
    global _source_token_cache
    if _source_token_cache is None:
        h = hashlib.sha256()
        try:
            from repro.sim import bytecode, codegen, engine, lanes
            for mod in (engine, bytecode, codegen, lanes):
                with open(mod.__file__, "rb") as fh:
                    h.update(fh.read())
            _source_token_cache = h.hexdigest()[:12]
        except Exception:  # pragma: no cover - source not readable
            _source_token_cache = "src"
    return _source_token_cache


def default_cache_root() -> Path:
    """``$XDG_CACHE_HOME/repro`` or ``~/.cache/repro``."""
    base = os.environ.get("XDG_CACHE_HOME")
    if base:
        return Path(base).expanduser() / "repro"
    return Path.home() / ".cache" / "repro"


def resolve_cache_root() -> Optional[Path]:
    """The directory the disk tier should use, or ``None`` when disabled.

    Consulted on every :func:`get_cache` call, so tests (and the CLI's
    ``--cache-dir``, which writes :data:`CACHE_ENV_VAR` so pool workers
    inherit the choice) can repoint or disable the tier at any time.
    """
    raw = os.environ.get(CACHE_ENV_VAR)
    if raw is None:
        return default_cache_root()
    raw = raw.strip()
    if not raw or raw.lower() == DISABLE_VALUE:
        return None
    return Path(raw).expanduser()


def set_cache_dir(value: Optional[str]) -> None:
    """Point the disk tier at *value* (``'none'``/``None`` disables).

    Writes :data:`CACHE_ENV_VAR` rather than process-local state so
    worker processes spawned later inherit the same setting.
    """
    os.environ[CACHE_ENV_VAR] = DISABLE_VALUE if value is None \
        else str(value)


# -- the structural digest ---------------------------------------------------------


def _feed_operand(parts: List[str], operand) -> None:
    if isinstance(operand, VirtualReg):
        parts.append(f"R{operand.is_float:d}:{operand.name}")
    elif isinstance(operand, Constant):
        parts.append(f"C{operand.is_float:d}:{operand.value!r}")
    elif isinstance(operand, ArraySymbol):
        parts.append(f"A{operand.is_float:d}{operand.is_global:d}:"
                     f"{operand.name}:{operand.size}")
    elif operand is None:
        parts.append("_")
    else:  # unreadable operands lower to error words carrying repr()
        parts.append(f"O:{operand!r}")


def _feed_instruction(parts: List[str], ins) -> None:
    parts.append(f"I:{ins.op.name}")
    _feed_operand(parts, ins.dest)
    parts.append(str(len(ins.srcs)))
    for src in ins.srcs:
        _feed_operand(parts, src)
    _feed_operand(parts, ins.array)
    parts.append(repr(ins.callee))
    chain = getattr(ins, "parts", None)
    if chain is not None:
        parts.append(f"chain:{len(chain)}")
        for part in chain:
            _feed_instruction(parts, part)


def module_digest(module) -> str:
    """Content hash of everything the lowered/generated forms depend on.

    Uid-invariant and process-invariant: the same mini-C source compiled
    in two different processes (or the same process twice) digests
    identically, while any structural difference — an extra node, a
    rewritten operand, a different successor order — changes the key.
    Mirrors the coverage of the in-memory structural signature
    (:func:`repro.sim.engine._iter_signature`) with instruction
    *identity* replaced by instruction *content*.
    """
    parts: List[str] = ["G:" + ",".join(sorted(module.global_arrays))]
    for name, graph in module.graphs.items():
        parts.append(f"F:{name}:{graph.entry!r}")
        parts.append(f"P:{len(graph.params)}")
        for param in graph.params:
            _feed_operand(parts, param)
        parts.append(f"L:{len(graph.local_arrays)}")
        for symbol in graph.local_arrays:
            _feed_operand(parts, symbol)
        for nid, node in graph.nodes.items():
            parts.append(f"N:{nid}:{','.join(map(str, node.succs))}")
            for ins in node.ops:
                _feed_instruction(parts, ins)
            parts.append("ctl")
            if node.control is not None:
                _feed_instruction(parts, node.control)
    h = hashlib.sha256()
    h.update("\x00".join(parts).encode("utf-8", "backslashreplace"))
    return h.hexdigest()


# -- the store ---------------------------------------------------------------------


class DiskCache:
    """One cache directory plus this process's hit/miss accounting.

    ``hits`` / ``misses`` / ``stores`` / ``corrupt`` are
    :class:`collections.Counter` objects keyed by entry kind
    (``"bytecode"`` / ``"codegen"`` / ``"lanes"``); tests and the
    exploration
    benchmarks read them to assert that warm runs actually skipped
    lowering and generation.
    """

    def __init__(self, root: Path):
        self.root = Path(root)
        self.hits: Counter = Counter()
        self.misses: Counter = Counter()
        self.stores: Counter = Counter()
        self.corrupt: Counter = Counter()
        self.failures: Counter = Counter()  # stores that could not land
        self.rejected: Counter = Counter()  # verify-on-load refusals
        #: ``(kind, digest)`` pairs whose payloads already passed the
        #: verify-on-load gate this process.  The digest keys the entry
        #: file, so a re-load serves the same bytes — re-checking them
        #: would only re-derive the same verdict.
        self.verified: set = set()

    # -- paths ---------------------------------------------------------------------

    @property
    def entry_dir(self) -> Path:
        return self.root / f"v{FORMAT_VERSION}" / \
            f"{_CACHE_TAG}-{_source_token()}"

    def entry_path(self, kind: str, digest: str) -> Path:
        return self.entry_dir / f"{digest}.{kind}.pkl"

    # -- read / write --------------------------------------------------------------

    def load(self, kind: str, digest: str):
        """The stored payload, or ``None`` on any kind of miss.

        A malformed entry — truncated write, foreign file, stale class
        layout, header mismatch — is treated exactly like an absent one
        (counted under ``corrupt``); the caller regenerates and the
        normal store path rewrites it.
        """
        path = self.entry_path(kind, digest)
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
            if (entry.get("version"), entry.get("kind"),
                    entry.get("digest")) != (FORMAT_VERSION, kind, digest):
                raise ValueError("cache entry header mismatch")
            payload = entry["payload"]
        except FileNotFoundError:
            self.misses[kind] += 1
            return None
        except Exception:
            self.corrupt[kind] += 1
            self.misses[kind] += 1
            return None
        self.hits[kind] += 1
        return payload

    def unusable(self, kind: str) -> None:
        """Reclassify the most recent hit as a corrupt miss.

        Called by a consumer whose entry unpickled cleanly but failed
        reconstruction (stale class layout), so the hit counters only
        ever count entries that were actually *served* — assertions on
        them stay meaningful.
        """
        self.hits[kind] -= 1
        self.misses[kind] += 1
        self.corrupt[kind] += 1

    def reject(self, kind: str) -> None:
        """Reclassify the most recent hit as a verification refusal.

        The verify-on-load gate (:data:`VERIFY_ENV_VAR`) calls this when
        an entry unpickled cleanly but its payload violates a static
        invariant; like :meth:`unusable`, the hit becomes a miss and the
        caller regenerates.
        """
        self.hits[kind] -= 1
        self.misses[kind] += 1
        self.rejected[kind] += 1

    def store(self, kind: str, digest: str, payload) -> bool:
        """Atomically publish *payload*; never raises.

        The entry is serialized first, written to a process-unique
        temporary file in the entry directory and renamed into place
        (:func:`os.replace`), so concurrent writers of one key — two
        pool workers compiling the same benchmark — each publish a
        complete entry and the survivor is valid either way.
        """
        try:
            blob = pickle.dumps(
                {"version": FORMAT_VERSION, "kind": kind, "digest": digest,
                 "payload": payload},
                protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            self.failures[kind] += 1
            return False
        path = self.entry_path(kind, digest)
        try:
            self.entry_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=f".{digest[:12]}.", suffix=".tmp",
                dir=str(self.entry_dir))
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            self.failures[kind] += 1
            return False
        self.stores[kind] += 1
        return True

    # -- inspection ----------------------------------------------------------------

    def _version_dirs(self) -> List[Path]:
        """The cache's own ``v<digits>`` layout directories — and only
        those, so a cache root pointed at a shared directory never
        exposes unrelated children (``vendor/``, ``venv/``, …) to
        iteration or, worse, to :meth:`clear`."""
        if not self.root.is_dir():
            return []
        return sorted(path for path in self.root.glob("v*")
                      if path.is_dir() and path.name[1:].isdigit())

    def entries(self) -> Iterator[Tuple[str, Path]]:
        """``(kind, path)`` for every entry file of any version/tag."""
        for version_dir in self._version_dirs():
            for path in sorted(version_dir.rglob("*.pkl")):
                stem = path.name[:-len(".pkl")]
                kind = stem.rsplit(".", 1)[1] if "." in stem else "?"
                yield kind, path

    def clear(self) -> int:
        """Delete every entry (all versions/tags); returns files removed.

        Only the cache's own version directories are touched; anything
        else living under the root is left alone.
        """
        import shutil
        removed = sum(1 for _ in self.entries())
        for version_dir in self._version_dirs():
            shutil.rmtree(version_dir, ignore_errors=True)
        return removed


# -- the process-wide handle -------------------------------------------------------

_active: Optional[Tuple[Path, DiskCache]] = None


def get_cache() -> Optional[DiskCache]:
    """The process's cache handle for the currently-resolved root.

    ``None`` when the tier is disabled.  The handle (and its counters)
    is stable while the resolved root stays the same; repointing
    ``REPRO_CACHE`` mid-process — tests do — swaps in a fresh handle.
    """
    global _active
    root = resolve_cache_root()
    if root is None:
        return None
    if _active is None or _active[0] != root:
        _active = (root, DiskCache(root))
    return _active[1]


def reset_cache_state() -> None:
    """Drop the process-wide handle (tests; counters start over)."""
    global _active
    _active = None


def verify_on_load() -> bool:
    """Whether the verify-on-load gate (:data:`VERIFY_ENV_VAR`) is on."""
    value = os.environ.get(VERIFY_ENV_VAR, "")
    return value.strip().lower() in ("1", "true", "on", "yes")
