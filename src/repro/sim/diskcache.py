"""The on-disk compile-artifact cache (the cold-start tier).

The in-memory caches (`compile_module` / `lower_module` /
`generate_module`) make *repeated* runs of one module cheap, but they
die with the process: every fresh CLI invocation and every pool worker
re-lowers and re-generates from scratch.  This module adds the tier
below them — a small content-addressed store on disk holding the
bytecode tier's lowered words and the codegen tier's generated source,
so a cold process whose module was ever compiled before skips the
lowering walk and the source emission entirely.

Keying.  Entries are addressed by :func:`module_digest`, a SHA-256 over
a canonical serialization of everything the lowered form depends on —
graph names, entry nodes, parameters, local arrays, node ids, successor
lists, and every instruction's opcode and operands — deliberately
*excluding* process-local instruction uids, so two processes compiling
the same source reach the same key.  The engine kind ("bytecode" / "codegen" / "lanes" —
lane entries additionally suffix the digest with the lane count, since
their generated source is width-specialized), the cache
:data:`FORMAT_VERSION` and the interpreter's
``cache_tag`` (the codegen entry embeds a marshalled code object, which
is CPython-version-specific) all partition the namespace: any mismatch
is a plain miss, never a crash.

Robustness rules, pinned by ``tests/test_diskcache.py``:

* **corruption-tolerant reads** — a truncated, garbled or
  wrong-versioned entry is ignored (counted, then rewritten by the
  normal store path); no cache state can make a run fail;
* **atomic writes** — entries are written to a unique temporary file
  and published with :func:`os.replace`, so two pool workers racing on
  one key both leave a complete entry behind;
* **strictly optional** — ``REPRO_CACHE=none`` (or ``--cache-dir
  none``) disables the tier; results are bit-identical either way,
  only cold-start wall time changes.

Location resolution: ``--cache-dir`` (exported to ``REPRO_CACHE`` so
pool workers inherit it) > ``REPRO_CACHE`` > ``~/.cache/repro`` (under
``XDG_CACHE_HOME`` when set).  ``python -m repro cache show|clear``
inspects and empties the store.

Two later additions share the same store:

* **the whole-result tier** (kind :data:`RESULT_KIND`, opt-in via
  :data:`RESULT_ENV_VAR`) — ``run_study`` / ``run_exploration_study`` /
  ``run_frontier_study`` persist their *complete* results keyed by
  request shape plus :func:`result_source_token`, so a repeat query —
  from the serve daemon or a warm CLI run — is a disk read, not a
  simulation;
* **size-capped LRU eviction** (:data:`MAX_MB_ENV_VAR`) — every store
  under a configured cap triggers :meth:`DiskCache.evict_to_cap`, which
  sweeps orphaned atomic-write temporaries, then removes the
  least-recently-used unpinned entries until the store fits.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import tempfile
import time
from collections import Counter
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from repro.errors import ReproError
from repro.ir.values import ArraySymbol, Constant, VirtualReg

#: Environment variable naming the cache directory (``none`` disables).
CACHE_ENV_VAR = "REPRO_CACHE"

#: When set truthy, every payload served from disk is statically verified
#: against the module before use (see :mod:`repro.analysis`); a payload
#: that fails verification is treated as a miss, counted under
#: ``rejected``, and regenerated — exactly the corruption path.
VERIFY_ENV_VAR = "REPRO_VERIFY"

#: Size cap for the store in megabytes (fractional values allowed).
#: Unset or empty means uncapped; with a cap, every store triggers a
#: size-capped LRU eviction pass (:meth:`DiskCache.evict_to_cap`).
MAX_MB_ENV_VAR = "REPRO_CACHE_MAX_MB"

#: When set truthy, the whole-result tier is active: the ``run_study``
#: family stores complete evaluation results under kind
#: :data:`RESULT_KIND` and answers repeat queries from disk.  Off by
#: default — whole results are far larger than compile artifacts, and
#: the tier would short-circuit any suite that re-runs one config on
#: purpose; the serve daemon turns it on for its own process.
RESULT_ENV_VAR = "REPRO_RESULT_CACHE"

#: Entry kind of the whole-result tier.
RESULT_KIND = "result"

#: Orphaned ``.*.tmp`` files older than this many seconds are deleted
#: by eviction scans (a crashed writer's leftovers); younger ones are
#: presumed to belong to a still-racing writer and left alone.
TMP_SWEEP_AGE_SECONDS = 3600.0

#: The value of :data:`CACHE_ENV_VAR` (or ``--cache-dir``) that disables
#: the disk tier entirely.
DISABLE_VALUE = "none"

#: Bumped whenever the entry payload layout changes; older entries
#: become plain misses.
#: v2: codegen/lanes payloads gained the ``"bounds"`` proof-certificate
#: entry (guard-eliminated loads + premises); v1 entries predate it.
FORMAT_VERSION = 2

#: Marshalled code objects are interpreter-specific; the tag partitions
#: entries per CPython version (e.g. ``cpython-311``).
_CACHE_TAG = getattr(sys.implementation, "cache_tag", None) or \
    "py%d%d" % sys.version_info[:2]

_source_token_cache: Optional[str] = None


def _source_token() -> str:
    """A short hash over the compiler sources entries depend on.

    Lowered words embed raw opcode numbers (assigned by a counter in
    ``engine.py``) and the codegen entry embeds generated source — both
    are artifacts of the *current* compiler code, not just the module
    structure.  Folding a digest of the engine/bytecode/codegen sources
    into the entry namespace turns any edit to them (an inserted
    opcode, a changed emitter) into plain misses, instead of relying on
    a hand-maintained :data:`FORMAT_VERSION` bump to avoid silently
    executing stale entries.
    """
    global _source_token_cache
    if _source_token_cache is None:
        h = hashlib.sha256()
        try:
            from repro.analysis import ranges
            from repro.sim import bytecode, codegen, engine, lanes
            for mod in (engine, bytecode, codegen, lanes, ranges):
                with open(mod.__file__, "rb") as fh:
                    h.update(fh.read())
            _source_token_cache = h.hexdigest()[:12]
        except Exception:  # pragma: no cover - source not readable
            _source_token_cache = "src"
    return _source_token_cache


_result_token_cache: Optional[str] = None


def result_source_token() -> str:
    """A short hash over every source a whole evaluation depends on.

    Whole results fold in the front end, the optimizer, pattern
    detection, the cost model and all five engines — far more than the
    engine/codegen sources :func:`_source_token` covers — so the result
    tier keys over a digest of the entire ``repro`` package: any source
    edit turns stored results into plain misses instead of ever serving
    a stale evaluation.
    """
    global _result_token_cache
    if _result_token_cache is None:
        h = hashlib.sha256()
        try:
            package_root = Path(__file__).resolve().parent.parent
            for path in sorted(package_root.rglob("*.py")):
                h.update(str(path.relative_to(package_root)).encode())
                h.update(path.read_bytes())
            _result_token_cache = h.hexdigest()[:16]
        except Exception:  # pragma: no cover - source not readable
            _result_token_cache = "resultsrc"
    return _result_token_cache


def result_cache_enabled() -> bool:
    """Whether the whole-result tier (:data:`RESULT_ENV_VAR`) is on."""
    value = os.environ.get(RESULT_ENV_VAR, "")
    return value.strip().lower() in ("1", "true", "on", "yes")


def resolve_max_bytes(strict: bool = False) -> Optional[int]:
    """The size cap in bytes from :data:`MAX_MB_ENV_VAR`, or ``None``.

    On the hot path a malformed or non-positive value means "no cap" —
    :meth:`DiskCache.store` must never raise.  ``strict=True`` (used by
    ``repro cache show`` and the serve status endpoint) raises
    :class:`~repro.errors.ReproError` instead, so a typo in the knob is
    diagnosable rather than silently uncapped.
    """
    raw = os.environ.get(MAX_MB_ENV_VAR)
    if raw is None or not raw.strip():
        return None
    try:
        mb = float(raw)
    except ValueError:
        if strict:
            raise ReproError(
                f"invalid {MAX_MB_ENV_VAR}={raw!r} (expected a number "
                f"of megabytes)")
        return None
    if mb <= 0:
        if strict:
            raise ReproError(f"{MAX_MB_ENV_VAR} must be > 0, got {raw!r}")
        return None
    return int(mb * 1024 * 1024)


def default_cache_root() -> Path:
    """``$XDG_CACHE_HOME/repro`` or ``~/.cache/repro``."""
    base = os.environ.get("XDG_CACHE_HOME")
    if base:
        return Path(base).expanduser() / "repro"
    return Path.home() / ".cache" / "repro"


def resolve_cache_root() -> Optional[Path]:
    """The directory the disk tier should use, or ``None`` when disabled.

    Consulted on every :func:`get_cache` call, so tests (and the CLI's
    ``--cache-dir``, which writes :data:`CACHE_ENV_VAR` so pool workers
    inherit the choice) can repoint or disable the tier at any time.
    """
    raw = os.environ.get(CACHE_ENV_VAR)
    if raw is None:
        return default_cache_root()
    raw = raw.strip()
    if not raw or raw.lower() == DISABLE_VALUE:
        return None
    return Path(raw).expanduser()


def set_cache_dir(value: Optional[str]) -> None:
    """Point the disk tier at *value* (``'none'``/``None`` disables).

    Writes :data:`CACHE_ENV_VAR` rather than process-local state so
    worker processes spawned later inherit the same setting.
    """
    os.environ[CACHE_ENV_VAR] = DISABLE_VALUE if value is None \
        else str(value)


# -- the structural digest ---------------------------------------------------------


def _feed_operand(parts: List[str], operand) -> None:
    if isinstance(operand, VirtualReg):
        parts.append(f"R{operand.is_float:d}:{operand.name}")
    elif isinstance(operand, Constant):
        parts.append(f"C{operand.is_float:d}:{operand.value!r}")
    elif isinstance(operand, ArraySymbol):
        parts.append(f"A{operand.is_float:d}{operand.is_global:d}:"
                     f"{operand.name}:{operand.size}")
    elif operand is None:
        parts.append("_")
    else:  # unreadable operands lower to error words carrying repr()
        parts.append(f"O:{operand!r}")


def _feed_instruction(parts: List[str], ins) -> None:
    parts.append(f"I:{ins.op.name}")
    _feed_operand(parts, ins.dest)
    parts.append(str(len(ins.srcs)))
    for src in ins.srcs:
        _feed_operand(parts, src)
    _feed_operand(parts, ins.array)
    parts.append(repr(ins.callee))
    chain = getattr(ins, "parts", None)
    if chain is not None:
        parts.append(f"chain:{len(chain)}")
        for part in chain:
            _feed_instruction(parts, part)


def module_digest(module) -> str:
    """Content hash of everything the lowered/generated forms depend on.

    Uid-invariant and process-invariant: the same mini-C source compiled
    in two different processes (or the same process twice) digests
    identically, while any structural difference — an extra node, a
    rewritten operand, a different successor order — changes the key.
    Mirrors the coverage of the in-memory structural signature
    (:func:`repro.sim.engine._iter_signature`) with instruction
    *identity* replaced by instruction *content*.
    """
    parts: List[str] = ["G:" + ",".join(sorted(module.global_arrays))]
    for name, graph in module.graphs.items():
        parts.append(f"F:{name}:{graph.entry!r}")
        parts.append(f"P:{len(graph.params)}")
        for param in graph.params:
            _feed_operand(parts, param)
        parts.append(f"L:{len(graph.local_arrays)}")
        for symbol in graph.local_arrays:
            _feed_operand(parts, symbol)
        for nid, node in graph.nodes.items():
            parts.append(f"N:{nid}:{','.join(map(str, node.succs))}")
            for ins in node.ops:
                _feed_instruction(parts, ins)
            parts.append("ctl")
            if node.control is not None:
                _feed_instruction(parts, node.control)
    h = hashlib.sha256()
    h.update("\x00".join(parts).encode("utf-8", "backslashreplace"))
    return h.hexdigest()


# -- the store ---------------------------------------------------------------------


class DiskCache:
    """One cache directory plus this process's hit/miss accounting.

    ``hits`` / ``misses`` / ``stores`` / ``corrupt`` are
    :class:`collections.Counter` objects keyed by entry kind
    (``"bytecode"`` / ``"codegen"`` / ``"lanes"``); tests and the
    exploration
    benchmarks read them to assert that warm runs actually skipped
    lowering and generation.
    """

    def __init__(self, root: Path):
        self.root = Path(root)
        self.hits: Counter = Counter()
        self.misses: Counter = Counter()
        self.stores: Counter = Counter()
        self.corrupt: Counter = Counter()
        self.failures: Counter = Counter()  # stores that could not land
        self.rejected: Counter = Counter()  # verify-on-load refusals
        self.evictions: Counter = Counter()  # entries removed by the cap
        self.evicted_bytes: Counter = Counter()
        self.bytes_read: Counter = Counter()  # entry bytes served on hits
        self.bytes_written: Counter = Counter()  # entry bytes published
        #: wall-clock accounting per operation class — ``op_count`` and
        #: ``op_seconds`` are keyed ``"hit"`` / ``"miss"`` / ``"store"``
        #: / ``"evict"``; ``repro cache show`` and the serve status
        #: endpoint derive per-op averages from them.
        self.op_count: Counter = Counter()
        self.op_seconds: Counter = Counter()
        #: orphaned atomic-write temporaries reaped so far (see
        #: :meth:`sweep_stale_tmp`).
        self.tmp_swept = 0
        #: refcounts of ``(kind, digest)`` entries live requests hold;
        #: the serve daemon pins a result key for the duration of its
        #: evaluation so the eviction pass never removes it mid-request.
        self._pins: Counter = Counter()
        #: ``(kind, digest)`` pairs whose payloads already passed the
        #: verify-on-load gate this process.  The digest keys the entry
        #: file, so a re-load serves the same bytes — re-checking them
        #: would only re-derive the same verdict.
        self.verified: set = set()

    def _account(self, op: str, started: float) -> None:
        self.op_count[op] += 1
        self.op_seconds[op] += time.perf_counter() - started

    # -- paths ---------------------------------------------------------------------

    @property
    def entry_dir(self) -> Path:
        return self.root / f"v{FORMAT_VERSION}" / \
            f"{_CACHE_TAG}-{_source_token()}"

    def entry_path(self, kind: str, digest: str) -> Path:
        return self.entry_dir / f"{digest}.{kind}.pkl"

    # -- read / write --------------------------------------------------------------

    def load(self, kind: str, digest: str):
        """The stored payload, or ``None`` on any kind of miss.

        A malformed entry — truncated write, foreign file, stale class
        layout, header mismatch — is treated exactly like an absent one
        (counted under ``corrupt``); the caller regenerates and the
        normal store path rewrites it.  A hit bumps the entry's access
        time, which is what the LRU eviction pass ranks by.
        """
        started = time.perf_counter()
        path = self.entry_path(kind, digest)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
            entry = pickle.loads(blob)
            if (entry.get("version"), entry.get("kind"),
                    entry.get("digest")) != (FORMAT_VERSION, kind, digest):
                raise ValueError("cache entry header mismatch")
            payload = entry["payload"]
        except FileNotFoundError:
            self.misses[kind] += 1
            self._account("miss", started)
            return None
        except Exception:
            self.corrupt[kind] += 1
            self.misses[kind] += 1
            self._account("miss", started)
            return None
        self.hits[kind] += 1
        self.bytes_read[kind] += len(blob)
        self._touch(path)
        self._account("hit", started)
        return payload

    @staticmethod
    def _touch(path: Path) -> None:
        # Recency for the eviction pass.  Bumped explicitly rather than
        # trusting the kernel's bookkeeping (relatime/noatime mounts),
        # and atime-only: mtime stays the publish timestamp.
        try:
            stat = path.stat()
            os.utime(path, ns=(time.time_ns(), stat.st_mtime_ns))
        except OSError:  # pragma: no cover - entry raced away
            pass

    def _reclassify(self, kind: str, into: Counter) -> bool:
        # Guarded: with no hit on record — a double call, or a call on a
        # handle that never served one because get_cache() swapped
        # handles when REPRO_CACHE was repointed mid-operation — the
        # counters are left alone instead of being driven negative.
        if self.hits[kind] <= 0:
            return False
        self.hits[kind] -= 1
        self.misses[kind] += 1
        into[kind] += 1
        return True

    def unusable(self, kind: str) -> bool:
        """Reclassify the most recent hit as a corrupt miss.

        Called by a consumer whose entry unpickled cleanly but failed
        reconstruction (stale class layout), so the hit counters only
        ever count entries that were actually *served* — assertions on
        them stay meaningful.  Returns whether a hit was actually
        reclassified; with none on record this is a counted no-op.
        """
        return self._reclassify(kind, self.corrupt)

    def reject(self, kind: str) -> bool:
        """Reclassify the most recent hit as a verification refusal.

        The verify-on-load gate (:data:`VERIFY_ENV_VAR`) calls this when
        an entry unpickled cleanly but its payload violates a static
        invariant; like :meth:`unusable`, the hit becomes a miss and the
        caller regenerates.  Returns whether a hit was reclassified.
        """
        return self._reclassify(kind, self.rejected)

    def store(self, kind: str, digest: str, payload) -> bool:
        """Atomically publish *payload*; never raises.

        The entry is serialized first, written to a process-unique
        temporary file in the entry directory and renamed into place
        (:func:`os.replace`), so concurrent writers of one key — two
        pool workers compiling the same benchmark — each publish a
        complete entry and the survivor is valid either way.

        With :data:`MAX_MB_ENV_VAR` configured, a landed store triggers
        an LRU eviction pass so the store never outgrows the cap.
        """
        started = time.perf_counter()
        try:
            blob = pickle.dumps(
                {"version": FORMAT_VERSION, "kind": kind, "digest": digest,
                 "payload": payload},
                protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            self.failures[kind] += 1
            return False
        path = self.entry_path(kind, digest)
        try:
            self.entry_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=f".{digest[:12]}.", suffix=".tmp",
                dir=str(self.entry_dir))
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            self.failures[kind] += 1
            return False
        self.stores[kind] += 1
        self.bytes_written[kind] += len(blob)
        self._account("store", started)
        if resolve_max_bytes() is not None:
            self.evict_to_cap()
        return True

    # -- pinning / eviction --------------------------------------------------------

    def pin(self, kind: str, digest: str) -> None:
        """Shield an entry from eviction while a live request needs it.

        Refcounted: concurrent requests over the same key pin and unpin
        independently; the entry becomes evictable only when the last
        holder lets go.
        """
        self._pins[(kind, digest)] += 1

    def unpin(self, kind: str, digest: str) -> None:
        """Release one :meth:`pin` hold on an entry."""
        remaining = self._pins[(kind, digest)] - 1
        if remaining > 0:
            self._pins[(kind, digest)] = remaining
        else:
            self._pins.pop((kind, digest), None)

    def is_pinned(self, kind: str, digest: str) -> bool:
        return self._pins[(kind, digest)] > 0

    def sweep_stale_tmp(
            self, max_age: float = TMP_SWEEP_AGE_SECONDS) -> int:
        """Delete orphaned atomic-write temporaries; returns the count.

        A writer that died between ``mkstemp`` and ``os.replace`` leaves
        its ``.*.tmp`` file behind forever — nothing else ever touches
        it again.  The age gate keeps racing *live* writers safe: files
        younger than *max_age* seconds are presumed in flight.
        """
        now = time.time()
        swept = 0
        for path in self.tmp_files():
            try:
                if now - path.stat().st_mtime < max_age:
                    continue
                path.unlink()
            except OSError:
                continue
            swept += 1
        self.tmp_swept += swept
        return swept

    def evict_to_cap(self, max_bytes: Optional[int] = None) -> int:
        """Bring the store under the size cap; returns entries evicted.

        Least-recently-used first, where recency is the later of the
        entry's access time (bumped by :meth:`load` on every hit) and
        its publish mtime; ties break on the entry file name so the
        order is deterministic.  Pinned entries — keys a live request
        holds (:meth:`pin`) — are never evicted regardless of age.
        Orphaned temporaries are swept first so a crashed writer's
        leftovers never crowd out real entries.  Never raises; with no
        cap configured (and no explicit *max_bytes*) this is a no-op.
        """
        if max_bytes is None:
            max_bytes = resolve_max_bytes()
        if max_bytes is None:
            return 0
        started = time.perf_counter()
        self.sweep_stale_tmp()
        ranked = []
        total = 0
        for kind, path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            digest = path.name[:-len(".pkl")].rsplit(".", 1)[0]
            ranked.append((max(stat.st_atime, stat.st_mtime), path.name,
                           stat.st_size, kind, digest, path))
            total += stat.st_size
        evicted = 0
        for _recency, _name, size, kind, digest, path in sorted(ranked):
            if total <= max_bytes:
                break
            if self.is_pinned(kind, digest):
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self.evictions[kind] += 1
            self.evicted_bytes[kind] += size
            evicted += 1
        self._account("evict", started)
        return evicted

    # -- inspection ----------------------------------------------------------------

    def _version_dirs(self) -> List[Path]:
        """The cache's own ``v<digits>`` layout directories — and only
        those, so a cache root pointed at a shared directory never
        exposes unrelated children (``vendor/``, ``venv/``, …) to
        iteration or, worse, to :meth:`clear`."""
        if not self.root.is_dir():
            return []
        return sorted(path for path in self.root.glob("v*")
                      if path.is_dir() and path.name[1:].isdigit())

    def entries(self) -> Iterator[Tuple[str, Path]]:
        """``(kind, path)`` for every entry file of any version/tag."""
        for version_dir in self._version_dirs():
            for path in sorted(version_dir.rglob("*.pkl")):
                stem = path.name[:-len(".pkl")]
                kind = stem.rsplit(".", 1)[1] if "." in stem else "?"
                yield kind, path

    def tmp_files(self) -> List[Path]:
        """Leftover atomic-write temporaries of any version/tag."""
        found: List[Path] = []
        for version_dir in self._version_dirs():
            found.extend(sorted(version_dir.rglob("*.tmp")))
        return found

    def total_bytes(self) -> int:
        """Bytes currently occupied by entry files (tmp files excluded)."""
        total = 0
        for _kind, path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def stats_snapshot(self) -> dict:
        """This process's counters as one JSON-able dict.

        The serve daemon's status endpoint ships this verbatim; tests
        use it to assert that no counter ever goes negative.
        """
        kinds = sorted(set().union(
            self.hits, self.misses, self.stores, self.corrupt,
            self.failures, self.rejected, self.evictions))
        return {
            "root": str(self.root),
            "kinds": {kind: {
                "hits": self.hits[kind],
                "misses": self.misses[kind],
                "stores": self.stores[kind],
                "corrupt": self.corrupt[kind],
                "rejected": self.rejected[kind],
                "store_failures": self.failures[kind],
                "evictions": self.evictions[kind],
                "evicted_bytes": self.evicted_bytes[kind],
                "bytes_read": self.bytes_read[kind],
                "bytes_written": self.bytes_written[kind],
            } for kind in kinds},
            "ops": {op: {"count": self.op_count[op],
                         "seconds": self.op_seconds[op]}
                    for op in sorted(self.op_count)},
            "tmp_swept": self.tmp_swept,
            "pinned": len(self._pins),
        }

    def clear(self) -> int:
        """Delete every entry (all versions/tags); returns files removed.

        Only the cache's own version directories are touched; anything
        else living under the root is left alone.  Orphaned atomic-write
        temporaries go with their directories and are counted too — a
        full clear is the other place (besides eviction scans) where a
        crashed writer's leftovers get reaped.
        """
        import shutil
        removed = sum(1 for _ in self.entries())
        stale = len(self.tmp_files())
        for version_dir in self._version_dirs():
            shutil.rmtree(version_dir, ignore_errors=True)
        self.tmp_swept += stale
        return removed + stale


# -- the process-wide handle -------------------------------------------------------

_active: Optional[Tuple[Path, DiskCache]] = None


def get_cache() -> Optional[DiskCache]:
    """The process's cache handle for the currently-resolved root.

    ``None`` when the tier is disabled.  The handle (and its counters)
    is stable while the resolved root stays the same; repointing
    ``REPRO_CACHE`` mid-process — tests do — swaps in a fresh handle.
    """
    global _active
    root = resolve_cache_root()
    if root is None:
        return None
    if _active is None or _active[0] != root:
        _active = (root, DiskCache(root))
    return _active[1]


def reset_cache_state() -> None:
    """Drop the process-wide handle (tests; counters start over)."""
    global _active
    _active = None


def verify_on_load() -> bool:
    """Whether the verify-on-load gate (:data:`VERIFY_ENV_VAR`) is on."""
    value = os.environ.get(VERIFY_ENV_VAR, "")
    return value.strip().lower() in ("1", "true", "on", "yes")
