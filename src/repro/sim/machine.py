"""The program-graph interpreter.

Executes a :class:`~repro.cfg.graph.GraphModule` under VLIW node semantics:
all operations of a node read their sources at the start of the cycle and
commit their writes at the end.  Because both the sequential level-0 graph
and every optimized graph run on the same engine, the interpreter serves
two roles:

* the paper's *profiler* (Figure 2, step 2) — it fills a
  :class:`~repro.sim.profile.ProfileData` with node and edge counts;
* the reproduction's *semantic oracle* — an optimizer transformation is
  correct only if the optimized graph produces identical outputs.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.cfg.graph import GraphModule, ProgramGraph
from repro.ir.instr import Instruction
from repro.ir.ops import Op
from repro.ir.values import ArraySymbol, Constant, VirtualReg
from repro.sim.memory import ArrayStorage
from repro.sim.profile import ProfileData
from repro.sim.values import (INTRINSIC_IMPL, float_div, int_div, int_mod,
                              shift_left, shift_right)

_MAX_CALL_DEPTH = 200


class MachineResult:
    """Outcome of one simulated run."""

    def __init__(self, return_value, globals_after: Dict[str, List],
                 profile: ProfileData):
        self.return_value = return_value
        self.globals_after = globals_after
        self.profile = profile

    @property
    def cycles(self) -> int:
        return self.profile.total_cycles()

    def array(self, name: str) -> List:
        try:
            return self.globals_after[name]
        except KeyError:
            raise SimulationError(f"no global array named {name!r}")

    def __repr__(self) -> str:
        return (f"<MachineResult ret={self.return_value!r} "
                f"cycles={self.cycles}>")


class _Frame:
    """One activation record."""

    __slots__ = ("regs", "arrays")

    def __init__(self):
        self.regs: Dict[str, object] = {}
        self.arrays: Dict[str, ArrayStorage] = {}


class GraphInterpreter:
    """Executes a graph module on given inputs, collecting a profile."""

    def __init__(self, module: GraphModule, max_cycles: int = 200_000_000):
        self.module = module
        self.max_cycles = max_cycles
        self._cycles = 0
        self.profile = ProfileData()
        self.globals: Dict[str, ArrayStorage] = {}

    # -- public API -----------------------------------------------------------------

    def run(self, inputs: Optional[Dict[str, Sequence]] = None
            ) -> MachineResult:
        """Execute ``main`` with globals bound to *inputs*."""
        self._cycles = 0
        self.profile = ProfileData()
        self.globals = {}
        for name, symbol in self.module.global_arrays.items():
            init = self.module.array_initializers.get(name)
            self.globals[name] = ArrayStorage(symbol, init)
        if inputs:
            for name, values in inputs.items():
                if name not in self.globals:
                    raise SimulationError(
                        f"input {name!r} does not match any global array")
                self.globals[name].fill_from(values)
        entry = self.module.entry
        ret = self._run_graph(entry, [], depth=0)
        snapshot = {name: storage.snapshot()
                    for name, storage in self.globals.items()}
        return MachineResult(ret, snapshot, self.profile)

    # -- execution -------------------------------------------------------------------

    def _run_graph(self, graph: ProgramGraph, args: List, depth: int):
        if depth > _MAX_CALL_DEPTH:
            raise SimulationError(
                f"call depth exceeded in {graph.name!r} (runaway recursion?)")
        self.profile.count_call(graph.name)
        frame = _Frame()
        if len(args) != len(graph.params):
            raise SimulationError(
                f"{graph.name!r} expects {len(graph.params)} arguments, "
                f"got {len(args)}")
        for param, arg in zip(graph.params, args):
            if isinstance(param, VirtualReg):
                frame.regs[param.name] = arg
            else:  # array parameter: bind by reference
                if not isinstance(arg, ArrayStorage):
                    raise SimulationError(
                        f"{graph.name!r}: array parameter {param.name!r} "
                        f"bound to non-array {arg!r}")
                frame.arrays[param.name] = arg
        for arr in graph.local_arrays:
            frame.arrays[arr.name] = ArrayStorage(arr)

        fn_name = graph.name
        nodes = graph.nodes
        nid = graph.entry
        count_node = self.profile.count_node
        count_edge = self.profile.count_edge

        while True:
            self._cycles += 1
            if self._cycles > self.max_cycles:
                raise SimulationError(
                    f"cycle limit ({self.max_cycles}) exceeded; "
                    f"infinite loop in {fn_name!r}?")
            count_node(fn_name, nid)
            node = nodes[nid]

            # --- read phase: evaluate every op against pre-cycle state.
            reg_writes: List = []
            store_writes: List = []
            for ins in node.ops:
                self._execute_op(ins, frame, reg_writes, store_writes, depth)

            control = node.control
            branch_taken: Optional[bool] = None
            ret_value = None
            if control is not None:
                if control.op is Op.BR:
                    branch_taken = self._read(control.srcs[0], frame) != 0
                else:  # RET
                    if control.srcs:
                        ret_value = self._read(control.srcs[0], frame)

            # --- write phase: commit registers then memory.
            for reg_name, value in reg_writes:
                frame.regs[reg_name] = value
            for storage, index, value in store_writes:
                storage.store(index, value)

            # --- control transfer.
            if control is not None and control.op is Op.RET:
                return ret_value
            succs = node.succs
            if control is not None and control.op is Op.BR:
                nxt = succs[0] if branch_taken else succs[1]
            else:
                if len(succs) != 1:
                    raise SimulationError(
                        f"{fn_name}: node {nid} has {len(succs)} successors "
                        f"but no branch")
                nxt = succs[0]
            count_edge(fn_name, nid, nxt)
            nid = nxt

    # -- one operation ---------------------------------------------------------------

    def _read(self, operand, frame: _Frame):
        if isinstance(operand, Constant):
            return operand.value
        if isinstance(operand, VirtualReg):
            try:
                return frame.regs[operand.name]
            except KeyError:
                raise SimulationError(
                    f"read of undefined register {operand.name!r}")
        raise SimulationError(f"cannot read operand {operand!r}")

    def _array(self, ins: Instruction, frame: _Frame) -> ArrayStorage:
        name = ins.array.name
        storage = frame.arrays.get(name)
        if storage is None:
            storage = self.globals.get(name)
        if storage is None:
            raise SimulationError(f"unknown array {name!r}")
        return storage

    def _execute_op(self, ins: Instruction, frame: _Frame,
                    reg_writes: List, store_writes: List,
                    depth: int) -> None:
        op = ins.op
        read = self._read

        if op is Op.ADD:
            value = read(ins.srcs[0], frame) + read(ins.srcs[1], frame)
        elif op is Op.SUB:
            value = read(ins.srcs[0], frame) - read(ins.srcs[1], frame)
        elif op is Op.MUL:
            value = read(ins.srcs[0], frame) * read(ins.srcs[1], frame)
        elif op is Op.DIV:
            value = int_div(read(ins.srcs[0], frame),
                            read(ins.srcs[1], frame))
        elif op is Op.MOD:
            value = int_mod(read(ins.srcs[0], frame),
                            read(ins.srcs[1], frame))
        elif op is Op.NEG:
            value = -read(ins.srcs[0], frame)
        elif op is Op.AND:
            value = read(ins.srcs[0], frame) & read(ins.srcs[1], frame)
        elif op is Op.OR:
            value = read(ins.srcs[0], frame) | read(ins.srcs[1], frame)
        elif op is Op.XOR:
            value = read(ins.srcs[0], frame) ^ read(ins.srcs[1], frame)
        elif op is Op.NOT:
            value = ~read(ins.srcs[0], frame)
        elif op is Op.SHL:
            value = shift_left(read(ins.srcs[0], frame),
                               read(ins.srcs[1], frame))
        elif op is Op.SHR:
            value = shift_right(read(ins.srcs[0], frame),
                                read(ins.srcs[1], frame))
        elif op in (Op.CMPEQ, Op.FCMPEQ):
            value = int(read(ins.srcs[0], frame) == read(ins.srcs[1], frame))
        elif op in (Op.CMPNE, Op.FCMPNE):
            value = int(read(ins.srcs[0], frame) != read(ins.srcs[1], frame))
        elif op in (Op.CMPLT, Op.FCMPLT):
            value = int(read(ins.srcs[0], frame) < read(ins.srcs[1], frame))
        elif op in (Op.CMPLE, Op.FCMPLE):
            value = int(read(ins.srcs[0], frame) <= read(ins.srcs[1], frame))
        elif op in (Op.CMPGT, Op.FCMPGT):
            value = int(read(ins.srcs[0], frame) > read(ins.srcs[1], frame))
        elif op in (Op.CMPGE, Op.FCMPGE):
            value = int(read(ins.srcs[0], frame) >= read(ins.srcs[1], frame))
        elif op is Op.FADD:
            value = read(ins.srcs[0], frame) + read(ins.srcs[1], frame)
        elif op is Op.FSUB:
            value = read(ins.srcs[0], frame) - read(ins.srcs[1], frame)
        elif op is Op.FMUL:
            value = read(ins.srcs[0], frame) * read(ins.srcs[1], frame)
        elif op is Op.FDIV:
            value = float_div(read(ins.srcs[0], frame),
                              read(ins.srcs[1], frame))
        elif op is Op.FNEG:
            value = -read(ins.srcs[0], frame)
        elif op is Op.ITOF:
            value = float(read(ins.srcs[0], frame))
        elif op is Op.FTOI:
            value = int(read(ins.srcs[0], frame))  # C truncation
        elif op in (Op.MOV, Op.FMOV):
            value = read(ins.srcs[0], frame)
        elif op in (Op.LOAD, Op.FLOAD):
            storage = self._array(ins, frame)
            value = storage.load(read(ins.srcs[0], frame))
        elif op in (Op.STORE, Op.FSTORE):
            storage = self._array(ins, frame)
            store_writes.append((storage,
                                 read(ins.srcs[1], frame),
                                 read(ins.srcs[0], frame)))
            return
        elif op is Op.INTRIN:
            impl = INTRINSIC_IMPL.get(ins.callee)
            if impl is None:
                raise SimulationError(f"unknown intrinsic {ins.callee!r}")
            value = impl(*(read(s, frame) for s in ins.srcs))
        elif op is Op.CALL:
            value = self._execute_call(ins, frame, depth)
            if ins.dest is None:
                return
        elif op is Op.CHAIN:
            # A fused chained instruction: its parts execute back-to-back
            # with operand forwarding, atomically within this node's cycle.
            for part in ins.parts:
                part_regs: List = []
                part_stores: List = []
                self._execute_op(part, frame, part_regs, part_stores, depth)
                for reg_name, v in part_regs:
                    frame.regs[reg_name] = v
                for storage, index, v in part_stores:
                    storage.store(index, v)
            return
        elif op is Op.NOP:
            return
        else:  # pragma: no cover
            raise SimulationError(f"cannot execute {ins}")

        if ins.dest is not None:
            reg_writes.append((ins.dest.name, value))

    def _execute_call(self, ins: Instruction, frame: _Frame, depth: int):
        callee = self.module.graphs.get(ins.callee)
        if callee is None:
            raise SimulationError(f"call to unknown function {ins.callee!r}")
        args: List = []
        for src in ins.srcs:
            if isinstance(src, ArraySymbol):
                storage = frame.arrays.get(src.name) \
                    or self.globals.get(src.name)
                if storage is None:
                    raise SimulationError(
                        f"array argument {src.name!r} is not bound")
                args.append(storage)
            else:
                args.append(self._read(src, frame))
        return self._run_graph(callee, args, depth + 1)


#: Engines ``run_module`` can dispatch to.  ``"compiled"`` is the
#: closure-specialized engine (:mod:`repro.sim.engine`); ``"bytecode"``
#: lowers the compiled graphs further to flat opcode/operand arrays run by
#: one dispatch loop (:mod:`repro.sim.bytecode`); ``"codegen"`` walks the
#: lowered words and exec-compiles specialized Python source per graph
#: (:mod:`repro.sim.codegen`); ``"lanes"`` exec-compiles a lane-parallel
#: form that executes every seed of a batch in one pass
#: (:mod:`repro.sim.lanes`); ``"reference"`` is the tree-walking
#: :class:`GraphInterpreter`, kept as the semantic oracle the other
#: engines are differentially tested against.
ENGINES = ("compiled", "bytecode", "codegen", "lanes", "reference")

#: Environment variable overriding the default engine (CI runs the whole
#: tier-1 suite under ``REPRO_ENGINE=bytecode``).
ENGINE_ENV_VAR = "REPRO_ENGINE"


def _default_engine() -> str:
    """The engine ``REPRO_ENGINE`` selects, or ``"compiled"``.

    An invalid value is returned as-is rather than raised here: it
    surfaces as a clean "unknown engine" error (naming the variable) on
    the first simulation, inside the CLI's normal error handling,
    instead of as an import-time traceback.
    """
    value = os.environ.get(ENGINE_ENV_VAR)
    if value is None or not value.strip():
        return "compiled"
    return value.strip()


#: Resolved once at import: the engine every unpinned simulation uses.
#: (Like any default argument it is frozen at import time — CI sets
#: ``REPRO_ENGINE`` before launching the process.)
DEFAULT_ENGINE = _default_engine()


def _unknown_engine(engine: str) -> SimulationError:
    message = f"unknown engine {engine!r} (expected one of {ENGINES})"
    if os.environ.get(ENGINE_ENV_VAR, "").strip() == engine:
        message += f"; set via {ENGINE_ENV_VAR}"
    return SimulationError(message)


def ensure_engine(engine: str) -> str:
    """Validate an engine name *before* any expensive work starts.

    Entry points that fan out (the study executor, the exploration loop)
    call this up front so a typo'd ``--engine`` / ``REPRO_ENGINE`` value
    raises one clean, source-attributed error instead of failing deep
    inside a worker process mid-run.
    """
    if engine not in ENGINES:
        raise _unknown_engine(engine)
    return engine


def run_module(module: GraphModule,
               inputs: Optional[Dict[str, Sequence]] = None,
               max_cycles: int = 200_000_000,
               engine: str = DEFAULT_ENGINE) -> MachineResult:
    """Simulate *module* once on the selected *engine*.

    Every engine produces bit-identical :class:`MachineResult`\\ s (return
    value, memory state and profile); the compiled and bytecode engines
    cache their compiled/lowered forms on the module, so repeated runs —
    the exploration loop, the study matrix — only pay compilation once.
    """
    if engine == "compiled":
        from repro.sim.engine import CompiledEngine
        return CompiledEngine(module, max_cycles).run(inputs)
    if engine == "bytecode":
        from repro.sim.bytecode import BytecodeEngine
        return BytecodeEngine(module, max_cycles).run(inputs)
    if engine == "codegen":
        from repro.sim.codegen import CodegenEngine
        return CodegenEngine(module, max_cycles).run(inputs)
    if engine == "lanes":
        from repro.sim.lanes import LaneEngine
        return LaneEngine(module, max_cycles).run(inputs)
    if engine == "reference":
        return GraphInterpreter(module, max_cycles).run(inputs)
    raise _unknown_engine(engine)


def run_module_batch(module: GraphModule,
                     inputs_list: Sequence[Optional[Dict[str, Sequence]]],
                     max_cycles: int = 200_000_000,
                     engine: str = DEFAULT_ENGINE) -> List[MachineResult]:
    """Simulate *module* on every input set of *inputs_list*, in order.

    The multi-seed entry point: on the compiled and bytecode engines the
    module is compiled/lowered (and its cache signature validated) once
    for the whole batch rather than once per run, while every run still
    gets fresh globals and a fresh profile.  Results are bit-identical to
    calling :func:`run_module` once per input set, on any engine.
    """
    if engine == "compiled":
        from repro.sim.engine import CompiledEngine
        return CompiledEngine(module, max_cycles).run_batch(inputs_list)
    if engine == "bytecode":
        from repro.sim.bytecode import BytecodeEngine
        return BytecodeEngine(module, max_cycles).run_batch(inputs_list)
    if engine == "codegen":
        from repro.sim.codegen import CodegenEngine
        return CodegenEngine(module, max_cycles).run_batch(inputs_list)
    if engine == "lanes":
        from repro.sim.lanes import LaneEngine
        return LaneEngine(module, max_cycles).run_batch(inputs_list)
    if engine == "reference":
        return [GraphInterpreter(module, max_cycles).run(inputs)
                for inputs in inputs_list]
    raise _unknown_engine(engine)


#: Batch size at which :func:`run_module_batch_auto` upgrades a per-seed
#: engine to one lane-parallel pass.  Below this the lane emitter's
#: width-specialized compile is not reliably amortized.
LANE_SHARD_MIN = 8


def run_module_batch_auto(module: GraphModule,
                          inputs_list:
                          Sequence[Optional[Dict[str, Sequence]]],
                          max_cycles: int = 200_000_000,
                          engine: str = DEFAULT_ENGINE
                          ) -> List[MachineResult]:
    """:func:`run_module_batch`, preferring one lane call on big shards.

    Batches of at least :data:`LANE_SHARD_MIN` seeds on a per-seed
    engine (compiled/bytecode/codegen) are executed as a single
    lane-parallel pass instead — bit-identical results (every engine
    agrees), integer-factor faster.  An explicit ``engine="lanes"``
    stays lanes at any size, and ``"reference"`` is never upgraded: the
    oracle must keep measuring what it is asked to measure.
    """
    if len(inputs_list) >= LANE_SHARD_MIN and \
            engine in ("compiled", "bytecode", "codegen"):
        engine = "lanes"
    return run_module_batch(module, inputs_list, max_cycles, engine)
