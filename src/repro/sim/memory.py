"""Array storage of the simulated machine.

Arrays are the only memory.  Accesses are bounds-checked — an out-of-range
index is a :class:`~repro.errors.SimulationError`, which keeps benchmark bugs
and (more importantly) broken optimizer transformations loud.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import SimulationError
from repro.ir.values import ArraySymbol


class ArrayStorage:
    """Bounds-checked storage backing one :class:`ArraySymbol`."""

    __slots__ = ("name", "size", "is_float", "data")

    def __init__(self, symbol: ArraySymbol,
                 init: Optional[Sequence] = None,
                 size_override: Optional[int] = None):
        self.name = symbol.name
        self.size = size_override if size_override is not None else symbol.size
        self.is_float = symbol.is_float
        fill = 0.0 if self.is_float else 0
        self.data: List = [fill] * self.size
        if init is not None:
            if len(init) > self.size:
                raise SimulationError(
                    f"initializer for {self.name!r} exceeds array size")
            for i, v in enumerate(init):
                self.data[i] = float(v) if self.is_float else int(v)

    def load(self, index: int):
        if not 0 <= index < self.size:
            raise SimulationError(
                f"load out of bounds: {self.name}[{index}] "
                f"(size {self.size})")
        return self.data[index]

    def store(self, index: int, value) -> None:
        if not 0 <= index < self.size:
            raise SimulationError(
                f"store out of bounds: {self.name}[{index}] "
                f"(size {self.size})")
        self.data[index] = float(value) if self.is_float else int(value)

    def snapshot(self) -> List:
        return list(self.data)

    def fill_from(self, values: Sequence) -> None:
        if len(values) > self.size:
            raise SimulationError(
                f"input for {self.name!r} has {len(values)} values; the "
                f"array holds {self.size}")
        for i, v in enumerate(values):
            self.data[i] = float(v) if self.is_float else int(v)

    def __repr__(self) -> str:
        kind = "float" if self.is_float else "int"
        return f"<ArrayStorage {self.name}: {kind}[{self.size}]>"
