"""The compiled execution engine.

:class:`~repro.sim.machine.GraphInterpreter` walks the program graph with a
~30-arm opcode dispatch, ``isinstance`` operand checks and two dict mutations
of profile bookkeeping for every node of every simulated cycle.  This module
removes all of that from the hot loop by *pre-compiling* each graph into
dispatch-free Python closures:

* every :class:`~repro.ir.instr.Instruction` becomes a specialized closure
  with its operand readers resolved at compile time — constants are inlined,
  registers are pre-indexed into a flat list (no name-keyed dicts), array
  storages are late-bound once per frame into a flat slot list;
* every :class:`~repro.cfg.graph.Node` becomes one "step" closure that runs
  its operation closures under the VLIW read/commit semantics and returns the
  index of the control-flow edge it leaves through;
* profile counting becomes flat per-graph integer arrays (``node_hits[i]``,
  ``edge_hits[e]``) folded into a :class:`~repro.sim.profile.ProfileData`
  once at the end of a run via :meth:`ProfileData.merge_arrays`.

The compiled form is cached on the :class:`GraphModule` and invalidated by a
structural signature check, so repeated runs of the same module — the
exploration loop measures every finalist ISA on the same re-sequentialized
base — pay compilation once.

The tree-walking interpreter is kept intact as the *reference* engine (the
semantic oracle); differential tests assert the two produce bit-identical
results, cycle counts included, on the whole DSP suite.
"""

from __future__ import annotations

import operator
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.cfg.graph import GraphModule, Node, ProgramGraph
from repro.ir.instr import Instruction
from repro.ir.ops import Op
from repro.ir.values import ArraySymbol, Constant, VirtualReg
from repro.sim.machine import _MAX_CALL_DEPTH, MachineResult
from repro.sim.memory import ArrayStorage
from repro.sim.profile import ProfileData
from repro.sim.values import (INTRINSIC_IMPL, float_div, int_div, int_mod,
                              shift_left, shift_right)

# -- the undefined-register sentinel ---------------------------------------------
#
# Register slots start out holding _UNDEF.  Any arithmetic, comparison or
# conversion touching it raises SimulationError, mirroring the reference
# interpreter's read-of-undefined-register guard without a per-read check.


class _UndefinedRegister:
    __slots__ = ()

    def __repr__(self) -> str:
        return "<undefined register>"


def _undef_operation(self, *_args):
    raise SimulationError("read of undefined register")


for _name in (
    "__add__", "__radd__", "__sub__", "__rsub__", "__mul__", "__rmul__",
    "__truediv__", "__rtruediv__", "__floordiv__", "__rfloordiv__",
    "__mod__", "__rmod__", "__pow__", "__rpow__", "__neg__", "__pos__",
    "__abs__", "__invert__", "__and__", "__rand__", "__or__", "__ror__",
    "__xor__", "__rxor__", "__lshift__", "__rlshift__", "__rshift__",
    "__rrshift__", "__lt__", "__le__", "__gt__", "__ge__", "__eq__",
    "__ne__", "__bool__", "__int__", "__float__", "__index__",
    "__round__", "__trunc__",
):
    setattr(_UndefinedRegister, _name, _undef_operation)

_UNDEF = _UndefinedRegister()


class _MissingArray:
    """Placeholder bound to an array slot whose name resolves nowhere."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def load(self, _index):
        raise SimulationError(f"unknown array {self.name!r}")

    def store(self, _index, _value):
        raise SimulationError(f"unknown array {self.name!r}")


# -- scalar operation tables ------------------------------------------------------


def _cmp_eq(a, b):
    return int(a == b)


def _cmp_ne(a, b):
    return int(a != b)


def _cmp_lt(a, b):
    return int(a < b)


def _cmp_le(a, b):
    return int(a <= b)


def _cmp_gt(a, b):
    return int(a > b)


def _cmp_ge(a, b):
    return int(a >= b)


_BINARY_FN = {
    Op.ADD: operator.add,
    Op.SUB: operator.sub,
    Op.MUL: operator.mul,
    Op.DIV: int_div,
    Op.MOD: int_mod,
    Op.AND: operator.and_,
    Op.OR: operator.or_,
    Op.XOR: operator.xor,
    Op.SHL: shift_left,
    Op.SHR: shift_right,
    Op.CMPEQ: _cmp_eq, Op.FCMPEQ: _cmp_eq,
    Op.CMPNE: _cmp_ne, Op.FCMPNE: _cmp_ne,
    Op.CMPLT: _cmp_lt, Op.FCMPLT: _cmp_lt,
    Op.CMPLE: _cmp_le, Op.FCMPLE: _cmp_le,
    Op.CMPGT: _cmp_gt, Op.FCMPGT: _cmp_gt,
    Op.CMPGE: _cmp_ge, Op.FCMPGE: _cmp_ge,
    Op.FADD: operator.add,
    Op.FSUB: operator.sub,
    Op.FMUL: operator.mul,
    Op.FDIV: float_div,
}

_UNARY_FN = {
    Op.NEG: operator.neg,
    Op.FNEG: operator.neg,
    Op.NOT: operator.invert,
    Op.ITOF: float,
    Op.FTOI: int,  # C truncation
}


# -- per-run state ----------------------------------------------------------------


class _RunState:
    """Mutable state of one simulated run (shared across call frames)."""

    __slots__ = ("globals", "cyc", "max_cycles", "depth",
                 "node_hits", "edge_hits", "call_counts")

    def __init__(self, globals_: Dict[str, ArrayStorage], max_cycles: int,
                 node_hits: Dict[str, List[int]],
                 edge_hits: Dict[str, List[int]]):
        self.globals = globals_
        self.cyc = [0]  # shared cycle counter cell
        self.max_cycles = max_cycles
        self.depth = 0
        self.node_hits = node_hits
        self.edge_hits = edge_hits
        self.call_counts: Dict[str, int] = {}


# -- structural signature (cache invalidation) ------------------------------------


def _append_instruction(sig: List, ins: Instruction) -> None:
    sig.append(ins)
    sig.append(ins.op)
    sig.append(ins.dest)
    sig.append(ins.srcs)
    sig.append(ins.array)
    sig.append(ins.callee)
    parts = getattr(ins, "parts", None)
    if parts is not None:
        sig.append(len(parts))
        for part in parts:
            _append_instruction(sig, part)


def _structure_signature(module: GraphModule) -> List:
    """Everything the compiled form depends on, compared with ``==``.

    Instruction objects compare by identity; operand tuples compare by value
    (equal operands compile to identical closures), so in-place operand
    rewrites, node edits and edge edits all miss the cache while repeated
    runs of an untouched module hit it.
    """
    sig: List = [tuple(module.global_arrays)]
    for name, graph in module.graphs.items():
        sig.append(name)
        sig.append(graph.entry)
        sig.append(tuple(graph.params))
        sig.append(tuple(graph.local_arrays))
        for nid, node in graph.nodes.items():
            sig.append(nid)
            sig.append(tuple(node.succs))
            for ins in node.all_instructions():
                _append_instruction(sig, ins)
    return sig


# -- graph compilation ------------------------------------------------------------


class _GraphCompiler:
    """Compiles one :class:`ProgramGraph` into a :class:`_CompiledGraph`."""

    def __init__(self, graph: ProgramGraph, module: GraphModule,
                 cmod: "CompiledModule"):
        self.graph = graph
        self.module = module
        self.cmod = cmod
        # Register slot 0 is reserved for the frame's return value.
        self.reg_slots: Dict[str, int] = {}
        self.arr_slots: Dict[str, int] = {}
        self.global_plan: List[Tuple[int, str]] = []
        self.missing_plan: List[Tuple[int, _MissingArray]] = []

    # -- slot assignment ----------------------------------------------------------

    def reg_slot(self, name: str) -> int:
        slot = self.reg_slots.get(name)
        if slot is None:
            slot = len(self.reg_slots) + 1
            self.reg_slots[name] = slot
        return slot

    def _new_arr_slot(self, name: str) -> int:
        slot = len(self.arr_slots)
        self.arr_slots[name] = slot
        return slot

    def arr_slot(self, name: str) -> int:
        """Slot for *name*, late-binding globals / flagging unknown names."""
        slot = self.arr_slots.get(name)
        if slot is not None:
            return slot
        slot = self._new_arr_slot(name)
        if name in self.module.global_arrays:
            self.global_plan.append((slot, name))
        else:
            self.missing_plan.append((slot, _MissingArray(name)))
        return slot

    # -- operand readers ----------------------------------------------------------

    def scalar_reader(self, operand):
        """Compile a ``(regs) -> value`` reader for one scalar operand."""
        if isinstance(operand, Constant):
            value = operand.value
            return lambda regs: value
        if isinstance(operand, VirtualReg):
            i = self.reg_slot(operand.name)
            return lambda regs: regs[i]

        def unreadable(regs, _operand=operand):
            raise SimulationError(f"cannot read operand {_operand!r}")
        return unreadable

    def checked_reader(self, operand):
        """Like :meth:`scalar_reader` but rejects undefined registers with
        the reference interpreter's error message (used where the value
        would otherwise escape uninspected: returns and call arguments)."""
        if isinstance(operand, VirtualReg):
            i = self.reg_slot(operand.name)
            name = operand.name

            def read(regs):
                value = regs[i]
                if value is _UNDEF:
                    raise SimulationError(
                        f"read of undefined register {name!r}")
                return value
            return read
        return self.scalar_reader(operand)

    # -- value producers ----------------------------------------------------------

    def compile_value(self, ins: Instruction):
        """Compile a ``(regs, arr) -> value`` closure, or ``None`` when the
        opcode does not produce a value (stores, calls, chains, nops)."""
        op = ins.op
        fn = _BINARY_FN.get(op)
        if fn is not None:
            return self._binary(fn, ins.srcs[0], ins.srcs[1])
        fn = _UNARY_FN.get(op)
        if fn is not None:
            read = self.scalar_reader(ins.srcs[0])
            return lambda regs, arr: fn(read(regs))
        if op is Op.MOV or op is Op.FMOV:
            src = ins.srcs[0]
            if isinstance(src, Constant):
                value = src.value
                return lambda regs, arr: value
            # A move never coerces its operand, so the _UNDEF sentinel
            # would propagate silently; the checked reader keeps the
            # reference interpreter's undefined-register error.
            read = self.checked_reader(src)
            return lambda regs, arr: read(regs)
        if op is Op.LOAD or op is Op.FLOAD:
            k = self.arr_slot(ins.array.name)
            index = self.scalar_reader(ins.srcs[0])
            return lambda regs, arr: arr[k].load(index(regs))
        if op is Op.INTRIN:
            return self._intrinsic(ins)
        return None

    def _binary(self, fn, lhs, rhs):
        lhs_reg = isinstance(lhs, VirtualReg)
        rhs_reg = isinstance(rhs, VirtualReg)
        if lhs_reg and rhs_reg:
            i = self.reg_slot(lhs.name)
            j = self.reg_slot(rhs.name)
            return lambda regs, arr: fn(regs[i], regs[j])
        if lhs_reg and isinstance(rhs, Constant):
            i = self.reg_slot(lhs.name)
            b = rhs.value
            return lambda regs, arr: fn(regs[i], b)
        if isinstance(lhs, Constant) and rhs_reg:
            a = lhs.value
            j = self.reg_slot(rhs.name)
            return lambda regs, arr: fn(a, regs[j])
        # Constant/constant (kept runtime: division by zero must still raise
        # only when executed) and malformed operands.
        read_a = self.scalar_reader(lhs)
        read_b = self.scalar_reader(rhs)
        return lambda regs, arr: fn(read_a(regs), read_b(regs))

    def _intrinsic(self, ins: Instruction):
        impl = INTRINSIC_IMPL.get(ins.callee)
        if impl is None:
            callee = ins.callee

            def unknown(regs, arr):
                raise SimulationError(f"unknown intrinsic {callee!r}")
            return unknown
        readers = [self.scalar_reader(src) for src in ins.srcs]
        if len(readers) == 1:
            read = readers[0]
            return lambda regs, arr: impl(read(regs))
        if len(readers) == 2:
            read_a, read_b = readers
            return lambda regs, arr: impl(read_a(regs), read_b(regs))
        return lambda regs, arr: impl(*(read(regs) for read in readers))

    # -- whole-instruction execution ----------------------------------------------

    def compile_exec(self, ins: Instruction):
        """Compile ``(regs, arr, regw, stw) -> None`` deferring writes into
        the pending lists — the general read-phase form."""
        compute = self.compile_value(ins)
        if compute is not None:
            if ins.dest is not None:
                d = self.reg_slot(ins.dest.name)

                def run(regs, arr, regw, stw):
                    regw.append((d, compute(regs, arr)))
                return run

            def run(regs, arr, regw, stw):
                compute(regs, arr)
            return run
        op = ins.op
        if op is Op.STORE or op is Op.FSTORE:
            k = self.arr_slot(ins.array.name)
            index = self.scalar_reader(ins.srcs[1])
            value = self.scalar_reader(ins.srcs[0])

            def run(regs, arr, regw, stw):
                stw.append((arr[k], index(regs), value(regs)))
            return run
        if op is Op.CALL:
            return self._call(ins)
        if op is Op.CHAIN and getattr(ins, "parts", None) is not None:
            imm = self.compile_immediate(ins)

            def run(regs, arr, regw, stw):
                imm(regs, arr)
            return run
        if op is Op.NOP:
            def run(regs, arr, regw, stw):
                pass
            return run

        def unexecutable(regs, arr, regw, stw, _ins=ins):
            raise SimulationError(f"cannot execute {_ins}")
        return unexecutable

    def compile_immediate(self, ins: Instruction):
        """Compile ``(regs, arr) -> None`` committing writes immediately —
        the form chain parts execute in (operand forwarding)."""
        compute = self.compile_value(ins)
        if compute is not None:
            if ins.dest is not None:
                d = self.reg_slot(ins.dest.name)

                def run(regs, arr):
                    regs[d] = compute(regs, arr)
                return run

            def run(regs, arr):
                compute(regs, arr)
            return run
        op = ins.op
        if op is Op.STORE or op is Op.FSTORE:
            k = self.arr_slot(ins.array.name)
            index = self.scalar_reader(ins.srcs[1])
            value = self.scalar_reader(ins.srcs[0])

            def run(regs, arr):
                arr[k].store(index(regs), value(regs))
            return run
        if op is Op.CHAIN and getattr(ins, "parts", None) is not None:
            parts = [self.compile_immediate(part) for part in ins.parts]
            if len(parts) == 2:
                first, second = parts

                def run(regs, arr):
                    first(regs, arr)
                    second(regs, arr)
                return run
            if len(parts) == 3:
                first, second, third = parts

                def run(regs, arr):
                    first(regs, arr)
                    second(regs, arr)
                    third(regs, arr)
                return run

            def run(regs, arr):
                for part in parts:
                    part(regs, arr)
            return run
        if op is Op.NOP:
            def run(regs, arr):
                pass
            return run
        # Calls and anything exotic: run the general form, then commit —
        # exactly the per-part commit the reference interpreter performs.
        execute = self.compile_exec(ins)

        def run(regs, arr):
            regw: List = []
            stw: List = []
            execute(regs, arr, regw, stw)
            for d, v in regw:
                regs[d] = v
            for storage, i, v in stw:
                storage.store(i, v)
        return run

    def _call(self, ins: Instruction):
        cmod = self.cmod
        callee = ins.callee
        getters = []
        for src in ins.srcs:
            if isinstance(src, ArraySymbol):
                name = src.name
                if name in self.arr_slots or name in self.module.global_arrays:
                    k = self.arr_slot(name)
                    getters.append(lambda regs, arr, _k=k: arr[_k])
                else:
                    def unbound(regs, arr, _name=name):
                        raise SimulationError(
                            f"array argument {_name!r} is not bound")
                    getters.append(unbound)
            else:
                read = self.checked_reader(src)
                getters.append(lambda regs, arr, _r=read: _r(regs))
        d = self.reg_slot(ins.dest.name) if ins.dest is not None else None

        def run(regs, arr, regw, stw):
            target = cmod.graphs.get(callee)
            if target is None:
                raise SimulationError(
                    f"call to unknown function {callee!r}")
            args = [getter(regs, arr) for getter in getters]
            value = _run_graph(cmod, target, args)
            if d is not None:
                regw.append((d, value))
        return run

    # -- node steps ---------------------------------------------------------------

    def compile_step(self, nid: int, node: Node, edge_base: int):
        """Compile one node into a ``(regs, arr) -> edge_index`` closure.

        The step executes the node's read phase, commits register writes
        then stores, and returns the index of the control-flow edge taken
        (``-1`` means return; the return value is left in ``regs[0]``).
        """
        control = node.control
        ops = node.ops

        # Control compilation.
        if control is not None and control.op is Op.RET:
            if control.srcs:
                read_ret = self.checked_reader(control.srcs[0])
            else:
                read_ret = lambda regs: None
            return self._step_ret(ops, read_ret)
        if control is not None and control.op is Op.BR:
            taken = self._branch_taken(control.srcs[0])
            edges = tuple(range(edge_base, edge_base + len(node.succs)))
            return self._step_branch(ops, taken, edges)
        if len(node.succs) == 1:
            return self._step_fall(ops, edge_base)
        fn_name = self.graph.name
        n_succs = len(node.succs)

        def bad_successors(regs, arr):
            raise SimulationError(
                f"{fn_name}: node {nid} has {n_succs} successors "
                f"but no branch")
        return bad_successors

    def _branch_taken(self, operand):
        """Compile the branch condition into a ``(regs) -> bool`` closure."""
        if isinstance(operand, Constant):
            taken = operand.value != 0
            return lambda regs: taken
        read = self.scalar_reader(operand)
        return lambda regs: read(regs) != 0

    def _classify(self, ops: Sequence[Instruction]):
        """Split *ops* into (computes, dests) when every op is a pure value
        producer with a destination; otherwise return ``None`` (the node
        needs the general pending-write form)."""
        computes = []
        dests = []
        for ins in ops:
            if ins.op is Op.CHAIN or ins.dest is None:
                return None
            compute = self.compile_value(ins)
            if compute is None:
                return None
            computes.append(compute)
            dests.append(self.reg_slot(ins.dest.name))
        return computes, dests

    def _generic_execs(self, ops: Sequence[Instruction]):
        return [self.compile_exec(ins) for ins in ops]

    def _step_fall(self, ops, edge: int):
        if not ops:
            return lambda regs, arr: edge
        if len(ops) == 1:
            ins = ops[0]
            if ins.op is Op.CHAIN and getattr(ins, "parts", None) is not None:
                imm = self.compile_immediate(ins)

                def step(regs, arr):
                    imm(regs, arr)
                    return edge
                return step
            if ins.op is Op.STORE or ins.op is Op.FSTORE:
                k = self.arr_slot(ins.array.name)
                index = self.scalar_reader(ins.srcs[1])
                value = self.scalar_reader(ins.srcs[0])

                def step(regs, arr):
                    i = index(regs)
                    v = value(regs)
                    arr[k].store(i, v)
                    return edge
                return step
        pure = self._classify(ops)
        if pure is not None:
            computes, dests = pure
            if len(computes) == 1:
                compute, = computes
                d, = dests

                def step(regs, arr):
                    regs[d] = compute(regs, arr)
                    return edge
                return step
            if len(computes) == 2:
                c0, c1 = computes
                d0, d1 = dests

                def step(regs, arr):
                    v0 = c0(regs, arr)
                    v1 = c1(regs, arr)
                    regs[d0] = v0
                    regs[d1] = v1
                    return edge
                return step

            def step(regs, arr):
                values = [compute(regs, arr) for compute in computes]
                for d, v in zip(dests, values):
                    regs[d] = v
                return edge
            return step
        execs = self._generic_execs(ops)

        def step(regs, arr):
            regw: List = []
            stw: List = []
            for execute in execs:
                execute(regs, arr, regw, stw)
            for d, v in regw:
                regs[d] = v
            for storage, i, v in stw:
                storage.store(i, v)
            return edge
        return step

    def _step_branch(self, ops, taken, edges: Tuple[int, ...]):
        if not ops:
            def step(regs, arr):
                return edges[0] if taken(regs) else edges[1]
            return step
        pure = self._classify(ops)
        if pure is not None:
            computes, dests = pure
            if len(computes) == 1:
                compute, = computes
                d, = dests

                def step(regs, arr):
                    v = compute(regs, arr)
                    t = taken(regs)
                    regs[d] = v
                    return edges[0] if t else edges[1]
                return step

            def step(regs, arr):
                values = [compute(regs, arr) for compute in computes]
                t = taken(regs)
                for d, v in zip(dests, values):
                    regs[d] = v
                return edges[0] if t else edges[1]
            return step
        execs = self._generic_execs(ops)

        def step(regs, arr):
            regw: List = []
            stw: List = []
            for execute in execs:
                execute(regs, arr, regw, stw)
            t = taken(regs)
            for d, v in regw:
                regs[d] = v
            for storage, i, v in stw:
                storage.store(i, v)
            return edges[0] if t else edges[1]
        return step

    def _step_ret(self, ops, read_ret):
        if not ops:
            def step(regs, arr):
                regs[0] = read_ret(regs)
                return -1
            return step
        execs = self._generic_execs(ops)

        def step(regs, arr):
            regw: List = []
            stw: List = []
            for execute in execs:
                execute(regs, arr, regw, stw)
            value = read_ret(regs)
            for d, v in regw:
                regs[d] = v
            for storage, i, v in stw:
                storage.store(i, v)
            regs[0] = value
            return -1
        return step


class _CompiledGraph:
    """One function graph compiled to closures."""

    __slots__ = ("name", "param_plan", "local_plan", "global_plan",
                 "missing_plan", "n_regs", "n_arrays", "n_params",
                 "steps", "edge_dst", "edge_pairs", "node_ids", "entry_idx")

    def __init__(self, graph: ProgramGraph, module: GraphModule,
                 cmod: "CompiledModule"):
        compiler = _GraphCompiler(graph, module, cmod)
        self.name = graph.name
        self.n_params = len(graph.params)

        # Parameters claim their slots first (locals of the same name
        # shadow them, matching the reference interpreter's frame dict).
        param_plan: List[Tuple[bool, int, str]] = []
        for param in graph.params:
            if isinstance(param, VirtualReg):
                param_plan.append(
                    (True, compiler.reg_slot(param.name), param.name))
            else:
                slot = compiler.arr_slots.get(param.name)
                if slot is None:
                    slot = compiler._new_arr_slot(param.name)
                param_plan.append((False, slot, param.name))
        self.param_plan = param_plan
        local_plan = []
        for symbol in graph.local_arrays:
            slot = compiler.arr_slots.get(symbol.name)
            if slot is None:
                slot = compiler._new_arr_slot(symbol.name)
            local_plan.append((slot, symbol))
        self.local_plan = local_plan

        # Compile every node; edge indices are assigned in node order.
        node_ids: List[int] = list(graph.nodes)
        idx_of = {node_id: i for i, node_id in enumerate(node_ids)}
        steps: List = []
        edge_dst: List[int] = []
        edge_pairs: List[Tuple[int, int]] = []
        dangling: List[Tuple[int, int]] = []  # (edge index, missing node id)
        for nid in node_ids:
            node = graph.nodes[nid]
            steps.append(compiler.compile_step(nid, node, len(edge_dst)))
            for succ in node.succs:
                edge_pairs.append((nid, succ))
                dst = idx_of.get(succ)
                if dst is None:
                    dangling.append((len(edge_dst), succ))
                    dst = -1
                edge_dst.append(dst)
        for edge_index, missing in dangling:
            def bad_target(regs, arr, _missing=missing):
                raise SimulationError(f"unknown node {_missing}")
            edge_dst[edge_index] = len(steps)
            steps.append(bad_target)

        self.steps = steps
        self.edge_dst = edge_dst
        self.edge_pairs = edge_pairs
        self.node_ids = node_ids
        self.entry_idx = idx_of.get(graph.entry, -1)
        self.global_plan = compiler.global_plan
        self.missing_plan = compiler.missing_plan
        self.n_regs = len(compiler.reg_slots) + 1
        self.n_arrays = len(compiler.arr_slots)


class CompiledModule:
    """All graphs of one :class:`GraphModule` in compiled form."""

    def __init__(self, module: GraphModule):
        self.module = module
        self.graphs: Dict[str, _CompiledGraph] = {}
        self._state: Optional[_RunState] = None
        for name, graph in module.graphs.items():
            self.graphs[name] = _CompiledGraph(graph, module, self)
        self._signature = _structure_signature(module)


def compile_module(module: GraphModule) -> CompiledModule:
    """Compiled form of *module*, cached on the module itself.

    The cache is validated against a structural signature, so the
    exploration loop's repeated runs reuse compilation while any graph
    mutation (chain selection, optimizer passes) triggers a recompile.
    """
    cached = module.__dict__.get("_compiled_cache")
    if cached is not None \
            and cached._signature == _structure_signature(module):
        return cached
    compiled = CompiledModule(module)
    module._compiled_cache = compiled
    return compiled


# -- execution --------------------------------------------------------------------


def _run_graph(cmod: CompiledModule, cg: _CompiledGraph, args: List):
    state = cmod._state
    depth = state.depth
    if depth > _MAX_CALL_DEPTH:
        raise SimulationError(
            f"call depth exceeded in {cg.name!r} (runaway recursion?)")
    state.call_counts[cg.name] = state.call_counts.get(cg.name, 0) + 1
    if len(args) != cg.n_params:
        raise SimulationError(
            f"{cg.name!r} expects {cg.n_params} arguments, "
            f"got {len(args)}")

    regs: List = [_UNDEF] * cg.n_regs
    arr: List = [None] * cg.n_arrays
    for (is_reg, slot, name), value in zip(cg.param_plan, args):
        if is_reg:
            regs[slot] = value
        else:
            if not isinstance(value, ArrayStorage):
                raise SimulationError(
                    f"{cg.name!r}: array parameter {name!r} "
                    f"bound to non-array {value!r}")
            arr[slot] = value
    for slot, symbol in cg.local_plan:
        arr[slot] = ArrayStorage(symbol)
    module_globals = state.globals
    for slot, name in cg.global_plan:
        arr[slot] = module_globals[name]
    for slot, placeholder in cg.missing_plan:
        arr[slot] = placeholder

    idx = cg.entry_idx
    if idx < 0:
        raise SimulationError(f"{cg.name!r} has no entry node")
    steps = cg.steps
    edge_dst = cg.edge_dst
    hits = state.node_hits[cg.name]
    edge_hits = state.edge_hits[cg.name]
    cyc = state.cyc
    limit = state.max_cycles
    state.depth = depth + 1
    try:
        while True:
            count = cyc[0] + 1
            cyc[0] = count
            if count > limit:
                raise SimulationError(
                    f"cycle limit ({limit}) exceeded; "
                    f"infinite loop in {cg.name!r}?")
            hits[idx] += 1
            edge = steps[idx](regs, arr)
            if edge < 0:
                return regs[0]
            edge_hits[edge] += 1
            idx = edge_dst[edge]
    finally:
        state.depth = depth


class CompiledEngine:
    """Drop-in replacement for :class:`GraphInterpreter` (compiled)."""

    def __init__(self, module: GraphModule, max_cycles: int = 200_000_000):
        self.module = module
        self.max_cycles = max_cycles
        self.compiled = compile_module(module)

    def run_batch(self, inputs_list: Sequence[Optional[Dict[str, Sequence]]]
                  ) -> List[MachineResult]:
        """Run N input sets through the same closure-specialized program.

        Compilation (and the structural-signature validation ``run_module``
        pays on every call) happens once for the whole batch; each input
        set then executes independently — fresh globals, fresh flat
        profile counters folded into a fresh :class:`ProfileData` via
        :meth:`ProfileData.merge_arrays` — so the results are bit-identical
        to N independent :func:`~repro.sim.machine.run_module` calls.
        """
        return [self.run(inputs) for inputs in inputs_list]

    def run(self, inputs: Optional[Dict[str, Sequence]] = None
            ) -> MachineResult:
        """Execute ``main`` with globals bound to *inputs*."""
        module = self.module
        globals_: Dict[str, ArrayStorage] = {}
        for name, symbol in module.global_arrays.items():
            init = module.array_initializers.get(name)
            globals_[name] = ArrayStorage(symbol, init)
        if inputs:
            for name, values in inputs.items():
                if name not in globals_:
                    raise SimulationError(
                        f"input {name!r} does not match any global array")
                globals_[name].fill_from(values)

        entry = module.entry
        cmod = self.compiled
        state = _RunState(
            globals_, self.max_cycles,
            {name: [0] * len(cg.steps)
             for name, cg in cmod.graphs.items()},
            {name: [0] * len(cg.edge_pairs)
             for name, cg in cmod.graphs.items()})
        previous = cmod._state
        cmod._state = state
        try:
            ret = _run_graph(cmod, cmod.graphs[entry.name], [])
        finally:
            cmod._state = previous

        snapshot = {name: storage.snapshot()
                    for name, storage in globals_.items()}
        profile = ProfileData()
        for name, cg in cmod.graphs.items():
            profile.merge_arrays(name, cg.node_ids, state.node_hits[name],
                                 cg.edge_pairs, state.edge_hits[name])
        for name, count in state.call_counts.items():
            profile.call_counts[name] = count
        return MachineResult(ret, snapshot, profile)
