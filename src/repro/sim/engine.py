"""The compiled execution engine.

:class:`~repro.sim.machine.GraphInterpreter` walks the program graph with a
~30-arm opcode dispatch, ``isinstance`` operand checks and two dict mutations
of profile bookkeeping for every node of every simulated cycle.  This module
removes all of that from the hot loop by *pre-compiling* each graph into
dispatch-free Python closures:

* every :class:`~repro.ir.instr.Instruction` becomes a specialized closure
  with its operand readers resolved at compile time — constants are inlined,
  registers are pre-indexed into a flat list (no name-keyed dicts), array
  storages are late-bound once per frame into a flat slot list;
* every :class:`~repro.cfg.graph.Node` becomes one "step" closure that runs
  its operation closures under the VLIW read/commit semantics and returns the
  index of the control-flow edge it leaves through;
* profile counting becomes flat per-graph integer arrays (``node_hits[i]``,
  ``edge_hits[e]``) folded into a :class:`~repro.sim.profile.ProfileData`
  once at the end of a run via :meth:`ProfileData.merge_arrays`.

The compiled form is cached on the :class:`GraphModule` and invalidated by a
structural signature check, so repeated runs of the same module — the
exploration loop measures every finalist ISA on the same re-sequentialized
base — pay compilation once.

The tree-walking interpreter is kept intact as the *reference* engine (the
semantic oracle); differential tests assert the two produce bit-identical
results, cycle counts included, on the whole DSP suite.

This module also hosts the **bytecode compiler** (the lowering pass of the
third engine tier): :func:`lower_module` flattens each graph into parallel
arrays — integer opcodes with pre-resolved register/array slot indices and
inlined constants in one flat code list, successor edges baked into the
jump words — executed by the tight dispatch loop in
:mod:`repro.sim.bytecode`.  Both compiled forms share the slot-assignment
machinery (:class:`_FrameLayout`) and the structural-signature cache
protocol, so either cache is invalidated by the same graph mutations.
"""

from __future__ import annotations

import itertools
import operator
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.cfg.graph import GraphModule, Node, ProgramGraph
from repro.ir.instr import Instruction
from repro.ir.ops import Op
from repro.ir.values import ArraySymbol, Constant, VirtualReg
from repro.sim.machine import _MAX_CALL_DEPTH, MachineResult
from repro.sim.memory import ArrayStorage
from repro.sim.profile import ProfileData
from repro.sim.values import (INTRINSIC_IMPL, float_div, int_div, int_mod,
                              shift_left, shift_right)

# -- the undefined-register sentinel ---------------------------------------------
#
# Register slots start out holding _UNDEF.  Any arithmetic, comparison or
# conversion touching it raises SimulationError, mirroring the reference
# interpreter's read-of-undefined-register guard without a per-read check.


class _UndefinedRegister:
    __slots__ = ()

    def __repr__(self) -> str:
        return "<undefined register>"


def _undef_operation(self, *_args):
    raise SimulationError("read of undefined register")


for _name in (
    "__add__", "__radd__", "__sub__", "__rsub__", "__mul__", "__rmul__",
    "__truediv__", "__rtruediv__", "__floordiv__", "__rfloordiv__",
    "__mod__", "__rmod__", "__pow__", "__rpow__", "__neg__", "__pos__",
    "__abs__", "__invert__", "__and__", "__rand__", "__or__", "__ror__",
    "__xor__", "__rxor__", "__lshift__", "__rlshift__", "__rshift__",
    "__rrshift__", "__lt__", "__le__", "__gt__", "__ge__", "__eq__",
    "__ne__", "__bool__", "__int__", "__float__", "__index__",
    "__round__", "__trunc__",
):
    setattr(_UndefinedRegister, _name, _undef_operation)

_UNDEF = _UndefinedRegister()


class _MissingArray:
    """Placeholder bound to an array slot whose name resolves nowhere."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def load(self, _index):
        raise SimulationError(f"unknown array {self.name!r}")

    def store(self, _index, _value):
        raise SimulationError(f"unknown array {self.name!r}")


# -- scalar operation tables ------------------------------------------------------


def _cmp_eq(a, b):
    return int(a == b)


def _cmp_ne(a, b):
    return int(a != b)


def _cmp_lt(a, b):
    return int(a < b)


def _cmp_le(a, b):
    return int(a <= b)


def _cmp_gt(a, b):
    return int(a > b)


def _cmp_ge(a, b):
    return int(a >= b)


_BINARY_FN = {
    Op.ADD: operator.add,
    Op.SUB: operator.sub,
    Op.MUL: operator.mul,
    Op.DIV: int_div,
    Op.MOD: int_mod,
    Op.AND: operator.and_,
    Op.OR: operator.or_,
    Op.XOR: operator.xor,
    Op.SHL: shift_left,
    Op.SHR: shift_right,
    Op.CMPEQ: _cmp_eq, Op.FCMPEQ: _cmp_eq,
    Op.CMPNE: _cmp_ne, Op.FCMPNE: _cmp_ne,
    Op.CMPLT: _cmp_lt, Op.FCMPLT: _cmp_lt,
    Op.CMPLE: _cmp_le, Op.FCMPLE: _cmp_le,
    Op.CMPGT: _cmp_gt, Op.FCMPGT: _cmp_gt,
    Op.CMPGE: _cmp_ge, Op.FCMPGE: _cmp_ge,
    Op.FADD: operator.add,
    Op.FSUB: operator.sub,
    Op.FMUL: operator.mul,
    Op.FDIV: float_div,
}

_UNARY_FN = {
    Op.NEG: operator.neg,
    Op.FNEG: operator.neg,
    Op.NOT: operator.invert,
    Op.ITOF: float,
    Op.FTOI: int,  # C truncation
}


# -- per-run state ----------------------------------------------------------------


class _RunState:
    """Mutable state of one simulated run (shared across call frames)."""

    __slots__ = ("globals", "cyc", "max_cycles", "depth",
                 "node_hits", "edge_hits", "call_counts")

    def __init__(self, globals_: Dict[str, ArrayStorage], max_cycles: int,
                 node_hits: Dict[str, List[int]],
                 edge_hits: Dict[str, List[int]]):
        self.globals = globals_
        self.cyc = [0]  # shared cycle counter cell
        self.max_cycles = max_cycles
        self.depth = 0
        self.node_hits = node_hits
        self.edge_hits = edge_hits
        self.call_counts: Dict[str, int] = {}


# -- structural signature (cache invalidation) ------------------------------------


def _iter_instruction(ins: Instruction) -> Iterator:
    yield ins
    yield ins.op
    yield ins.dest
    yield ins.srcs
    yield ins.array
    yield ins.callee
    parts = getattr(ins, "parts", None)
    if parts is not None:
        yield len(parts)
        for part in parts:
            yield from _iter_instruction(part)


def _iter_signature(module: GraphModule) -> Iterator:
    """Stream every item the compiled form depends on, compared with ``==``.

    Instruction objects compare by identity; operand tuples compare by value
    (equal operands compile to identical closures), so in-place operand
    rewrites, node edits and edge edits all miss the cache while repeated
    runs of an untouched module hit it.
    """
    yield tuple(module.global_arrays)
    for name, graph in module.graphs.items():
        yield name
        yield graph.entry
        yield tuple(graph.params)
        yield tuple(graph.local_arrays)
        for nid, node in graph.nodes.items():
            yield nid
            yield tuple(node.succs)
            for ins in node.all_instructions():
                yield from _iter_instruction(ins)


def _structure_signature(module: GraphModule) -> List:
    """Materialized signature, stored on the cache at compile time."""
    return list(_iter_signature(module))


_SIG_END = object()


def _signature_matches(module: GraphModule, sig: List) -> bool:
    """Validate a memoized signature against the module's current state.

    Streams the walk instead of rebuilding the signature list on every
    ``run_module`` call: an unmutated module pays one allocation-free
    comparison, a mutated one exits at the first differing item.
    """
    cached = iter(sig)
    for item in _iter_signature(module):
        have = next(cached, _SIG_END)
        if have is _SIG_END:
            return False
        if have is not item and have != item:
            return False
    return next(cached, _SIG_END) is _SIG_END


# -- graph compilation ------------------------------------------------------------


class _FrameLayout:
    """Flat slot assignment for one graph's frame.

    Both compiled forms — the closure compiler and the bytecode lowerer —
    resolve register and array names to integer slots through this shared
    base, so the frame-construction plans (parameters, locals, late-bound
    globals, missing-name placeholders) are built once and identically.
    """

    def __init__(self, graph: ProgramGraph, module: GraphModule):
        self.graph = graph
        self.module = module
        # Register slot 0 is reserved for the frame's return value.
        self.reg_slots: Dict[str, int] = {}
        self.arr_slots: Dict[str, int] = {}
        self.global_plan: List[Tuple[int, str]] = []
        self.missing_plan: List[Tuple[int, _MissingArray]] = []
        self.missing_names: set = set()

    # -- slot assignment ----------------------------------------------------------

    def reg_slot(self, name: str) -> int:
        slot = self.reg_slots.get(name)
        if slot is None:
            slot = len(self.reg_slots) + 1
            self.reg_slots[name] = slot
        return slot

    def _new_arr_slot(self, name: str) -> int:
        slot = len(self.arr_slots)
        self.arr_slots[name] = slot
        return slot

    def arr_slot(self, name: str) -> int:
        """Slot for *name*, late-binding globals / flagging unknown names."""
        slot = self.arr_slots.get(name)
        if slot is not None:
            return slot
        slot = self._new_arr_slot(name)
        if name in self.module.global_arrays:
            self.global_plan.append((slot, name))
        else:
            self.missing_plan.append((slot, _MissingArray(name)))
            self.missing_names.add(name)
        return slot

    def array_is_bound(self, name: str) -> bool:
        """True when loads/stores on *name* can resolve to real storage."""
        if name in self.arr_slots:
            return name not in self.missing_names
        return name in self.module.global_arrays

    def build_plans(self):
        """Parameter and local-array frame plans (claimed before any body
        operand so locals of the same name shadow them, matching the
        reference interpreter's frame dict)."""
        graph = self.graph
        param_plan: List[Tuple[bool, int, str]] = []
        for param in graph.params:
            if isinstance(param, VirtualReg):
                param_plan.append(
                    (True, self.reg_slot(param.name), param.name))
            else:
                slot = self.arr_slots.get(param.name)
                if slot is None:
                    slot = self._new_arr_slot(param.name)
                param_plan.append((False, slot, param.name))
        local_plan = []
        for symbol in graph.local_arrays:
            slot = self.arr_slots.get(symbol.name)
            if slot is None:
                slot = self._new_arr_slot(symbol.name)
            local_plan.append((slot, symbol))
        return param_plan, local_plan


class _GraphCompiler(_FrameLayout):
    """Compiles one :class:`ProgramGraph` into a :class:`_CompiledGraph`."""

    def __init__(self, graph: ProgramGraph, module: GraphModule,
                 cmod: "CompiledModule"):
        super().__init__(graph, module)
        self.cmod = cmod

    # -- operand readers ----------------------------------------------------------

    def scalar_reader(self, operand):
        """Compile a ``(regs) -> value`` reader for one scalar operand."""
        if isinstance(operand, Constant):
            value = operand.value
            return lambda regs: value
        if isinstance(operand, VirtualReg):
            i = self.reg_slot(operand.name)
            return lambda regs: regs[i]

        def unreadable(regs, _operand=operand):
            raise SimulationError(f"cannot read operand {_operand!r}")
        return unreadable

    def checked_reader(self, operand):
        """Like :meth:`scalar_reader` but rejects undefined registers with
        the reference interpreter's error message (used where the value
        would otherwise escape uninspected: returns and call arguments)."""
        if isinstance(operand, VirtualReg):
            i = self.reg_slot(operand.name)
            name = operand.name

            def read(regs):
                value = regs[i]
                if value is _UNDEF:
                    raise SimulationError(
                        f"read of undefined register {name!r}")
                return value
            return read
        return self.scalar_reader(operand)

    # -- value producers ----------------------------------------------------------

    def compile_value(self, ins: Instruction):
        """Compile a ``(regs, arr) -> value`` closure, or ``None`` when the
        opcode does not produce a value (stores, calls, chains, nops)."""
        op = ins.op
        fn = _BINARY_FN.get(op)
        if fn is not None:
            return self._binary(fn, ins.srcs[0], ins.srcs[1])
        fn = _UNARY_FN.get(op)
        if fn is not None:
            read = self.scalar_reader(ins.srcs[0])
            return lambda regs, arr: fn(read(regs))
        if op is Op.MOV or op is Op.FMOV:
            src = ins.srcs[0]
            if isinstance(src, Constant):
                value = src.value
                return lambda regs, arr: value
            # A move never coerces its operand, so the _UNDEF sentinel
            # would propagate silently; the checked reader keeps the
            # reference interpreter's undefined-register error.
            read = self.checked_reader(src)
            return lambda regs, arr: read(regs)
        if op is Op.LOAD or op is Op.FLOAD:
            k = self.arr_slot(ins.array.name)
            index = self.scalar_reader(ins.srcs[0])
            return lambda regs, arr: arr[k].load(index(regs))
        if op is Op.INTRIN:
            return self._intrinsic(ins)
        return None

    def _binary(self, fn, lhs, rhs):
        lhs_reg = isinstance(lhs, VirtualReg)
        rhs_reg = isinstance(rhs, VirtualReg)
        if lhs_reg and rhs_reg:
            i = self.reg_slot(lhs.name)
            j = self.reg_slot(rhs.name)
            return lambda regs, arr: fn(regs[i], regs[j])
        if lhs_reg and isinstance(rhs, Constant):
            i = self.reg_slot(lhs.name)
            b = rhs.value
            return lambda regs, arr: fn(regs[i], b)
        if isinstance(lhs, Constant) and rhs_reg:
            a = lhs.value
            j = self.reg_slot(rhs.name)
            return lambda regs, arr: fn(a, regs[j])
        # Constant/constant (kept runtime: division by zero must still raise
        # only when executed) and malformed operands.
        read_a = self.scalar_reader(lhs)
        read_b = self.scalar_reader(rhs)
        return lambda regs, arr: fn(read_a(regs), read_b(regs))

    def _intrinsic(self, ins: Instruction):
        impl = INTRINSIC_IMPL.get(ins.callee)
        if impl is None:
            callee = ins.callee

            def unknown(regs, arr):
                raise SimulationError(f"unknown intrinsic {callee!r}")
            return unknown
        readers = [self.scalar_reader(src) for src in ins.srcs]
        if len(readers) == 1:
            read = readers[0]
            return lambda regs, arr: impl(read(regs))
        if len(readers) == 2:
            read_a, read_b = readers
            return lambda regs, arr: impl(read_a(regs), read_b(regs))
        return lambda regs, arr: impl(*(read(regs) for read in readers))

    # -- whole-instruction execution ----------------------------------------------

    def compile_exec(self, ins: Instruction):
        """Compile ``(regs, arr, regw, stw) -> None`` deferring writes into
        the pending lists — the general read-phase form."""
        compute = self.compile_value(ins)
        if compute is not None:
            if ins.dest is not None:
                d = self.reg_slot(ins.dest.name)

                def run(regs, arr, regw, stw):
                    regw.append((d, compute(regs, arr)))
                return run

            def run(regs, arr, regw, stw):
                compute(regs, arr)
            return run
        op = ins.op
        if op is Op.STORE or op is Op.FSTORE:
            k = self.arr_slot(ins.array.name)
            index = self.scalar_reader(ins.srcs[1])
            value = self.scalar_reader(ins.srcs[0])

            def run(regs, arr, regw, stw):
                stw.append((arr[k], index(regs), value(regs)))
            return run
        if op is Op.CALL:
            return self._call(ins)
        if op is Op.CHAIN and getattr(ins, "parts", None) is not None:
            imm = self.compile_immediate(ins)

            def run(regs, arr, regw, stw):
                imm(regs, arr)
            return run
        if op is Op.NOP:
            def run(regs, arr, regw, stw):
                pass
            return run

        def unexecutable(regs, arr, regw, stw, _ins=ins):
            raise SimulationError(f"cannot execute {_ins}")
        return unexecutable

    def compile_immediate(self, ins: Instruction):
        """Compile ``(regs, arr) -> None`` committing writes immediately —
        the form chain parts execute in (operand forwarding)."""
        compute = self.compile_value(ins)
        if compute is not None:
            if ins.dest is not None:
                d = self.reg_slot(ins.dest.name)

                def run(regs, arr):
                    regs[d] = compute(regs, arr)
                return run

            def run(regs, arr):
                compute(regs, arr)
            return run
        op = ins.op
        if op is Op.STORE or op is Op.FSTORE:
            k = self.arr_slot(ins.array.name)
            index = self.scalar_reader(ins.srcs[1])
            value = self.scalar_reader(ins.srcs[0])

            def run(regs, arr):
                arr[k].store(index(regs), value(regs))
            return run
        if op is Op.CHAIN and getattr(ins, "parts", None) is not None:
            parts = [self.compile_immediate(part) for part in ins.parts]
            if len(parts) == 2:
                first, second = parts

                def run(regs, arr):
                    first(regs, arr)
                    second(regs, arr)
                return run
            if len(parts) == 3:
                first, second, third = parts

                def run(regs, arr):
                    first(regs, arr)
                    second(regs, arr)
                    third(regs, arr)
                return run

            def run(regs, arr):
                for part in parts:
                    part(regs, arr)
            return run
        if op is Op.NOP:
            def run(regs, arr):
                pass
            return run
        # Calls and anything exotic: run the general form, then commit —
        # exactly the per-part commit the reference interpreter performs.
        execute = self.compile_exec(ins)

        def run(regs, arr):
            regw: List = []
            stw: List = []
            execute(regs, arr, regw, stw)
            for d, v in regw:
                regs[d] = v
            for storage, i, v in stw:
                storage.store(i, v)
        return run

    def _call(self, ins: Instruction):
        cmod = self.cmod
        callee = ins.callee
        getters = []
        for src in ins.srcs:
            if isinstance(src, ArraySymbol):
                name = src.name
                if name in self.arr_slots or name in self.module.global_arrays:
                    k = self.arr_slot(name)
                    getters.append(lambda regs, arr, _k=k: arr[_k])
                else:
                    def unbound(regs, arr, _name=name):
                        raise SimulationError(
                            f"array argument {_name!r} is not bound")
                    getters.append(unbound)
            else:
                read = self.checked_reader(src)
                getters.append(lambda regs, arr, _r=read: _r(regs))
        d = self.reg_slot(ins.dest.name) if ins.dest is not None else None

        def run(regs, arr, regw, stw):
            target = cmod.graphs.get(callee)
            if target is None:
                raise SimulationError(
                    f"call to unknown function {callee!r}")
            args = [getter(regs, arr) for getter in getters]
            value = _run_graph(cmod, target, args)
            if d is not None:
                regw.append((d, value))
        return run

    # -- node steps ---------------------------------------------------------------

    def compile_step(self, nid: int, node: Node, edge_base: int):
        """Compile one node into a ``(regs, arr) -> edge_index`` closure.

        The step executes the node's read phase, commits register writes
        then stores, and returns the index of the control-flow edge taken
        (``-1`` means return; the return value is left in ``regs[0]``).
        """
        control = node.control
        ops = node.ops

        # Control compilation.
        if control is not None and control.op is Op.RET:
            if control.srcs:
                read_ret = self.checked_reader(control.srcs[0])
            else:
                read_ret = lambda regs: None
            return self._step_ret(ops, read_ret)
        if control is not None and control.op is Op.BR:
            taken = self._branch_taken(control.srcs[0])
            edges = tuple(range(edge_base, edge_base + len(node.succs)))
            return self._step_branch(ops, taken, edges)
        if len(node.succs) == 1:
            return self._step_fall(ops, edge_base)
        fn_name = self.graph.name
        n_succs = len(node.succs)

        def bad_successors(regs, arr):
            raise SimulationError(
                f"{fn_name}: node {nid} has {n_succs} successors "
                f"but no branch")
        return bad_successors

    def _branch_taken(self, operand):
        """Compile the branch condition into a ``(regs) -> bool`` closure."""
        if isinstance(operand, Constant):
            taken = operand.value != 0
            return lambda regs: taken
        read = self.scalar_reader(operand)
        return lambda regs: read(regs) != 0

    def _classify(self, ops: Sequence[Instruction]):
        """Split *ops* into (computes, dests) when every op is a pure value
        producer with a destination; otherwise return ``None`` (the node
        needs the general pending-write form)."""
        computes = []
        dests = []
        for ins in ops:
            if ins.op is Op.CHAIN or ins.dest is None:
                return None
            compute = self.compile_value(ins)
            if compute is None:
                return None
            computes.append(compute)
            dests.append(self.reg_slot(ins.dest.name))
        return computes, dests

    def _generic_execs(self, ops: Sequence[Instruction]):
        return [self.compile_exec(ins) for ins in ops]

    def _step_fall(self, ops, edge: int):
        if not ops:
            return lambda regs, arr: edge
        if len(ops) == 1:
            ins = ops[0]
            if ins.op is Op.CHAIN and getattr(ins, "parts", None) is not None:
                imm = self.compile_immediate(ins)

                def step(regs, arr):
                    imm(regs, arr)
                    return edge
                return step
            if ins.op is Op.STORE or ins.op is Op.FSTORE:
                k = self.arr_slot(ins.array.name)
                index = self.scalar_reader(ins.srcs[1])
                value = self.scalar_reader(ins.srcs[0])

                def step(regs, arr):
                    i = index(regs)
                    v = value(regs)
                    arr[k].store(i, v)
                    return edge
                return step
        pure = self._classify(ops)
        if pure is not None:
            computes, dests = pure
            if len(computes) == 1:
                compute, = computes
                d, = dests

                def step(regs, arr):
                    regs[d] = compute(regs, arr)
                    return edge
                return step
            if len(computes) == 2:
                c0, c1 = computes
                d0, d1 = dests

                def step(regs, arr):
                    v0 = c0(regs, arr)
                    v1 = c1(regs, arr)
                    regs[d0] = v0
                    regs[d1] = v1
                    return edge
                return step

            def step(regs, arr):
                values = [compute(regs, arr) for compute in computes]
                for d, v in zip(dests, values):
                    regs[d] = v
                return edge
            return step
        execs = self._generic_execs(ops)

        def step(regs, arr):
            regw: List = []
            stw: List = []
            for execute in execs:
                execute(regs, arr, regw, stw)
            for d, v in regw:
                regs[d] = v
            for storage, i, v in stw:
                storage.store(i, v)
            return edge
        return step

    def _step_branch(self, ops, taken, edges: Tuple[int, ...]):
        if not ops:
            def step(regs, arr):
                return edges[0] if taken(regs) else edges[1]
            return step
        pure = self._classify(ops)
        if pure is not None:
            computes, dests = pure
            if len(computes) == 1:
                compute, = computes
                d, = dests

                def step(regs, arr):
                    v = compute(regs, arr)
                    t = taken(regs)
                    regs[d] = v
                    return edges[0] if t else edges[1]
                return step

            def step(regs, arr):
                values = [compute(regs, arr) for compute in computes]
                t = taken(regs)
                for d, v in zip(dests, values):
                    regs[d] = v
                return edges[0] if t else edges[1]
            return step
        execs = self._generic_execs(ops)

        def step(regs, arr):
            regw: List = []
            stw: List = []
            for execute in execs:
                execute(regs, arr, regw, stw)
            t = taken(regs)
            for d, v in regw:
                regs[d] = v
            for storage, i, v in stw:
                storage.store(i, v)
            return edges[0] if t else edges[1]
        return step

    def _step_ret(self, ops, read_ret):
        if not ops:
            def step(regs, arr):
                regs[0] = read_ret(regs)
                return -1
            return step
        execs = self._generic_execs(ops)

        def step(regs, arr):
            regw: List = []
            stw: List = []
            for execute in execs:
                execute(regs, arr, regw, stw)
            value = read_ret(regs)
            for d, v in regw:
                regs[d] = v
            for storage, i, v in stw:
                storage.store(i, v)
            regs[0] = value
            return -1
        return step


class _CompiledGraph:
    """One function graph compiled to closures."""

    __slots__ = ("name", "param_plan", "local_plan", "global_plan",
                 "missing_plan", "n_regs", "n_arrays", "n_params",
                 "steps", "edge_dst", "edge_pairs", "node_ids", "entry_idx")

    def __init__(self, graph: ProgramGraph, module: GraphModule,
                 cmod: "CompiledModule"):
        compiler = _GraphCompiler(graph, module, cmod)
        self.name = graph.name
        self.n_params = len(graph.params)
        self.param_plan, self.local_plan = compiler.build_plans()

        # Compile every node; edge indices are assigned in node order.
        node_ids: List[int] = list(graph.nodes)
        idx_of = {node_id: i for i, node_id in enumerate(node_ids)}
        steps: List = []
        edge_dst: List[int] = []
        edge_pairs: List[Tuple[int, int]] = []
        dangling: List[Tuple[int, int]] = []  # (edge index, missing node id)
        for nid in node_ids:
            node = graph.nodes[nid]
            steps.append(compiler.compile_step(nid, node, len(edge_dst)))
            for succ in node.succs:
                edge_pairs.append((nid, succ))
                dst = idx_of.get(succ)
                if dst is None:
                    dangling.append((len(edge_dst), succ))
                    dst = -1
                edge_dst.append(dst)
        for edge_index, missing in dangling:
            def bad_target(regs, arr, _missing=missing):
                raise SimulationError(f"unknown node {_missing}")
            edge_dst[edge_index] = len(steps)
            steps.append(bad_target)

        self.steps = steps
        self.edge_dst = edge_dst
        self.edge_pairs = edge_pairs
        self.node_ids = node_ids
        self.entry_idx = idx_of.get(graph.entry, -1)
        self.global_plan = compiler.global_plan
        self.missing_plan = compiler.missing_plan
        self.n_regs = len(compiler.reg_slots) + 1
        self.n_arrays = len(compiler.arr_slots)


class CompiledModule:
    """All graphs of one :class:`GraphModule` in compiled form."""

    def __init__(self, module: GraphModule):
        self.module = module
        self.graphs: Dict[str, _CompiledGraph] = {}
        self._state: Optional[_RunState] = None
        for name, graph in module.graphs.items():
            self.graphs[name] = _CompiledGraph(graph, module, self)
        self._signature = _structure_signature(module)


def compile_module(module: GraphModule) -> CompiledModule:
    """Compiled form of *module*, cached on the module itself.

    The cache is validated against a structural signature, so the
    exploration loop's repeated runs reuse compilation while any graph
    mutation (chain selection, optimizer passes) triggers a recompile.
    """
    cached = module.__dict__.get("_compiled_cache")
    if cached is not None and _signature_matches(module, cached._signature):
        return cached
    compiled = CompiledModule(module)
    module._compiled_cache = compiled
    return compiled


# -- bytecode lowering -------------------------------------------------------------
#
# The third engine tier lowers each graph into *direct-threaded words*:
# every instruction is one flat list ``[opcode, operand, ...]`` whose
# operands are pre-resolved register/array slot indices, inlined constants
# and — for control transfers — direct references to the successor word,
# so the dispatch loop in :mod:`repro.sim.bytecode` never touches a
# program counter, a closure or a dict.  The lowering lives here so both
# compiled forms share the slot machinery (:class:`_FrameLayout`), the
# operation tables and the structural-signature cache protocol.
#
# Conventions: register slots index the frame's flat ``regs`` list (slot 0
# = return value).  Per-node scratch values live at *negative* indices —
# the register list is sized ``named + 1 + watermark`` so the tail region
# never collides with named slots.  Profile counting is reduced to one
# increment per *branch* edge: fall-through edge counts equal their source
# node's execution count, and node counts equal in-edge sums plus call
# arrivals, so :meth:`_LoweredGraph.resolve_counters` reconstructs the
# exact flat arrays (bit-identical for completed runs — aborted runs
# discard their profile on every engine) that
# :meth:`ProfileData.merge_arrays` folds unchanged.

_opcode_ids = itertools.count()


def _op() -> int:
    return next(_opcode_ids)


# Fused forms — one operation plus the fall-through jump, the dominant
# node shape of level-0 graphs: one dispatch and zero Python calls per
# machine cycle.  The ladder compares opcodes sequentially, so these are
# declared hottest-first.  The trailing operand of every word is the
# successor word (for fused/jump forms: the jump target).
ADD_RR_J = _op()     # d a b T
LOAD_J = _op()       # d k i T
BR = _op()           # c e0 T0 e1 T1
ADD_RC_J = _op()     # d a c T
J = _op()            # T      (forward jump: no cycle-limit check)
JB = _op()           # T      (backward jump: bumps + checks the limit)
BINF_RC_J = _op()    # d f a c T
MUL_RC_J = _op()     # d a c T
SUB_RC_J = _op()     # d a c T
MUL_RR_J = _op()     # d a b T
SUB_RR_J = _op()     # d a b T
STORE_J = _op()      # k v i T
MOV_C_J = _op()      # d c T
MOV_R_J = _op()      # d a name T
LOADC_J = _op()      # d k ci T
BINF_RR_J = _op()    # d f a b T
BINF_CR_J = _op()    # d f c b T
STORE_CI_J = _op()   # k v ci T
NEG_J = _op()        # d a T
UNF_J = _op()        # d f a T
# Deferred-node plumbing (VLIW nodes whose writes must commit after
# reads and cannot be statically reordered).
CP = _op()           # d s N        regs[d] = regs[s]
CP2 = _op()          # d1 s1 d2 s2 N
TEST = _op()         # s c N        regs[s] = regs[c] != 0 (pre-commit)
# Un-fused value forms (multi-operation nodes).
ADD_RR = _op()       # d a b N
ADD_RC = _op()       # d a c N
SUB_RR = _op()       # d a b N
SUB_RC = _op()       # d a c N
MUL_RR = _op()       # d a b N
MUL_RC = _op()       # d a c N
LOAD = _op()         # d k i N
LOADC = _op()        # d k ci N
MOV_C = _op()        # d c N
MOV_R = _op()        # d a name N  (undefined-register check, like the
                     #              closure engine's checked MOV reader)
BINF_RR = _op()      # d f a b N
BINF_RC = _op()      # d f a c N
BINF_CR = _op()      # d f c b N
BINF_CC = _op()      # d f c1 c2 N (kept runtime: div-by-zero raises only
                     #              when executed)
NEG = _op()          # d a N
UNF = _op()          # d f a N
UNFC = _op()         # d f c N
# Stores: value spec x index spec (R = register slot, C = inline const).
ST_RR = _op()        # k v i N
ST_RC = _op()        # k v ci N
ST_CR = _op()        # k cv i N
ST_CC = _op()        # k cv ci N
# Deferred store commits (operands pre-captured in scratch or inline).
STD_SS = _op()       # k i v N
STD_SC = _op()       # k i cv N
STD_CS = _op()       # k ci v N
STD_CC = _op()       # k ci cv N
RETREAD = _op()      # s r name N  (pre-commit checked read of the return
                     #              register)
INTRN = _op()        # d f specs N (generic intrinsic)
CALL = _op()         # callee dspec specs N
RET_R = _op()        # r name
RET_C = _op()        # c
RET_N = _op()        # -
RET_S = _op()        # s
ERROR = _op()        # message     raise SimulationError(message)

#: Binary opcodes with dedicated inline arms: op -> (RR form, RC form,
#: commutative).  Commutative const/reg operands fold into the RC form;
#: everything else goes through the generic BINF arms with the function
#: object inlined in the word.
_SPEC_BINARY = {
    Op.ADD: (ADD_RR, ADD_RC, True),
    Op.FADD: (ADD_RR, ADD_RC, True),
    Op.SUB: (SUB_RR, SUB_RC, False),
    Op.FSUB: (SUB_RR, SUB_RC, False),
    Op.MUL: (MUL_RR, MUL_RC, True),
    Op.FMUL: (MUL_RR, MUL_RC, True),
}

#: Un-fused opcode -> its fused-with-fall-jump form (same word layout:
#: the trailing next-word slot becomes the jump target).
_FUSED_FORM = {
    ADD_RR: ADD_RR_J, ADD_RC: ADD_RC_J,
    SUB_RR: SUB_RR_J, SUB_RC: SUB_RC_J,
    MUL_RR: MUL_RR_J, MUL_RC: MUL_RC_J,
    LOAD: LOAD_J, LOADC: LOADC_J,
    MOV_C: MOV_C_J, MOV_R: MOV_R_J,
    BINF_RR: BINF_RR_J, BINF_RC: BINF_RC_J, BINF_CR: BINF_CR_J,
    NEG: NEG_J, UNF: UNF_J,
    ST_RR: STORE_J, ST_RC: STORE_CI_J,
}

#: Edge classes for profile reconstruction.
_EDGE_ZERO = 0      # never jumped (error nodes, const-branch untaken)
_EDGE_COUNTED = 1   # branch edges: runtime counter
_EDGE_DERIVED = 2   # fall/jump edges: count == source node's count


class _BytecodeLowerer(_FrameLayout):
    """Lowers one :class:`ProgramGraph` into direct-threaded words."""

    def __init__(self, graph: ProgramGraph, module: GraphModule,
                 lmod: "LoweredModule", idx_of: Dict[int, int]):
        super().__init__(graph, module)
        self.lmod = lmod
        self.idx_of = idx_of
        self._node_idx = -1
        self.words: List[list] = []
        self.edge_pairs: List[Tuple[int, int]] = []
        self.edge_class: List[int] = []
        #: (word, slot, successor node id) fixed up once all nodes exist.
        self.patches: List[Tuple[list, int, int]] = []
        self.scratch_watermark = 0
        self._scratch_used = 0
        self._pending: Optional[list] = None

    # -- word emission -------------------------------------------------------------

    def _emit(self, word: list, terminal: bool = False) -> list:
        """Append *word*, threading the previous word's next-slot to it.

        Non-terminal words carry a trailing ``None`` placeholder that the
        *next* emitted word fills; terminal words (jumps, returns, errors)
        end the thread."""
        pending = self._pending
        if pending is not None:
            pending[-1] = word
        self._pending = None if terminal else word
        self.words.append(word)
        return word

    def _emit_jump(self, edge_index: int, succ: int) -> None:
        # The in-loop cycle limit is checked at loop back-edges, branches
        # and frame entries only: every CFG cycle contains a backward
        # edge in the fixed node order, so a runaway program still
        # aborts.  A *bounded* overrun that slips past this sparse check
        # is caught exactly at the end of the run, when the engine
        # compares the reconstructed cycle count against the limit — so
        # a run either completes within the limit on every engine or
        # raises on every engine (the abort point inside an aborted run
        # may differ; aborted runs discard all results everywhere).
        opcode = JB if self._is_backward(succ) else J
        word = self._emit([opcode, None], terminal=True)
        self.patches.append((word, 1, succ))
        self.edge_class[edge_index] = _EDGE_DERIVED

    def _is_backward(self, succ: int) -> bool:
        target = self.idx_of.get(succ)
        return target is not None and target <= self._node_idx

    # -- scratch slots -------------------------------------------------------------

    def _scratch(self) -> int:
        self._scratch_used += 1
        if self._scratch_used > self.scratch_watermark:
            self.scratch_watermark = self._scratch_used
        return -self._scratch_used

    # -- per-operation emission ----------------------------------------------------

    def _emit_error(self, message: str) -> int:
        self._emit([ERROR, message], terminal=True)
        return 1

    def _emit_binary(self, op: Op, fn, lhs, rhs, d: int) -> int:
        lhs_reg = isinstance(lhs, VirtualReg)
        rhs_reg = isinstance(rhs, VirtualReg)
        lhs_const = isinstance(lhs, Constant)
        rhs_const = isinstance(rhs, Constant)
        if not (lhs_reg or lhs_const):
            return self._emit_error(f"cannot read operand {lhs!r}")
        if not (rhs_reg or rhs_const):
            return self._emit_error(f"cannot read operand {rhs!r}")
        spec = _SPEC_BINARY.get(op)
        if lhs_reg and rhs_reg:
            a, b = self.reg_slot(lhs.name), self.reg_slot(rhs.name)
            if spec is not None:
                self._emit([spec[0], d, a, b, None])
            else:
                self._emit([BINF_RR, d, fn, a, b, None])
        elif lhs_reg:
            a = self.reg_slot(lhs.name)
            if spec is not None:
                self._emit([spec[1], d, a, rhs.value, None])
            else:
                self._emit([BINF_RC, d, fn, a, rhs.value, None])
        elif rhs_reg:
            b = self.reg_slot(rhs.name)
            if spec is not None and spec[2]:
                self._emit([spec[1], d, b, lhs.value, None])
            else:
                self._emit([BINF_CR, d, fn, lhs.value, b, None])
        else:
            self._emit([BINF_CC, d, fn, lhs.value, rhs.value, None])
        return 1

    def _emit_value(self, ins: Instruction, d: int) -> Optional[int]:
        """Emit *ins* computing into ``regs[d]``; ``None`` when the opcode
        produces no value (stores, calls, chains, nops)."""
        op = ins.op
        fn = _BINARY_FN.get(op)
        if fn is not None:
            return self._emit_binary(op, fn, ins.srcs[0], ins.srcs[1], d)
        fn = _UNARY_FN.get(op)
        if fn is not None:
            src = ins.srcs[0]
            if isinstance(src, VirtualReg):
                if op is Op.NEG or op is Op.FNEG:
                    self._emit([NEG, d, self.reg_slot(src.name), None])
                else:
                    self._emit([UNF, d, fn, self.reg_slot(src.name), None])
                return 1
            if isinstance(src, Constant):
                self._emit([UNFC, d, fn, src.value, None])
                return 1
            return self._emit_error(f"cannot read operand {src!r}")
        if op is Op.MOV or op is Op.FMOV:
            src = ins.srcs[0]
            if isinstance(src, Constant):
                self._emit([MOV_C, d, src.value, None])
                return 1
            if isinstance(src, VirtualReg):
                self._emit([MOV_R, d, self.reg_slot(src.name), src.name,
                            None])
                return 1
            return self._emit_error(f"cannot read operand {src!r}")
        if op is Op.LOAD or op is Op.FLOAD:
            name = ins.array.name
            if not self.array_is_bound(name):
                return self._emit_error(f"unknown array {name!r}")
            k = self.arr_slot(name)
            index = ins.srcs[0]
            if isinstance(index, VirtualReg):
                self._emit([LOAD, d, k, self.reg_slot(index.name), None])
                return 1
            if isinstance(index, Constant):
                self._emit([LOADC, d, k, index.value, None])
                return 1
            return self._emit_error(f"cannot read operand {index!r}")
        if op is Op.INTRIN:
            return self._emit_intrinsic(ins, d)
        return None

    def _emit_intrinsic(self, ins: Instruction, d: int) -> int:
        impl = INTRINSIC_IMPL.get(ins.callee)
        if impl is None:
            return self._emit_error(f"unknown intrinsic {ins.callee!r}")
        srcs = ins.srcs
        if len(srcs) == 1 and isinstance(srcs[0], VirtualReg):
            self._emit([UNF, d, impl, self.reg_slot(srcs[0].name), None])
            return 1
        if len(srcs) == 2 and isinstance(srcs[0], VirtualReg) \
                and isinstance(srcs[1], VirtualReg):
            self._emit([BINF_RR, d, impl, self.reg_slot(srcs[0].name),
                        self.reg_slot(srcs[1].name), None])
            return 1
        specs = []
        for src in srcs:
            if isinstance(src, VirtualReg):
                specs.append((0, self.reg_slot(src.name)))
            elif isinstance(src, Constant):
                specs.append((1, src.value))
            else:
                specs.append((2, f"cannot read operand {src!r}"))
        self._emit([INTRN, d, impl, tuple(specs), None])
        return 1

    def _emit_store_direct(self, ins: Instruction) -> int:
        name = ins.array.name
        if not self.array_is_bound(name):
            return self._emit_error(f"unknown array {name!r}")
        k = self.arr_slot(name)
        value, index = ins.srcs[0], ins.srcs[1]
        i_reg = isinstance(index, VirtualReg)
        v_reg = isinstance(value, VirtualReg)
        if not i_reg and not isinstance(index, Constant):
            return self._emit_error(f"cannot read operand {index!r}")
        if not v_reg and not isinstance(value, Constant):
            return self._emit_error(f"cannot read operand {value!r}")
        if v_reg and i_reg:
            self._emit([ST_RR, k, self.reg_slot(value.name),
                        self.reg_slot(index.name), None])
        elif v_reg:
            self._emit([ST_RC, k, self.reg_slot(value.name), index.value,
                        None])
        elif i_reg:
            self._emit([ST_CR, k, value.value, self.reg_slot(index.name),
                        None])
        else:
            self._emit([ST_CC, k, value.value, index.value, None])
        return 1

    def _emit_call(self, ins: Instruction, dspec: Optional[int]) -> int:
        # Argument specs: 0 = checked register (slot, name), 1 = constant,
        # 2 = array slot, 3 = unbound array name, 4 = unreadable operand.
        specs = []
        for src in ins.srcs:
            if isinstance(src, ArraySymbol):
                name = src.name
                if name in self.arr_slots \
                        or name in self.module.global_arrays:
                    specs.append((2, self.arr_slot(name), None))
                else:
                    specs.append((3, name, None))
            elif isinstance(src, VirtualReg):
                specs.append((0, self.reg_slot(src.name), src.name))
            elif isinstance(src, Constant):
                specs.append((1, src.value, None))
            else:
                specs.append((4, f"cannot read operand {src!r}", None))
        self._emit([CALL, ins.callee, dspec, tuple(specs), None])
        return 1

    def _emit_op_direct(self, ins: Instruction) -> int:
        """Emit *ins* with immediate writes; returns words emitted.

        Used for hazard-free nodes (direct order is then bit-identical to
        the read/commit discipline) and for chain parts, whose commits
        are immediate by definition."""
        op = ins.op
        if op is Op.CHAIN and getattr(ins, "parts", None) is not None:
            count = 0
            for part in ins.parts:
                count += self._emit_op_direct(part)
            return count
        if op is Op.NOP:
            return 0
        if op is Op.STORE or op is Op.FSTORE:
            return self._emit_store_direct(ins)
        if op is Op.CALL:
            d = self.reg_slot(ins.dest.name) if ins.dest is not None else None
            return self._emit_call(ins, d)
        if ins.dest is not None:
            d = self.reg_slot(ins.dest.name)
        else:
            d = self._scratch()  # computed and discarded; errors still raise
        emitted = self._emit_value(ins, d)
        if emitted is None:
            return self._emit_error(f"cannot execute {ins}")
        return emitted

    def _defer_operand(self, operand):
        """(is_const, payload) for a deferred-store operand; register
        values are captured into scratch at read time."""
        if isinstance(operand, Constant):
            return (True, operand.value)
        if isinstance(operand, VirtualReg):
            s = self._scratch()
            self._emit([CP, s, self.reg_slot(operand.name), None])
            return (False, s)
        self._emit_error(f"cannot read operand {operand!r}")
        return None

    def _emit_op_deferred(self, ins: Instruction, pending_regs: List,
                          pending_stores: List) -> None:
        """Emit *ins* in read phase, deferring its writes into the pending
        lists committed at the end of the node's cycle."""
        op = ins.op
        if op is Op.CHAIN and getattr(ins, "parts", None) is not None:
            self._emit_op_direct(ins)  # chain commits are immediate
            return
        if op is Op.NOP:
            return
        if op is Op.STORE or op is Op.FSTORE:
            name = ins.array.name
            if not self.array_is_bound(name):
                self._emit_error(f"unknown array {name!r}")
                return
            k = self.arr_slot(name)
            ispec = self._defer_operand(ins.srcs[1])
            if ispec is None:
                return
            vspec = self._defer_operand(ins.srcs[0])
            if vspec is None:
                return
            pending_stores.append((k, ispec, vspec))
            return
        if op is Op.CALL:
            if ins.dest is not None:
                s = self._scratch()
                self._emit_call(ins, s)
                pending_regs.append((self.reg_slot(ins.dest.name), s))
            else:
                self._emit_call(ins, None)
            return
        s = self._scratch()
        emitted = self._emit_value(ins, s)
        if emitted is None:
            self._emit_error(f"cannot execute {ins}")
            return
        if ins.dest is not None:
            pending_regs.append((self.reg_slot(ins.dest.name), s))

    def _emit_commits(self, pending_regs: List,
                      pending_stores: List) -> None:
        """Commit registers (op order) then stores (op order)."""
        i = 0
        count = len(pending_regs)
        while count - i >= 2:
            d1, s1 = pending_regs[i]
            d2, s2 = pending_regs[i + 1]
            self._emit([CP2, d1, s1, d2, s2, None])
            i += 2
        if i < count:
            d, s = pending_regs[i]
            self._emit([CP, d, s, None])
        for k, (i_const, iv), (v_const, vv) in pending_stores:
            if i_const and v_const:
                self._emit([STD_CC, k, iv, vv, None])
            elif i_const:
                self._emit([STD_CS, k, iv, vv, None])
            elif v_const:
                self._emit([STD_SC, k, iv, vv, None])
            else:
                self._emit([STD_SS, k, iv, vv, None])

    # -- hazard analysis -----------------------------------------------------------

    @staticmethod
    def _chain_effects(ins: Instruction, reads: set, writes: set) -> None:
        for part in ins.parts:
            if part.op is Op.CHAIN and getattr(part, "parts", None) \
                    is not None:
                _BytecodeLowerer._chain_effects(part, reads, writes)
                continue
            for src in part.srcs:
                if isinstance(src, VirtualReg):
                    reads.add(src.name)
            if part.dest is not None:
                writes.add(part.dest.name)

    def _needs_defer(self, node: Node) -> bool:
        """True when direct in-order emission would let some operation (or
        the control instruction) observe a same-cycle write that the VLIW
        read/commit discipline hides from it.  Conservative: deferred
        emission is always correct, direct is the fast path."""
        written: set = set()
        store_seen = False
        for ins in node.ops:
            op = ins.op
            if op is Op.CHAIN and getattr(ins, "parts", None) is not None:
                if store_seen:
                    return True  # the chain would see the pending store
                reads: set = set()
                writes: set = set()
                self._chain_effects(ins, reads, writes)
                if (reads | writes) & written:
                    return True
                continue
            for src in ins.srcs:
                if isinstance(src, VirtualReg) and src.name in written:
                    return True
            if op is Op.STORE or op is Op.FSTORE:
                store_seen = True
            elif (op is Op.LOAD or op is Op.FLOAD or op is Op.CALL) \
                    and store_seen:
                return True
            if ins.dest is not None:
                written.add(ins.dest.name)
        control = node.control
        if control is not None:
            for src in control.srcs:
                if isinstance(src, VirtualReg) and src.name in written:
                    return True
        return False

    def _reorder_for_direct(self, node: Node) -> Optional[List[Instruction]]:
        """Try to order a hazardous node's operations so direct emission is
        still bit-identical: every reader runs before the writer it must
        not observe, loads and pure computes run before stores, stores
        keep their relative order (the write-phase commit order).

        Returns the reordered op list, or ``None`` when the node cannot be
        statically untangled (chains and calls have positional immediate
        effects; true read/write cycles — swap patterns — need scratch).
        Within the reordered read phase the evaluation *order* of
        independent operations changes, which is unobservable for
        completed runs (all reads still see pre-cycle state).
        """
        ops = node.ops
        stores: List[Instruction] = []
        computes: List[Instruction] = []
        for ins in ops:
            op = ins.op
            if op is Op.CHAIN or op is Op.CALL:
                return None
            if op is Op.STORE or op is Op.FSTORE:
                stores.append(ins)
            else:
                computes.append(ins)
        dests: Dict[str, List[int]] = {}
        for i, ins in enumerate(computes):
            if ins.dest is not None:
                dests.setdefault(ins.dest.name, []).append(i)
        # stores run last, so their operands must not be in-node defs
        for ins in stores:
            for src in ins.srcs:
                if isinstance(src, VirtualReg) and src.name in dests:
                    return None
        # reader-before-writer topological order over the computes
        succs: List[List[int]] = [[] for _ in computes]
        degree = [0] * len(computes)
        for i, ins in enumerate(computes):
            for src in ins.srcs:
                if not isinstance(src, VirtualReg):
                    continue
                for j in dests.get(src.name, ()):
                    if j != i:
                        succs[i].append(j)  # i (reader) before j (writer)
                        degree[j] += 1
        # same-dest writers keep their relative order (last write wins)
        for writers in dests.values():
            for a, b in zip(writers, writers[1:]):
                succs[a].append(b)
                degree[b] += 1
        order: List[Instruction] = []
        ready = [i for i in range(len(computes)) if degree[i] == 0]
        ready.reverse()  # pop() from the front -> stable original order
        while ready:
            i = ready.pop()
            order.append(computes[i])
            pending: List[int] = []
            for j in succs[i]:
                degree[j] -= 1
                if degree[j] == 0:
                    pending.append(j)
            pending.reverse()
            ready.extend(pending)
        if len(order) != len(computes):
            return None  # a genuine read/write cycle: fall back to scratch
        return order + stores

    # -- node lowering -------------------------------------------------------------

    def _emit_branch(self, cond, cond_slot: Optional[int], edge_base: int,
                     succs: List[int]) -> None:
        # A malformed single-successor branch still *runs* on the other
        # engines as long as only the true edge is taken, so the error
        # word for the missing false edge is reached only when that edge
        # is actually traversed.
        missing = (f"{self.graph.name}: branch node with "
                   f"{len(succs)} successors has no false edge")
        if cond_slot is None and isinstance(cond, Constant):
            chosen = 0 if cond.value != 0 else 1
            if chosen < len(succs):
                self._emit_jump(edge_base + chosen, succs[chosen])
            else:
                self._emit_error(missing)
            return
        if cond_slot is None:
            if isinstance(cond, VirtualReg):
                cond_slot = self.reg_slot(cond.name)
            else:
                self._emit_error(f"cannot read operand {cond!r}")
                return
        if len(succs) >= 2:
            word = self._emit([BR, cond_slot, edge_base, None,
                               edge_base + 1, None], terminal=True)
            self.patches.append((word, 3, succs[0]))
            self.patches.append((word, 5, succs[1]))
            self.edge_class[edge_base] = _EDGE_COUNTED
            self.edge_class[edge_base + 1] = _EDGE_COUNTED
            return
        # One successor: the false leg jumps straight to an error word
        # (its edge-counter operand reuses the true edge's slot — the run
        # aborts immediately, discarding the profile).
        error_word = [ERROR, missing]
        word = self._emit([BR, cond_slot, edge_base, None,
                           edge_base, error_word], terminal=True)
        self.patches.append((word, 3, succs[0]))
        self.edge_class[edge_base] = _EDGE_COUNTED
        self._emit(error_word, terminal=True)

    def _emit_return(self, control: Instruction,
                     ret_slot: Optional[int]) -> None:
        if ret_slot is not None:
            self._emit([RET_S, ret_slot], terminal=True)
            return
        if not control.srcs:
            self._emit([RET_N], terminal=True)
            return
        value = control.srcs[0]
        if isinstance(value, Constant):
            self._emit([RET_C, value.value], terminal=True)
        elif isinstance(value, VirtualReg):
            self._emit([RET_R, self.reg_slot(value.name), value.name],
                       terminal=True)
        else:
            self._emit_error(f"cannot read operand {value!r}")

    def _control_prereads(self, node: Node, is_br: bool, is_ret: bool,
                          pre_cycle_only: bool):
        """Capture control operands into scratch before any same-node
        write can land.  ``pre_cycle_only`` limits the capture to nodes
        whose operations write a register the control instruction reads
        (the reordered-direct path); the deferred path always captures."""
        control = node.control
        cond_slot = None
        ret_slot = None
        if pre_cycle_only:
            dests = {ins.dest.name for ins in node.ops
                     if ins.op is not Op.CHAIN and ins.dest is not None}
            hazard = any(isinstance(src, VirtualReg) and src.name in dests
                         for src in control.srcs)
            if not hazard:
                return None, None
        if is_br and isinstance(control.srcs[0], VirtualReg):
            cond_slot = self._scratch()
            self._emit([TEST, cond_slot,
                        self.reg_slot(control.srcs[0].name), None])
        elif is_ret and control.srcs \
                and isinstance(control.srcs[0], VirtualReg):
            ret_slot = self._scratch()
            self._emit([RETREAD, ret_slot,
                        self.reg_slot(control.srcs[0].name),
                        control.srcs[0].name, None])
        return cond_slot, ret_slot

    def lower_node(self, nid: int, node: Node) -> None:
        self._scratch_used = 0
        self._node_idx = self.idx_of[nid]
        succs = node.succs
        edge_base = len(self.edge_pairs)
        for succ in succs:
            self.edge_pairs.append((nid, succ))
            self.edge_class.append(_EDGE_ZERO)
        control = node.control
        is_ret = control is not None and control.op is Op.RET
        is_br = control is not None and control.op is Op.BR
        if not is_ret and not is_br and len(succs) != 1:
            # mirrors the closure engine: the malformed node raises before
            # executing any of its operations
            self._emit_error(
                f"{self.graph.name}: node {nid} has {len(succs)} "
                f"successors but no branch")
            return
        if is_br and not succs:
            # no successors at all: nothing a branch can ever transfer to
            self._emit_error(
                f"{self.graph.name}: node {nid} branches with "
                f"no successors")
            return

        ops = node.ops
        direct_ops: Optional[List[Instruction]] = ops
        prereads = False
        if self._needs_defer(node):
            direct_ops = self._reorder_for_direct(node)
            prereads = direct_ops is not None

        if direct_ops is not None:
            cond_slot = ret_slot = None
            if prereads and control is not None:
                cond_slot, ret_slot = self._control_prereads(
                    node, is_br, is_ret, pre_cycle_only=True)
            if not is_ret and not is_br:
                # fall-through fast path: the node's last operation fuses
                # with the jump, saving one dispatch per machine cycle
                # (a one-operation node becomes a single fused word).
                # Backward falls stay un-fused: the JB word carries the
                # cycle-limit check for the loop.
                for ins in direct_ops:
                    self._emit_op_direct(ins)
                tail = self._pending
                fused = _FUSED_FORM.get(tail[0]) \
                    if tail is not None and not self._is_backward(succs[0]) \
                    else None
                if fused is not None:
                    tail[0] = fused
                    self._pending = None
                    self.patches.append((tail, len(tail) - 1, succs[0]))
                    self.edge_class[edge_base] = _EDGE_DERIVED
                else:
                    self._emit_jump(edge_base, succs[0])
                return
            for ins in direct_ops:
                self._emit_op_direct(ins)
            if is_br:
                self._emit_branch(control.srcs[0], cond_slot, edge_base,
                                  succs)
            else:
                self._emit_return(control, ret_slot)
            return

        pending_regs: List = []
        pending_stores: List = []
        for ins in ops:
            self._emit_op_deferred(ins, pending_regs, pending_stores)
        cond_slot = ret_slot = None
        if control is not None:
            cond_slot, ret_slot = self._control_prereads(
                node, is_br, is_ret, pre_cycle_only=False)
        self._emit_commits(pending_regs, pending_stores)
        if is_br:
            self._emit_branch(control.srcs[0], cond_slot, edge_base, succs)
        elif is_ret:
            self._emit_return(control, ret_slot)
        else:
            self._emit_jump(edge_base, succs[0])


class _LoweredGraph:
    """One function graph in direct-threaded bytecode form."""

    __slots__ = ("name", "n_params", "param_plan", "local_plan",
                 "global_plan", "missing_plan", "n_regs", "n_arrays",
                 "scratch_watermark", "words", "entry_word", "entry_idx",
                 "node_ids", "edge_pairs", "n_counters", "_in_edges",
                 "_derived_out", "_derived_in_count", "_edge_dst_idx")

    def __init__(self, graph: ProgramGraph, module: GraphModule,
                 lmod: "LoweredModule"):
        node_ids: List[int] = list(graph.nodes)
        idx_of = {node_id: i for i, node_id in enumerate(node_ids)}
        low = _BytecodeLowerer(graph, module, lmod, idx_of)
        self.name = graph.name
        self.n_params = len(graph.params)
        self.param_plan, self.local_plan = low.build_plans()

        node_word: Dict[int, list] = {}
        for nid in node_ids:
            start = len(low.words)
            low.lower_node(nid, graph.nodes[nid])
            node_word[nid] = low.words[start]

        # Dangling edges jump to an "unknown node" stub counted on its own
        # index, exactly like the closure engine's stub steps.
        stubs: Dict[int, Tuple[list, int]] = {}
        n_counters = len(node_ids)
        for word, slot, succ in low.patches:
            target = node_word.get(succ)
            if target is None:
                if succ not in stubs:
                    stub = [ERROR, f"unknown node {succ}"]
                    low.words.append(stub)
                    stubs[succ] = (stub, n_counters)
                    n_counters += 1
                target = stubs[succ][0]
            word[slot] = target

        # Profile-reconstruction tables: which counter each edge feeds and
        # which derived edges each node's count propagates to.
        edge_dst_idx: List[int] = []
        in_edges: List[List[int]] = [[] for _ in range(n_counters)]
        derived_out: List[List[int]] = [[] for _ in range(n_counters)]
        derived_in_count = [0] * n_counters
        for e, (src_nid, dst_nid) in enumerate(low.edge_pairs):
            cls = low.edge_class[e]
            if cls == _EDGE_ZERO:
                edge_dst_idx.append(-1)
                continue
            dst_idx = idx_of.get(dst_nid)
            if dst_idx is None:
                dst_idx = stubs[dst_nid][1]
            edge_dst_idx.append(dst_idx)
            in_edges[dst_idx].append(e)
            if cls == _EDGE_DERIVED:
                derived_out[idx_of[src_nid]].append(e)
                derived_in_count[dst_idx] += 1

        self.words = low.words
        self.node_ids = node_ids
        self.edge_pairs = low.edge_pairs
        self.n_counters = n_counters
        self.entry_idx = idx_of.get(graph.entry, -1)
        self.entry_word = node_word.get(graph.entry)
        self.global_plan = low.global_plan
        self.missing_plan = low.missing_plan
        self.n_regs = len(low.reg_slots) + 1 + low.scratch_watermark
        self.n_arrays = len(low.arr_slots)
        # Kept for the codegen tier: how many scratch (negative) slots
        # the generated source must declare as locals.
        self.scratch_watermark = low.scratch_watermark
        self._in_edges = in_edges
        self._derived_out = derived_out
        self._derived_in_count = derived_in_count
        self._edge_dst_idx = edge_dst_idx

    def __getstate__(self):
        """Pickle form with word references flattened to indices.

        Words reference their successor words *directly* (that is what
        makes the dispatch loop fast), which makes the raw object graph
        both cyclic and as deeply nested as the longest straight-line
        thread — default pickling would hit the recursion limit on any
        non-trivial graph.  Word-reference operands (always ``list``
        objects; every other operand kind is a scalar, string, tuple or
        function) are replaced by their index into ``words`` and
        restored by :meth:`__setstate__`.  The disk cache
        (:mod:`repro.sim.diskcache`) relies on this round trip.
        """
        index = {id(word): i for i, word in enumerate(self.words)}
        packed: List[list] = []
        refs: List[List[Tuple[int, int]]] = []
        for word in self.words:
            slots = [(s, index[id(op)]) for s, op in enumerate(word)
                     if isinstance(op, list)]
            if slots:
                word = list(word)
                for s, _ in slots:
                    word[s] = None
            packed.append(word)
            refs.append(slots)
        state = {name: getattr(self, name) for name in self.__slots__
                 if name not in ("words", "entry_word")}
        state["packed_words"] = packed
        state["word_refs"] = refs
        state["entry_word_index"] = None if self.entry_word is None \
            else index[id(self.entry_word)]
        return state

    def __setstate__(self, state):
        packed = state.pop("packed_words")
        refs = state.pop("word_refs")
        entry = state.pop("entry_word_index")
        words = [list(word) for word in packed]
        for word, slots in zip(words, refs):
            for s, i in slots:
                word[s] = words[i]
        for name, value in state.items():
            setattr(self, name, value)
        self.words = words
        self.entry_word = None if entry is None else words[entry]

    def resolve_counters(self, branch_hits: List[int],
                         calls: int) -> Tuple[List[int], List[int]]:
        """Reconstruct the full flat (node_hits, edge_hits) arrays from
        the runtime branch-edge counters and the frame-entry count.

        Node executions equal in-edge traversals plus frame arrivals at
        the entry node; fall-through edge traversals equal their source
        node's executions.  Both identities are exact for completed runs
        (an aborted run discards its profile on every engine).  The
        propagation is a worklist over the acyclic derivation graph — a
        cycle would be an all-fall-through CFG loop, which cannot
        terminate, so anything left unresolved was never executed and
        stays zero.
        """
        edge_hits = list(branch_hits)
        node_hits = [0] * self.n_counters
        in_edges = self._in_edges
        derived_out = self._derived_out
        pending = list(self._derived_in_count)
        entry_idx = self.entry_idx
        ready = [i for i in range(self.n_counters) if pending[i] == 0]
        while ready:
            i = ready.pop()
            total = calls if i == entry_idx else 0
            for e in in_edges[i]:
                total += edge_hits[e]
            node_hits[i] = total
            for e in derived_out[i]:
                edge_hits[e] = total
                dst = self._edge_dst_idx[e]
                pending[dst] -= 1
                if pending[dst] == 0:
                    ready.append(dst)
        return node_hits, edge_hits


class LoweredModule:
    """All graphs of one :class:`GraphModule` in bytecode form."""

    def __init__(self, module: GraphModule):
        self.module = module
        self.graphs: Dict[str, _LoweredGraph] = {}
        for name, graph in module.graphs.items():
            self.graphs[name] = _LoweredGraph(graph, module, self)
        self._signature = _structure_signature(module)

    @classmethod
    def from_graphs(cls, module: GraphModule,
                    graphs: Dict[str, _LoweredGraph]) -> "LoweredModule":
        """Rebind disk-loaded lowered *graphs* to the live *module*.

        The graphs carry everything execution needs (words, frame
        plans, profile tables); only the module reference and the
        in-memory cache signature are process-local, so both are
        re-derived from the live module here.
        """
        lowered = cls.__new__(cls)
        lowered.module = module
        lowered.graphs = graphs
        lowered._signature = _structure_signature(module)
        return lowered


def _payload_verified(module, kind: str, payload, cache,
                      n_lanes: Optional[int] = None,
                      digest: Optional[str] = None) -> bool:
    """The verify-on-load gate shared by every disk-cache load site.

    With ``REPRO_VERIFY`` unset this is free (one env lookup).  When
    set, the payload is statically checked against *module* before any
    reconstruction or ``exec``; a violating — or verifier-crashing —
    payload is counted as ``rejected`` and read as a miss, exactly like
    a corrupt entry, and the caller regenerates.

    A pass is memoized per ``(kind, digest)`` on the cache handle: the
    digest keys the entry file, so a later load of the same key serves
    the same bytes and a re-check could only repeat the verdict.  A
    warm study therefore pays for each distinct artifact once per
    process, not once per load.
    """
    from repro.sim.diskcache import verify_on_load
    if not verify_on_load():
        return True
    if digest is not None and (kind, digest) in cache.verified:
        return True
    try:
        from repro.analysis import verify_codegen as _verifier
        if kind == "bytecode":
            result = _verifier.verify_bytecode_payload(module, payload)
        elif kind == "codegen":
            result = _verifier.verify_codegen_payload(module, payload)
        elif kind == "lanes":
            result = _verifier.verify_lanes_payload(module, payload,
                                                    n_lanes)
        else:
            return True
        ok = result.ok
    except Exception:
        ok = False
    if not ok:
        cache.reject(kind)
    elif digest is not None:
        cache.verified.add((kind, digest))
    return ok


def lower_module(module: GraphModule,
                 _digest: Optional[str] = None) -> LoweredModule:
    """Bytecode form of *module*, cached on the module itself.

    Same cache protocol as :func:`compile_module`: the lowered form is
    validated against the memoized structural signature (streamed, never
    rebuilt on a hit) and invalidated by any graph mutation; the cache is
    stripped at pickle boundaries (``GraphModule.__getstate__``) and
    rebuilt lazily in each worker process.

    Below the in-memory cache sits the disk tier
    (:mod:`repro.sim.diskcache`): on an in-memory miss the module's
    structural digest is looked up on disk first, so a cold process —
    a fresh pool worker, a new CLI invocation — whose module was ever
    lowered before skips the lowering walk entirely.  A fresh lowering
    is published back to disk for the next cold process.

    ``_digest`` lets a caller that already computed the structural
    digest for this exact module state (``generate_module``, whose
    codegen entry shares the key) avoid a second digest walk.
    """
    cached = module.__dict__.get("_lowered_cache")
    if cached is not None and _signature_matches(module, cached._signature):
        return cached
    # One cache handle for the whole miss: lookup, rebuild and store all
    # hit the same directory even if REPRO_CACHE is repointed mid-call.
    from repro.sim.diskcache import get_cache, module_digest
    cache = get_cache()
    digest = None
    if cache is not None:
        digest = _digest if _digest is not None else module_digest(module)
        payload = cache.load("bytecode", digest)
        if payload is not None and not _payload_verified(
                module, "bytecode", payload, cache, digest=digest):
            payload = None
        if payload is not None:
            try:
                lowered = LoweredModule.from_graphs(module,
                                                    payload["graphs"])
            except Exception:
                cache.unusable("bytecode")
            else:
                module._lowered_cache = lowered
                return lowered
    lowered = LoweredModule(module)
    if cache is not None:
        cache.store("bytecode", digest, {"graphs": lowered.graphs})
    module._lowered_cache = lowered
    return lowered


# -- execution --------------------------------------------------------------------


def run_lowered_module(module: GraphModule, lmod: LoweredModule,
                       max_cycles: int,
                       inputs: Optional[Dict[str, Sequence]],
                       call_entry) -> MachineResult:
    """Shared run frame of the word-executing tiers (bytecode, codegen).

    Both tiers differ only in *how* the entry graph executes —
    ``call_entry(entry_name, state)`` is the bytecode dispatch loop or
    the generated function — while everything around it is one
    contract: globals built from initializers and bound to *inputs*,
    branch-only runtime counters sized per graph, node/edge profiles
    reconstructed exactly via :meth:`_LoweredGraph.resolve_counters`,
    and the sparse-in-run / exact-post-run cycle-limit check (a bounded
    overrun that slips past the back-edge checks still aborts here, so
    a run either completes within the limit on every engine or raises
    on every engine).
    """
    globals_: Dict[str, ArrayStorage] = {}
    for name, symbol in module.global_arrays.items():
        init = module.array_initializers.get(name)
        globals_[name] = ArrayStorage(symbol, init)
    if inputs:
        for name, values in inputs.items():
            if name not in globals_:
                raise SimulationError(
                    f"input {name!r} does not match any global array")
            globals_[name].fill_from(values)

    entry = module.entry
    state = _RunState(
        globals_, max_cycles, {},
        {name: [0] * len(lg.edge_pairs)
         for name, lg in lmod.graphs.items()})
    ret = call_entry(entry.name, state)

    snapshot = {name: storage.snapshot()
                for name, storage in globals_.items()}
    profile = ProfileData()
    for name, lg in lmod.graphs.items():
        node_hits, edge_hits = lg.resolve_counters(
            state.edge_hits[name], state.call_counts.get(name, 0))
        profile.merge_arrays(name, lg.node_ids, node_hits,
                             lg.edge_pairs, edge_hits)
    for name, count in state.call_counts.items():
        profile.call_counts[name] = count
    if profile.total_cycles() > max_cycles:
        raise SimulationError(
            f"cycle limit ({max_cycles}) exceeded; "
            f"infinite loop in {entry.name!r}?")
    return MachineResult(ret, snapshot, profile)


def _run_graph(cmod: CompiledModule, cg: _CompiledGraph, args: List):
    state = cmod._state
    depth = state.depth
    if depth > _MAX_CALL_DEPTH:
        raise SimulationError(
            f"call depth exceeded in {cg.name!r} (runaway recursion?)")
    state.call_counts[cg.name] = state.call_counts.get(cg.name, 0) + 1
    if len(args) != cg.n_params:
        raise SimulationError(
            f"{cg.name!r} expects {cg.n_params} arguments, "
            f"got {len(args)}")

    regs: List = [_UNDEF] * cg.n_regs
    arr: List = [None] * cg.n_arrays
    for (is_reg, slot, name), value in zip(cg.param_plan, args):
        if is_reg:
            regs[slot] = value
        else:
            if not isinstance(value, ArrayStorage):
                raise SimulationError(
                    f"{cg.name!r}: array parameter {name!r} "
                    f"bound to non-array {value!r}")
            arr[slot] = value
    for slot, symbol in cg.local_plan:
        arr[slot] = ArrayStorage(symbol)
    module_globals = state.globals
    for slot, name in cg.global_plan:
        arr[slot] = module_globals[name]
    for slot, placeholder in cg.missing_plan:
        arr[slot] = placeholder

    idx = cg.entry_idx
    if idx < 0:
        raise SimulationError(f"{cg.name!r} has no entry node")
    steps = cg.steps
    edge_dst = cg.edge_dst
    hits = state.node_hits[cg.name]
    edge_hits = state.edge_hits[cg.name]
    cyc = state.cyc
    limit = state.max_cycles
    state.depth = depth + 1
    try:
        while True:
            count = cyc[0] + 1
            cyc[0] = count
            if count > limit:
                raise SimulationError(
                    f"cycle limit ({limit}) exceeded; "
                    f"infinite loop in {cg.name!r}?")
            hits[idx] += 1
            edge = steps[idx](regs, arr)
            if edge < 0:
                return regs[0]
            edge_hits[edge] += 1
            idx = edge_dst[edge]
    finally:
        state.depth = depth


class CompiledEngine:
    """Drop-in replacement for :class:`GraphInterpreter` (compiled)."""

    def __init__(self, module: GraphModule, max_cycles: int = 200_000_000):
        self.module = module
        self.max_cycles = max_cycles
        self.compiled = compile_module(module)

    def run_batch(self, inputs_list: Sequence[Optional[Dict[str, Sequence]]]
                  ) -> List[MachineResult]:
        """Run N input sets through the same closure-specialized program.

        Compilation (and the structural-signature validation ``run_module``
        pays on every call) happens once for the whole batch; each input
        set then executes independently — fresh globals, fresh flat
        profile counters folded into a fresh :class:`ProfileData` via
        :meth:`ProfileData.merge_arrays` — so the results are bit-identical
        to N independent :func:`~repro.sim.machine.run_module` calls.

        The per-element initializer conversion (``int()``/``float()``
        per entry, in :meth:`ArrayStorage.__init__`) is identical for
        every seed, so it runs once here and each seed's storages are
        filled from the converted snapshot.
        """
        module = self.module
        template = [
            (name, symbol,
             ArrayStorage(symbol, module.array_initializers.get(name)).data)
            for name, symbol in module.global_arrays.items()]
        return [self._run(inputs, template) for inputs in inputs_list]

    def run(self, inputs: Optional[Dict[str, Sequence]] = None
            ) -> MachineResult:
        """Execute ``main`` with globals bound to *inputs*."""
        return self._run(inputs, None)

    def _run(self, inputs: Optional[Dict[str, Sequence]],
             template) -> MachineResult:
        module = self.module
        globals_: Dict[str, ArrayStorage] = {}
        if template is None:
            for name, symbol in module.global_arrays.items():
                init = module.array_initializers.get(name)
                globals_[name] = ArrayStorage(symbol, init)
        else:
            for name, symbol, data in template:
                storage = ArrayStorage(symbol)
                storage.data[:] = data
                globals_[name] = storage
        if inputs:
            for name, values in inputs.items():
                if name not in globals_:
                    raise SimulationError(
                        f"input {name!r} does not match any global array")
                globals_[name].fill_from(values)

        entry = module.entry
        cmod = self.compiled
        state = _RunState(
            globals_, self.max_cycles,
            {name: [0] * len(cg.steps)
             for name, cg in cmod.graphs.items()},
            {name: [0] * len(cg.edge_pairs)
             for name, cg in cmod.graphs.items()})
        previous = cmod._state
        cmod._state = state
        try:
            ret = _run_graph(cmod, cmod.graphs[entry.name], [])
        finally:
            cmod._state = previous

        snapshot = {name: storage.snapshot()
                    for name, storage in globals_.items()}
        profile = ProfileData()
        for name, cg in cmod.graphs.items():
            profile.merge_arrays(name, cg.node_ids, state.node_hits[name],
                                 cg.edge_pairs, state.edge_hits[name])
        for name, count in state.call_counts.items():
            profile.call_counts[name] = count
        return MachineResult(ret, snapshot, profile)
