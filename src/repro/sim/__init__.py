"""Simulator / profiler for program graphs.

This is paper Figure 2, step 2: execute the three-address code on the sample
input data and collect profile information.  The interpreter executes
*program graphs* directly under their VLIW node semantics, so the same engine
profiles the sequential level-0 graph and the percolation-scheduled /
pipelined graphs — and doubles as the semantic-preservation oracle (an
optimized graph must produce bit-identical outputs).
"""

from repro.sim.machine import (DEFAULT_ENGINE, ENGINES, GraphInterpreter,
                               MachineResult, run_module, run_module_batch)
from repro.sim.engine import CompiledEngine, CompiledModule, compile_module
from repro.sim.profile import ProfileData
from repro.sim.memory import ArrayStorage

__all__ = [
    "GraphInterpreter",
    "CompiledEngine",
    "CompiledModule",
    "compile_module",
    "MachineResult",
    "run_module",
    "run_module_batch",
    "DEFAULT_ENGINE",
    "ENGINES",
    "ProfileData",
    "ArrayStorage",
]
