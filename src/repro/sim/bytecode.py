"""The bytecode execution engine (the third tier).

The closure engine (:mod:`repro.sim.engine`) already removed dispatch and
operand resolution from the hot loop, but it still pays one or more Python
*function calls* per VLIW node per cycle (the step closure plus its
operation closures).  This tier removes the calls too: each graph is
lowered (by :func:`repro.sim.engine.lower_module`) into direct-threaded
words — flat lists of integer opcode, pre-resolved register/array slot
indices, inlined constants and direct successor-word references — and
executed by the single dispatch loop below, where the common operations
(integer arithmetic, loads, stores, moves, compares) are fully inlined in
the interpreter frame.

Key properties:

* most level-0 nodes lower to a *fused* word (operation + fall-through
  jump), so one machine cycle costs one dispatch and zero Python calls;
* profile counting costs one increment per *branch* edge only — node
  counts and fall-through edge counts are reconstructed exactly at the
  end of the run (:meth:`_LoweredGraph.resolve_counters`) into the same
  flat arrays the closure engine produces, so
  :meth:`ProfileData.merge_arrays` is reused unchanged;
* results are bit-identical to both other engines — return value, memory,
  full node/edge/call profiles and error behavior — which the
  differential suite in ``tests/test_bytecode.py`` pins across the
  12-benchmark suite at every optimization level.

``run_batch`` drives N input sets (the multi-seed study cells) through
one lowered program, paying lowering and cache validation once.

The lowered words are also persisted by the disk tier
(:mod:`repro.sim.diskcache`, keyed by the module's structural digest):
a cold process — a fresh pool worker, a new CLI invocation — whose
module was ever lowered before loads the words instead of re-running
the lowering walk, with bit-identical execution either way.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.cfg.graph import GraphModule
from repro.sim.engine import (
    ADD_RC, ADD_RC_J, ADD_RR, ADD_RR_J, BINF_CC, BINF_CR, BINF_CR_J,
    BINF_RC, BINF_RC_J, BINF_RR, BINF_RR_J, BR, CALL, CP, CP2, ERROR,
    INTRN, J, JB, LOAD, LOADC, LOADC_J, LOAD_J, MOV_C, MOV_C_J, MOV_R,
    MOV_R_J, MUL_RC, MUL_RC_J, MUL_RR, MUL_RR_J, NEG, NEG_J, RETREAD,
    RET_C, RET_N, RET_R, RET_S, STD_CC, STD_CS, STD_SC, STD_SS,
    STORE_CI_J, STORE_J, ST_CC, ST_CR, ST_RC, ST_RR, SUB_RC, SUB_RC_J,
    SUB_RR, SUB_RR_J, TEST, UNF, UNFC, UNF_J, LoweredModule,
    _LoweredGraph, _RunState, _UNDEF, lower_module, run_lowered_module)
from repro.sim.machine import _MAX_CALL_DEPTH, MachineResult
from repro.sim.memory import ArrayStorage


def _exec_graph(lmod: LoweredModule, lg: _LoweredGraph, args: List,
                state: _RunState,
                # opcode constants bound as locals: the ladder compares
                # them on every dispatch, and LOAD_FAST beats LOAD_GLOBAL
                # in the only loop that matters
                _UNDEF=_UNDEF,
                ADD_RR_J=ADD_RR_J, LOAD_J=LOAD_J, BR=BR,
                ADD_RC_J=ADD_RC_J, J=J, JB=JB, BINF_RC_J=BINF_RC_J,
                MUL_RC_J=MUL_RC_J, SUB_RC_J=SUB_RC_J, MUL_RR_J=MUL_RR_J,
                SUB_RR_J=SUB_RR_J, STORE_J=STORE_J, MOV_C_J=MOV_C_J,
                MOV_R_J=MOV_R_J, LOADC_J=LOADC_J, BINF_RR_J=BINF_RR_J,
                BINF_CR_J=BINF_CR_J, STORE_CI_J=STORE_CI_J, NEG_J=NEG_J,
                UNF_J=UNF_J, CP=CP, CP2=CP2, TEST=TEST, ADD_RR=ADD_RR,
                ADD_RC=ADD_RC, SUB_RR=SUB_RR, SUB_RC=SUB_RC,
                MUL_RR=MUL_RR, MUL_RC=MUL_RC, LOAD=LOAD, LOADC=LOADC,
                MOV_C=MOV_C, MOV_R=MOV_R, BINF_RR=BINF_RR,
                BINF_RC=BINF_RC, BINF_CR=BINF_CR, BINF_CC=BINF_CC,
                NEG=NEG, UNF=UNF, UNFC=UNFC, ST_RR=ST_RR, ST_RC=ST_RC,
                ST_CR=ST_CR, ST_CC=ST_CC, STD_SS=STD_SS, STD_SC=STD_SC,
                STD_CS=STD_CS, STD_CC=STD_CC, RETREAD=RETREAD,
                INTRN=INTRN, CALL=CALL, RET_R=RET_R, RET_C=RET_C,
                RET_N=RET_N, RET_S=RET_S, ERROR=ERROR):
    """Execute one lowered graph frame; returns its return value."""
    depth = state.depth
    if depth > _MAX_CALL_DEPTH:
        raise SimulationError(
            f"call depth exceeded in {lg.name!r} (runaway recursion?)")
    state.call_counts[lg.name] = state.call_counts.get(lg.name, 0) + 1
    if len(args) != lg.n_params:
        raise SimulationError(
            f"{lg.name!r} expects {lg.n_params} arguments, "
            f"got {len(args)}")

    regs: List = [_UNDEF] * lg.n_regs
    arr: List = [None] * lg.n_arrays
    for (is_reg, slot, pname), value in zip(lg.param_plan, args):
        if is_reg:
            regs[slot] = value
        else:
            if not isinstance(value, ArrayStorage):
                raise SimulationError(
                    f"{lg.name!r}: array parameter {pname!r} "
                    f"bound to non-array {value!r}")
            arr[slot] = value
    for slot, symbol in lg.local_plan:
        arr[slot] = ArrayStorage(symbol)
    module_globals = state.globals
    for slot, gname in lg.global_plan:
        arr[slot] = module_globals[gname]
    for slot, placeholder in lg.missing_plan:
        arr[slot] = placeholder

    w = lg.entry_word
    if w is None:
        raise SimulationError(f"{lg.name!r} has no entry node")
    graphs = lmod.graphs
    ehits = state.edge_hits[lg.name]
    cyc = state.cyc
    limit = state.max_cycles

    n = cyc[0] + 1
    if n > limit:
        cyc[0] = n
        raise SimulationError(
            f"cycle limit ({limit}) exceeded; "
            f"infinite loop in {lg.name!r}?")
    state.depth = depth + 1
    try:
        while True:
            op = w[0]
            if op < CP:
                # tier 1: fused words and control transfers — the
                # one-dispatch-per-cycle path
                if op == ADD_RR_J:
                    regs[w[1]] = regs[w[2]] + regs[w[3]]
                    w = w[4]
                elif op == LOAD_J:
                    storage = arr[w[2]]
                    i = regs[w[3]]
                    if 0 <= i < storage.size:
                        regs[w[1]] = storage.data[i]
                    else:
                        storage.load(i)  # raises the bounds error
                    w = w[4]
                elif op == BR:
                    n += 1
                    if n > limit:
                        break
                    if regs[w[1]] != 0:
                        ehits[w[2]] += 1
                        w = w[3]
                    else:
                        ehits[w[4]] += 1
                        w = w[5]
                elif op == ADD_RC_J:
                    regs[w[1]] = regs[w[2]] + w[3]
                    w = w[4]
                elif op == J:
                    w = w[1]
                elif op == JB:
                    n += 1
                    if n > limit:
                        break
                    w = w[1]
                elif op == BINF_RC_J:
                    regs[w[1]] = w[2](regs[w[3]], w[4])
                    w = w[5]
                elif op == MUL_RC_J:
                    regs[w[1]] = regs[w[2]] * w[3]
                    w = w[4]
                elif op == SUB_RC_J:
                    regs[w[1]] = regs[w[2]] - w[3]
                    w = w[4]
                elif op == MUL_RR_J:
                    regs[w[1]] = regs[w[2]] * regs[w[3]]
                    w = w[4]
                elif op == SUB_RR_J:
                    regs[w[1]] = regs[w[2]] - regs[w[3]]
                    w = w[4]
                elif op == STORE_J:
                    arr[w[1]].store(regs[w[3]], regs[w[2]])
                    w = w[4]
                elif op == MOV_C_J:
                    regs[w[1]] = w[2]
                    w = w[3]
                elif op == MOV_R_J:
                    value = regs[w[2]]
                    if value is _UNDEF:
                        raise SimulationError(
                            f"read of undefined register {w[3]!r}")
                    regs[w[1]] = value
                    w = w[4]
                elif op == LOADC_J:
                    storage = arr[w[2]]
                    i = w[3]
                    if 0 <= i < storage.size:
                        regs[w[1]] = storage.data[i]
                    else:
                        storage.load(i)
                    w = w[4]
                elif op == BINF_RR_J:
                    regs[w[1]] = w[2](regs[w[3]], regs[w[4]])
                    w = w[5]
                elif op == BINF_CR_J:
                    regs[w[1]] = w[2](w[3], regs[w[4]])
                    w = w[5]
                elif op == STORE_CI_J:
                    arr[w[1]].store(w[3], regs[w[2]])
                    w = w[4]
                elif op == NEG_J:
                    regs[w[1]] = -regs[w[2]]
                    w = w[3]
                else:  # UNF_J
                    regs[w[1]] = w[2](regs[w[3]])
                    w = w[4]
            elif op == ADD_RR:
                regs[w[1]] = regs[w[2]] + regs[w[3]]
                w = w[4]
            elif op == LOAD:
                storage = arr[w[2]]
                i = regs[w[3]]
                if 0 <= i < storage.size:
                    regs[w[1]] = storage.data[i]
                else:
                    storage.load(i)
                w = w[4]
            elif op == ADD_RC:
                regs[w[1]] = regs[w[2]] + w[3]
                w = w[4]
            elif op == SUB_RC:
                regs[w[1]] = regs[w[2]] - w[3]
                w = w[4]
            elif op == MUL_RC:
                regs[w[1]] = regs[w[2]] * w[3]
                w = w[4]
            elif op == CP:
                regs[w[1]] = regs[w[2]]
                w = w[3]
            elif op == CP2:
                regs[w[1]] = regs[w[2]]
                regs[w[3]] = regs[w[4]]
                w = w[5]
            elif op == MOV_R:
                value = regs[w[2]]
                if value is _UNDEF:
                    raise SimulationError(
                        f"read of undefined register {w[3]!r}")
                regs[w[1]] = value
                w = w[4]
            elif op == MOV_C:
                regs[w[1]] = w[2]
                w = w[3]
            elif op == BINF_RC:
                regs[w[1]] = w[2](regs[w[3]], w[4])
                w = w[5]
            elif op == SUB_RR:
                regs[w[1]] = regs[w[2]] - regs[w[3]]
                w = w[4]
            elif op == MUL_RR:
                regs[w[1]] = regs[w[2]] * regs[w[3]]
                w = w[4]
            elif op == TEST:
                regs[w[1]] = regs[w[2]] != 0
                w = w[3]
            elif op == BINF_RR:
                regs[w[1]] = w[2](regs[w[3]], regs[w[4]])
                w = w[5]
            elif op == ST_RR:
                arr[w[1]].store(regs[w[3]], regs[w[2]])
                w = w[4]
            elif op == ST_CR:
                arr[w[1]].store(regs[w[3]], w[2])
                w = w[4]
            elif op == LOADC:
                storage = arr[w[2]]
                i = w[3]
                if 0 <= i < storage.size:
                    regs[w[1]] = storage.data[i]
                else:
                    storage.load(i)
                w = w[4]
            elif op == NEG:
                regs[w[1]] = -regs[w[2]]
                w = w[3]
            elif op == BINF_CR:
                regs[w[1]] = w[2](w[3], regs[w[4]])
                w = w[5]
            elif op == ST_RC:
                arr[w[1]].store(w[3], regs[w[2]])
                w = w[4]
            elif op == ST_CC:
                arr[w[1]].store(w[3], w[2])
                w = w[4]
            elif op == UNF:
                regs[w[1]] = w[2](regs[w[3]])
                w = w[4]
            elif op == UNFC:
                regs[w[1]] = w[2](w[3])
                w = w[4]
            elif op == BINF_CC:
                regs[w[1]] = w[2](w[3], w[4])
                w = w[5]
            elif op == STD_SS:
                arr[w[1]].store(regs[w[2]], regs[w[3]])
                w = w[4]
            elif op == STD_SC:
                arr[w[1]].store(regs[w[2]], w[3])
                w = w[4]
            elif op == STD_CS:
                arr[w[1]].store(w[2], regs[w[3]])
                w = w[4]
            elif op == STD_CC:
                arr[w[1]].store(w[2], w[3])
                w = w[4]
            elif op == RETREAD:
                value = regs[w[2]]
                if value is _UNDEF:
                    raise SimulationError(
                        f"read of undefined register {w[3]!r}")
                regs[w[1]] = value
                w = w[4]
            elif op == INTRN:
                call_args = []
                for kind, payload in w[3]:
                    if kind == 0:
                        call_args.append(regs[payload])
                    elif kind == 1:
                        call_args.append(payload)
                    else:
                        raise SimulationError(payload)
                regs[w[1]] = w[2](*call_args)
                w = w[4]
            elif op == CALL:
                target = graphs.get(w[1])
                if target is None:
                    raise SimulationError(
                        f"call to unknown function {w[1]!r}")
                call_args = []
                for kind, payload, aname in w[3]:
                    if kind == 0:
                        value = regs[payload]
                        if value is _UNDEF:
                            raise SimulationError(
                                f"read of undefined register {aname!r}")
                        call_args.append(value)
                    elif kind == 1:
                        call_args.append(payload)
                    elif kind == 2:
                        call_args.append(arr[payload])
                    elif kind == 3:
                        raise SimulationError(
                            f"array argument {payload!r} is not bound")
                    else:
                        raise SimulationError(payload)
                cyc[0] = n
                value = _exec_graph(lmod, target, call_args, state)
                n = cyc[0]
                d = w[2]
                if d is not None:
                    regs[d] = value
                w = w[4]
            elif op == RET_R:
                value = regs[w[1]]
                if value is _UNDEF:
                    raise SimulationError(
                        f"read of undefined register {w[2]!r}")
                regs[0] = value
                cyc[0] = n
                return value
            elif op == RET_C:
                value = w[1]
                regs[0] = value
                cyc[0] = n
                return value
            elif op == RET_N:
                regs[0] = None
                cyc[0] = n
                return None
            elif op == RET_S:
                value = regs[w[1]]
                regs[0] = value
                cyc[0] = n
                return value
            elif op == ERROR:
                raise SimulationError(w[1])
            else:  # pragma: no cover - lowering never emits unknown codes
                raise SimulationError(f"corrupt bytecode word {w!r}")
        # Only the cycle-limit checks break out of the dispatch loop.
        cyc[0] = n
        raise SimulationError(
            f"cycle limit ({limit}) exceeded; "
            f"infinite loop in {lg.name!r}?")
    finally:
        state.depth = depth


class BytecodeEngine:
    """Drop-in replacement for :class:`CompiledEngine` (bytecode tier)."""

    def __init__(self, module: GraphModule, max_cycles: int = 200_000_000):
        self.module = module
        self.max_cycles = max_cycles
        self.lowered = lower_module(module)

    def run_batch(self, inputs_list: Sequence[Optional[Dict[str, Sequence]]]
                  ) -> List[MachineResult]:
        """Run N input sets through the same lowered program.

        Lowering (and the signature validation ``run_module`` pays per
        call) happens once for the whole batch; each input set executes
        with fresh globals and fresh flat profile counters, so results
        are bit-identical to N independent :func:`run_module` calls.
        """
        return [self.run(inputs) for inputs in inputs_list]

    def run(self, inputs: Optional[Dict[str, Sequence]] = None
            ) -> MachineResult:
        """Execute ``main`` with globals bound to *inputs*.

        The frame around the dispatch loop — globals/input binding,
        branch-only runtime counters, exact profile reconstruction and
        the post-run cycle-limit check — is the run contract shared
        with the codegen tier (:func:`~repro.sim.engine.
        run_lowered_module`)."""
        lmod = self.lowered
        return run_lowered_module(
            self.module, lmod, self.max_cycles, inputs,
            lambda name, state:
            _exec_graph(lmod, lmod.graphs[name], [], state))
