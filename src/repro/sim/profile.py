"""Profile data collected by the simulator.

The sequence analyzer needs, per function graph:

* how many times each node executed (``node_counts``) — one node is one
  machine cycle, so the total is the program's cycle count;
* how many times each control-flow edge was taken (``edge_counts``) — the
  occurrence count of a multi-node chain is the flow along its node path.

Counts are also exposed per instruction provenance uid (``origin``), which
survives loop unrolling and renaming, so "the multiply from source line X"
keeps a single identity across optimization levels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.cfg.graph import GraphModule, ProgramGraph


@dataclass
class ProfileData:
    """Execution counts for one simulated run of a graph module."""

    # function name -> node id -> executions
    node_counts: Dict[str, Dict[int, int]] = field(default_factory=dict)
    # function name -> (src node, dst node) -> traversals
    edge_counts: Dict[str, Dict[Tuple[int, int], int]] = field(
        default_factory=dict)
    # function name -> calls executed
    call_counts: Dict[str, int] = field(default_factory=dict)

    # -- recording (used by the interpreter) --------------------------------------

    def count_node(self, fn: str, node_id: int) -> None:
        counts = self.node_counts.setdefault(fn, {})
        counts[node_id] = counts.get(node_id, 0) + 1

    def count_edge(self, fn: str, src: int, dst: int) -> None:
        counts = self.edge_counts.setdefault(fn, {})
        key = (src, dst)
        counts[key] = counts.get(key, 0) + 1

    def count_call(self, fn: str) -> None:
        self.call_counts[fn] = self.call_counts.get(fn, 0) + 1

    def merge_arrays(self, fn: str,
                     node_ids: Sequence[int], node_hits: Sequence[int],
                     edge_pairs: Sequence[Tuple[int, int]],
                     edge_hits: Sequence[int]) -> None:
        """Fold the compiled engine's flat per-graph counters in one pass.

        ``node_hits[i]`` is the execution count of ``node_ids[i]`` and
        ``edge_hits[i]`` the traversal count of ``edge_pairs[i]``.  Zero
        counters are skipped so the folded dicts are indistinguishable from
        the ones the reference interpreter builds incrementally.
        """
        counts = None
        for node_id, hit in zip(node_ids, node_hits):
            if hit:
                if counts is None:
                    counts = self.node_counts.setdefault(fn, {})
                counts[node_id] = counts.get(node_id, 0) + hit
        counts = None
        for pair, hit in zip(edge_pairs, edge_hits):
            if hit:
                if counts is None:
                    counts = self.edge_counts.setdefault(fn, {})
                counts[pair] = counts.get(pair, 0) + hit

    # -- queries -------------------------------------------------------------------

    def node_count(self, fn: str, node_id: int) -> int:
        return self.node_counts.get(fn, {}).get(node_id, 0)

    def edge_count(self, fn: str, src: int, dst: int) -> int:
        return self.edge_counts.get(fn, {}).get((src, dst), 0)

    def total_cycles(self) -> int:
        """Machine cycles: every node execution is one cycle."""
        return sum(sum(counts.values())
                   for counts in self.node_counts.values())

    def total_op_executions(self, module: GraphModule) -> int:
        """Dynamic operation count (chainable or not, excluding control)."""
        total = 0
        for fn_name, counts in self.node_counts.items():
            graph = module.graphs.get(fn_name)
            if graph is None:
                continue
            for nid, count in counts.items():
                node = graph.nodes.get(nid)
                if node is None:
                    continue
                total += count * len(node.ops)
        return total

    def dynamic_ilp(self, module: GraphModule) -> float:
        """Dynamic instruction-level parallelism: operations per cycle."""
        cycles = self.total_cycles()
        if cycles == 0:
            return 0.0
        return self.total_op_executions(module) / cycles

    def instruction_counts(self, module: GraphModule) -> Dict[int, int]:
        """Executions per instruction uid (a copy executes with its node)."""
        counts: Dict[int, int] = {}
        for fn_name, node_counts in self.node_counts.items():
            graph = module.graphs.get(fn_name)
            if graph is None:
                continue
            for nid, count in node_counts.items():
                node = graph.nodes.get(nid)
                if node is None:
                    continue
                for ins in node.all_instructions():
                    counts[ins.uid] = counts.get(ins.uid, 0) + count
        return counts

    def origin_counts(self, module: GraphModule) -> Dict[int, int]:
        """Executions per provenance uid, merging unrolled copies."""
        counts: Dict[int, int] = {}
        for fn_name, node_counts in self.node_counts.items():
            graph = module.graphs.get(fn_name)
            if graph is None:
                continue
            for nid, count in node_counts.items():
                node = graph.nodes.get(nid)
                if node is None:
                    continue
                for ins in node.all_instructions():
                    counts[ins.origin] = counts.get(ins.origin, 0) + count
        return counts
