"""The lane-parallel multi-seed engine (the fifth tier).

Every multi-seed study or exploration cell compiles its module once but
still executes seeds one at a time — ``run_batch`` on the compiled,
bytecode and codegen tiers is a per-seed loop.  This tier removes that
loop: :func:`generate_lane_module` walks the same lowered words as the
codegen tier (:func:`repro.sim.engine.lower_module`) and emits one
Python function per graph that executes **all N seeds per call** as
SIMD-style lanes —

* the register file is structure-of-arrays: one flat Python list per
  register slot, indexed by lane.  Straight-line word runs execute
  inside a single ``for ln in lanes:`` loop whose body is the codegen
  tier's statement sequence over loop-local scalars, so the per-word
  interpretive costs (dispatch, operand decode, limit bookkeeping) are
  paid once per *group* of lanes instead of once per lane;
* control flow is group-based with **reconvergence**: a set of lanes
  on the same path shares one program counter and one set of scalar
  counter *deltas*; each lane additionally owns an absolute sparse
  cycle base (``nb``) and edge-counter array (``eh``) that the deltas
  fold into whenever the lane leaves its group.  At a divergent branch
  the false side is folded and parked in a ``wait`` table keyed by
  block ordinal; the scheduler always runs the *rearmost* group (the
  one at the smallest pending ordinal), so subgroups re-merge at the
  first common block — the immediate post-dominator for structured
  control flow — instead of fragmenting permanently.  A convergent
  batch never parks at all and pays no folding;
* faults are per-lane: a lane that raises :class:`SimulationError`
  anywhere — an undefined register, an out-of-bounds access, the cycle
  limit — records its exception and drops out of its group while the
  remaining lanes complete.  The engine surfaces each lane's outcome
  separately, so a faulting lane reports the identical error message
  its own sequential run would have raised.

Branch-edge counters accumulate per lane and are reconstructed through
the unchanged :meth:`_LoweredGraph.resolve_counters`, so every lane's
:class:`MachineResult` — outputs, cycles, the full node/edge/call
profile, and fault behavior — is bit-identical to N independent
:func:`~repro.sim.machine.run_module` calls, pinned by
``tests/test_lanes.py`` and the cross-engine fuzz harness.

The emitted source is specialized per lane count (the width is an
inlined literal), cached in memory per ``(module, n_lanes)`` under the
usual structural signature, and persisted to the disk tier
(:mod:`repro.sim.diskcache`) under a lane-count-partitioned key.

Plain Python lists are used rather than numpy arrays deliberately: the
simulated machine computes in unbounded Python integers (the fuzz
corpus overflows int64 routinely) and its division/shift semantics
raise :class:`SimulationError` where numpy would wrap, saturate or
emit ``inf`` — vectorizing the data path would change results.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SimulationError
from repro.cfg.graph import GraphModule
from repro.sim import engine as _eng
from repro.sim.codegen import (_BINF, _BINOPS, _LOADS, _MOV_CONSTS,
                               _MOV_REGS, _NEGS, _RETS, _STORES, _STORES_D,
                               _UNFS, _is_terminal, _jump_slots,
                               bounds_artifacts)
from repro.sim.engine import (BR, CALL, CP, CP2, ERROR, INTRN, J, JB,
                              LoweredModule, RET_C, RET_N, RET_R, RET_S,
                              RETREAD, TEST, _LoweredGraph, _UNDEF,
                              _payload_verified, _signature_matches,
                              lower_module)
from repro.sim.machine import _MAX_CALL_DEPTH, MachineResult
from repro.sim.memory import ArrayStorage
from repro.sim.profile import ProfileData

#: One lane outcome: ``("ok", MachineResult)`` or ``("error", message)``.
LaneOutcome = Tuple[str, object]


def _word_regs(word: list) -> Tuple[List[int], List[int], List[int]]:
    """``(reads, writes, arrays)`` of one non-terminal word: register
    slots read, register slots written, array slots touched."""
    op = word[0]
    binop = _BINOPS.get(op)
    if binop is not None:
        _, kinds = binop
        reads = [word[2 + i] for i, k in enumerate(kinds) if k == "r"]
        return reads, [word[1]], []
    kinds = _BINF.get(op)
    if kinds is not None:
        reads = [word[3 + i] for i, k in enumerate(kinds) if k == "r"]
        return reads, [word[1]], []
    if op in _LOADS:
        reads = [word[3]] if _LOADS[op] == "r" else []
        return reads, [word[1]], [word[2]]
    if op in _STORES:
        vkind, ikind = _STORES[op]
        reads = [word[2]] if vkind == "r" else []
        if ikind == "r":
            reads.append(word[3])
        return reads, [], [word[1]]
    if op in _STORES_D:
        ikind, vkind = _STORES_D[op]
        reads = [word[2]] if ikind == "r" else []
        if vkind == "r":
            reads.append(word[3])
        return reads, [], [word[1]]
    if op in _MOV_CONSTS:
        return [], [word[1]], []
    if op in _MOV_REGS or op == RETREAD:
        return [word[2]], [word[1]], []
    if op in _NEGS:
        return [word[2]], [word[1]], []
    if op in _UNFS:
        return [word[3]], [word[1]], []
    if op == _eng.UNFC:
        return [], [word[1]], []
    if op == CP:
        return [word[2]], [word[1]], []
    if op == CP2:
        return [word[2], word[4]], [word[1], word[3]], []
    if op == TEST:
        return [word[2]], [word[1]], []
    if op == INTRN:
        return [p for k, p in word[3] if k == 0], [word[1]], []
    raise SimulationError(
        f"cannot lane-compile word {word!r}")  # pragma: no cover


def _word_is_safe(word: list) -> bool:
    """True when the word can never raise: plain register/constant moves
    (``_UNDEF`` copies freely; only *uses* fault)."""
    op = word[0]
    return op in _MOV_CONSTS or op == CP or op == CP2


class _LaneEmitter:
    """Emits the lane-parallel Python source of one lowered graph."""

    def __init__(self, lg: _LoweredGraph, fn_name: str,
                 fn_of_graph: Dict[str, str], n_lanes: int,
                 safe_loads: frozenset = frozenset()):
        self.lg = lg
        self.fn_name = fn_name
        self.fn_of_graph = fn_of_graph
        self.n_lanes = n_lanes
        #: ``id()``s of load words whose bounds proof allows dropping
        #: the inline guard (see :mod:`repro.analysis.ranges`).
        self.safe_loads = safe_loads
        self.lines: List[str] = []
        self.indent = 1
        self.objs: List[object] = []
        self._obj_names: Dict[int, str] = {}
        self.upward: Set[int] = self._compute_upward()

    # -- small helpers -------------------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def paste(self, block: List[str]) -> None:
        prefix = "    " * self.indent
        self.lines.extend(prefix + line for line in block)

    @staticmethod
    def _r(slot: int) -> str:
        """Per-lane list name of a register slot (negative = scratch)."""
        return f"r{slot}" if slot >= 0 else f"t{-slot}"

    @staticmethod
    def _v(slot: int) -> str:
        """Loop-local scalar caching one lane's value of a slot."""
        return f"v{slot}" if slot >= 0 else f"u{-slot}"

    def _k(self, obj) -> str:
        name = self._obj_names.get(id(obj))
        if name is None:
            name = f"K{len(self.objs)}"
            self._obj_names[id(obj)] = name
            self.objs.append(obj)
        return name

    def _const(self, value) -> str:
        if isinstance(value, float) and \
                (value != value or value in (float("inf"), float("-inf"))):
            return self._k(value)
        return repr(value)

    def _operand(self, kind: str, payload) -> str:
        return self._v(payload) if kind == "r" else self._const(payload)

    def _emit_fold(self, lanes_expr: str, counted: List[int],
                   extra: Optional[int] = None) -> None:
        """Fold the group-scalar counter deltas into per-lane storage
        for *lanes_expr*: the sparse cycle delta ``n`` into each lane's
        absolute base ``nb`` and the edge deltas into ``eh``.  ``extra``
        pre-bumps one edge counter (the taken edge of a branch side
        being parked).  The caller resets the scalars afterwards (or
        abandons them by transferring control)."""
        self.emit(f"for ln in {lanes_expr}:")
        self.emit("    nb[ln] += n")
        if counted:
            self.emit("    _a = eh[ln]")
        for e in counted:
            if e == extra:
                self.emit(f"    _a[{e}] += e{e} + 1")
            else:
                self.emit(f"    _a[{e}] += e{e}")

    def _emit_reset(self, counted: List[int]) -> None:
        """Zero the group-scalar deltas (after a fold)."""
        self.emit("n = 0")
        if counted:
            self.emit(" = ".join(f"e{e}" for e in counted) + " = 0")

    def _emit_nm(self) -> None:
        """Recompute the group's max absolute base (the scalar the
        sparse limit check compares against)."""
        self.emit("nm = max([nb[ln] for ln in lanes])")

    def _emit_limit_check(self, counted: List[int],
                          on_empty: str = "break",
                          recount: Optional[int] = None) -> None:
        """The sparse cycle check.  ``nb[ln] + n`` is lane ``ln``'s
        exact sparse count and ``nm`` an upper bound on the group's max
        base, so the cheap comparison can only fire early, never late;
        the rare path then folds and faults precisely the lanes over
        the limit while the rest continue.  ``recount`` rebuilds a
        pending branch's true-lane count after the fault filter."""
        tail = f"exceeded; infinite loop in {self.lg.name!r}?"
        self.emit("n += 1")
        self.emit("if n + nm > limit:")
        self.indent += 1
        self._emit_fold("lanes", counted)
        self._emit_reset(counted)
        self.emit("for ln in lanes:")
        self.emit("    if nb[ln] > limit:")
        self.emit('        fault[ln] = SimulationError(f"cycle limit '
                  f'({{limit}}) " {tail!r})')
        self.emit("lanes = [ln for ln in lanes if fault[ln] is None]")
        self.emit("if not lanes:")
        self.emit(f"    {on_empty}")
        self._emit_nm()
        if recount is not None:
            self.emit("tc = 0")
            self.emit("for ln in lanes:")
            self.emit(f"    if {self._r(recount)}[ln] != 0:")
            self.emit("        tc += 1")
        self.indent -= 1

    def _emit_park(self, counted: List[int]) -> None:
        """The reconvergence point at the top of the dispatch loop: when
        another group waits at or behind this pc, fold and park here so
        the scheduler can run the rearmost group first and merge lanes
        arriving at the same block.  ``pc >= pmin`` never lowers the
        pending minimum, so ``pmin`` needs no update."""
        self.emit("if pc >= pmin:")
        self.indent += 1
        self._emit_fold("lanes", counted)
        self.emit("_w = wait.get(pc)")
        self.emit("if _w is None:")
        self.emit("    wait[pc] = lanes")
        self.emit("else:")
        self.emit("    _w.extend(lanes)")
        self.emit("break")
        self.indent -= 1

    # -- block discovery -----------------------------------------------------------

    def _analyze(self):
        """Codegen's block split (calls resume inline: the group stays
        whole across a call, so the resume point needs no dispatch
        ordinal unless something else jumps to it)."""
        words = self.lg.words
        index_of = {id(w): i for i, w in enumerate(words)}
        refs: Dict[int, List[Tuple[int, int]]] = {}
        for i, word in enumerate(words):
            for slot in _jump_slots(word):
                target = index_of[id(word[slot])]
                refs.setdefault(target, []).append((i, word[0]))
        entry = index_of[id(self.lg.entry_word)]
        starts = {entry}
        for target, sources in refs.items():
            if len(sources) == 1 and target != entry:
                src, op = sources[0]
                if target > src and op != BR and op != JB:
                    continue  # single-source forward jump: inlined at
                    # its source, extending the straight-line run
            starts.add(target)
        return words, index_of, sorted(starts), entry

    # -- straight-line runs --------------------------------------------------------

    def _emit_word(self, word: list) -> None:
        """One word's computational effect over the loop-local scalars
        (the codegen statement with registers renamed lane-local)."""
        op = word[0]
        v = self._v
        binop = _BINOPS.get(op)
        if binop is not None:
            sym, kinds = binop
            a = self._operand(kinds[0], word[2])
            b = self._operand(kinds[1], word[3])
            self.emit(f"{v(word[1])} = {a} {sym} {b}")
            return
        kinds = _BINF.get(op)
        if kinds is not None:
            fn = self._k(word[2])
            a = self._operand(kinds[0], word[3])
            b = self._operand(kinds[1], word[4])
            self.emit(f"{v(word[1])} = {fn}({a}, {b})")
            return
        if op in _LOADS:
            index = self._operand(_LOADS[op], word[3])
            k = word[2]
            if id(word) in self.safe_loads:
                # Bounds proof carried in the payload: the index is a
                # defined int provably inside [0, size), so the guard's
                # then-branch is the only reachable arm.
                self.emit(f"{v(word[1])} = w{k}.data[{index}]")
                return
            self.emit(f"if 0 <= {index} < w{k}.size:")
            self.emit(f"    {v(word[1])} = w{k}.data[{index}]")
            self.emit("else:")
            self.emit(f"    w{k}.load({index})")
            return
        if op in _STORES:
            vkind, ikind = _STORES[op]
            value = self._operand(vkind, word[2])
            index = self._operand(ikind, word[3])
            self.emit(f"w{word[1]}.store({index}, {value})")
            return
        if op in _STORES_D:
            ikind, vkind = _STORES_D[op]
            index = self._operand(ikind, word[2])
            value = self._operand(vkind, word[3])
            self.emit(f"w{word[1]}.store({index}, {value})")
            return
        if op in _MOV_CONSTS:
            self.emit(f"{v(word[1])} = {self._const(word[2])}")
            return
        if op in _MOV_REGS or op == RETREAD:
            message = f"read of undefined register {word[3]!r}"
            self.emit(f"if {v(word[2])} is _UNDEF:")
            self.emit(f"    raise SimulationError({message!r})")
            self.emit(f"{v(word[1])} = {v(word[2])}")
            return
        if op in _NEGS:
            self.emit(f"{v(word[1])} = -{v(word[2])}")
            return
        if op in _UNFS:
            self.emit(f"{v(word[1])} = {self._k(word[2])}({v(word[3])})")
            return
        if op == _eng.UNFC:
            self.emit(f"{v(word[1])} = "
                      f"{self._k(word[2])}({self._const(word[3])})")
            return
        if op == CP:
            self.emit(f"{v(word[1])} = {v(word[2])}")
            return
        if op == CP2:
            self.emit(f"{v(word[1])} = {v(word[2])}")
            self.emit(f"{v(word[3])} = {v(word[4])}")
            return
        if op == TEST:
            self.emit(f"{v(word[1])} = {v(word[2])} != 0")
            return
        if op == INTRN:
            args = []
            for kind, payload in word[3]:
                if kind == 0:
                    args.append(self._v(payload))
                elif kind == 1:
                    args.append(self._const(payload))
                else:  # unreadable operand: raises when (and only when) run
                    self.emit(f"raise SimulationError({payload!r})")
                    return
            self.emit(f"{self._v(word[1])} = "
                      f"{self._k(word[2])}({', '.join(args)})")
            return
        raise SimulationError(
            f"cannot lane-compile word {word!r}")  # pragma: no cover

    def _compute_upward(self) -> Set[int]:
        """Register slots that must be backed by per-lane lists.

        A slot needs a list exactly when some read of it can cross an
        emitted run boundary, or when terminal/call emission accesses
        it as a list (branch conditions, return registers, call
        arguments and destinations).  Every other slot is only ever
        read in the same run that wrote it, so it lives purely in loop
        locals: no ``[_UNDEF] * L`` init, no write-back.

        The walk below mirrors :meth:`_emit_block` word for word —
        same block starts, same forward-jump and call-resume inlining
        — so a run here has exactly the emitted run's extent and the
        preloads :meth:`_flush_run` and :meth:`_emit_side` emit always
        read a list this set caused to exist.  (Diamond sides start at
        BR targets, which :meth:`_analyze` always keeps as starts, so
        their external reads are covered by the per-start walks.)"""
        if self.lg.entry_word is None:
            return set()
        words, index_of, starts, _entry = self._analyze()
        starts_set = set(starts)
        upward: Set[int] = set()
        for word in words:
            op = word[0]
            if op == CALL:
                for kind, payload, _aname in word[3]:
                    if kind == 0:
                        upward.add(payload)
                if word[2] is not None:
                    upward.add(word[2])
            elif op == BR or op == RET_S or op == RET_R:
                upward.add(word[1])
        for start in starts:
            defined: Set[int] = set()
            k = start
            while True:
                word = words[k]
                op = word[0]
                if op == ERROR or op == BR or op == JB or op in _RETS:
                    break
                if op == CALL:
                    resume = index_of[id(word[4])]
                    if resume in starts_set:
                        break
                    defined.clear()  # the call ends the run; a fresh
                    k = resume       # one resumes inline
                    continue
                if op == J:
                    target = index_of[id(word[1])]
                    if target in starts_set:
                        break
                    k = target
                    continue
                reads, writes, _arrs = _word_regs(word)
                for s in reads:
                    if s not in defined:
                        upward.add(s)
                defined.update(writes)
                if _is_terminal(op):  # fused op+jump, part of the run
                    target = index_of[id(word[_jump_slots(word)[0]])]
                    if target in starts_set:
                        break
                    k = target
                    continue
                k += 1
        return upward

    def _flush_run(self, run: List[list],
                   branch_cond: Optional[int] = None) -> None:
        """Emit one straight-line word run as a single lane loop.

        Register slots the run touches are cached into loop locals at
        the top; slots some other run may read (``self.upward``) are
        written back at the bottom, so the body is the codegen tier's
        scalar statement sequence.  A lane that raises records its
        fault and skips the write-back (its state is unobservable from
        then on); the group drops faulted lanes — via a flag, so the
        fault-free common path never rebuilds the list — before
        transferring control.

        ``branch_cond`` fuses the subsequent branch's condition read
        into the loop tail, counting true lanes into ``tc`` (a lane
        whose condition read faults counts for neither side, exactly
        like one that faulted mid-run).
        """
        if not run and branch_cond is None:
            return
        preload: List[int] = []
        written: List[int] = []
        arrays: List[int] = []
        defined: Set[int] = set()
        may_fault = branch_cond is not None
        for word in run:
            reads, writes, arrs = _word_regs(word)
            for s in reads:
                if s not in defined and s not in preload:
                    preload.append(s)
            for s in writes:
                defined.add(s)
                if s not in written:
                    written.append(s)
            for k in arrs:
                if k not in arrays:
                    arrays.append(k)
            if not _word_is_safe(word):
                may_fault = True
        if branch_cond is not None:
            self.emit("tc = 0")
        if may_fault:
            self.emit("_flt = False")
        self.emit("for ln in lanes:")
        self.indent += 1
        if may_fault:
            self.emit("try:")
            self.indent += 1
        for s in preload:
            self.emit(f"{self._v(s)} = {self._r(s)}[ln]")
        for k in arrays:
            self.emit(f"w{k} = a{k}[ln]")
        for word in run:
            self._emit_word(word)
        for s in written:
            if s in self.upward:
                self.emit(f"{self._r(s)}[ln] = {self._v(s)}")
        if branch_cond is not None:
            if branch_cond in defined or branch_cond in preload:
                cond = self._v(branch_cond)
            else:
                cond = f"{self._r(branch_cond)}[ln]"
            self.emit(f"if {cond} != 0:")
            self.emit("    tc += 1")
        if may_fault:
            self.indent -= 1
            self.emit("except SimulationError as exc:")
            self.emit("    fault[ln] = exc")
            self.emit("    _flt = True")
        self.indent -= 1
        if may_fault:
            self.emit("if _flt:")
            self.emit("    lanes = "
                      "[ln for ln in lanes if fault[ln] is None]")
            self.emit("    if not lanes:")
            self.emit("        break")

    # -- terminals -----------------------------------------------------------------

    #: Longest straight-line branch side executed predicated instead of
    #: parked (words per side; beyond it the wait table takes over).
    _SIDE_CAP = 24

    def _walk_side(self, start: int, words, index_of,
                   starts_set: Set[int]):
        """``(body_words, join_index, via_jb)`` of one straight-line
        branch side, or None when the side branches again, calls,
        returns or grows past :data:`_SIDE_CAP`.  The walk follows
        forward jump chains exactly like block emission, stopping at
        the first dispatch block (the join candidate); a side may also
        end at a counted back-jump (``via_jb``), where optimizers
        leave duplicated loop latches behind divergent conditions."""
        body: List[list] = []
        k = start
        while True:
            if k in starts_set and k != start:
                return body, k, False
            word = words[k]
            op = word[0]
            if op == JB:
                return body, index_of[id(word[1])], True
            if op == CALL or op == BR or op == ERROR or op in _RETS:
                return None
            if op == J:
                k = index_of[id(word[1])]
                continue
            if len(body) >= self._SIDE_CAP:
                return None
            body.append(word)
            if _is_terminal(op):  # fused op+jump
                slots = _jump_slots(word)
                if len(slots) != 1:
                    return None
                k = index_of[id(word[slots[0]])]
                continue
            k += 1

    def _match_diamond(self, word: list, words, index_of,
                       starts_set: Set[int]):
        """``(true_body, false_body, join_index, via_jb)`` when both
        branch targets run straight (possibly empty) into one common
        join block, else None.  Joins reached through a back-jump must
        be so on *both* sides — the back-jump carries a cycle count,
        so a mixed pair would make the group's delta non-uniform."""
        t_idx = index_of[id(word[3])]
        f_idx = index_of[id(word[5])]
        side_t = self._walk_side(t_idx, words, index_of, starts_set)
        side_f = self._walk_side(f_idx, words, index_of, starts_set)
        if side_t is not None and side_f is not None \
                and side_t[1:] == side_f[1:]:
            return side_t[0], side_f[0], side_t[1], side_t[2]
        if side_t is not None and not side_t[2] and side_t[1] == f_idx:
            return side_t[0], [], f_idx, False
        if side_f is not None and not side_f[2] and side_f[1] == t_idx:
            return [], side_f[0], t_idx, False
        return None

    def _emit_side(self, body: List[list], edge: int) -> None:
        """One diamond side inside the predicated lane loop: bump the
        taken edge directly (no group scalar — lanes in the same group
        take different sides) and run the side's words on loop locals,
        writing back the slots other runs read."""
        self.emit("_a = eh[ln]")
        self.emit(f"_a[{edge}] += 1")
        if not body:
            return
        preload: List[int] = []
        written: List[int] = []
        arrays: List[int] = []
        defined: Set[int] = set()
        for word in body:
            reads, writes, arrs = _word_regs(word)
            for s in reads:
                if s not in defined and s not in preload:
                    preload.append(s)
            for s in writes:
                defined.add(s)
                if s not in written:
                    written.append(s)
            for k in arrs:
                if k not in arrays:
                    arrays.append(k)
        for s in preload:
            self.emit(f"{self._v(s)} = {self._r(s)}[ln]")
        for k in arrays:
            self.emit(f"w{k} = a{k}[ln]")
        for word in body:
            self._emit_word(word)
        for s in written:
            if s in self.upward:
                self.emit(f"{self._r(s)}[ln] = {self._v(s)}")

    def _emit_diamond(self, word: list, diamond, ordinal_of,
                      counted: List[int], run: List[list]) -> None:
        """Both sides of an if/else diamond as one predicated lane
        loop: the group stays whole, nothing parks, nothing folds —
        each lane just takes its own side and everyone reconverges at
        the join.  Cycle accounting needs no per-side work because
        straight-line sides contain no BR/JB and therefore no sparse
        increments; the branch itself is counted group-wide first, and
        a shared back-jump join is counted group-wide after — every
        lane crossed exactly one back-edge, whichever side it took."""
        t_body, f_body, join, via_jb = diamond
        self._flush_run(run)
        self._emit_limit_check(counted)
        cond = self._r(word[1])
        self.emit("_flt = False")
        self.emit("for ln in lanes:")
        self.indent += 1
        self.emit("try:")
        self.indent += 1
        self.emit(f"if {cond}[ln] != 0:")
        self.indent += 1
        self._emit_side(t_body, word[2])
        self.indent -= 1
        self.emit("else:")
        self.indent += 1
        self._emit_side(f_body, word[4])
        self.indent -= 2
        self.emit("except SimulationError as exc:")
        self.emit("    fault[ln] = exc")
        self.emit("    _flt = True")
        self.indent -= 1
        self.emit("if _flt:")
        self.emit("    lanes = [ln for ln in lanes if fault[ln] is None]")
        self.emit("    if not lanes:")
        self.emit("        break")
        if via_jb:
            self._emit_limit_check(counted)
        self.emit(f"pc = {ordinal_of[join]}")
        self.emit("continue")

    def _emit_branch(self, word: list, words, index_of,
                     starts_set: Set[int], ordinal_of,
                     counted: List[int], run: List[list]) -> None:
        """Resolve a branch from the fused true-lane count ``tc``.

        If/else diamonds — both targets straight-line into a common
        join — run predicated instead (:meth:`_emit_diamond`): the
        group never splits.  Otherwise the preceding run's lane loop
        already evaluated the condition per lane (lanes whose read
        faults drop out counting for neither side), so the uniform
        cases — the overwhelming majority — cost one comparison and
        touch no lists.  Only a genuinely divergent group partitions:
        the false side is folded (its edge pre-bumped) and parked in
        the wait table for the scheduler to resume and re-merge, while
        the true side continues — the dispatch-top park check then
        orders the two by block ordinal."""
        diamond = self._match_diamond(word, words, index_of, starts_set)
        if diamond is not None:
            self._emit_diamond(word, diamond, ordinal_of, counted, run)
            return
        cond_slot = word[1]
        self._flush_run(run, branch_cond=cond_slot)
        self._emit_limit_check(counted, recount=cond_slot)
        cond = self._r(cond_slot)
        e_true, e_false = word[2], word[4]
        t_true = ordinal_of[index_of[id(word[3])]]
        t_false = ordinal_of[index_of[id(word[5])]]
        self.emit("if tc:")
        self.indent += 1
        self.emit("if tc != len(lanes):")
        self.indent += 1
        self.emit("tl = []")
        self.emit("fl = []")
        self.emit("for ln in lanes:")
        self.emit(f"    if {cond}[ln] != 0:")
        self.emit("        tl.append(ln)")
        self.emit("    else:")
        self.emit("        fl.append(ln)")
        self._emit_fold("fl", counted, extra=e_false)
        self.emit("if wait is None:")
        self.emit(f"    wait = {{{t_false}: fl}}")
        self.emit(f"    pmin = {t_false}")
        self.emit("else:")
        self.emit(f"    _w = wait.get({t_false})")
        self.emit("    if _w is None:")
        self.emit(f"        wait[{t_false}] = fl")
        self.emit(f"        if {t_false} < pmin:")
        self.emit(f"            pmin = {t_false}")
        self.emit("    else:")
        self.emit("        _w.extend(fl)")
        self.emit("lanes = tl")
        self.indent -= 1
        self.emit(f"e{e_true} += 1")
        self.emit(f"pc = {t_true}")
        self.emit("continue")
        self.indent -= 1
        self.emit(f"e{e_false} += 1")
        self.emit(f"pc = {t_false}")
        self.emit("continue")

    def _emit_call(self, word: list) -> bool:
        """One lane-parallel call; returns True when the emission
        terminated the block (an emitter-level raise).

        Argument registers are undef-checked per lane (faulting lanes
        drop before the call, exactly as their sequential run would
        fault at this site).  The caller folds its sparse cycle delta so
        the callee sees exact absolute bases, then the callee runs the
        surviving lanes as one group; frame-entry raises (depth, arity,
        unknown entry) are uniform and fault the whole group.  The
        callee folds everything it does into the per-lane bases, so the
        caller resumes *inline* with the whole group intact — only the
        max base needs recomputing."""
        callee, dspec, specs = word[1], word[2], word[3]
        if callee not in self.fn_of_graph:
            message = f"call to unknown function {callee!r}"
            self.emit(f"raise SimulationError({message!r})")
            return True
        for kind, payload, _aname in specs:
            if kind == 3:
                message = f"array argument {payload!r} is not bound"
                self.emit(f"raise SimulationError({message!r})")
                return True
            if kind not in (0, 1, 2):
                self.emit(f"raise SimulationError({payload!r})")
                return True
        reg_args = [(payload, aname)
                    for kind, payload, aname in specs if kind == 0]
        if reg_args:
            self.emit("_flt = False")
            self.emit("for ln in lanes:")
            self.emit("    try:")
            for slot, aname in reg_args:
                message = f"read of undefined register {aname!r}"
                self.emit(f"        if {self._r(slot)}[ln] is _UNDEF:")
                self.emit(f"            raise SimulationError({message!r})")
            self.emit("    except SimulationError as exc:")
            self.emit("        fault[ln] = exc")
            self.emit("        _flt = True")
            self.emit("if _flt:")
            self.emit("    lanes = "
                      "[ln for ln in lanes if fault[ln] is None]")
            self.emit("    if not lanes:")
            self.emit("        break")
        args = []
        for kind, payload, _aname in specs:
            if kind == 0:
                args.append(self._r(payload))
            elif kind == 1:
                args.append(f"[{self._const(payload)}] * {self.n_lanes}")
            else:
                args.append(f"a{payload}")
        self.emit("if n:")
        self.emit("    for ln in lanes:")
        self.emit("        nb[ln] += n")
        self.emit("    nm += n")
        self.emit("    n = 0")
        self.emit("try:")
        self.emit(f"    G[{self.fn_of_graph[callee]!r}]"
                  f"([{', '.join(args)}], lanes, nm, state)")
        self.emit("except SimulationError as exc:")
        self.emit("    for ln in lanes:")
        self.emit("        fault[ln] = exc")
        self.emit("    break")
        self.emit("lanes = [ln for ln in lanes if fault[ln] is None]")
        self.emit("if not lanes:")
        self.emit("    break")
        if dspec is not None:
            self.emit("for ln in lanes:")
            self.emit(f"    {self._r(dspec)}[ln] = retv[ln]")
        self._emit_nm()
        return False

    def _emit_return(self, word: list, counted: List[int]) -> None:
        """Fold the group's shared counter deltas into every lane,
        record the per-lane return value, and retire the group.  A lane
        whose return register is undefined faults here — its
        (already-folded) counters are never read."""
        op = word[0]
        self.emit("for ln in lanes:")
        self.emit("    nb[ln] += n")
        if counted:
            self.emit("    _a = eh[ln]")
            for e in counted:
                self.emit(f"    _a[{e}] += e{e}")
        if op == RET_C:
            self.emit(f"    retv[ln] = {self._const(word[1])}")
        elif op == RET_N:
            self.emit("    retv[ln] = None")
        elif op == RET_S:
            self.emit(f"    retv[ln] = {self._r(word[1])}[ln]")
        if op == RET_R:
            message = f"read of undefined register {word[2]!r}"
            self.emit("for ln in lanes:")
            self.emit(f"    _t = {self._r(word[1])}[ln]")
            self.emit("    if _t is _UNDEF:")
            self.emit(f"        fault[ln] = SimulationError({message!r})")
            self.emit("    else:")
            self.emit("        retv[ln] = _t")
        self.emit("break")

    # -- block + dispatch emission -------------------------------------------------

    def _emit_block(self, start: int, words, index_of,
                    starts_set: Set[int], ordinal_of: Dict[int, int],
                    counted: List[int]) -> None:
        k = start
        run: List[list] = []
        while True:
            word = words[k]
            op = word[0]
            if not _is_terminal(op) and op != CALL:
                run.append(word)
                k += 1
                continue
            if op == CALL:
                self._flush_run(run)
                run = []
                if self._emit_call(word):
                    return
                resume = index_of[id(word[4])]
                if resume in starts_set:
                    self.emit(f"pc = {ordinal_of[resume]}")
                    self.emit("continue")
                    return
                k = resume
                continue
            if op in _RETS:
                self._flush_run(run)
                self._emit_return(word, counted)
                return
            if op == ERROR:
                self._flush_run(run)
                self.emit(f"raise SimulationError({word[1]!r})")
                return
            if op == BR:
                self._emit_branch(word, words, index_of, starts_set,
                                  ordinal_of, counted, run)
                return
            if op == JB:
                self._flush_run(run)
                self._emit_limit_check(counted)
                self.emit(f"pc = {ordinal_of[index_of[id(word[1])]]}")
                self.emit("continue")
                return
            # J or a fused op+jump word.
            if op != J:
                run.append(word)
            target = index_of[id(word[_jump_slots(word)[0]])]
            if target not in starts_set:
                k = target
                continue
            self._flush_run(run)
            self.emit(f"pc = {ordinal_of[target]}")
            self.emit("continue")
            return

    def _emit_dispatch(self, lo: int, hi: int,
                       blocks: Dict[int, List[str]]) -> None:
        if lo == hi:
            self.paste(blocks[lo])
            return
        mid = (lo + hi) // 2
        self.emit(f"if pc <= {mid}:")
        self.indent += 1
        self._emit_dispatch(lo, mid, blocks)
        self.indent -= 1
        self.emit("else:")
        self.indent += 1
        self._emit_dispatch(mid + 1, hi, blocks)
        self.indent -= 1

    # -- whole function ------------------------------------------------------------

    def _emit_prologue(self) -> Optional[List[int]]:
        lg = self.lg
        name = lg.name
        L = self.n_lanes
        self.emit("depth = state.depth")
        message = f"call depth exceeded in {name!r} (runaway recursion?)"
        self.emit(f"if depth > {_MAX_CALL_DEPTH}:")
        self.emit(f"    raise SimulationError({message!r})")
        self.emit(f"cc = state.call_counts[{name!r}]")
        self.emit("for ln in lanes:")
        self.emit("    cc[ln] += 1")
        prefix = f"{name!r} expects {lg.n_params} arguments, got "
        self.emit(f"if len(args) != {lg.n_params}:")
        self.emit(f"    raise SimulationError({prefix!r} + "
                  "str(len(args)))")
        self.emit("fault = state.fault")
        self.emit("retv = state.retv")
        self.emit("nb = state.lane_n")

        param_slots = {slot for is_reg, slot, _pname in lg.param_plan
                       if is_reg}
        named = lg.n_regs - 1 - lg.scratch_watermark
        for s in range(1, named + 1):
            if s in self.upward and s not in param_slots:
                self.emit(f"r{s} = [_UNDEF] * {L}")
        for i in range(1, lg.scratch_watermark + 1):
            if -i in self.upward:
                self.emit(f"t{i} = [_UNDEF] * {L}")

        written: Set[int] = set()
        for word in lg.words:
            op = word[0]
            if op == CALL:
                if word[2] is not None:
                    written.add(word[2])
            elif op != J and op != JB and op != BR and op != ERROR \
                    and op not in _RETS:
                written.update(_word_regs(word)[1])

        has_array_params = False
        for i, (is_reg, slot, pname) in enumerate(lg.param_plan):
            if is_reg:
                if slot in written:
                    self.emit(f"r{slot} = list(args[{i}])")
                else:  # read-only: alias the caller's list directly
                    self.emit(f"r{slot} = args[{i}]")
            else:
                has_array_params = True
                prefix = (f"{name!r}: array parameter {pname!r} "
                          f"bound to non-array ")
                self.emit(f"_t = args[{i}]")
                self.emit("for ln in lanes:")
                self.emit("    if not isinstance(_t[ln], ArrayStorage):")
                self.emit(f"        fault[ln] = SimulationError({prefix!r}"
                          " + repr(_t[ln]))")
                self.emit(f"a{slot} = _t")
        if has_array_params:
            self.emit("lanes = [ln for ln in lanes if fault[ln] is None]")
            self.emit("if not lanes:")
            self.emit("    return")
        for slot, symbol in lg.local_plan:
            self.emit(f"a{slot} = [None] * {L}")
            self.emit("for ln in lanes:")
            self.emit(f"    a{slot}[ln] = ArrayStorage({self._k(symbol)})")
        if lg.global_plan:
            self.emit("_ga = state.global_arrays")
            for slot, gname in lg.global_plan:
                self.emit(f"a{slot} = _ga[{gname!r}]")
        for slot, placeholder in lg.missing_plan:
            self.emit(f"a{slot} = [{self._k(placeholder)}] * {L}")

        if lg.entry_word is None:
            message = f"{name!r} has no entry node"
            self.emit(f"raise SimulationError({message!r})")
            return None

        counted = sorted({word[slot]
                          for word in lg.words if word[0] == BR
                          for slot in (2, 4)})
        self.emit(f"eh = state.edge_hits[{name!r}]")
        self.emit("limit = state.max_cycles")
        self.emit("wait = None")
        self.emit("pmin = 1 << 62")
        self._emit_reset(counted)
        self._emit_limit_check(counted, on_empty="return")
        return counted

    def build(self) -> str:
        lg = self.lg
        counted = self._emit_prologue()
        if counted is not None:
            words, index_of, starts, entry = self._analyze()
            starts_set = set(starts)
            ordinal_of = {idx: i for i, idx in enumerate(starts)}
            blocks: Dict[int, List[str]] = {}
            saved = self.lines
            for idx in starts:
                self.lines = []
                self.indent = 0
                self._emit_block(idx, words, index_of, starts_set,
                                 ordinal_of, counted)
                blocks[ordinal_of[idx]] = self.lines
            self.lines = saved
            self.indent = 1

            self.emit("state.depth = depth + 1")
            self.emit("try:")
            self.indent += 1
            self.emit(f"pc = {ordinal_of[entry]}")
            self.emit("while True:")
            self.indent += 1
            self.emit("try:")
            self.indent += 1
            self.emit("while True:")
            self.indent += 1
            self._emit_park(counted)
            self._emit_dispatch(0, len(starts) - 1, blocks)
            self.indent -= 2
            self.emit("except SimulationError as exc:")
            self.emit("    for ln in lanes:")
            self.emit("        fault[ln] = exc")
            self.emit("if not wait:")
            self.emit("    return")
            self.emit("pc = min(wait)")
            self.emit("lanes = wait.pop(pc)")
            self.emit("pmin = min(wait) if wait else 1 << 62")
            self._emit_reset(counted)
            self._emit_nm()
            self.indent -= 2
            self.emit("finally:")
            self.emit("    state.depth = depth")

        params = ["args", "lanes", "nm", "state", "_UNDEF=_UNDEF",
                  "ArrayStorage=ArrayStorage",
                  "SimulationError=SimulationError", "G=G"]
        params.extend(f"K{i}=_{self.fn_name}_K{i}"
                      for i in range(len(self.objs)))
        header = f"def {self.fn_name}({', '.join(params)}):"
        return "\n".join([header] + self.lines) + "\n"


class _LaneState:
    """Mutable state of one lane-parallel run, shared across frames.

    ``lane_n`` holds each lane's *absolute* sparse cycle base, updated
    at fold points (parks, divergences, returns, rare limit paths); a
    running group's scalar delta ``n`` lives in the generated frame and
    is folded in before anything per-lane is decided."""

    __slots__ = ("globals", "global_arrays", "max_cycles", "depth",
                 "call_counts", "edge_hits", "fault", "retv", "lane_n")

    def __init__(self, globals_: List[Dict[str, ArrayStorage]],
                 max_cycles: int, n_lanes: int,
                 edge_hits: Dict[str, List[List[int]]]):
        self.globals = globals_
        # Per-name lane lists, hoisted out of the generated prologues:
        # storages mutate in place but are never rebound, so one
        # snapshot of identities serves every call.  (``get``: a lane
        # pre-faulted during setup may have a partial dict; it never
        # runs, so its placeholder is never read.)
        names: Set[str] = set()
        for lane_globals in globals_:
            names.update(lane_globals)
        self.global_arrays: Dict[str, List[Optional[ArrayStorage]]] = {
            name: [lane_globals.get(name) for lane_globals in globals_]
            for name in sorted(names)}
        self.max_cycles = max_cycles
        self.depth = 0
        self.call_counts: Dict[str, List[int]] = {
            name: [0] * n_lanes for name in edge_hits}
        self.edge_hits = edge_hits
        self.fault: List[Optional[SimulationError]] = [None] * n_lanes
        self.retv: List[object] = [None] * n_lanes
        self.lane_n: List[int] = [0] * n_lanes


class LaneModule:
    """All graphs of one module as lane-parallel exec-compiled functions,
    specialized for one lane count (the width is inlined)."""

    def __init__(self, module: GraphModule, n_lanes: int,
                 ranges_on: bool = None):
        if ranges_on is None:
            from repro.analysis.ranges import ranges_enabled
            ranges_on = ranges_enabled()
        lowered = lower_module(module)
        bounds, premises, safe_ids = bounds_artifacts(
            module, lowered, ranges_on)
        fn_of_graph = {name: f"_f{i}"
                       for i, name in enumerate(lowered.graphs)}
        consts: Dict[str, object] = {}
        pieces: List[str] = []
        for name, lg in lowered.graphs.items():
            emitter = _LaneEmitter(lg, fn_of_graph[name], fn_of_graph,
                                   n_lanes,
                                   safe_ids.get(name, frozenset()))
            pieces.append(emitter.build())
            for i, obj in enumerate(emitter.objs):
                consts[f"_{fn_of_graph[name]}_K{i}"] = obj
        source = "\n".join(pieces)
        code = compile(source, f"<repro-lanes:{module.name}:L{n_lanes}>",
                       "exec")
        self._assemble(module, lowered, n_lanes, source, consts, code,
                       bounds)

    def _assemble(self, module: GraphModule, lowered: LoweredModule,
                  n_lanes: int, source: str, consts: Dict[str, object],
                  code, bounds=None) -> None:
        self.module = module
        self.lowered = lowered
        self.n_lanes = n_lanes
        self.source = source
        self.consts = consts
        self.bounds = bounds
        self.premises = {} if not isinstance(bounds, dict) \
            else dict(bounds.get("premises", {}))
        self._ranges_on = bounds is not None
        self._code = code
        self.fns: Dict[str, object] = {}
        namespace: Dict[str, object] = {
            "_UNDEF": _UNDEF,
            "ArrayStorage": ArrayStorage,
            "SimulationError": SimulationError,
            "G": {},
        }
        namespace.update(consts)
        exec(code, namespace)
        dispatch: Dict[str, object] = namespace["G"]  # type: ignore
        for i, name in enumerate(lowered.graphs):
            fn = namespace[f"_f{i}"]
            dispatch[f"_f{i}"] = fn
            self.fns[name] = fn
        self._signature = lowered._signature

    def disk_payload(self) -> Dict[str, object]:
        """Same shape as the codegen tier's entry (lowered graphs,
        source, consts, checksummed marshalled code) plus the lane
        count, which a load re-verifies against the requested width."""
        import hashlib
        import marshal
        blob = marshal.dumps(self._code)
        return {"graphs": self.lowered.graphs, "n_lanes": self.n_lanes,
                "source": self.source, "consts": self.consts,
                "code": blob, "code_sha": hashlib.sha256(blob).hexdigest(),
                "bounds": self.bounds}

    @classmethod
    def from_payload(cls, module: GraphModule, payload: Dict[str, object],
                     n_lanes: int) -> "LaneModule":
        import hashlib
        import marshal
        if payload.get("n_lanes") != n_lanes:
            raise ValueError("lane-count mismatch in cache entry")
        lowered = LoweredModule.from_graphs(module, payload["graphs"])
        source = payload["source"]
        code = None
        blob = payload.get("code")
        if isinstance(blob, bytes) and \
                hashlib.sha256(blob).hexdigest() == payload.get("code_sha"):
            try:
                code = marshal.loads(blob)
            except Exception:
                code = None
        if code is None:
            code = compile(source,
                           f"<repro-lanes:{module.name}:L{n_lanes}>", "exec")
        self = cls.__new__(cls)
        self._assemble(module, lowered, n_lanes, source,
                       payload["consts"], code, payload.get("bounds"))
        return self


def generate_lane_module(module: GraphModule, n_lanes: int,
                         ranges_on: bool = None) -> LaneModule:
    """The lane-parallel form of *module* for *n_lanes* seeds.

    Cached per lane count and range-analysis variant on the module
    itself (``_lanes_cache`` maps ``(n_lanes, ranges_on)`` to a
    :class:`LaneModule`, validated by the usual streamed structural
    signature and stripped at pickle boundaries), with the disk tier
    below it under a lane-count-partitioned key — the same module
    digest the bytecode/codegen entries use, suffixed with the width
    (and ``-noranges`` for the all-guarded variant), since the emitted
    source is width- and variant-specialized.
    """
    if ranges_on is None:
        from repro.analysis.ranges import ranges_enabled
        ranges_on = ranges_enabled()
    cache_map = module.__dict__.get("_lanes_cache")
    if cache_map is None:
        cache_map = module._lanes_cache = {}
    cached = cache_map.get((n_lanes, ranges_on))
    if cached is not None:
        if _signature_matches(module, cached._signature):
            return cached
        cache_map.clear()  # the module mutated: every width is stale
    from repro.sim.diskcache import get_cache, module_digest
    cache = get_cache()
    key = None
    if cache is not None:
        digest = module_digest(module)
        key = f"{digest}-L{n_lanes}" if ranges_on \
            else f"{digest}-L{n_lanes}-noranges"
        payload = cache.load("lanes", key)
        if payload is not None and not _payload_verified(
                module, "lanes", payload, cache, n_lanes=n_lanes,
                digest=key):
            payload = None
        if payload is not None and \
                (payload.get("bounds") is not None) != ranges_on:
            payload = None
        if payload is not None:
            lane_module = None
            try:
                lane_module = LaneModule.from_payload(module, payload,
                                                      n_lanes)
            except Exception:
                cache.unusable("lanes")
            if lane_module is not None:
                cache_map[(n_lanes, ranges_on)] = lane_module
                module._lowered_cache = lane_module.lowered
                return lane_module
        # Resolve the lowered form under the already-computed digest so
        # LaneModule's internal lower_module call is an in-memory hit.
        lower_module(module, _digest=digest)
    lane_module = LaneModule(module, n_lanes, ranges_on=ranges_on)
    if key is not None:
        cache.store("lanes", key, lane_module.disk_payload())
    cache_map[(n_lanes, ranges_on)] = lane_module
    return lane_module


class LaneEngine:
    """The lane-parallel batch engine (fifth tier).

    ``run_batch`` executes all input sets in one generated pass; each
    lane's result is bit-identical to its own sequential
    :func:`~repro.sim.machine.run_module` call, including faults.
    """

    def __init__(self, module: GraphModule, max_cycles: int = 200_000_000):
        self.module = module
        self.max_cycles = max_cycles

    def run_batch_outcomes(self, inputs_list:
                           Sequence[Optional[Dict[str, Sequence]]]
                           ) -> List[LaneOutcome]:
        """Per-lane ``("ok", MachineResult)`` / ``("error", message)``.

        The outcome form exists because lanes fault independently: a
        batch where seed 3 traps still returns seeds 0–2 and 4+ complete
        (their results bit-identical to sequential runs), with lane 3
        carrying exactly the message its own run would have raised.
        """
        n_lanes = len(inputs_list)
        if n_lanes == 0:
            return []
        module = self.module
        lane_module = generate_lane_module(module, n_lanes)
        lmod = lane_module.lowered
        entry = module.entry

        globals_list: List[Dict[str, ArrayStorage]] = []
        prefault: List[Optional[SimulationError]] = [None] * n_lanes
        for i, inputs in enumerate(inputs_list):
            lane_globals: Dict[str, ArrayStorage] = {}
            try:
                for name, symbol in module.global_arrays.items():
                    init = module.array_initializers.get(name)
                    lane_globals[name] = ArrayStorage(symbol, init)
                if inputs:
                    for name, values in inputs.items():
                        if name not in lane_globals:
                            raise SimulationError(
                                f"input {name!r} does not match any "
                                f"global array")
                        lane_globals[name].fill_from(values)
            except SimulationError as exc:
                prefault[i] = exc
            globals_list.append(lane_globals)

        edge_hits = {name: [[0] * len(lg.edge_pairs)
                            for _ in range(n_lanes)]
                     for name, lg in lmod.graphs.items()}
        state = _LaneState(globals_list, self.max_cycles, n_lanes,
                           edge_hits)
        for i, exc in enumerate(prefault):
            if exc is not None:
                state.fault[i] = exc
        lanes = [i for i in range(n_lanes) if state.fault[i] is None]
        if lanes:
            fns = lane_module.fns
            if lane_module.premises:
                from repro.analysis.ranges import premises_hold
                if not all(premises_hold(lane_module.premises,
                                         globals_list[ln])
                           for ln in lanes):
                    # Some lane's inputs overrode a premise scalar: the
                    # elided guards are unproven for this batch, so the
                    # whole batch executes the all-guarded build
                    # (bit-identical lowering, same counters).
                    fns = generate_lane_module(module, n_lanes,
                                               ranges_on=False).fns
            try:
                fns[entry.name]([], lanes, 0, state)
            except SimulationError as exc:
                # Raises escaping the entry frame are group-wide by
                # construction (its generated body converts per-lane
                # faults into recorded drops).
                for ln in lanes:
                    if state.fault[ln] is None:
                        state.fault[ln] = exc

        outcomes: List[LaneOutcome] = []
        for ln in range(n_lanes):
            exc = state.fault[ln]
            if exc is not None:
                outcomes.append(("error", str(exc)))
                continue
            snapshot = {name: storage.snapshot()
                        for name, storage in globals_list[ln].items()}
            profile = ProfileData()
            calls = state.call_counts
            for name, lg in lmod.graphs.items():
                node_hits, ehits = lg.resolve_counters(
                    edge_hits[name][ln], calls[name][ln])
                profile.merge_arrays(name, lg.node_ids, node_hits,
                                     lg.edge_pairs, ehits)
            for name, per_lane in calls.items():
                if per_lane[ln]:
                    profile.call_counts[name] = per_lane[ln]
            # The exact post-run check backing the sparse in-run one,
            # mirroring run_lowered_module.
            if profile.total_cycles() > self.max_cycles:
                outcomes.append((
                    "error",
                    f"cycle limit ({self.max_cycles}) exceeded; "
                    f"infinite loop in {entry.name!r}?"))
                continue
            outcomes.append(("ok", MachineResult(state.retv[ln],
                                                 snapshot, profile)))
        return outcomes

    def run_batch(self, inputs_list:
                  Sequence[Optional[Dict[str, Sequence]]]
                  ) -> List[MachineResult]:
        """Batch results in order, raising the first faulting lane's
        error — the observable contract of the per-seed loop the other
        tiers use (seeds before the fault are discarded there too)."""
        results: List[MachineResult] = []
        for kind, payload in self.run_batch_outcomes(inputs_list):
            if kind == "error":
                raise SimulationError(payload)
            results.append(payload)
        return results

    def run(self, inputs: Optional[Dict[str, Sequence]] = None
            ) -> MachineResult:
        """Single-seed entry point: a one-lane batch."""
        return self.run_batch([inputs])[0]
