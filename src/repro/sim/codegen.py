"""The exec-compiled codegen engine (the fourth tier).

The bytecode tier (:mod:`repro.sim.bytecode`) made most machine cycles
one dispatch, but every word still pays the dispatch ladder plus a
handful of list indexings (the word's operand slots, the flat register
file).  This tier removes those too: :func:`generate_module` walks the
*lowered words* produced by :func:`repro.sim.engine.lower_module` and
emits one specialized Python **source function per graph** —

* straight-line word runs become straight-line statements over *local
  variables* (``r3 = r1 + r2``): registers are locals, constants are
  inlined literals, array storages are hoisted into locals once per
  frame, so the hot path is plain ``LOAD_FAST`` arithmetic with zero
  interpretive overhead;
* control flow becomes ``while``/``if`` structure: forward fall-through
  jumps are merged away at generation time, and the remaining
  precomputed branch targets go through an O(log n) binary dispatch tree
  over a block counter — a transfer costs a few integer compares
  instead of one dispatch per word;
* profile counting keeps the bytecode tier's contract — one counter per
  *branch* edge, held in integer locals and folded into the shared
  ``state.edge_hits`` arrays at frame exit, then reconstructed exactly
  by the unchanged :meth:`_LoweredGraph.resolve_counters`.

The generated source is ``exec``-compiled once per module and cached on
the module under the same memoized structural signature as the
compiled/bytecode caches (validated by streaming, stripped at pickle
boundaries by ``GraphModule.__getstate__`` and regenerated lazily per
process).  Results are bit-identical to the other three engines — return
value, memory, full node/edge/call profiles and error behavior — pinned
by ``tests/test_codegen.py`` and the cross-engine fuzz harness in
``tests/test_fuzz_engines.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SimulationError
from repro.cfg.graph import GraphModule
from repro.sim import engine as _eng
from repro.sim.engine import (BR, CALL, CP, CP2, ERROR, INTRN, J, JB,
                              LoweredModule, RET_C, RET_N, RET_R, RET_S,
                              RETREAD, TEST, _LoweredGraph, _UNDEF,
                              _payload_verified, _signature_matches,
                              lower_module, run_lowered_module)
from repro.sim.machine import _MAX_CALL_DEPTH, MachineResult
from repro.sim.memory import ArrayStorage

# -- word-layout tables -----------------------------------------------------------
#
# Derived from the opcode layouts in :mod:`repro.sim.engine`; fused
# (``*_J``) forms share their base form's operand layout, the jump target
# in the trailing slot is handled by the block walker.

#: inline binary forms: opcode -> (infix operator, operand kinds), where
#: kind "r" is a register slot and "c" an inlined constant.
_BINOPS = {
    _eng.ADD_RR: ("+", "rr"), _eng.ADD_RC: ("+", "rc"),
    _eng.SUB_RR: ("-", "rr"), _eng.SUB_RC: ("-", "rc"),
    _eng.MUL_RR: ("*", "rr"), _eng.MUL_RC: ("*", "rc"),
    _eng.ADD_RR_J: ("+", "rr"), _eng.ADD_RC_J: ("+", "rc"),
    _eng.SUB_RR_J: ("-", "rr"), _eng.SUB_RC_J: ("-", "rc"),
    _eng.MUL_RR_J: ("*", "rr"), _eng.MUL_RC_J: ("*", "rc"),
}

#: function-calling binary forms: opcode -> operand kinds after the
#: function slot.
_BINF = {
    _eng.BINF_RR: "rr", _eng.BINF_RC: "rc", _eng.BINF_CR: "cr",
    _eng.BINF_CC: "cc",
    _eng.BINF_RR_J: "rr", _eng.BINF_RC_J: "rc", _eng.BINF_CR_J: "cr",
}

#: loads: opcode -> index kind.
_LOADS = {_eng.LOAD: "r", _eng.LOADC: "c",
          _eng.LOAD_J: "r", _eng.LOADC_J: "c"}

#: direct stores: opcode -> (value kind @ word[2], index kind @ word[3]);
#: the call made is ``storage.store(index, value)``.
_STORES = {
    _eng.ST_RR: ("r", "r"), _eng.ST_RC: ("r", "c"),
    _eng.ST_CR: ("c", "r"), _eng.ST_CC: ("c", "c"),
    _eng.STORE_J: ("r", "r"), _eng.STORE_CI_J: ("r", "c"),
}

#: deferred store commits: opcode -> (index kind @ word[2], value kind
#: @ word[3]).
_STORES_D = {
    _eng.STD_SS: ("r", "r"), _eng.STD_SC: ("r", "c"),
    _eng.STD_CS: ("c", "r"), _eng.STD_CC: ("c", "c"),
}

_MOV_CONSTS = {_eng.MOV_C, _eng.MOV_C_J}
_MOV_REGS = {_eng.MOV_R, _eng.MOV_R_J}
_NEGS = {_eng.NEG, _eng.NEG_J}
_UNFS = {_eng.UNF, _eng.UNF_J}
_RETS = {RET_R, RET_C, RET_N, RET_S}


def _is_terminal(op: int) -> bool:
    """True for words that end the straight-line thread (fused jumps,
    control transfers, returns, errors)."""
    return op < CP or op in _RETS or op == ERROR


def _jump_slots(word: list) -> Tuple[int, ...]:
    """Operand slots of *word* holding successor-word references."""
    op = word[0]
    if op == J or op == JB:
        return (1,)
    if op == BR:
        return (3, 5)
    if op < CP:  # fused op+jump forms: the trailing slot
        return (len(word) - 1,)
    return ()


class _FunctionEmitter:
    """Emits the Python source of one lowered graph."""

    def __init__(self, lg: _LoweredGraph, fn_name: str,
                 fn_of_graph: Dict[str, str],
                 safe_loads: frozenset = frozenset()):
        self.lg = lg
        self.fn_name = fn_name
        self.fn_of_graph = fn_of_graph
        #: ``id()``s of load words whose bounds proof allows dropping
        #: the inline guard (see :mod:`repro.analysis.ranges`).
        self.safe_loads = safe_loads
        self.lines: List[str] = []
        self.indent = 1
        #: objects that cannot be inlined as literals (operation function
        #: objects, array symbols, placeholder objects), bound as default
        #: arguments so the hot loop reads them with LOAD_FAST.
        self.objs: List[object] = []
        self._obj_names: Dict[int, str] = {}

    # -- small helpers -------------------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def paste(self, block: List[str]) -> None:
        """Insert pre-rendered block lines at the current indent."""
        prefix = "    " * self.indent
        self.lines.extend(prefix + line for line in block)

    @staticmethod
    def _r(slot: int) -> str:
        """Local-variable name of a register slot (negative = scratch)."""
        return f"r{slot}" if slot >= 0 else f"t{-slot}"

    def _k(self, obj) -> str:
        """Default-argument name binding *obj* into the function."""
        name = self._obj_names.get(id(obj))
        if name is None:
            name = f"K{len(self.objs)}"
            self._obj_names[id(obj)] = name
            self.objs.append(obj)
        return name

    def _const(self, value) -> str:
        """Source text of an inlined constant.

        ``repr`` round-trips every int and every *finite* float, but
        constant folding can produce ``inf``/``nan`` (e.g. ``1e308 *
        1e308`` folded at level 1), whose reprs are bare names that do
        not exist in the generated namespace — those are bound as
        default arguments instead.
        """
        if isinstance(value, float) and \
                (value != value or value in (float("inf"), float("-inf"))):
            return self._k(value)
        return repr(value)

    def _operand(self, kind: str, payload) -> str:
        return self._r(payload) if kind == "r" else self._const(payload)

    def _emit_limit_check(self) -> None:
        tail = f"exceeded; infinite loop in {self.lg.name!r}?"
        self.emit("n += 1")
        self.emit("if n > limit:")
        self.emit("    cyc[0] = n")
        self.emit('    raise SimulationError(f"cycle limit ({limit}) "'
                  f" {tail!r})")

    # -- block discovery -----------------------------------------------------------

    def _analyze(self):
        """Split the word list into labeled blocks.

        A word starts a block when it is the entry or the target of any
        jump — except a single forward fall (a ``J`` or fused jump from
        the immediately preceding word with no other reference), which
        merges into its predecessor's straight line.
        """
        words = self.lg.words
        index_of = {id(w): i for i, w in enumerate(words)}
        refs: Dict[int, List[Tuple[int, int]]] = {}  # target -> [(src, op)]
        for i, word in enumerate(words):
            for slot in _jump_slots(word):
                target = index_of[id(word[slot])]
                refs.setdefault(target, []).append((i, word[0]))
        entry = index_of[id(self.lg.entry_word)]
        starts = {entry}
        for target, sources in refs.items():
            if len(sources) == 1 and target != entry:
                src, op = sources[0]
                if target == src + 1 and op != BR and op != JB:
                    continue  # adjacent forward fall: merged away
            starts.add(target)
        return words, index_of, sorted(starts), entry

    # -- per-word statement emission -----------------------------------------------

    def _emit_stmt(self, word: list) -> None:
        """Emit the computational effect of one word (jump part excluded)."""
        op = word[0]
        r = self._r
        binop = _BINOPS.get(op)
        if binop is not None:
            sym, kinds = binop
            a = self._operand(kinds[0], word[2])
            b = self._operand(kinds[1], word[3])
            self.emit(f"{r(word[1])} = {a} {sym} {b}")
            return
        kinds = _BINF.get(op)
        if kinds is not None:
            fn = self._k(word[2])
            a = self._operand(kinds[0], word[3])
            b = self._operand(kinds[1], word[4])
            self.emit(f"{r(word[1])} = {fn}({a}, {b})")
            return
        if op in _LOADS:
            index = self._operand(_LOADS[op], word[3])
            k = word[2]
            if id(word) in self.safe_loads:
                # Bounds proof carried in the payload: the index is a
                # defined int provably inside [0, size), so the guard's
                # then-branch is the only reachable arm.
                self.emit(f"{r(word[1])} = a{k}.data[{index}]")
                return
            self.emit(f"if 0 <= {index} < a{k}.size:")
            self.emit(f"    {r(word[1])} = a{k}.data[{index}]")
            self.emit("else:")
            self.emit(f"    a{k}.load({index})")
            return
        if op in _STORES:
            vkind, ikind = _STORES[op]
            value = self._operand(vkind, word[2])
            index = self._operand(ikind, word[3])
            self.emit(f"a{word[1]}.store({index}, {value})")
            return
        if op in _STORES_D:
            ikind, vkind = _STORES_D[op]
            index = self._operand(ikind, word[2])
            value = self._operand(vkind, word[3])
            self.emit(f"a{word[1]}.store({index}, {value})")
            return
        if op in _MOV_CONSTS:
            self.emit(f"{r(word[1])} = {self._const(word[2])}")
            return
        if op in _MOV_REGS:
            message = f"read of undefined register {word[3]!r}"
            self.emit(f"if {r(word[2])} is _UNDEF:")
            self.emit(f"    raise SimulationError({message!r})")
            self.emit(f"{r(word[1])} = {r(word[2])}")
            return
        if op in _NEGS:
            self.emit(f"{r(word[1])} = -{r(word[2])}")
            return
        if op in _UNFS:
            self.emit(f"{r(word[1])} = {self._k(word[2])}({r(word[3])})")
            return
        if op == _eng.UNFC:
            self.emit(f"{r(word[1])} = "
                      f"{self._k(word[2])}({self._const(word[3])})")
            return
        if op == CP:
            self.emit(f"{r(word[1])} = {r(word[2])}")
            return
        if op == CP2:
            self.emit(f"{r(word[1])} = {r(word[2])}")
            self.emit(f"{r(word[3])} = {r(word[4])}")
            return
        if op == TEST:
            self.emit(f"{r(word[1])} = {r(word[2])} != 0")
            return
        if op == RETREAD:
            message = f"read of undefined register {word[3]!r}"
            self.emit(f"if {r(word[2])} is _UNDEF:")
            self.emit(f"    raise SimulationError({message!r})")
            self.emit(f"{r(word[1])} = {r(word[2])}")
            return
        if op == INTRN:
            self._emit_intrinsic(word)
            return
        if op == CALL:
            self._emit_call(word)
            return
        raise SimulationError(
            f"cannot generate code for word {word!r}")  # pragma: no cover

    def _emit_intrinsic(self, word: list) -> None:
        args = []
        for kind, payload in word[3]:
            if kind == 0:
                args.append(self._r(payload))
            elif kind == 1:
                args.append(self._const(payload))
            else:  # unreadable operand: raises when (and only when) run
                self.emit(f"raise SimulationError({payload!r})")
                return
        self.emit(f"{self._r(word[1])} = "
                  f"{self._k(word[2])}({', '.join(args)})")

    def _emit_call(self, word: list) -> None:
        callee, dspec, specs = word[1], word[2], word[3]
        if callee not in self.fn_of_graph:
            message = f"call to unknown function {callee!r}"
            self.emit(f"raise SimulationError({message!r})")
            return
        args = []
        for kind, payload, aname in specs:
            if kind == 0:
                reg = self._r(payload)
                message = f"read of undefined register {aname!r}"
                self.emit(f"if {reg} is _UNDEF:")
                self.emit(f"    raise SimulationError({message!r})")
                args.append(reg)
            elif kind == 1:
                args.append(self._const(payload))
            elif kind == 2:
                args.append(f"a{payload}")
            elif kind == 3:
                message = f"array argument {payload!r} is not bound"
                self.emit(f"raise SimulationError({message!r})")
                return
            else:
                self.emit(f"raise SimulationError({payload!r})")
                return
        self.emit("cyc[0] = n")
        self.emit(f"_t = G[{self.fn_of_graph[callee]!r}]"
                  f"([{', '.join(args)}], state)")
        self.emit("n = cyc[0]")
        if dspec is not None:
            self.emit(f"{self._r(dspec)} = _t")

    def _emit_return(self, word: list, counted: List[int]) -> None:
        op = word[0]
        if op == RET_R:
            value = self._r(word[1])
            message = f"read of undefined register {word[2]!r}"
            self.emit(f"if {value} is _UNDEF:")
            self.emit(f"    raise SimulationError({message!r})")
        elif op == RET_C:
            value = self._const(word[1])
        elif op == RET_S:
            value = self._r(word[1])
        else:  # RET_N
            value = "None"
        self.emit("cyc[0] = n")
        for e in counted:
            self.emit(f"eh[{e}] += e{e}")
        self.emit(f"return {value}")

    # -- block + dispatch emission ---------------------------------------------------

    def _emit_block(self, start: int, words, index_of,
                    starts_set: Set[int], ordinal_of: Dict[int, int],
                    counted: List[int]) -> None:
        k = start
        while True:
            word = words[k]
            op = word[0]
            if not _is_terminal(op):
                self._emit_stmt(word)
                k += 1
                continue
            if op in _RETS:
                self._emit_return(word, counted)
                return
            if op == ERROR:
                self.emit(f"raise SimulationError({word[1]!r})")
                return
            if op == BR:
                self._emit_limit_check()
                t_true = ordinal_of[index_of[id(word[3])]]
                t_false = ordinal_of[index_of[id(word[5])]]
                self.emit(f"if {self._r(word[1])} != 0:")
                self.emit(f"    e{word[2]} += 1")
                self.emit(f"    pc = {t_true}")
                self.emit("else:")
                self.emit(f"    e{word[4]} += 1")
                self.emit(f"    pc = {t_false}")
                self.emit("continue")
                return
            if op == JB:
                self._emit_limit_check()
                self.emit(f"pc = {ordinal_of[index_of[id(word[1])]]}")
                self.emit("continue")
                return
            # J or a fused op+jump word.
            if op != J:
                self._emit_stmt(word)
            target = index_of[id(word[_jump_slots(word)[0]])]
            if target == k + 1 and target not in starts_set:
                k = target  # merged forward fall: keep the straight line
                continue
            self.emit(f"pc = {ordinal_of[target]}")
            self.emit("continue")
            return

    def _emit_dispatch(self, lo: int, hi: int,
                       blocks: Dict[int, List[str]]) -> None:
        """Binary dispatch tree over contiguous block ordinals."""
        if lo == hi:
            self.paste(blocks[lo])
            return
        mid = (lo + hi) // 2
        self.emit(f"if pc <= {mid}:")
        self.indent += 1
        self._emit_dispatch(lo, mid, blocks)
        self.indent -= 1
        self.emit("else:")
        self.indent += 1
        self._emit_dispatch(mid + 1, hi, blocks)
        self.indent -= 1

    # -- whole function --------------------------------------------------------------

    def _emit_prologue(self) -> List[int]:
        """Frame setup mirroring the bytecode tier's ``_exec_graph``;
        returns the counted-edge index list (empty when the function
        raises before reaching the dispatch loop)."""
        lg = self.lg
        name = lg.name
        self.emit("depth = state.depth")
        message = f"call depth exceeded in {name!r} (runaway recursion?)"
        self.emit(f"if depth > {_MAX_CALL_DEPTH}:")
        self.emit(f"    raise SimulationError({message!r})")
        self.emit("cc = state.call_counts")
        self.emit(f"cc[{name!r}] = cc.get({name!r}, 0) + 1")
        prefix = f"{name!r} expects {lg.n_params} arguments, got "
        self.emit(f"if len(args) != {lg.n_params}:")
        self.emit(f"    raise SimulationError({prefix!r} + "
                  "str(len(args)))")

        named = lg.n_regs - 1 - lg.scratch_watermark
        if named > 0:
            self.emit(" = ".join(f"r{s}" for s in range(1, named + 1))
                      + " = _UNDEF")
        if lg.scratch_watermark:
            self.emit(" = ".join(f"t{i}" for i in
                                 range(1, lg.scratch_watermark + 1))
                      + " = _UNDEF")

        for i, (is_reg, slot, pname) in enumerate(lg.param_plan):
            if is_reg:
                self.emit(f"r{slot} = args[{i}]")
            else:
                prefix = (f"{name!r}: array parameter {pname!r} "
                          f"bound to non-array ")
                self.emit(f"_t = args[{i}]")
                self.emit("if not isinstance(_t, ArrayStorage):")
                self.emit(f"    raise SimulationError({prefix!r} + "
                          "repr(_t))")
                self.emit(f"a{slot} = _t")
        for slot, symbol in lg.local_plan:
            self.emit(f"a{slot} = ArrayStorage({self._k(symbol)})")
        if lg.global_plan:
            self.emit("_g = state.globals")
            for slot, gname in lg.global_plan:
                self.emit(f"a{slot} = _g[{gname!r}]")
        for slot, placeholder in lg.missing_plan:
            self.emit(f"a{slot} = {self._k(placeholder)}")

        if lg.entry_word is None:
            message = f"{name!r} has no entry node"
            self.emit(f"raise SimulationError({message!r})")
            return []

        counted = sorted({word[slot]
                          for word in lg.words if word[0] == BR
                          for slot in (2, 4)})
        self.emit(f"eh = state.edge_hits[{name!r}]")
        if counted:
            self.emit(" = ".join(f"e{e}" for e in counted) + " = 0")
        self.emit("cyc = state.cyc")
        self.emit("limit = state.max_cycles")
        self.emit("n = cyc[0]")
        self._emit_limit_check()
        return counted

    def build(self) -> str:
        lg = self.lg
        counted = self._emit_prologue()
        if lg.entry_word is not None:
            words, index_of, starts, entry = self._analyze()
            starts_set = set(starts)
            ordinal_of = {idx: i for i, idx in enumerate(starts)}
            blocks: Dict[int, List[str]] = {}
            saved = self.lines
            for idx in starts:
                self.lines = []
                self.indent = 0
                self._emit_block(idx, words, index_of, starts_set,
                                 ordinal_of, counted)
                blocks[ordinal_of[idx]] = self.lines
            self.lines = saved
            self.indent = 1

            self.emit("state.depth = depth + 1")
            self.emit("try:")
            self.indent += 1
            if len(starts) > 1:
                self.emit(f"pc = {ordinal_of[entry]}")
            self.emit("while True:")
            self.indent += 1
            if len(starts) == 1:
                self.paste(blocks[0])
            else:
                self._emit_dispatch(0, len(starts) - 1, blocks)
            self.indent -= 2
            self.emit("finally:")
            self.emit("    state.depth = depth")

        params = ["args", "state", "_UNDEF=_UNDEF",
                  "ArrayStorage=ArrayStorage",
                  "SimulationError=SimulationError", "G=G"]
        params.extend(f"K{i}=_{self.fn_name}_K{i}"
                      for i in range(len(self.objs)))
        header = f"def {self.fn_name}({', '.join(params)}):"
        return "\n".join([header] + self.lines) + "\n"


def bounds_artifacts(module: GraphModule, lowered: LoweredModule,
                     ranges_on: bool):
    """``(certificate, premises, per-graph safe word-id sets)`` for the
    emitters, or ``(None, {}, {})`` when range analysis is off.

    The safe sets are keyed by graph name and contain the ``id()`` of
    every load word whose emission key is entirely proven SAFE, so both
    emitters elide guards on exactly the certificate's claims."""
    if not ranges_on:
        return None, {}, {}
    from repro.analysis import ranges as _ranges
    mranges = _ranges.analyze_lowered(module, lowered)
    bounds = _ranges.module_certificates(lowered, mranges)
    safe_ids: Dict[str, frozenset] = {}
    for name, lg in lowered.graphs.items():
        cert = bounds["graphs"].get(name)
        indices = set() if cert is None else set(cert["safe"])
        members = [w for w in lg.words if isinstance(w, list)]
        safe_ids[name] = frozenset(id(members[i]) for i in indices)
    return bounds, dict(bounds["premises"]), safe_ids


class GeneratedModule:
    """All graphs of one :class:`GraphModule` as exec-compiled functions.

    ``lowered`` is the bytecode tier's :class:`LoweredModule` — the
    generated functions execute its words' semantics, and its per-graph
    profile-reconstruction tables (:meth:`_LoweredGraph.resolve_counters`)
    are reused unchanged.  ``source`` keeps the emitted Python text for
    inspection and tests.

    With ``ranges_on`` (the default unless ``REPRO_RANGES=0``), the
    range analysis runs over the lowered form and loads proven in
    bounds are emitted unguarded; ``bounds`` then carries the proof
    certificate for the payload and ``premises`` the global-scalar
    values the proofs assume, validated at every run entry.
    """

    def __init__(self, module: GraphModule, ranges_on: bool = None):
        if ranges_on is None:
            from repro.analysis.ranges import ranges_enabled
            ranges_on = ranges_enabled()
        lowered = lower_module(module)
        bounds, premises, safe_ids = bounds_artifacts(
            module, lowered, ranges_on)
        fn_of_graph = {name: f"_f{i}"
                       for i, name in enumerate(lowered.graphs)}
        consts: Dict[str, object] = {}
        pieces: List[str] = []
        for name, lg in lowered.graphs.items():
            emitter = _FunctionEmitter(lg, fn_of_graph[name], fn_of_graph,
                                       safe_ids.get(name, frozenset()))
            pieces.append(emitter.build())
            for i, obj in enumerate(emitter.objs):
                consts[f"_{fn_of_graph[name]}_K{i}"] = obj
        source = "\n".join(pieces)
        code = compile(source, f"<repro-codegen:{module.name}>", "exec")
        self._assemble(module, lowered, source, consts, code, bounds)

    def _assemble(self, module: GraphModule, lowered: LoweredModule,
                  source: str, consts: Dict[str, object], code,
                  bounds=None) -> None:
        """Exec *code* and wire the per-graph functions — the part both
        fresh generation and a disk-cache load perform identically."""
        self.module = module
        self.lowered = lowered
        self.source = source
        self.consts = consts
        self.bounds = bounds
        self.premises = {} if not isinstance(bounds, dict) \
            else dict(bounds.get("premises", {}))
        self._ranges_on = bounds is not None
        self._code = code
        self.fns: Dict[str, object] = {}
        namespace: Dict[str, object] = {
            "_UNDEF": _UNDEF,
            "ArrayStorage": ArrayStorage,
            "SimulationError": SimulationError,
            "G": {},
        }
        namespace.update(consts)
        exec(code, namespace)
        dispatch: Dict[str, object] = namespace["G"]  # type: ignore
        for i, name in enumerate(lowered.graphs):
            fn = namespace[f"_f{i}"]
            dispatch[f"_f{i}"] = fn
            self.fns[name] = fn
        self._signature = lowered._signature

    def disk_payload(self) -> Dict[str, object]:
        """The disk-cache entry: lowered graphs (the run frame and the
        profile-reconstruction tables need them), the emitted source,
        its non-literal constants, and the marshalled code object so a
        warm load skips parsing and compiling the source too.  The
        marshal blob travels with its own checksum: ``marshal.loads``
        is documented as unsafe on erroneous bytes (it may crash rather
        than raise), so a load must be able to reject a damaged blob
        *before* handing it to marshal."""
        import hashlib
        import marshal
        blob = marshal.dumps(self._code)
        return {"graphs": self.lowered.graphs, "source": self.source,
                "consts": self.consts, "code": blob,
                "code_sha": hashlib.sha256(blob).hexdigest(),
                "bounds": self.bounds}

    @classmethod
    def from_payload(cls, module: GraphModule,
                     payload: Dict[str, object]) -> "GeneratedModule":
        """Rebuild from a disk-cache entry, skipping lowering and source
        emission (and, when the marshalled code verifies and loads,
        compilation — a blob whose checksum does not match falls back
        to compiling the stored source)."""
        import hashlib
        import marshal
        lowered = LoweredModule.from_graphs(module, payload["graphs"])
        source = payload["source"]
        code = None
        blob = payload.get("code")
        if isinstance(blob, bytes) and \
                hashlib.sha256(blob).hexdigest() == payload.get("code_sha"):
            try:
                code = marshal.loads(blob)
            except Exception:
                code = None
        if code is None:
            code = compile(source, f"<repro-codegen:{module.name}>", "exec")
        self = cls.__new__(cls)
        self._assemble(module, lowered, source, payload["consts"], code,
                       payload.get("bounds"))
        return self


def generate_module(module: GraphModule,
                    ranges_on: bool = None) -> GeneratedModule:
    """Exec-compiled form of *module*, cached on the module itself.

    Same cache protocol as :func:`~repro.sim.engine.compile_module` and
    :func:`~repro.sim.engine.lower_module`: validated by streaming the
    memoized structural signature, invalidated by any graph mutation,
    stripped at pickle boundaries and regenerated lazily per process.

    On an in-memory miss the disk tier (:mod:`repro.sim.diskcache`) is
    consulted under the module's structural digest: a hit skips the
    lowering walk, the source emission and (via the marshalled code
    object) the compile, leaving only the ``exec`` of the pre-built
    code.  The embedded lowered form also seeds ``_lowered_cache``, so
    the codegen and bytecode tiers keep agreeing on one lowering per
    module state.
    """
    if ranges_on is None:
        from repro.analysis.ranges import ranges_enabled
        ranges_on = ranges_enabled()
    cached = module.__dict__.get("_codegen_cache")
    if cached is not None and cached._ranges_on == ranges_on \
            and _signature_matches(module, cached._signature):
        return cached
    from repro.sim.diskcache import get_cache, module_digest
    cache = get_cache()
    digest = module_digest(module) if cache is not None else None
    # Guard-eliminated and all-guarded artifacts live under distinct
    # disk keys so flipping REPRO_RANGES (or a premise-violation
    # fallback build) never serves the wrong variant.
    store_key = None if digest is None \
        else (digest if ranges_on else f"{digest}-noranges")
    if store_key is not None:
        payload = cache.load("codegen", store_key)
        if payload is not None and not _payload_verified(
                module, "codegen", payload, cache, digest=store_key):
            payload = None
        if payload is not None and \
                (payload.get("bounds") is not None) == ranges_on:
            try:
                generated = GeneratedModule.from_payload(module, payload)
            except Exception:
                cache.unusable("codegen")
                generated = None
            if generated is not None:
                module._codegen_cache = generated
                module._lowered_cache = generated.lowered
                return generated
    if digest is not None:
        # Resolve the lowered form under the already-computed digest so
        # GeneratedModule's internal lower_module call is an in-memory
        # hit rather than a second digest walk.
        lower_module(module, _digest=digest)
    generated = GeneratedModule(module, ranges_on=ranges_on)
    if store_key is not None:
        cache.store("codegen", store_key, generated.disk_payload())
    module._codegen_cache = generated
    return generated


class CodegenEngine:
    """Drop-in replacement for :class:`BytecodeEngine` (codegen tier)."""

    def __init__(self, module: GraphModule, max_cycles: int = 200_000_000):
        self.module = module
        self.max_cycles = max_cycles
        self.generated = generate_module(module)
        self._guarded_cache: GeneratedModule = None

    def _guarded(self) -> GeneratedModule:
        """The all-guarded build, for runs whose inputs violate the
        guard-elimination premises (lazily built, same lowering)."""
        if self._guarded_cache is None:
            self._guarded_cache = generate_module(self.module,
                                                  ranges_on=False)
        return self._guarded_cache

    def run_batch(self, inputs_list: Sequence[Optional[Dict[str, Sequence]]]
                  ) -> List[MachineResult]:
        """Run N input sets through the same generated program.

        Generation (and the signature validation ``run_module`` pays per
        call) happens once for the whole batch; each input set executes
        with fresh globals and fresh profile counters, bit-identical to N
        independent :func:`~repro.sim.machine.run_module` calls.
        """
        return [self.run(inputs) for inputs in inputs_list]

    def run(self, inputs: Optional[Dict[str, Sequence]] = None
            ) -> MachineResult:
        """Execute ``main`` with globals bound to *inputs*.

        The frame around the generated functions — globals/input
        binding, branch-only runtime counters, exact profile
        reconstruction and the post-run cycle-limit check — is the run
        contract shared with the bytecode tier
        (:func:`~repro.sim.engine.run_lowered_module`)."""
        gmod = self.generated

        def call_entry(name, state):
            fns = gmod.fns
            if gmod.premises:
                from repro.analysis.ranges import premises_hold
                if not premises_hold(gmod.premises, state.globals):
                    # Inputs overrode a premise scalar: the elided
                    # guards are unproven for this run, so execute the
                    # all-guarded build (bit-identical lowering, same
                    # counters) instead.
                    fns = self._guarded().fns
            return fns[name]([], state)

        return run_lowered_module(
            self.module, gmod.lowered, self.max_cycles, inputs, call_entry)
