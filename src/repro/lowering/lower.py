"""Lower an analyzed mini-C AST into a three-address :class:`Module`.

Conventions
-----------
* Local scalar variables live in virtual registers named after the variable
  (with a ``.N`` suffix when shadowed).
* Global scalars are one-element arrays — memory, like a C compiler would
  place them — so cross-function reads/writes are correct.
* 2-D arrays are flattened row-major; the index arithmetic is emitted as
  explicit ``mul``/``shl``/``add`` operations.  Multiplications by small
  constants are strength-reduced to shift/add combinations, which is what a
  production embedded compiler does and what exposes the paper's
  ``add-shift-add`` address sequences in the image benchmarks.
* Short-circuit ``&&``/``||``, ternaries and comparisons-as-values
  materialize 0/1 through branch diamonds, exactly like a real front end.
"""

from __future__ import annotations

import contextlib
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import LoweringError
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.instr import Instruction
from repro.ir.module import Module
from repro.ir.ops import FLOAT_BINARY, INT_BINARY, Op
from repro.ir.values import ArraySymbol, Constant, VirtualReg
from repro.lang import ast_nodes as ast
from repro.lang.symbols import INTRINSICS, SymbolTable
from repro.lang.types import FLOAT, INT, ArrayType, Type

_COMPARISONS = {"==", "!=", "<", "<=", ">", ">="}

# Strength reduction: only exact powers of two become shifts (``x * 8`` →
# ``x << 3``).  Multi-term decompositions (24 = 16 + 8) are deliberately
# NOT applied: a mid-90s DSP front end keeps such constants on the
# multiplier, and those multiplies are precisely what makes the paper's
# multiply-add / load-multiply-add sequences appear in integer benchmarks
# (row-stride address arithmetic, small coefficient taps).
_MAX_SHIFT_TERMS = 1


def _shift_add_plan(value: int) -> Optional[List[Tuple[str, int]]]:
    """Decompose *value* into power-of-two terms, or None.

    Returns a list of ("+"/"-", shift_amount) pairs, most significant
    first.  With ``_MAX_SHIFT_TERMS = 1`` only single powers of two
    qualify; the multi-term machinery is kept (and unit-tested) because the
    ablation benchmarks re-enable it to measure its effect on sequence
    detection.
    """
    if value <= 0:
        return None
    bits = [i for i in range(value.bit_length()) if value >> i & 1]
    if len(bits) <= _MAX_SHIFT_TERMS:
        return [("+", b) for b in reversed(bits)]
    if _MAX_SHIFT_TERMS < 2:
        return None
    # Try 2^k - 2^j (e.g. 7 = 8 - 1, 12 = 16 - 4).
    for k in range(value.bit_length(), value.bit_length() + 2):
        rest = (1 << k) - value
        if rest > 0 and rest & (rest - 1) == 0:
            return [("+", k), ("-", rest.bit_length() - 1)]
    return None


@contextlib.contextmanager
def strength_reduction_terms(max_terms: int):
    """Temporarily change how aggressively multiplies become shift/adds.

    ``1`` (the default) reduces powers of two only; ``2`` additionally
    rewrites two-term constants (24 = 16 + 8, 7 = 8 - 1).  Used by the
    ablation benchmark to measure the front end's effect on detection.
    """
    global _MAX_SHIFT_TERMS
    saved = _MAX_SHIFT_TERMS
    _MAX_SHIFT_TERMS = max_terms
    try:
        yield
    finally:
        _MAX_SHIFT_TERMS = saved


class _Bindings:
    """Scoped mapping from variable names to registers / array symbols."""

    def __init__(self, parent: Optional["_Bindings"] = None):
        self.parent = parent
        self._map: Dict[str, Union[VirtualReg, ArraySymbol]] = {}

    def child(self) -> "_Bindings":
        return _Bindings(self)

    def bind(self, name: str, target) -> None:
        self._map[name] = target

    def lookup(self, name: str):
        scope: Optional[_Bindings] = self
        while scope is not None:
            if name in scope._map:
                return scope._map[name]
            scope = scope.parent
        return None


class _FunctionLowerer:
    """Lower one function definition."""

    def __init__(self, module: Module, table: SymbolTable,
                 global_bindings: _Bindings, fn_ast: ast.FuncDef):
        self.module = module
        self.table = table
        self.fn_ast = fn_ast
        sym = table.functions[fn_ast.name]
        params: List[Union[VirtualReg, ArraySymbol]] = []
        self._used_names: Dict[str, int] = {}
        self.bindings = global_bindings.child()
        for p, ty in zip(fn_ast.params, sym.param_types):
            if isinstance(ty, ArrayType):
                size = ty.total_size if ty.total_size is not None else 0
                arr = ArraySymbol(p.name, size, ty.is_float, is_global=False)
                params.append(arr)
                self.bindings.bind(p.name, arr)
            else:
                reg = VirtualReg(p.name, ty.is_float)
                params.append(reg)
                self.bindings.bind(p.name, reg)
                self._used_names[p.name] = 1
        self.function = Function(fn_ast.name, params, sym.return_type.name)
        self.b = IRBuilder(self.function)
        self._break_labels: List[str] = []
        self._continue_labels: List[str] = []
        # Row strides of 2-D arrays, keyed by array symbol name.
        self._row_strides: Dict[str, int] = {}

    # -- naming ------------------------------------------------------------------

    def _var_reg(self, name: str, is_float: bool) -> VirtualReg:
        count = self._used_names.get(name, 0)
        self._used_names[name] = count + 1
        reg_name = name if count == 0 else f"{name}.{count}"
        return VirtualReg(reg_name, is_float)

    # -- entry -------------------------------------------------------------------

    def lower(self) -> Function:
        self.block(self.fn_ast.body, self.bindings)
        # Guarantee the function ends in control flow.
        body = self.function.body
        if not body or not (isinstance(body[-1], Instruction)
                            and body[-1].is_control):
            if self.function.return_type == "void":
                self.b.ret()
            elif self.function.return_type == "float":
                self.b.ret(Constant(0.0, True), is_float=True)
            else:
                self.b.ret(Constant(0, False))
        return self.function

    # -- declarations ------------------------------------------------------------

    def local_decl(self, decl: ast.Decl, bindings: _Bindings) -> None:
        base_float = decl.base_type == "float"
        if decl.dims:
            total = 1
            for d in decl.dims:
                total *= d
            name = decl.name
            if self.function.find_array(name) is not None:
                name = f"{name}.{self._used_names.get(name, 1)}"
                self._used_names[decl.name] = \
                    self._used_names.get(decl.name, 1) + 1
            arr = ArraySymbol(name, total, base_float, is_global=False)
            if len(decl.dims) == 2:
                self._row_strides[arr.name] = decl.dims[1]
            self.function.local_arrays.append(arr)
            bindings.bind(decl.name, arr)
            return
        reg = self._var_reg(decl.name, base_float)
        bindings.bind(decl.name, reg)
        if decl.init is not None:
            value = self.expr(decl.init, bindings)
            value = self._convert(value, decl.init.ty.is_float, base_float)
            self.b.move(value, dest=reg, is_float=base_float)
        else:
            # Define the register so later reads are never undefined.
            zero = Constant(0.0, True) if base_float else Constant(0, False)
            self.b.move(zero, dest=reg, is_float=base_float)

    # -- statements ----------------------------------------------------------------

    def block(self, block: ast.Block, bindings: _Bindings) -> None:
        inner = bindings.child()
        for item in block.items:
            if isinstance(item, ast.Decl):
                self.local_decl(item, inner)
            else:
                self.statement(item, inner)

    def statement(self, stmt: ast.Stmt, bindings: _Bindings) -> None:
        if isinstance(stmt, ast.Block):
            self.block(stmt, bindings)
        elif isinstance(stmt, ast.ExprStmt):
            self.expr(stmt.expr, bindings)
        elif isinstance(stmt, ast.Assign):
            self.assign(stmt, bindings)
        elif isinstance(stmt, ast.If):
            self.if_stmt(stmt, bindings)
        elif isinstance(stmt, ast.While):
            self.while_stmt(stmt, bindings)
        elif isinstance(stmt, ast.For):
            self.for_stmt(stmt, bindings)
        elif isinstance(stmt, ast.Return):
            self.return_stmt(stmt, bindings)
        elif isinstance(stmt, ast.Break):
            if not self._break_labels:
                raise LoweringError("break outside a loop")
            self.b.jump(self._break_labels[-1])
        elif isinstance(stmt, ast.Continue):
            if not self._continue_labels:
                raise LoweringError("continue outside a loop")
            self.b.jump(self._continue_labels[-1])
        else:  # pragma: no cover
            raise LoweringError(f"unsupported statement {type(stmt).__name__}")

    def assign(self, stmt: ast.Assign, bindings: _Bindings) -> None:
        target = stmt.target
        target_float = target.ty.is_float
        if isinstance(target, ast.Name):
            binding = bindings.lookup(target.ident)
            if isinstance(binding, ArraySymbol):
                if binding.size != 1:
                    raise LoweringError("cannot assign to a whole array")
                # Global scalar: read-modify-write through memory.
                value = self._assign_value(stmt, bindings,
                                           lambda: self.b.load(binding, 0))
                self.b.store(binding, 0, value)
                return
            value = self._assign_value(
                stmt, bindings, lambda: binding)
            self.b.move(value, dest=binding, is_float=target_float)
            return
        if isinstance(target, ast.Index):
            arr, index = self._array_access(target, bindings)
            value = self._assign_value(
                stmt, bindings, lambda: self.b.load(arr, index))
            self.b.store(arr, index, value)
            return
        raise LoweringError("unsupported assignment target")

    def _assign_value(self, stmt: ast.Assign, bindings: _Bindings,
                      read_current):
        """Compute the RHS of an assignment, handling compound operators."""
        target_float = stmt.target.ty.is_float
        rhs = self.expr(stmt.value, bindings)
        rhs_float = stmt.value.ty.is_float
        if stmt.op == "=":
            return self._convert(rhs, rhs_float, target_float)
        base_op = stmt.op[:-1]
        current = read_current()
        if target_float or rhs_float:
            current = self._convert(current, target_float, True)
            rhs = self._convert(rhs, rhs_float, True)
            result = self.b.binary(FLOAT_BINARY[base_op], current, rhs)
            return self._convert(result, True, target_float)
        result = self.b.binary(INT_BINARY[base_op], current, rhs)
        return result

    def if_stmt(self, stmt: ast.If, bindings: _Bindings) -> None:
        then_label = self.b.label("then")
        end_label = self.b.label("endif")
        else_label = self.b.label("else") if stmt.other else end_label
        self.condition(stmt.cond, bindings, then_label, else_label)
        self.b.place(then_label)
        self.statement(stmt.then, bindings)
        if stmt.other is not None:
            self.b.jump(end_label)
            self.b.place(else_label)
            self.statement(stmt.other, bindings)
        self.b.place(end_label)

    def while_stmt(self, stmt: ast.While, bindings: _Bindings) -> None:
        head = self.b.label("while")
        body = self.b.label("body")
        exit_label = self.b.label("endwhile")
        self.b.place(head)
        self.condition(stmt.cond, bindings, body, exit_label)
        self.b.place(body)
        self._break_labels.append(exit_label)
        self._continue_labels.append(head)
        self.statement(stmt.body, bindings)
        self._break_labels.pop()
        self._continue_labels.pop()
        self.b.jump(head)
        self.b.place(exit_label)

    def for_stmt(self, stmt: ast.For, bindings: _Bindings) -> None:
        inner = bindings.child()
        if stmt.init is not None:
            self.statement(stmt.init, inner)
        head = self.b.label("for")
        body = self.b.label("body")
        step_label = self.b.label("step")
        exit_label = self.b.label("endfor")
        self.b.place(head)
        if stmt.cond is not None:
            self.condition(stmt.cond, inner, body, exit_label)
        self.b.place(body)
        self._break_labels.append(exit_label)
        self._continue_labels.append(step_label)
        self.statement(stmt.body, inner)
        self._break_labels.pop()
        self._continue_labels.pop()
        self.b.place(step_label)
        if stmt.step is not None:
            self.statement(stmt.step, inner)
        self.b.jump(head)
        self.b.place(exit_label)

    def return_stmt(self, stmt: ast.Return, bindings: _Bindings) -> None:
        if stmt.value is None:
            self.b.ret()
            return
        want_float = self.function.return_type == "float"
        value = self.expr(stmt.value, bindings)
        value = self._convert(value, stmt.value.ty.is_float, want_float)
        self.b.ret(value, is_float=want_float)

    # -- conditions ---------------------------------------------------------------

    def condition(self, cond: ast.Expr, bindings: _Bindings,
                  true_label: str, false_label: str) -> None:
        """Lower *cond* as control flow into the two labels."""
        if isinstance(cond, ast.BinOp) and cond.op == "&&":
            mid = self.b.label("and")
            self.condition(cond.lhs, bindings, mid, false_label)
            self.b.place(mid)
            self.condition(cond.rhs, bindings, true_label, false_label)
            return
        if isinstance(cond, ast.BinOp) and cond.op == "||":
            mid = self.b.label("or")
            self.condition(cond.lhs, bindings, true_label, mid)
            self.b.place(mid)
            self.condition(cond.rhs, bindings, true_label, false_label)
            return
        if isinstance(cond, ast.UnOp) and cond.op == "!":
            self.condition(cond.operand, bindings, false_label, true_label)
            return
        if isinstance(cond, ast.BinOp) and cond.op in _COMPARISONS:
            flag = self._comparison(cond, bindings)
            self.b.branch(flag, true_label, false_label)
            return
        value = self.expr(cond, bindings)
        if cond.ty.is_float:
            flag = self.b.binary(Op.FCMPNE, value, Constant(0.0, True))
        else:
            flag = self.b.binary(Op.CMPNE, value, Constant(0, False))
        self.b.branch(flag, true_label, false_label)

    def _comparison(self, cond: ast.BinOp, bindings: _Bindings) -> VirtualReg:
        lhs = self.expr(cond.lhs, bindings)
        rhs = self.expr(cond.rhs, bindings)
        use_float = cond.lhs.ty.is_float or cond.rhs.ty.is_float
        lhs = self._convert(lhs, cond.lhs.ty.is_float, use_float)
        rhs = self._convert(rhs, cond.rhs.ty.is_float, use_float)
        table = FLOAT_BINARY if use_float else INT_BINARY
        return self.b.binary(table[cond.op], lhs, rhs)

    # -- expressions ----------------------------------------------------------------

    def expr(self, node: ast.Expr, bindings: _Bindings):
        """Lower an expression; returns a register or constant operand."""
        if isinstance(node, ast.IntLit):
            return Constant(node.value, False)
        if isinstance(node, ast.FloatLit):
            return Constant(node.value, True)
        if isinstance(node, ast.Name):
            binding = bindings.lookup(node.ident)
            if binding is None:
                raise LoweringError(f"unbound name {node.ident!r}")
            if isinstance(binding, ArraySymbol):
                if isinstance(node.ty, ArrayType):
                    return binding  # whole-array reference (call argument)
                return self.b.load(binding, 0)  # global scalar
            return binding
        if isinstance(node, ast.Index):
            arr, index = self._array_access(node, bindings)
            return self.b.load(arr, index)
        if isinstance(node, ast.BinOp):
            return self._binop(node, bindings)
        if isinstance(node, ast.UnOp):
            return self._unop(node, bindings)
        if isinstance(node, ast.Cast):
            value = self.expr(node.operand, bindings)
            return self._convert(value, node.operand.ty.is_float,
                                 node.target == "float")
        if isinstance(node, ast.Call):
            return self._call(node, bindings)
        if isinstance(node, ast.Cond):
            return self._ternary(node, bindings)
        raise LoweringError(
            f"unsupported expression {type(node).__name__}")  # pragma: no cover

    def _binop(self, node: ast.BinOp, bindings: _Bindings):
        if node.op in ("&&", "||"):
            return self._logical_value(node, bindings)
        if node.op in _COMPARISONS:
            return self._comparison(node, bindings)
        lhs = self.expr(node.lhs, bindings)
        rhs = self.expr(node.rhs, bindings)
        use_float = node.ty.is_float
        if use_float:
            lhs = self._convert(lhs, node.lhs.ty.is_float, True)
            rhs = self._convert(rhs, node.rhs.ty.is_float, True)
            return self.b.binary(FLOAT_BINARY[node.op], lhs, rhs)
        if node.op == "*":
            reduced = self._try_strength_reduce(lhs, rhs)
            if reduced is not None:
                return reduced
        return self.b.binary(INT_BINARY[node.op], lhs, rhs)

    def _try_strength_reduce(self, lhs, rhs):
        """Rewrite ``x * C`` as shifts and adds when C is shift-friendly."""
        const, reg = None, None
        if isinstance(rhs, Constant) and not rhs.is_float:
            const, reg = rhs.value, lhs
        elif isinstance(lhs, Constant) and not lhs.is_float:
            const, reg = lhs.value, rhs
        if const is None or isinstance(reg, Constant):
            return None
        if const == 0:
            return Constant(0, False)
        if const == 1:
            return reg
        plan = _shift_add_plan(const)
        if plan is None:
            return None
        acc = None
        for sign, shift in plan:
            term = reg if shift == 0 else \
                self.b.binary(Op.SHL, reg, Constant(shift, False))
            if acc is None:
                acc = term if sign == "+" else self.b.unary(Op.NEG, term)
            elif sign == "+":
                acc = self.b.binary(Op.ADD, acc, term)
            else:
                acc = self.b.binary(Op.SUB, acc, term)
        return acc

    def _logical_value(self, node: ast.BinOp, bindings: _Bindings):
        """Materialize ``a && b`` / ``a || b`` as 0/1 through branches."""
        result = self.b.temp(False)
        true_label = self.b.label("ltrue")
        false_label = self.b.label("lfalse")
        end_label = self.b.label("lend")
        self.condition(node, bindings, true_label, false_label)
        self.b.place(true_label)
        self.b.move(Constant(1, False), dest=result)
        self.b.jump(end_label)
        self.b.place(false_label)
        self.b.move(Constant(0, False), dest=result)
        self.b.place(end_label)
        return result

    def _ternary(self, node: ast.Cond, bindings: _Bindings):
        is_float = node.ty.is_float
        result = self.b.temp(is_float)
        then_label = self.b.label("tthen")
        else_label = self.b.label("telse")
        end_label = self.b.label("tend")
        self.condition(node.cond, bindings, then_label, else_label)
        self.b.place(then_label)
        value = self.expr(node.then, bindings)
        value = self._convert(value, node.then.ty.is_float, is_float)
        self.b.move(value, dest=result, is_float=is_float)
        self.b.jump(end_label)
        self.b.place(else_label)
        value = self.expr(node.other, bindings)
        value = self._convert(value, node.other.ty.is_float, is_float)
        self.b.move(value, dest=result, is_float=is_float)
        self.b.place(end_label)
        return result

    def _unop(self, node: ast.UnOp, bindings: _Bindings):
        value = self.expr(node.operand, bindings)
        if node.op == "-":
            if node.ty.is_float:
                value = self._convert(value, node.operand.ty.is_float, True)
                return self.b.unary(Op.FNEG, value)
            return self.b.unary(Op.NEG, value)
        if node.op == "~":
            return self.b.unary(Op.NOT, value)
        if node.op == "!":
            if node.operand.ty.is_float:
                return self.b.binary(Op.FCMPEQ, value, Constant(0.0, True))
            return self.b.binary(Op.CMPEQ, value, Constant(0, False))
        raise LoweringError(f"unsupported unary {node.op!r}")

    def _call(self, node: ast.Call, bindings: _Bindings):
        if node.callee in INTRINSICS:
            param_types, ret = INTRINSICS[node.callee]
            args = []
            for arg, want in zip(node.args, param_types):
                value = self.expr(arg, bindings)
                value = self._convert(value, arg.ty.is_float, want.is_float)
                args.append(value)
            dest = self.b.temp(ret.is_float)
            self.b.emit(Instruction(Op.INTRIN, dest=dest, srcs=args,
                                    callee=node.callee))
            return dest
        sym = self.table.functions[node.callee]
        args = []
        for arg, want in zip(node.args, sym.param_types):
            value = self.expr(arg, bindings)
            if isinstance(want, ArrayType):
                if not isinstance(value, ArraySymbol):
                    raise LoweringError("array argument did not lower to an "
                                        "array symbol")
                args.append(value)
            else:
                args.append(self._convert(value, arg.ty.is_float,
                                          want.is_float))
        if sym.return_type.name == "void":
            self.b.emit(Instruction(Op.CALL, srcs=args, callee=node.callee))
            return Constant(0, False)
        dest = self.b.temp(sym.return_type.is_float)
        self.b.emit(Instruction(Op.CALL, dest=dest, srcs=args,
                                callee=node.callee))
        return dest

    # -- memory -------------------------------------------------------------------

    def _array_access(self, node: ast.Index, bindings: _Bindings):
        """Compute (array symbol, flat index operand) for an Index node."""
        binding = bindings.lookup(node.base.ident)
        if not isinstance(binding, ArraySymbol):
            raise LoweringError(f"{node.base.ident!r} is not an array")
        arr_ty = node.base.ty
        if len(node.indices) == 1:
            index = self.expr(node.indices[0], bindings)
            return binding, index
        # Row-major flattening: i * ncols + j.
        ncols = arr_ty.dims[1]
        i = self.expr(node.indices[0], bindings)
        j = self.expr(node.indices[1], bindings)
        if isinstance(i, Constant):
            row = Constant(i.value * ncols, False)
        else:
            row = self._try_strength_reduce(i, Constant(ncols, False))
            if row is None:
                row = self.b.binary(Op.MUL, i, Constant(ncols, False))
        if isinstance(row, Constant) and isinstance(j, Constant):
            return binding, Constant(row.value + j.value, False)
        flat = self.b.binary(Op.ADD, row, j)
        return binding, flat

    # -- conversions ----------------------------------------------------------------

    def _convert(self, value, is_float: bool, want_float: bool):
        """Insert ``itof``/``ftoi`` when *value* has the wrong class."""
        if is_float == want_float:
            return value
        if isinstance(value, Constant):
            return Constant(float(value.value) if want_float
                            else int(value.value), want_float)
        return self.b.convert(value, want_float)


def lower_program(program: ast.Program, table: SymbolTable,
                  name: str = "<module>") -> Module:
    """Lower an analyzed *program* into a :class:`Module`."""
    module = Module(name)
    global_bindings = _Bindings()
    for decl in program.globals:
        is_float = decl.base_type == "float"
        if decl.dims:
            total = 1
            for d in decl.dims:
                total *= d
            sym = ArraySymbol(decl.name, total, is_float, is_global=True)
            init = None
            if isinstance(decl.init, list):
                values = []
                for item in decl.init:
                    if isinstance(item, ast.IntLit):
                        values.append(float(item.value) if is_float
                                      else item.value)
                    elif isinstance(item, ast.FloatLit):
                        values.append(item.value)
                    elif (isinstance(item, ast.UnOp) and item.op == "-"
                          and isinstance(item.operand,
                                         (ast.IntLit, ast.FloatLit))):
                        values.append(-item.operand.value)
                    else:
                        raise LoweringError(
                            "global array initializers must be literals")
                init = values
            module.add_global_array(sym, init)
            global_bindings.bind(decl.name, sym)
        else:
            # Global scalar: one-element array in memory.
            sym = ArraySymbol(decl.name, 1, is_float, is_global=True)
            value = 0.0
            if decl.init is not None:
                if isinstance(decl.init, ast.IntLit):
                    value = decl.init.value
                elif isinstance(decl.init, ast.FloatLit):
                    value = decl.init.value
                elif (isinstance(decl.init, ast.UnOp) and decl.init.op == "-"
                      and isinstance(decl.init.operand,
                                     (ast.IntLit, ast.FloatLit))):
                    value = -decl.init.operand.value
                else:
                    raise LoweringError(
                        "global scalar initializers must be literals")
            module.add_global_array(sym, [value])
            module.add_global_scalar(decl.name, is_float, value)
            global_bindings.bind(decl.name, sym)

    for fn_ast in program.functions:
        lowerer = _FunctionLowerer(module, table, global_bindings, fn_ast)
        module.add_function(lowerer.lower())
    return module
