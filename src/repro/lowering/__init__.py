"""AST-to-IR lowering: mini-C programs become linear three-address code.

The produced code preserves *source order* — operations appear exactly in the
sequence implied by the sequential statements of the program.  This is the
"no optimization" (level 0) baseline the paper contrasts against: earlier
sequence-detection work "were restricted to the operation ordering created by
the compiler, which is derived from the sequential statements in the
high-level language".
"""

from repro.lowering.lower import lower_program

__all__ = ["lower_program"]
