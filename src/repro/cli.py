"""Command-line interface.

::

    python -m repro list                      # the Table-1 suite
    python -m repro study [--full] [--json F] # run the experiment matrix
    python -m repro tables all                # regenerate Tables 1-3
    python -m repro figures all               # regenerate Figures 3-6
    python -m repro ilp                       # ILP characterization (X1)
    python -m repro explore sewha --budget N  # ASIP design space (X2)
    python -m repro explore-study --budgets 1500,2500  # X2, whole suite
    python -m repro explore-study --frontier  # X2, every budget at once
    python -m repro cache show                # inspect the disk cache
    python -m repro analyze my_kernel.c       # analyze a user kernel
    python -m repro serve --socket /tmp/r.sock  # repro-as-a-service

``analyze`` compiles any mini-C file, fills its uninitialized global
arrays with seeded random data, runs the full pipeline at the requested
level and prints the detected sequences plus the coverage analysis.
"""

from __future__ import annotations

import argparse
import os
import random
import re
import sys
from pathlib import Path
from typing import List, Optional

from repro.chaining.coverage import analyze_coverage
from repro.chaining.detect import detect_sequences
from repro.chaining.sequence import sequence_label
from repro.errors import ReproError
from repro.frontend import compile_source
from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim.machine import run_module


def _parse_levels(text: str) -> tuple:
    # Same policy as --seeds/--budgets: empty, malformed and
    # out-of-range lists are rejected here, at the flag, with the
    # offending value named — not deep in the study as a generic
    # ValueError (or, worse, argparse's "invalid value" one-liner).
    try:
        levels = tuple(sorted({int(part) for part in text.split(",")
                               if part.strip()}))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--levels expects comma-separated optimization levels "
            f"(e.g. 0,1,2), got {text!r}")
    if not levels:
        raise argparse.ArgumentTypeError(
            "--levels is empty: pass at least one optimization level")
    for level in levels:
        try:
            OptLevel(level)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"--levels contains {level}: optimization levels are "
                f"{', '.join(str(int(l)) for l in OptLevel)}")
    return levels


def _parse_level(text: str) -> int:
    """A single ``--level`` value, validated at the flag."""
    try:
        level = int(text)
        OptLevel(level)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--level expects one optimization level "
            f"({', '.join(str(int(l)) for l in OptLevel)}), got {text!r}")
    return level


def _parse_lengths(text: str) -> tuple:
    # Chain lengths, not levels: any integer >= 2 ("chains have at
    # least two operations"), deduplicated and sorted like --levels.
    try:
        lengths = tuple(sorted({int(part) for part in text.split(",")
                                if part.strip()}))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--lengths expects comma-separated chain lengths "
            f"(e.g. 2,3,4,5), got {text!r}")
    if not lengths:
        raise argparse.ArgumentTypeError(
            "--lengths is empty: pass at least one chain length")
    for length in lengths:
        if length < 2:
            raise argparse.ArgumentTypeError(
                f"--lengths contains {length}: chains have at least "
                f"two operations")
    return lengths


def _parse_seeds(text: str) -> tuple:
    # Order is kept: the first seed is the primary result.  Empty,
    # malformed and duplicate-bearing lists are rejected here, at the
    # flag, instead of misbehaving (silent single-seed fallback /
    # double-counted seeds) deep inside the study — one policy, shared
    # with the API boundary.
    from repro.suite.runner import validate_seeds
    try:
        seeds = tuple(int(part) for part in text.split(",")
                      if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--seeds expects comma-separated integers "
            f"(e.g. 0,1,2 or -1,3), got {text!r}")
    try:
        return validate_seeds(seeds, source="--seeds")
    except ReproError as exc:
        raise argparse.ArgumentTypeError(str(exc))


# Any value token that *starts* like a negative number is joined onto
# its flag — including malformed tails like "-1,x", which must reach
# the flag's own parser to get its clear error instead of argparse's
# generic "expected one argument".
_NEGATIVE_VALUE = re.compile(r"-\d")

#: Flags taking comma-separated integer lists whose first element may be
#: negative (or negative-by-typo, which deserves the parser's message).
_INT_LIST_FLAGS = ("--seeds", "--budgets")


def _normalize_argv(argv: List[str]) -> List[str]:
    """Make ``--seeds -1,3`` (and friends) reach their value parsers.

    argparse treats any separate token starting with ``-`` as an option
    flag, so a leading negative value was swallowed as "expected one
    argument" before the validator ever saw it.  Joining the value onto
    the flag (``--seeds=-1,3`` — which argparse always accepted) keeps
    one parsing policy for every spelling; anything that merely *looks*
    negative but is malformed still lands in the flag's parser and gets
    its clear error message.
    """
    merged: List[str] = []
    it = iter(argv)
    for token in it:
        if token in _INT_LIST_FLAGS:
            value = next(it, None)
            if value is None:
                merged.append(token)
            elif _NEGATIVE_VALUE.match(value):
                merged.append(f"{token}={value}")
            else:
                merged.extend((token, value))
        else:
            merged.append(token)
    return merged


def _parse_budgets(text: str) -> tuple:
    # Order is kept (it is the report order); duplicates collapse.
    try:
        budgets = tuple(dict.fromkeys(
            int(part) for part in text.split(",") if part.strip()))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--budgets expects comma-separated integers "
            f"(e.g. 1500,2500), got {text!r}")
    if not budgets:
        raise argparse.ArgumentTypeError(
            "--budgets is empty: pass at least one area budget")
    for budget in budgets:
        if budget <= 0:
            raise argparse.ArgumentTypeError(
                f"--budgets contains {budget}: area budgets must be "
                f"positive")
    return budgets


def _add_engine_arg(parser) -> None:
    from repro.sim.machine import DEFAULT_ENGINE, ENGINES
    parser.add_argument("--engine", choices=ENGINES, default=DEFAULT_ENGINE,
                        help="simulation engine (default: %(default)s; "
                             "'reference' is the tree-walking oracle)")


def _add_cache_arg(parser) -> None:
    parser.add_argument("--cache-dir", default=None,
                        help="compile-artifact disk cache directory "
                             "(default: $REPRO_CACHE or ~/.cache/repro; "
                             "'none' disables)")


def _add_jobs_arg(parser) -> None:
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the study matrix "
                             "(default: $REPRO_JOBS or 1 = serial, "
                             "bit-identical to any N; 0 = all cores)")


def _add_seeds_arg(parser) -> None:
    parser.add_argument("--seeds", type=_parse_seeds, default=None,
                        help="comma-separated input seeds batched through "
                             "one compiled program per cell (first seed "
                             "is the primary; default: --seed only)")


def _add_result_cache_arg(parser) -> None:
    parser.add_argument("--result-cache", action="store_true",
                        help="also cache whole study results in the disk "
                             "cache (repeats of an answered config load "
                             "from disk; same as REPRO_RESULT_CACHE=1)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compiler-feedback ASIP design "
                    "(Onion/Nicolau/Dutt, DATE 1995) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the Table-1 benchmark suite")

    study = sub.add_parser("study", help="run the experiment matrix")
    study.add_argument("--benchmarks", default=None,
                       help="comma-separated subset (default: all 12)")
    study.add_argument("--levels", default="0,1,2", type=_parse_levels,
                       help="optimization levels (default 0,1,2)")
    study.add_argument("--seed", type=int, default=0)
    study.add_argument("--json", default=None,
                       help="also write the summary as JSON to this file")
    _add_engine_arg(study)
    _add_jobs_arg(study)
    _add_seeds_arg(study)
    _add_cache_arg(study)
    _add_result_cache_arg(study)

    tables = sub.add_parser("tables", help="regenerate paper tables")
    tables.add_argument("which", choices=("1", "2", "3", "all"))
    tables.add_argument("--benchmarks", default=None)
    _add_engine_arg(tables)
    _add_jobs_arg(tables)
    _add_seeds_arg(tables)
    _add_cache_arg(tables)

    figures = sub.add_parser("figures", help="regenerate paper figures")
    figures.add_argument("which", choices=("3", "4", "5", "6", "all"))
    figures.add_argument("--benchmarks", default=None)
    _add_engine_arg(figures)
    _add_jobs_arg(figures)
    _add_seeds_arg(figures)
    _add_cache_arg(figures)

    sub.add_parser("ilp", help="ILP characterization of the suite (X1)")

    explore = sub.add_parser("explore",
                             help="ASIP design-space exploration (X2)")
    explore.add_argument("benchmark")
    explore.add_argument("--budget", type=int, default=2500)
    explore.add_argument("--level", type=_parse_level, default=1)
    _add_engine_arg(explore)
    _add_jobs_arg(explore)
    _add_cache_arg(explore)

    explore_study = sub.add_parser(
        "explore-study",
        help="design-space exploration across the whole suite")
    explore_study.add_argument("--benchmarks", default=None,
                               help="comma-separated subset "
                                    "(default: all 12)")
    explore_study.add_argument("--budgets", default="2500",
                               type=_parse_budgets,
                               help="comma-separated area budgets "
                                    "explored per benchmark "
                                    "(default: %(default)s)")
    explore_study.add_argument("--level", type=_parse_level, default=1)
    explore_study.add_argument("--seed", type=int, default=0)
    explore_study.add_argument("--frontier", action="store_true",
                               help="sweep the full cost/performance "
                                    "frontier instead of the --budgets "
                                    "grid (every budget answered from "
                                    "one pass per benchmark; prints the "
                                    "composite Markdown report)")
    explore_study.add_argument("--max-budget", type=int, default=None,
                               help="budget ceiling for --frontier "
                                    "(default: unbounded — the whole "
                                    "candidate pool is swept)")
    explore_study.add_argument("--json", default=None,
                               help="also write the summary as JSON to "
                                    "this file")
    _add_engine_arg(explore_study)
    _add_jobs_arg(explore_study)
    _add_seeds_arg(explore_study)
    _add_cache_arg(explore_study)
    _add_result_cache_arg(explore_study)

    serve = sub.add_parser(
        "serve", help="run the repro service daemon (JSON requests "
                      "over a local socket; see README)")
    serve.add_argument("--socket", default=None,
                       help="Unix socket path to listen on")
    serve.add_argument("--port", type=int, default=None,
                       help="local TCP port to listen on (0 picks a "
                            "free one, printed at startup)")
    serve.add_argument("--status", action="store_true",
                       help="query a running daemon's status instead "
                            "of starting one")
    serve.add_argument("--no-result-cache", action="store_true",
                       help="serve without the whole-result disk tier "
                            "(on by default for the daemon)")
    _add_jobs_arg(serve)
    _add_cache_arg(serve)

    cache = sub.add_parser(
        "cache", help="inspect or clear the compile-artifact disk cache")
    cache.add_argument("action", choices=("show", "clear"))
    cache.add_argument("--verify", action="store_true",
                       help="scan every entry and report well-formed vs "
                            "corrupt counts (show only)")
    _add_cache_arg(cache)

    verify = sub.add_parser(
        "verify", help="statically verify lowered/generated artifacts "
                       "across the suite")
    verify.add_argument("--benchmarks", default=None,
                        help="comma-separated subset (default: all 12)")
    verify.add_argument("--levels", default="0,1,2", type=_parse_levels,
                        help="optimization levels (default 0,1,2)")
    verify.add_argument("--tiers", default=None,
                        help="comma-separated subset of "
                             "reference,compiled,bytecode,codegen,lanes")
    verify.add_argument("--lanes", type=int, default=4,
                        help="lane count for the lanes tier (default 4)")
    verify.add_argument("--skip-lint", action="store_true",
                        help="skip the determinism lint over sim/, exec/, "
                             "serve/ and analysis/")
    verify.add_argument("--ranges", action="store_true",
                        help="run the value-range analysis per benchmark "
                             "and report SAFE/UNKNOWN/UNSAFE access "
                             "counts; definite UNSAFE accesses fail the "
                             "sweep without executing the program")
    verify.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of the "
                             "Markdown summary")
    verify.add_argument("--output", default=None,
                        help="file for the Markdown summary "
                             "(default: stdout)")
    _add_cache_arg(verify)

    report = sub.add_parser("report",
                            help="write a Markdown study report")
    report.add_argument("--benchmarks", default=None)
    report.add_argument("--levels", default="0,1,2", type=_parse_levels)
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--output", default=None,
                        help="file to write (default: stdout)")
    _add_engine_arg(report)
    _add_jobs_arg(report)
    _add_seeds_arg(report)
    _add_cache_arg(report)

    analyze = sub.add_parser("analyze", help="analyze a mini-C file")
    analyze.add_argument("file")
    analyze.add_argument("--level", type=_parse_level, default=1)
    analyze.add_argument("--lengths", default="2,3,4,5",
                         type=_parse_lengths)
    analyze.add_argument("--seed", type=int, default=0)
    analyze.add_argument("--threshold", type=float, default=4.0,
                         help="coverage threshold percent")
    _add_engine_arg(analyze)
    _add_cache_arg(analyze)
    return parser


def _study_config(args) -> "StudyConfig":
    from repro.feedback.study import StudyConfig
    from repro.sim.machine import DEFAULT_ENGINE
    benchmarks = (tuple(args.benchmarks.split(","))
                  if getattr(args, "benchmarks", None) else None)
    levels = getattr(args, "levels", (0, 1, 2))
    seed = getattr(args, "seed", 0)
    engine = getattr(args, "engine", DEFAULT_ENGINE)
    return StudyConfig(benchmarks=benchmarks, levels=levels, seed=seed,
                       engine=engine,
                       seeds=getattr(args, "seeds", None),
                       jobs=getattr(args, "jobs", None))


def cmd_list(_args, out) -> int:
    from repro.suite.registry import all_benchmarks
    for spec in all_benchmarks():
        print(f"{spec.name:10s} {spec.description:45s} "
              f"[{spec.data_description}]", file=out)
    return 0


def cmd_study(args, out) -> int:
    from repro.feedback.results import study_summary, summary_to_json
    from repro.feedback.study import run_study
    from repro.reporting.tables import table2

    study = run_study(_study_config(args),
                      progress=lambda name, level:
                      print(f"  {name} @ level {level}", file=out))
    print(file=out)
    print(table2(study), file=out)
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(summary_to_json(study))
        print(f"\nsummary written to {args.json}", file=out)
    else:
        summary = study_summary(study, top_n=3)
        print(f"\n{len(summary['benchmarks'])} benchmarks analyzed "
              f"at levels {summary['config']['levels']}", file=out)
    return 0


def cmd_tables(args, out) -> int:
    from repro.feedback.study import run_study
    from repro.reporting.tables import table1, table2, table3

    if args.which in ("1",):
        print(table1(), file=out)
        return 0
    study = run_study(_study_config(args))
    if args.which in ("2", "all"):
        if args.which == "all":
            print(table1(), file=out)
            print(file=out)
        print(table2(study), file=out)
    if args.which in ("3", "all"):
        names = [b for b in ("sewha", "feowf", "bspline", "edge", "iir")
                 if b in study.benchmarks]
        print(file=out)
        print(table3(study, benchmarks=names), file=out)
    return 0


def cmd_figures(args, out) -> int:
    from repro.feedback.study import run_study
    from repro.reporting.figures import figure3, figure4, figure5, figure6

    study = run_study(_study_config(args))
    renderers = {"3": figure3, "4": figure4, "5": figure5, "6": figure6}
    which = renderers if args.which == "all" else \
        {args.which: renderers[args.which]}
    for _key, render in sorted(which.items()):
        print(render(study), file=out)
        print(file=out)
    return 0


def cmd_ilp(_args, out) -> int:
    from repro.feedback.ilp import characterize_ilp, render_ilp_table
    from repro.feedback.study import run_study
    from repro.feedback.study import StudyConfig

    study = run_study(StudyConfig())
    print(render_ilp_table(characterize_ilp(study)), file=out)
    return 0


def cmd_explore_study(args, out) -> int:
    from repro.feedback.study import (ExplorationStudyConfig,
                                      run_exploration_study)
    from repro.sim.machine import DEFAULT_ENGINE

    benchmarks = None
    if args.benchmarks:
        # Same whitespace policy as --seeds/--budgets: "sewha, dft"
        # and trailing commas are fine.
        benchmarks = tuple(part.strip()
                           for part in args.benchmarks.split(",")
                           if part.strip())
        benchmarks = benchmarks or None
    if args.frontier:
        return _cmd_frontier_study(args, benchmarks, out)
    config = ExplorationStudyConfig(
        benchmarks=benchmarks, budgets=args.budgets, level=args.level,
        seed=args.seed, seeds=args.seeds,
        engine=getattr(args, "engine", DEFAULT_ENGINE), jobs=args.jobs)
    study = run_exploration_study(
        config, progress=lambda name, stage:
        print(f"  {name} @ {stage}", file=out))
    print(file=out)
    header = (f"{'benchmark':10s} {'budget':>7s} {'cand':>5s} "
              f"{'meas':>5s} {'speedup':>8s} {'area':>6s}  best design")
    print(header, file=out)
    print("-" * len(header), file=out)
    for row in study.summary_rows():
        speedup = (f"{row['best_speedup']:.3f}x"
                   if row["best_speedup"] else "-")
        area = str(row["best_area"]) if row["best_area"] else "-"
        chains = ", ".join(row["best_chains"]) or "(no viable design)"
        print(f"{row['benchmark']:10s} {row['budget']:7d} "
              f"{row['candidates']:5d} {row['measured']:5d} "
              f"{speedup:>8s} {area:>6s}  {chains}", file=out)
    if args.json:
        import json

        # The serve daemon answers explore-study requests with this
        # exact payload; sharing the builder keeps the two documents
        # interchangeable.
        from repro.serve.protocol import exploration_payload
        with open(args.json, "w") as fh:
            json.dump(exploration_payload(study), fh, indent=2)
            fh.write("\n")
        print(f"\nsummary written to {args.json}", file=out)
    return 0


def _cmd_frontier_study(args, benchmarks, out) -> int:
    from repro.feedback.study import (FrontierStudyConfig,
                                      run_frontier_study)
    from repro.reporting.frontier import frontier_report
    from repro.sim.machine import DEFAULT_ENGINE

    config = FrontierStudyConfig(
        benchmarks=benchmarks, level=args.level, seed=args.seed,
        seeds=args.seeds, max_budget=args.max_budget,
        engine=getattr(args, "engine", DEFAULT_ENGINE), jobs=args.jobs)
    study = run_frontier_study(
        config, progress=lambda name, stage:
        print(f"  {name} @ {stage}", file=out))
    print(file=out)
    print(frontier_report(study), file=out)
    if args.json:
        import json

        # Same document the serve daemon returns for frontier requests.
        from repro.serve.protocol import frontier_payload
        with open(args.json, "w") as fh:
            json.dump(frontier_payload(study), fh, indent=2)
            fh.write("\n")
        print(f"\nsummary written to {args.json}", file=out)
    return 0


def cmd_cache(args, out) -> int:
    from repro.sim import diskcache

    root = diskcache.resolve_cache_root()
    if root is None:
        print("disk cache disabled "
              f"({diskcache.CACHE_ENV_VAR}={diskcache.DISABLE_VALUE})",
              file=out)
        return 0
    # Reuse the live process-wide handle when it covers the same root so
    # ``cache show`` reports the counters this process actually
    # accumulated (hits/misses of simulations run earlier in the same
    # invocation); a fresh handle would always read zero.
    cache = diskcache.get_cache()
    if cache is None or cache.root != Path(root):
        cache = diskcache.DiskCache(root)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {root}", file=out)
        return 0
    by_kind = {}
    total_bytes = 0
    for kind, path in cache.entries():
        try:
            size = path.stat().st_size
        except OSError:
            continue
        count, kind_bytes = by_kind.get(kind, (0, 0))
        by_kind[kind] = (count + 1, kind_bytes + size)
        total_bytes += size
    print(f"cache directory: {root}", file=out)
    print(f"format version:  v{diskcache.FORMAT_VERSION}", file=out)
    cap = diskcache.resolve_max_bytes(strict=True)
    if cap is not None:
        print(f"size cap:        {cap / (1024 * 1024):.1f} MiB "
              f"({diskcache.MAX_MB_ENV_VAR}, LRU eviction)", file=out)
    stale = len(cache.tmp_files())
    if stale:
        print(f"stale tmp files: {stale} (swept by eviction scans and "
              f"'cache clear')", file=out)
    if by_kind:
        for kind in sorted(by_kind):
            count, kind_bytes = by_kind[kind]
            print(f"  {kind:10s} {count:5d} entries, "
                  f"{kind_bytes / 1024:.1f} KiB", file=out)
        print(f"  {'total':10s} {sum(c for c, _ in by_kind.values()):5d} "
              f"entries, {total_bytes / 1024:.1f} KiB", file=out)
    else:
        print("entries:         none", file=out)
    counter_kinds = sorted(set(cache.hits) | set(cache.misses)
                           | set(cache.stores) | set(cache.corrupt)
                           | set(cache.failures) | set(cache.rejected)
                           | set(cache.evictions))
    if counter_kinds:
        print("this process:", file=out)
        for kind in counter_kinds:
            line = (f"  {kind:10s} {cache.hits[kind]} hits, "
                    f"{cache.misses[kind]} misses, "
                    f"{cache.stores[kind]} stores")
            if cache.corrupt[kind]:
                line += f", {cache.corrupt[kind]} corrupt"
            if cache.rejected[kind]:
                line += f", {cache.rejected[kind]} rejected"
            if cache.failures[kind]:
                line += (f", {cache.failures[kind]} store "
                         f"failure{'s' if cache.failures[kind] != 1 else ''}")
            if cache.evictions[kind]:
                line += (f", {cache.evictions[kind]} evicted "
                         f"({cache.evicted_bytes[kind] / 1024:.1f} KiB)")
            if cache.bytes_read[kind] or cache.bytes_written[kind]:
                line += (f", {cache.bytes_read[kind] / 1024:.1f} KiB "
                         f"read, {cache.bytes_written[kind] / 1024:.1f}"
                         f" KiB written")
            print(line, file=out)
        if cache.op_count:
            print("op latency:", file=out)
            for op in sorted(cache.op_count):
                count = cache.op_count[op]
                seconds = cache.op_seconds[op]
                avg_ms = seconds / count * 1000.0 if count else 0.0
                print(f"  {op:10s} {count:5d} ops, {seconds:.3f}s "
                      f"total, {avg_ms:.3f} ms avg", file=out)
        if cache.tmp_swept:
            print(f"  tmp swept  {cache.tmp_swept} stale file"
                  f"{'s' if cache.tmp_swept != 1 else ''}", file=out)
    else:
        print("this process:    no cache traffic yet", file=out)
    if getattr(args, "verify", False):
        from repro.analysis.sweep import scan_cache_entries
        well_formed, corrupt_n, details = scan_cache_entries(cache)
        print(f"verification:    {well_formed} well-formed, "
              f"{corrupt_n} corrupt", file=out)
        for detail in details:
            print(f"  {detail}", file=out)
        if corrupt_n:
            return 1
    return 0


def cmd_serve(args, out) -> int:
    if args.socket is None and args.port is None:
        raise ReproError("repro serve needs --socket PATH or --port N")
    if args.status:
        import json

        from repro.serve.client import ServeClient
        client = ServeClient(socket_path=args.socket, port=args.port,
                             timeout=30.0)
        try:
            response = client.request({"op": "status"})
        finally:
            client.close()
        print(json.dumps(response.get("result", response), indent=2,
                         sort_keys=True), file=out)
        return 0 if response.get("ok") else 1

    from repro.serve.daemon import ReproServer
    from repro.sim.diskcache import RESULT_ENV_VAR
    if args.no_result_cache:
        os.environ[RESULT_ENV_VAR] = "0"
    else:
        # The daemon is the result tier's home turf: long-lived process,
        # repeated questions.  On by default, explicit env wins.
        os.environ.setdefault(RESULT_ENV_VAR, "1")
    server = ReproServer(socket_path=args.socket, port=args.port,
                         jobs=args.jobs)
    thread = server.run_in_thread()
    where = (args.socket if args.socket
             else f"{server.host}:{server.bound_port}")
    print(f"repro serve listening on {where}", file=out, flush=True)
    thread.join()
    print("repro serve stopped", file=out)
    return 0


def cmd_explore(args, out) -> int:
    from repro.asip.explore import explore_designs
    from repro.suite.registry import get_benchmark
    from repro.suite.runner import compile_benchmark

    spec = get_benchmark(args.benchmark)
    module = compile_benchmark(spec)
    inputs = spec.generate_inputs(0)
    result = explore_designs(module, inputs, area_budget=args.budget,
                             level=OptLevel(args.level),
                             engine=args.engine, jobs=args.jobs)
    print(f"{len(result.candidates)} candidate sequences under budget "
          f"{args.budget}", file=out)
    for cand in result.candidates:
        print(f"  {cand.label:28s} {cand.frequency:6.2f}%  "
              f"area {cand.area:5d}  saves {cand.cycles_saved}/issue",
              file=out)
    best = result.best
    if best is None:
        print("no viable design", file=out)
        return 1
    print(f"\nbest measured design: {', '.join(best.labels())}", file=out)
    print(f"  {best.evaluation.base_cycles} -> "
          f"{best.evaluation.chained_cycles} cycles "
          f"({best.speedup:.3f}x), area {best.area}", file=out)
    return 0


def _random_inputs(module, seed: int) -> dict:
    """Seeded random contents for every uninitialized global array."""
    rng = random.Random(seed)
    inputs = {}
    for name, sym in module.global_arrays.items():
        if name in module.array_initializers:
            continue
        if sym.is_float:
            inputs[name] = [rng.uniform(-1.0, 1.0)
                            for _ in range(sym.size)]
        else:
            inputs[name] = [rng.randint(-256, 255)
                            for _ in range(sym.size)]
    return inputs


def cmd_analyze(args, out) -> int:
    with open(args.file) as fh:
        source = fh.read()
    module = compile_source(source, args.file, filename=args.file)
    graph_module, _ = optimize_module(module, OptLevel(args.level))
    inputs = _random_inputs(module, args.seed)
    result = run_module(graph_module, inputs, engine=args.engine)
    detection = detect_sequences(graph_module, result.profile,
                                 args.lengths)
    print(f"{args.file}: {result.cycles} cycles at level {args.level}, "
          f"{detection.total_ops} operations executed\n", file=out)
    for length in args.lengths:
        rows = detection.top(length, limit=8)
        if not rows:
            continue
        print(f"length-{length} sequences:", file=out)
        for name, freq in rows:
            print(f"    {sequence_label(name):28s} {freq:6.2f}%",
                  file=out)
    report = analyze_coverage(graph_module, result.profile,
                              lengths=args.lengths,
                              threshold=args.threshold)
    print(f"\ncoverage at threshold {args.threshold:.1f}%:", file=out)
    for step in report.steps:
        print(f"    {step.label:28s} covers {step.contribution:6.2f}%",
              file=out)
    print(f"    total: {report.coverage:.2f}% with "
          f"{report.sequence_count} chained instructions", file=out)
    return 0


def cmd_report(args, out) -> int:
    from repro.feedback.study import run_study
    from repro.reporting.markdown import study_report

    study = run_study(_study_config(args))
    text = study_report(study)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"report written to {args.output}", file=out)
    else:
        print(text, file=out)
    return 0


def cmd_verify(args, out) -> int:
    import json as _json

    from repro.analysis.lint import lint_determinism
    from repro.analysis.sweep import (TIERS, render_markdown, report_json,
                                      run_sweep)

    benchmarks = args.benchmarks.split(",") if args.benchmarks else None
    tiers = tuple(args.tiers.split(",")) if args.tiers else TIERS
    for tier in tiers:
        if tier not in TIERS:
            raise ReproError(f"unknown tier {tier!r} (expected one of "
                             f"{', '.join(TIERS)})")
    report = run_sweep(benchmarks=benchmarks, levels=args.levels,
                       tiers=tiers, n_lanes=args.lanes, ranges=args.ranges)
    failed = not report.ok
    lint = None
    if not args.skip_lint:
        lint = lint_determinism()
        failed = failed or not lint.ok
    if args.json:
        text = _json.dumps(report_json(report, lint), indent=2,
                           sort_keys=True) + "\n"
    else:
        text = render_markdown(report, tiers=tiers)
        if lint is not None:
            if lint.ok:
                text += (f"\nDeterminism lint: {lint.checks} checks over "
                         f"sim/, exec/, serve/ and analysis/ — clean.\n")
            else:
                text += (f"\nDeterminism lint: "
                         f"{len(lint.violations)} finding(s):\n")
                for violation in lint.violations:
                    text += f"- {violation}\n"
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"verification summary written to {args.output}", file=out)
        if failed:
            for cell, violation in report.violations:
                print(f"FAIL {cell.benchmark} L{cell.level} "
                      f"{cell.tier}: {violation}", file=out)
    else:
        print(text, file=out)
    return 1 if failed else 0


_COMMANDS = {
    "list": cmd_list,
    "study": cmd_study,
    "tables": cmd_tables,
    "figures": cmd_figures,
    "ilp": cmd_ilp,
    "explore": cmd_explore,
    "explore-study": cmd_explore_study,
    "serve": cmd_serve,
    "cache": cmd_cache,
    "analyze": cmd_analyze,
    "report": cmd_report,
    "verify": cmd_verify,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    if argv is None:
        argv = sys.argv[1:]
    args = build_parser().parse_args(_normalize_argv(list(argv)))
    if getattr(args, "cache_dir", None):
        # Exported to the environment so pool workers spawned later use
        # the same cache directory (or none).
        from repro.sim.diskcache import set_cache_dir
        set_cache_dir(args.cache_dir)
    if getattr(args, "result_cache", False):
        from repro.sim.diskcache import RESULT_ENV_VAR
        os.environ[RESULT_ENV_VAR] = "1"
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
