"""Static checks over generated codegen/lanes source, parsed via ``ast``.

The codegen and lanes tiers ``exec`` Python source emitted from the lowered
words.  This module proves a stored source text well-formed *before*
anything executes it:

* **definite assignment** — every name the generated function reads is a
  parameter, a known builtin, or assigned on every path before the read
  (a conservative dataflow walk over the AST: ``if`` joins intersect,
  loop-body bindings do not escape, a branch that raises/returns/continues
  does not constrain the join);
* **constant bindings** — every default argument (``K3=_f0_K3``) resolves
  to a known namespace name or a stored const;
* **counter discipline** — the per-frame branch-edge counter locals
  (``e7``) are initialized to zero, and written back exactly once: the
  codegen tier folds the full counted set immediately before *every*
  ``return`` (preceded by the ``cyc[0] = n`` cycle write-back), the lanes
  tier folds the full counted set in every fold loop (``_a[7] += e7``);
* **bounds guards** — every ``a3.data[idx]`` / ``w3.data[idx]`` fast-path
  read sits inside an ``if 0 <= idx < a3.size:`` guard over the *same*
  index expression;
* **dispatch targets** — every ``pc = N`` constant and every parked
  ``wait[N]`` ordinal stays inside the block table the emitter's own
  ``_analyze`` derives from the words;
* **lanes reconvergence** — the immediate postdominator of every branch
  word (computed by :mod:`repro.analysis.cfg`) is a lanes block start, so
  parked lane groups always re-merge at the postdominator and never at a
  mid-block word.

``verify_codegen_payload`` / ``verify_lanes_payload`` bundle these with
the lowered-graph cross-checks for a raw disk-cache payload — the gate the
cache load path runs under ``REPRO_VERIFY=1``, entirely before
``from_payload`` compiles or ``exec``-utes anything.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis import VerifyResult
from repro.analysis.cfg import (build_word_cfg, immediate_postdominators,
                                verify_words)
from repro.sim import engine as _eng

#: Builtins the emitters are allowed to reference without binding.
_BUILTIN_NAMES = frozenset({
    "isinstance", "len", "str", "repr", "max", "min", "range", "sorted",
    "abs", "float", "int", "list", "tuple",
})

#: Names pre-bound in the exec namespace of every generated module.
_NAMESPACE_NAMES = frozenset({
    "_UNDEF", "ArrayStorage", "SimulationError", "G",
})


def _counted_of(lg) -> List[int]:
    """The counted-edge list exactly as the emitters derive it."""
    return sorted({word[slot] for word in lg.words
                   if isinstance(word, list) and len(word) == 6
                   and word[0] == _eng.BR
                   for slot in (2, 4)})


# -- definite assignment -----------------------------------------------------------


def _target_names(target: ast.expr) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    return names


def _expr_reads(node: ast.AST, bound: Set[str], report) -> None:
    """Report every Load of a name not in *bound* (comprehension targets
    bind inside their own scope)."""
    if isinstance(node, ast.Name):
        if isinstance(node.ctx, ast.Load) and node.id not in bound \
                and node.id not in _BUILTIN_NAMES:
            report(node.id, getattr(node, "lineno", 0))
        return
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                         ast.DictComp)):
        inner = set(bound)
        for gen in node.generators:
            _expr_reads(gen.iter, inner, report)
            inner |= {n for n in _comp_target_names(gen.target)}
            for cond in gen.ifs:
                _expr_reads(cond, inner, report)
        if isinstance(node, ast.DictComp):
            _expr_reads(node.key, inner, report)
            _expr_reads(node.value, inner, report)
        else:
            _expr_reads(node.elt, inner, report)
        return
    for child in ast.iter_child_nodes(node):
        _expr_reads(child, bound, report)


def _comp_target_names(target: ast.expr) -> Set[str]:
    return {node.id for node in ast.walk(target)
            if isinstance(node, ast.Name)}


def _is_oob_load(expr: ast.expr) -> bool:
    """Match a bare ``<name>.load(...)`` call expression."""
    return (isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "load"
            and isinstance(expr.func.value, ast.Name))


def _has_break(stmts: Iterable[ast.stmt]) -> bool:
    for stmt in stmts:
        if isinstance(stmt, ast.Break):
            return True
        if isinstance(stmt, ast.If):
            if _has_break(stmt.body) or _has_break(stmt.orelse):
                return True
        elif isinstance(stmt, ast.Try):
            if _has_break(stmt.body) or _has_break(stmt.finalbody):
                return True
            for handler in stmt.handlers:
                if _has_break(handler.body):
                    return True
        # breaks inside nested loops belong to those loops
    return False


def _walk_block(stmts: List[ast.stmt], bound: Set[str],
                report) -> Tuple[Set[str], bool]:
    """Conservative definite-assignment walk; returns (bound-after,
    terminates) where *terminates* means control never falls off the end
    of the block (return/raise/continue/break/infinite loop)."""
    bound = set(bound)
    for stmt in stmts:
        if isinstance(stmt, ast.Assign):
            _expr_reads(stmt.value, bound, report)
            for target in stmt.targets:
                _expr_reads(target, bound, report)  # subscript bases etc.
                bound |= _target_names(target)
        elif isinstance(stmt, ast.AugAssign):
            _expr_reads(stmt.value, bound, report)
            if isinstance(stmt.target, ast.Name):
                if stmt.target.id not in bound:
                    report(stmt.target.id, stmt.lineno)
                bound.add(stmt.target.id)
            else:
                _expr_reads(stmt.target, bound, report)
        elif isinstance(stmt, ast.If):
            _expr_reads(stmt.test, bound, report)
            b_then, t_then = _walk_block(stmt.body, bound, report)
            b_else, t_else = _walk_block(stmt.orelse, bound, report)
            if t_then and t_else:
                return bound, True
            if t_then:
                bound = b_else
            elif t_else:
                bound = b_then
            else:
                bound = b_then & b_else
        elif isinstance(stmt, ast.While):
            _expr_reads(stmt.test, bound, report)
            _walk_block(stmt.body, bound, report)
            _walk_block(stmt.orelse, bound, report)
            infinite = (isinstance(stmt.test, ast.Constant)
                        and stmt.test.value is True
                        and not _has_break(stmt.body))
            if infinite:
                return bound, True
        elif isinstance(stmt, ast.For):
            _expr_reads(stmt.iter, bound, report)
            inner = bound | _target_names(stmt.target) \
                | _comp_target_names(stmt.target)
            _walk_block(stmt.body, inner, report)
            _walk_block(stmt.orelse, bound, report)
        elif isinstance(stmt, ast.Try):
            b_try, t_try = _walk_block(stmt.body, bound, report)
            exits: List[Set[str]] = [] if t_try else [b_try]
            for handler in stmt.handlers:
                hb = set(bound)
                if handler.name:
                    hb.add(handler.name)
                b_h, t_h = _walk_block(handler.body, hb, report)
                if not t_h:
                    exits.append(b_h)
            if not exits:
                return bound, True
            after = exits[0]
            for b in exits[1:]:
                after = after & b
            b_fin, t_fin = _walk_block(stmt.finalbody, bound, report)
            bound = after | (b_fin - bound if not t_fin else set())
            if t_fin:
                return bound, True
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            for child in ast.iter_child_nodes(stmt):
                _expr_reads(child, bound, report)
            return bound, True
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            return bound, True
        elif isinstance(stmt, ast.Expr):
            _expr_reads(stmt.value, bound, report)
            if _is_oob_load(stmt.value):
                # Bare ``arr.load(idx)`` only appears on the failing side
                # of a bounds guard, where ArrayStorage.load always raises.
                return bound, True
        elif isinstance(stmt, ast.Pass):
            pass
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    _expr_reads(child, bound, report)
    return bound, False


def _check_definite_assignment(fn: ast.FunctionDef, result: VerifyResult,
                               gname: str, namespace: Set[str]) -> None:
    params = {arg.arg for arg in fn.args.args}
    params |= {arg.arg for arg in fn.args.posonlyargs}
    params |= {arg.arg for arg in fn.args.kwonlyargs}
    for default in list(fn.args.defaults) + \
            [d for d in fn.args.kw_defaults if d is not None]:
        for node in ast.walk(default):
            if isinstance(node, ast.Name) \
                    and isinstance(node.ctx, ast.Load):
                result.check(
                    node.id in namespace, "const-binding",
                    f"{fn.name}: default argument references "
                    f"{node.id!r}, which is neither a namespace name nor "
                    f"a stored const", gname)

    reported: Set[str] = set()

    def report(name: str, line: int) -> None:
        if name not in reported:
            reported.add(name)
            result.check(False, "unbound-name",
                         f"{fn.name} line {line}: name {name!r} may be "
                         f"read before assignment", gname)

    _walk_block(fn.body, params, report)
    result.checks += 1  # the definite-assignment pass itself is one check


# -- counter discipline ------------------------------------------------------------


def _iter_blocks(fn: ast.FunctionDef):
    """Yield every statement list in *fn* (bodies, orelses, handlers)."""
    stack: List[List[ast.stmt]] = [fn.body]
    while stack:
        block = stack.pop()
        yield block
        for stmt in block:
            for field in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, field, None)
                if sub:
                    stack.append(sub)
            for handler in getattr(stmt, "handlers", ()) or ():
                stack.append(handler.body)


def _fold_edge(stmt: ast.stmt, array_names: Tuple[str, ...]) -> Optional[
        Tuple[int, bool]]:
    """Match ``<arr>[E] += eE`` (optionally ``+ 1``); returns
    ``(edge, name_matches)`` or ``None`` for any other statement.
    Pure ``+= 1`` bumps (the lanes parked-edge fast path) are not folds."""
    if not isinstance(stmt, ast.AugAssign) \
            or not isinstance(stmt.op, ast.Add):
        return None
    target = stmt.target
    if not (isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
            and target.value.id in array_names):
        return None
    index = target.slice
    if not (isinstance(index, ast.Constant)
            and isinstance(index.value, int)):
        return None
    value_names = {node.id for node in ast.walk(stmt.value)
                   if isinstance(node, ast.Name)}
    if not any(name.startswith("e") for name in value_names):
        return None
    return index.value, f"e{index.value}" in value_names


def _is_cyc_writeback(stmt: ast.stmt) -> bool:
    """Match ``cyc[0] = n``."""
    return (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Subscript)
            and isinstance(stmt.targets[0].value, ast.Name)
            and stmt.targets[0].value.id == "cyc"
            and isinstance(stmt.value, ast.Name)
            and stmt.value.id == "n")


def _check_counter_init(fn: ast.FunctionDef, counted: List[int],
                        result: VerifyResult, gname: str) -> None:
    """Every counted counter local must be zero-initialized somewhere."""
    initialized: Set[int] = set()
    for block in _iter_blocks(fn):
        for stmt in block:
            if isinstance(stmt, ast.Assign) \
                    and isinstance(stmt.value, ast.Constant) \
                    and stmt.value.value == 0:
                for target in stmt.targets:
                    if isinstance(target, ast.Name) \
                            and target.id.startswith("e") \
                            and target.id[1:].isdigit():
                        initialized.add(int(target.id[1:]))
    missing = sorted(set(counted) - initialized)
    result.check(not missing, "counter-init",
                 f"{fn.name}: counter locals {missing} are never "
                 f"initialized to zero", gname)


def _check_counter_writeback(fn: ast.FunctionDef, counted: List[int],
                             result: VerifyResult, gname: str) -> None:
    """Codegen discipline: immediately before every ``return``, the full
    counted set is folded into ``eh`` exactly once, preceded by the
    ``cyc[0] = n`` cycle write-back; no stray ``eh`` writes elsewhere."""
    counted_set = set(counted)
    returns = 0
    for block in _iter_blocks(fn):
        run: List[int] = []
        run_ok = True
        for stmt in block:
            fold = _fold_edge(stmt, ("eh",))
            if fold is not None:
                edge, matches = fold
                run.append(edge)
                run_ok = run_ok and matches
                continue
            if isinstance(stmt, ast.Return):
                returns += 1
                result.check(
                    run_ok and sorted(run) == sorted(counted_set)
                    and len(run) == len(counted_set),
                    "counter-writeback",
                    f"{fn.name}: return folds counters {sorted(run)}, "
                    f"the words imply {sorted(counted_set)}", gname)
            elif run:
                result.check(False, "counter-writeback",
                             f"{fn.name} line {stmt.lineno}: counter "
                             f"fold run is not followed by a return",
                             gname)
            run = []
            run_ok = True
        if run:
            result.check(False, "counter-writeback",
                         f"{fn.name}: dangling counter fold run at end "
                         f"of block", gname)
    # Every return must carry the cycle write-back just before the folds.
    for block in _iter_blocks(fn):
        for i, stmt in enumerate(block):
            if not isinstance(stmt, ast.Return):
                continue
            j = i - 1
            while j >= 0 and _fold_edge(block[j], ("eh",)) is not None:
                j -= 1
            result.check(j >= 0 and _is_cyc_writeback(block[j]),
                         "cycle-writeback",
                         f"{fn.name} line {stmt.lineno}: return is not "
                         f"preceded by the cyc[0] write-back", gname)
    # The cycle-limit exit raises, so the return sweep above never sees
    # it — but the emitter persists the count there too (its guard body
    # is exactly ``cyc[0] = n`` then the raise).  Any ``a > b`` guard
    # that ends in a raise is that exit.
    for node in ast.walk(fn):
        if not (isinstance(node, ast.If) and isinstance(node.test,
                                                        ast.Compare)):
            continue
        if not (len(node.test.ops) == 1
                and isinstance(node.test.ops[0], ast.Gt)
                and isinstance(node.test.left, ast.Name)
                and isinstance(node.test.comparators[0], ast.Name)
                and node.body and isinstance(node.body[-1], ast.Raise)):
            continue  # e.g. the depth guard: fires before n is read
        result.check(len(node.body) == 2 and _is_cyc_writeback(node.body[0]),
                     "cycle-writeback",
                     f"{fn.name} line {node.lineno}: cycle-limit exit "
                     f"does not write back cyc[0] before raising", gname)


def _check_counter_folds(fn: ast.FunctionDef, counted: List[int],
                         result: VerifyResult, gname: str) -> None:
    """Lanes discipline: every fold run (``_a[E] += eE`` sequence) covers
    the full counted set exactly once."""
    counted_set = set(counted)
    for block in _iter_blocks(fn):
        run: List[int] = []
        run_ok = True

        def flush(line: int) -> None:
            nonlocal run, run_ok
            if run:
                result.check(
                    run_ok and sorted(run) == sorted(counted_set)
                    and len(run) == len(counted_set),
                    "counter-fold",
                    f"{fn.name} line {line}: fold run covers counters "
                    f"{sorted(run)}, the words imply "
                    f"{sorted(counted_set)}", gname)
            run = []
            run_ok = True

        for stmt in block:
            fold = _fold_edge(stmt, ("_a",))
            if fold is not None:
                edge, matches = fold
                run.append(edge)
                run_ok = run_ok and matches
            else:
                flush(getattr(stmt, "lineno", 0))
        flush(0)


# -- bounds guards -----------------------------------------------------------------


def _match_bounds_guard(test: ast.expr) -> Optional[Tuple[str, str]]:
    """Match ``0 <= IDX < ARR.size`` -> (array name, dump of IDX)."""
    if not (isinstance(test, ast.Compare) and len(test.ops) == 2
            and isinstance(test.ops[0], ast.LtE)
            and isinstance(test.ops[1], ast.Lt)
            and isinstance(test.left, ast.Constant)
            and test.left.value == 0):
        return None
    index, size = test.comparators
    if not (isinstance(size, ast.Attribute) and size.attr == "size"
            and isinstance(size.value, ast.Name)):
        return None
    return size.value.id, ast.dump(index)


def _check_bounds_guards(fn: ast.FunctionDef, result: VerifyResult,
                         gname: str,
                         proven: frozenset = frozenset()) -> None:
    """Every ``ARR.data[IDX]`` read must sit under a matching guard —
    unless its ``(array name, index dump)`` key is in *proven*, the
    textual keys whose bounds certificate the independent checker
    re-validated (see :func:`_proven_load_keys`)."""
    unguarded: List[int] = []

    def visit(node: ast.AST, guards: Tuple[Tuple[str, str], ...]) -> None:
        if isinstance(node, ast.If):
            guard = _match_bounds_guard(node.test)
            body_guards = guards + ((guard,) if guard else ())
            for child in node.body:
                visit(child, body_guards)
            for child in node.orelse:
                visit(child, guards)
            visit(node.test, guards)
            return
        if isinstance(node, ast.Subscript) \
                and isinstance(node.value, ast.Attribute) \
                and node.value.attr == "data" \
                and isinstance(node.value.value, ast.Name) \
                and isinstance(node.ctx, ast.Load):
            key = (node.value.value.id, ast.dump(node.slice))
            if key not in guards and key not in proven:
                unguarded.append(getattr(node, "lineno", 0))
        for child in ast.iter_child_nodes(node):
            visit(child, guards)

    for stmt in fn.body:
        visit(stmt, ())
    result.check(not unguarded, "unguarded-load",
                 f"{fn.name}: .data reads at line(s) {unguarded[:5]} "
                 f"lack a matching bounds guard or a verified proof",
                 gname)


# -- dispatch targets and lanes reconvergence --------------------------------------


def _emitter_starts(lg, lanes: bool, n_lanes: int,
                    fn_of_graph: Dict[str, str]) -> Optional[List[int]]:
    """Block starts exactly as the generating emitter derives them."""
    if lg.entry_word is None:
        return None
    try:
        if lanes:
            from repro.sim.lanes import _LaneEmitter
            emitter = _LaneEmitter(lg, fn_of_graph.get(lg.name, "_v"),
                                   fn_of_graph, n_lanes)
        else:
            from repro.sim.codegen import _FunctionEmitter
            emitter = _FunctionEmitter(lg, fn_of_graph.get(lg.name, "_v"),
                                       fn_of_graph)
        _, _, starts, _ = emitter._analyze()
    except Exception:
        return None
    return starts


def _check_dispatch_targets(fn: ast.FunctionDef, n_blocks: int,
                            result: VerifyResult, gname: str,
                            lanes: bool) -> None:
    bad: List[Tuple[int, int]] = []
    for node in ast.walk(fn):
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id == "pc" \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, int):
            target = node.value.value
        elif lanes and isinstance(node, ast.Subscript) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "wait" \
                and isinstance(node.slice, ast.Constant) \
                and isinstance(node.slice.value, int):
            target = node.slice.value
        if target is not None and not 0 <= target < n_blocks:
            bad.append((getattr(node, "lineno", 0), target))
    result.check(not bad, "dispatch-target",
                 f"{fn.name}: block ordinals {bad[:5]} outside "
                 f"[0, {n_blocks})", gname)


def check_reconvergence(lg, starts: Iterable[int],
                        result: VerifyResult) -> None:
    """Lanes reconvergence: the immediate postdominator of every
    reachable branch word must be a block start — parked groups re-merge
    exactly there, never at a mid-block word."""
    starts_set = set(starts)
    cfg = build_word_cfg(lg)
    ipdom = immediate_postdominators(cfg)
    n_member = len(lg.words)
    for i, word in enumerate(cfg.words):
        if i >= n_member or not word or word[0] != _eng.BR:
            continue
        if i not in cfg.reachable:
            continue
        p = ipdom[i] if i < len(ipdom) else None
        if p is None or p >= n_member:
            # the branch legs exit separately (virtual-exit ipdom)
            continue
        result.check(p in starts_set, "lanes-reconvergence",
                     f"branch word {i}'s immediate postdominator (word "
                     f"{p}) is not a lanes block start", lg.name)


# -- proof-carrying guard elimination ----------------------------------------------


def _index_dump(text: str) -> Optional[str]:
    try:
        return ast.dump(ast.parse(text, mode="eval").body)
    except SyntaxError:
        return None


def _proven_load_keys(lg, verified_safe, lanes: bool) -> Tuple[
        frozenset, frozenset]:
    """``(textual keys, array slots)`` of the guard-elidable loads.

    A key is elidable only when *every* load word sharing it carries a
    verified proof (the emitters apply the same closure), so a single
    unguarded occurrence in the source never smuggles in an unproven
    sibling with identical text.  Keys are rendered exactly as each
    emitter renders them: ``a{k}``/``r{s}``/``t{s}`` for the codegen
    tier, ``w{k}``/``v{s}``/``u{s}`` for lanes.
    """
    from repro.analysis.ranges import elidable_loads, load_key
    elided = elidable_loads(lg, set(verified_safe))
    members = [w for w in lg.words if isinstance(w, list)]
    keys = set()
    slots = set()
    for idx in sorted(elided):
        array_slot, ikind, payload = load_key(members[idx])
        array = f"w{array_slot}" if lanes else f"a{array_slot}"
        if ikind == "r":
            if lanes:
                index = f"v{payload}" if payload >= 0 else f"u{-payload}"
            else:
                index = f"r{payload}" if payload >= 0 else f"t{-payload}"
        else:
            index = repr(payload)
        dump = _index_dump(index)
        if dump is None:
            continue
        keys.add((array, dump))
        slots.add(array_slot)
    return frozenset(keys), frozenset(slots)


def _collect_bindings(fn: ast.FunctionDef) -> Dict[str, List[ast.AST]]:
    """Every construct that (re)binds or deletes a local name, keyed by
    name.  Object mutations through a subscript or attribute
    (``a3[ln] = ...``, ``state.depth = ...``) do not rebind the name and
    are collected separately by :func:`_element_stores` and
    :func:`_mutation_paths`.
    """
    out: Dict[str, List[ast.AST]] = {}

    def record(target: ast.AST, node: ast.AST) -> None:
        if isinstance(target, ast.Name):
            out.setdefault(target.id, []).append(node)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                record(elt, node)
        elif isinstance(target, ast.Starred):
            record(target.value, node)

    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                record(target, node)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign, ast.For)):
            record(node.target, node)
        elif isinstance(node, ast.NamedExpr):
            record(node.target, node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            if node is not fn:
                out.setdefault(node.name, []).append(node)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                out.setdefault(bound, []).append(node)
        elif isinstance(node, ast.withitem):
            if node.optional_vars is not None:
                record(node.optional_vars, node)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                record(target, node)
        elif isinstance(node, ast.ExceptHandler):
            if node.name:
                out.setdefault(node.name, []).append(node)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            for bound in node.names:
                out.setdefault(bound, []).append(node)
    return out


def _element_stores(fn: ast.FunctionDef) -> Dict[str, List[ast.Assign]]:
    """Assignments through a subscript (``name[i] = ...``), by name."""
    out: Dict[str, List[ast.Assign]] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name):
                    out.setdefault(target.value.id, []).append(node)
    return out


def _mutation_paths(fn: ast.FunctionDef) -> Dict[
        str, List[Tuple[Tuple, ast.AST]]]:
    """Object mutations by root name: stores or deletes whose target is
    an attribute/subscript chain (``a3.data[i] = v``,
    ``state.depth = d``, ``del _g['A']``).  Each entry is the chain as a
    tuple of steps outermost-root-first — ``('attr', name)`` or
    ``('sub', slice_node)`` — so callers can whitelist the exact shapes
    the emitters produce.
    """
    out: Dict[str, List[Tuple[Tuple, ast.AST]]] = {}

    def record(target: ast.AST, node: ast.AST) -> None:
        steps: List[Tuple] = []
        base = target
        while True:
            if isinstance(base, ast.Attribute):
                steps.append(("attr", base.attr))
                base = base.value
            elif isinstance(base, ast.Subscript):
                steps.append(("sub", base.slice))
                base = base.value
            else:
                break
        if steps and isinstance(base, ast.Name):
            out.setdefault(base.id, []).append(
                (tuple(reversed(steps)), node))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                record(elt, node)
        elif isinstance(target, ast.Starred):
            record(target.value, node)

    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                record(target, node)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign, ast.For)):
            record(node.target, node)
        elif isinstance(node, ast.NamedExpr):
            record(node.target, node)
        elif isinstance(node, ast.withitem):
            if node.optional_vars is not None:
                record(node.optional_vars, node)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                record(target, node)
    return out


def _plain_element(steps: Tuple) -> bool:
    """``('sub', <non-slice>)`` — a single-element store, which can
    never change the storage's length."""
    return (len(steps) == 1 and steps[0][0] == "sub"
            and not isinstance(steps[0][1], (ast.Slice, ast.Tuple)))


def _data_element(steps: Tuple) -> bool:
    """``('attr', 'data'), ('sub', <non-slice>)`` — the emitters' store
    form ``a3.data[i] = v``; slice targets could shrink the list."""
    return (len(steps) == 2 and steps[0] == ("attr", "data")
            and steps[1][0] == "sub"
            and not isinstance(steps[1][1], (ast.Slice, ast.Tuple)))


def _is_name_sub(node: ast.AST, base: str, key: str) -> bool:
    """Match ``base[<key constant>]``."""
    return (isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == base
            and isinstance(node.slice, ast.Constant)
            and node.slice.value == key)


def _storage_call_symbol(value: ast.AST, consts: Dict[str, object],
                         fn_name: str):
    """The consts object of an ``ArrayStorage(K<i>)`` call, else None."""
    if not (isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "ArrayStorage"
            and len(value.args) == 1 and not value.keywords
            and isinstance(value.args[0], ast.Name)):
        return None
    kname = value.args[0].id
    if not isinstance(consts, dict):
        return None
    return consts.get(f"_{fn_name}_{kname}")


def _check_elided_bindings(fn: ast.FunctionDef, lg, module,
                           consts: Dict[str, object],
                           elided_slots: frozenset, lanes: bool,
                           result: VerifyResult, gname: str) -> bool:
    """The unguarded-load soundness contract beyond the certificate:
    every array a proof was verified against must be bound in the
    source exactly as the emitter binds it, so the storage the elided
    load reads is the one whose live length the checker used.

    Checks, for each elided array slot: the slot is a local or global
    of the lowered plan; its binding statements match the emitter's
    exact prologue shape (``ArrayStorage(K<i>)`` of a consts symbol
    whose name *and size* match the live module, or a lookup of the
    plan's global name in ``state.globals``/``state.global_arrays``);
    and none of the names the binding chain rests on (``state``,
    ``ArrayStorage``, ``_g``/``_ga``, the arrays themselves, the lanes
    ``w<k>`` views) is rebound anywhere else in the function.
    """
    if not elided_slots:
        return True
    bindings = _collect_bindings(fn)
    elem = _element_stores(fn)
    mutations = _mutation_paths(fn)
    live = module.graphs.get(lg.name)
    live_locals = {} if live is None else {
        arr.name: arr for arr in live.local_arrays}
    local_of = dict(lg.local_plan)
    global_of = dict(lg.global_plan)
    failures: List[str] = []

    def fail(message: str) -> None:
        failures.append(message)

    for name in ("state", "ArrayStorage"):
        if bindings.get(name):
            fail(f"{name!r} is rebound")
    for steps, node in mutations.get("state", ()):
        # the emitters mutate only the recursion-depth counter; a store
        # through state.globals/state.global_arrays could swap a storage
        # out from under an elided load
        if isinstance(node, ast.Delete) or steps != (("attr", "depth"),):
            fail("'state' is mutated beyond state.depth")
    gref = "_ga" if lanes else "_g"
    gref_attr = "global_arrays" if lanes else "globals"
    if mutations.get(gref):
        fail(f"{gref!r} is mutated")
    for node in bindings.get(gref, ()):
        ok = (isinstance(node, ast.Assign) and len(node.targets) == 1
              and isinstance(node.value, ast.Attribute)
              and node.value.attr == gref_attr
              and isinstance(node.value.value, ast.Name)
              and node.value.value.id == "state")
        if not ok:
            fail(f"{gref!r} bound to something other than "
                 f"state.{gref_attr}")

    def check_storage_symbol(value: ast.AST, slot: int) -> None:
        symbol = local_of[slot]
        obj = _storage_call_symbol(value, consts, fn.name)
        live_sym = live_locals.get(symbol.name)
        if obj is None:
            fail(f"a{slot} is not built with ArrayStorage(K<i>)")
        elif live_sym is None:
            fail(f"a{slot}: local array {symbol.name!r} does not exist "
                 f"in the live module")
        elif getattr(obj, "name", None) != symbol.name \
                or getattr(obj, "size", None) != live_sym.size:
            fail(f"a{slot}: bound symbol "
                 f"{getattr(obj, 'name', None)!r} size "
                 f"{getattr(obj, 'size', None)!r} does not match live "
                 f"array {symbol.name!r} size {live_sym.size}")

    for slot in sorted(elided_slots):
        aname = f"a{slot}"
        abinds = bindings.get(aname, [])
        if slot in local_of:
            if lanes:
                if not (len(abinds) == 1
                        and isinstance(abinds[0], ast.Assign)
                        and isinstance(abinds[0].value, ast.BinOp)
                        and isinstance(abinds[0].value.op, ast.Mult)):
                    fail(f"{aname}: lane local not bound to a "
                         f"[None] * L list")
                stores = elem.get(aname, [])
                if not stores:
                    fail(f"{aname}: no per-lane ArrayStorage stores")
                for node in stores:
                    check_storage_symbol(node.value, slot)
            else:
                if len(abinds) != 1 \
                        or not isinstance(abinds[0], ast.Assign):
                    fail(f"{aname}: expected exactly one binding")
                else:
                    check_storage_symbol(abinds[0].value, slot)
                if elem.get(aname):
                    fail(f"{aname}: unexpected element stores")
        elif slot in global_of:
            expected = global_of[slot]
            if module.global_arrays.get(expected) is None:
                fail(f"{aname}: global {expected!r} does not exist in "
                     f"the live module")
            if len(abinds) != 1 or not isinstance(abinds[0], ast.Assign) \
                    or not _is_name_sub(abinds[0].value, gref, expected):
                fail(f"{aname}: not bound to {gref}[{expected!r}]")
            if elem.get(aname):
                fail(f"{aname}: unexpected element stores")
        else:
            fail(f"{aname}: elided load on a slot that is neither a "
                 f"local nor a global array")
        for steps, node in mutations.get(aname, ()):
            # single-element stores can't change a storage's length;
            # anything else (a3.data = ..., slice stores, deletes) can
            allowed = (not isinstance(node, ast.Delete)
                       and (_data_element(steps)
                            or (lanes and _plain_element(steps))))
            if not allowed:
                fail(f"{aname}: mutated beyond single-element stores")
        if lanes:
            wname = f"w{slot}"
            for steps, node in mutations.get(wname, ()):
                if isinstance(node, ast.Delete) \
                        or not _data_element(steps):
                    fail(f"{wname}: mutated beyond .data element "
                         f"stores")
            wbinds = bindings.get(wname, [])
            if not wbinds:
                fail(f"{wname}: lane view never bound")
            for node in wbinds:
                ok = (isinstance(node, ast.Assign)
                      and len(node.targets) == 1
                      and isinstance(node.value, ast.Subscript)
                      and isinstance(node.value.value, ast.Name)
                      and node.value.value.id == aname
                      and isinstance(node.value.slice, ast.Name))
                if not ok:
                    fail(f"{wname}: lane view bound to something other "
                         f"than {aname}[<lane>]")
    return result.check(
        not failures, "elided-binding",
        f"{fn.name}: {'; '.join(failures[:4])}", gname)


def _verified_bounds(module, graphs: Dict[str, object], bounds,
                     result: VerifyResult) -> Dict[str, set]:
    """Re-check a payload's bounds certificate; any problem is a
    violation and no load counts as proven."""
    from repro.analysis.ranges import check_bounds_payload
    if bounds is None:
        return {name: set() for name in graphs}
    verified, problems = check_bounds_payload(module, graphs, bounds)
    for problem in problems[:8]:
        result.check(False, "bounds-proof", problem)
    if problems:
        return {name: set() for name in graphs}
    return verified


# -- whole-source entry points -----------------------------------------------------


def verify_generated_source(module, graphs: Dict[str, object], source: str,
                            consts: Dict[str, object], *,
                            lanes: bool = False, n_lanes: int = 2,
                            bounds=None,
                            starts_override: Optional[Dict[str, List[int]]]
                            = None) -> VerifyResult:
    """AST-check emitted *source* against its lowered *graphs*."""
    result = VerifyResult()
    if not result.check(isinstance(source, str), "source-shape",
                        "stored source is not a string"):
        return result
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        result.check(False, "source-syntax",
                     f"stored source does not parse: {exc}")
        return result
    defs = {node.name: node for node in tree.body
            if isinstance(node, ast.FunctionDef)}
    namespace = _NAMESPACE_NAMES | set(consts if isinstance(consts, dict)
                                       else ())
    fn_of_graph = {g: f"_f{i}" for i, g in enumerate(graphs)}
    verified_bounds = _verified_bounds(module, graphs, bounds, result)
    for i, (gname, lg) in enumerate(graphs.items()):
        fn_name = f"_f{i}"
        fn = defs.get(fn_name)
        if not result.check(fn is not None, "function-table",
                            f"source defines no function {fn_name} for "
                            f"graph {gname!r}", gname):
            continue
        counted = _counted_of(lg)
        _check_definite_assignment(fn, result, gname, namespace)
        _check_counter_init(fn, counted, result, gname)
        if lanes:
            _check_counter_folds(fn, counted, result, gname)
        else:
            _check_counter_writeback(fn, counted, result, gname)
        proven, elided_slots = _proven_load_keys(
            lg, verified_bounds.get(gname, set()), lanes)
        if not _check_elided_bindings(fn, lg, module, consts,
                                      elided_slots, lanes, result, gname):
            proven = frozenset()
        _check_bounds_guards(fn, result, gname, proven)
        starts = (starts_override or {}).get(gname)
        if starts is None:
            starts = _emitter_starts(lg, lanes, n_lanes, fn_of_graph)
        if starts is not None:
            _check_dispatch_targets(fn, len(starts), result, gname, lanes)
            if lanes:
                check_reconvergence(lg, starts, result)
    return result


def verify_generated_module(module, generated) -> VerifyResult:
    """Verify a live :class:`GeneratedModule` (the ``codegen`` tier)."""
    from repro.analysis.verify_lowered import verify_lowered_module
    result = verify_lowered_module(module, generated.lowered)
    result.merge(verify_generated_source(
        module, generated.lowered.graphs, generated.source,
        generated.consts, lanes=False, bounds=generated.bounds))
    return result


def verify_lane_module(module, lane_module) -> VerifyResult:
    """Verify a live :class:`LaneModule` (the ``lanes`` tier)."""
    from repro.analysis.verify_lowered import verify_lowered_module
    result = verify_lowered_module(module, lane_module.lowered)
    result.merge(verify_generated_source(
        module, lane_module.lowered.graphs, lane_module.source,
        lane_module.consts, lanes=True, n_lanes=lane_module.n_lanes,
        bounds=lane_module.bounds))
    return result


def _payload_shape(payload, keys: Tuple[str, ...],
                   result: VerifyResult) -> bool:
    if not result.check(isinstance(payload, dict), "payload-shape",
                        "cache payload is not a dict"):
        return False
    ok = True
    for key in keys:
        ok &= result.check(key in payload, "payload-shape",
                           f"cache payload is missing {key!r}")
    if ok:
        ok &= result.check(isinstance(payload["graphs"], dict),
                           "payload-shape",
                           "cache payload graphs is not a dict")
    return ok


def verify_bytecode_payload(module, payload) -> VerifyResult:
    """Static gate for a loaded ``bytecode`` cache payload."""
    from repro.analysis.verify_lowered import verify_lowered_module
    result = VerifyResult()
    if not _payload_shape(payload, ("graphs",), result):
        return result
    return result.merge(verify_lowered_module(module, payload["graphs"]))


def verify_codegen_payload(module, payload) -> VerifyResult:
    """Static gate for a loaded ``codegen`` cache payload — runs before
    ``from_payload`` compiles or execs anything."""
    from repro.analysis.verify_lowered import verify_lowered_module
    result = VerifyResult()
    if not _payload_shape(payload, ("graphs", "source", "consts"), result):
        return result
    result.merge(verify_lowered_module(module, payload["graphs"]))
    result.merge(verify_generated_source(
        module, payload["graphs"], payload["source"], payload["consts"],
        lanes=False, bounds=payload.get("bounds")))
    return result


def verify_lanes_payload(module, payload, n_lanes: int) -> VerifyResult:
    """Static gate for a loaded ``lanes`` cache payload."""
    from repro.analysis.verify_lowered import verify_lowered_module
    result = VerifyResult()
    if not _payload_shape(payload, ("graphs", "source", "consts",
                                    "n_lanes"), result):
        return result
    result.check(payload["n_lanes"] == n_lanes, "lane-count",
                 f"cache payload is specialized for "
                 f"{payload['n_lanes']} lanes, {n_lanes} requested")
    result.merge(verify_lowered_module(module, payload["graphs"]))
    result.merge(verify_generated_source(
        module, payload["graphs"], payload["source"], payload["consts"],
        lanes=True, n_lanes=n_lanes, bounds=payload.get("bounds")))
    return result
