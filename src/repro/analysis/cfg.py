"""CFG reconstruction and invariant checks over direct-threaded words.

``lower_module`` emits each graph as a flat list of *words* whose trailing
operand directly references the successor word (that is what makes the
dispatch loop fast).  This module re-derives the control-flow structure of
that artifact — successors, reachability, dominators, immediate
postdominators — purely from the words, and checks the per-word layout
invariants every executing tier relies on:

* every word matches its opcode's operand layout (arity and operand kinds);
* register/array slot operands stay inside the frame the plans declare
  (named slots ``1..named``, scratch slots ``-watermark..-1``, array slots
  ``0..n_arrays-1``);
* branch-counter operands index the edge table;
* every successor reference resolves to a member word (dead refs into
  foreign objects are exactly what a tampered cache entry looks like);
* every non-terminal word threads to the word appended immediately after
  it, and no thread dangles on a ``None`` placeholder (missing terminator).

The checks never execute a word; they only read the artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis import VerifyResult
from repro.sim import engine as _eng
from repro.sim.codegen import _is_terminal, _jump_slots

# -- per-opcode operand layouts ----------------------------------------------------
#
# One kind character per operand slot after the opcode:
#   r  register slot (named ``1..named`` or scratch ``-watermark..-1``)
#   k  array slot (``0..n_arrays-1``)
#   e  branch-edge counter index (``0..len(edge_pairs)-1``)
#   c  inline constant (any scalar)
#   n  name string
#   m  message string
#   f  inlined function object
#   x  callee name string
#   D  optional destination register slot (``None`` for void calls)
#   S  intrinsic operand-spec tuple
#   C  call argument-spec tuple
#   W  jump-target word reference
#   N  threaded fall-through word reference (always the trailing slot of a
#      non-terminal word)

_LAYOUTS: Dict[int, str] = {
    _eng.ADD_RR_J: "rrrW", _eng.LOAD_J: "rkrW", _eng.BR: "reWeW",
    _eng.ADD_RC_J: "rrcW", _eng.J: "W", _eng.JB: "W",
    _eng.BINF_RC_J: "rfrcW", _eng.MUL_RC_J: "rrcW", _eng.SUB_RC_J: "rrcW",
    _eng.MUL_RR_J: "rrrW", _eng.SUB_RR_J: "rrrW", _eng.STORE_J: "krrW",
    _eng.MOV_C_J: "rcW", _eng.MOV_R_J: "rrnW", _eng.LOADC_J: "rkcW",
    _eng.BINF_RR_J: "rfrrW", _eng.BINF_CR_J: "rfcrW",
    _eng.STORE_CI_J: "krcW", _eng.NEG_J: "rrW", _eng.UNF_J: "rfrW",
    _eng.CP: "rrN", _eng.CP2: "rrrrN", _eng.TEST: "rrN",
    _eng.ADD_RR: "rrrN", _eng.ADD_RC: "rrcN", _eng.SUB_RR: "rrrN",
    _eng.SUB_RC: "rrcN", _eng.MUL_RR: "rrrN", _eng.MUL_RC: "rrcN",
    _eng.LOAD: "rkrN", _eng.LOADC: "rkcN", _eng.MOV_C: "rcN",
    _eng.MOV_R: "rrnN",
    _eng.BINF_RR: "rfrrN", _eng.BINF_RC: "rfrcN", _eng.BINF_CR: "rfcrN",
    _eng.BINF_CC: "rfccN",
    _eng.NEG: "rrN", _eng.UNF: "rfrN", _eng.UNFC: "rfcN",
    _eng.ST_RR: "krrN", _eng.ST_RC: "krcN", _eng.ST_CR: "kcrN",
    _eng.ST_CC: "kccN",
    _eng.STD_SS: "krrN", _eng.STD_SC: "krcN", _eng.STD_CS: "kcrN",
    _eng.STD_CC: "kccN",
    _eng.RETREAD: "rrnN", _eng.INTRN: "rfSN", _eng.CALL: "xDCN",
    _eng.RET_R: "rn", _eng.RET_C: "c", _eng.RET_N: "", _eng.RET_S: "r",
    _eng.ERROR: "m",
}


def _is_reg_slot(value, named: int, watermark: int) -> bool:
    if not isinstance(value, int) or isinstance(value, bool):
        return False
    return 1 <= value <= named or -watermark <= value <= -1


def _is_degenerate_br(word: list) -> bool:
    """A single-successor branch: both counter operands share one edge and
    the false leg jumps straight to an inline (non-member) error word."""
    return word[0] == _eng.BR and len(word) == 6 and word[2] == word[4]


# -- per-word layout verification --------------------------------------------------


def verify_words(lg) -> VerifyResult:
    """Check every word of one :class:`_LoweredGraph` against its layout."""
    result = VerifyResult()
    name = getattr(lg, "name", "?")
    named = lg.n_regs - 1 - lg.scratch_watermark
    watermark = lg.scratch_watermark
    n_edges = len(lg.edge_pairs)
    members = {id(word) for word in lg.words if isinstance(word, list)}
    index_of = {id(word): i for i, word in enumerate(lg.words)
                if isinstance(word, list)}

    result.check(named >= 0 and watermark >= 0 and lg.n_regs >= 1,
                 "frame-size",
                 f"n_regs={lg.n_regs} watermark={watermark}", name)
    result.check(
        lg.entry_word is None or id(lg.entry_word) in members,
        "entry-ref", "entry word is not a member of the word list", name)

    for i, word in enumerate(lg.words):
        where = f"word {i}"
        if not result.check(isinstance(word, list) and len(word) >= 1,
                            "word-shape", f"{where} is not a word", name):
            continue
        op = word[0]
        layout = _LAYOUTS.get(op)
        if not result.check(layout is not None, "unknown-opcode",
                            f"{where} carries unknown opcode {op!r}", name):
            continue
        if not result.check(
                len(word) == len(layout) + 1, "word-arity",
                f"{where} (op {op}) has {len(word) - 1} operands, "
                f"layout {layout!r} wants {len(layout)}", name):
            continue
        degenerate = _is_degenerate_br(word)
        for slot, kind in enumerate(layout, start=1):
            value = word[slot]
            if kind == "r":
                result.check(
                    _is_reg_slot(value, named, watermark),
                    "register-slot-range",
                    f"{where} slot {slot}: register slot {value!r} outside "
                    f"[-{watermark}, {named}]", name)
            elif kind == "k":
                result.check(
                    isinstance(value, int) and 0 <= value < lg.n_arrays,
                    "array-slot-range",
                    f"{where} slot {slot}: array slot {value!r} outside "
                    f"[0, {lg.n_arrays})", name)
            elif kind == "e":
                result.check(
                    isinstance(value, int) and 0 <= value < n_edges,
                    "edge-index-range",
                    f"{where} slot {slot}: edge counter {value!r} outside "
                    f"[0, {n_edges})", name)
            elif kind in ("W", "N"):
                if value is None:
                    result.check(False, "missing-terminator",
                                 f"{where} slot {slot}: unresolved "
                                 f"successor (dangling thread)", name)
                    continue
                is_member = id(value) in members
                if kind == "W" and slot == 5 and degenerate:
                    # the inline error word of a degenerate branch is the
                    # one legitimate non-member reference
                    result.check(
                        is_member or (isinstance(value, list)
                                      and len(value) == 2
                                      and value[0] == _eng.ERROR
                                      and isinstance(value[1], str)),
                        "successor-ref",
                        f"{where} slot {slot}: degenerate-branch false leg "
                        f"is not an error word", name)
                    continue
                if not result.check(
                        is_member, "successor-ref",
                        f"{where} slot {slot}: successor is not a member "
                        f"word of this graph", name):
                    continue
                if kind == "N":
                    result.check(
                        index_of[id(value)] == i + 1,
                        "fall-through-threading",
                        f"{where}: fall-through threads to word "
                        f"{index_of[id(value)]}, expected {i + 1}", name)
            elif kind in ("n", "m", "x"):
                result.check(isinstance(value, str), "name-operand",
                             f"{where} slot {slot}: expected a name string, "
                             f"got {value!r}", name)
            elif kind == "f":
                result.check(callable(value), "function-operand",
                             f"{where} slot {slot}: expected a callable",
                             name)
            elif kind == "D":
                result.check(
                    value is None
                    or _is_reg_slot(value, named, watermark),
                    "register-slot-range",
                    f"{where} slot {slot}: call destination {value!r} is "
                    f"not a register slot", name)
            elif kind == "S":
                result.check(
                    _intrinsic_specs_ok(value, named, watermark),
                    "intrinsic-spec",
                    f"{where} slot {slot}: malformed intrinsic spec "
                    f"{value!r}", name)
            elif kind == "C":
                result.check(
                    _call_specs_ok(value, named, watermark, lg.n_arrays),
                    "call-spec",
                    f"{where} slot {slot}: malformed call argument spec "
                    f"{value!r}", name)
            else:  # kind == "c": any scalar, but never a word reference
                result.check(not isinstance(value, list), "const-operand",
                             f"{where} slot {slot}: constant operand is a "
                             f"word reference", name)
        if op == _eng.BR and not degenerate:
            result.check(word[4] == word[2] + 1, "branch-counter-pair",
                         f"{where}: branch counters ({word[2]}, {word[4]}) "
                         f"are not consecutive edges", name)
        if degenerate:
            target = word[5]
            result.check(
                isinstance(target, list) and len(target) == 2
                and target[0] == _eng.ERROR,
                "degenerate-branch",
                f"{where}: single-successor branch false leg must be an "
                f"error word", name)
    return result


def _intrinsic_specs_ok(specs, named: int, watermark: int) -> bool:
    if not isinstance(specs, tuple):
        return False
    for spec in specs:
        if not isinstance(spec, tuple) or len(spec) != 2:
            return False
        kind, payload = spec
        if kind == 0:
            if not _is_reg_slot(payload, named, watermark):
                return False
        elif kind == 2:
            if not isinstance(payload, str):
                return False
        elif kind != 1:
            return False
    return True


def _call_specs_ok(specs, named: int, watermark: int, n_arrays: int) -> bool:
    if not isinstance(specs, tuple):
        return False
    for spec in specs:
        if not isinstance(spec, tuple) or len(spec) != 3:
            return False
        kind, payload, extra = spec
        if kind == 0:
            if not _is_reg_slot(payload, named, watermark) \
                    or not isinstance(extra, str):
                return False
        elif kind == 2:
            if not (isinstance(payload, int) and 0 <= payload < n_arrays):
                return False
        elif kind in (3, 4):
            if not isinstance(payload, str):
                return False
        elif kind != 1:
            return False
    return True


# -- CFG reconstruction ------------------------------------------------------------


@dataclass
class WordCFG:
    """The control-flow graph over one graph's words.

    ``words`` extends ``lg.words`` with any inline degenerate-branch error
    words, so every reachable word has an index.  ``entry`` is ``-1`` for a
    graph with no entry node.
    """

    words: List[list]
    succs: List[List[int]]
    preds: List[List[int]]
    entry: int
    reachable: Set[int] = field(default_factory=set)

    @property
    def n(self) -> int:
        return len(self.words)


def word_successor_slots(word: list) -> tuple:
    """Operand slots of *word* that hold successor word references."""
    op = word[0]
    if _is_terminal(op):
        return _jump_slots(word)
    return (len(word) - 1,)


def build_word_cfg(lg) -> WordCFG:
    """Reconstruct the CFG over *lg*'s words.

    Successor references that do not resolve to a known word are dropped
    (``verify_words`` reports them); the CFG is still built so downstream
    analyses degrade gracefully on a corrupt artifact.
    """
    words: List[list] = [w for w in lg.words if isinstance(w, list)]
    index_of = {id(word): i for i, word in enumerate(words)}
    # Inline degenerate-branch error words are real CFG nodes too.
    for word in list(words):
        if word and _is_degenerate_br(word):
            target = word[5]
            if isinstance(target, list) and id(target) not in index_of:
                index_of[id(target)] = len(words)
                words.append(target)

    succs: List[List[int]] = []
    for word in words:
        out: List[int] = []
        if word and word[0] in _LAYOUTS \
                and len(word) == len(_LAYOUTS[word[0]]) + 1:
            for slot in word_successor_slots(word):
                target = word[slot]
                if isinstance(target, list) and id(target) in index_of:
                    out.append(index_of[id(target)])
        succs.append(out)

    preds: List[List[int]] = [[] for _ in words]
    for u, out in enumerate(succs):
        for v in out:
            preds[v].append(u)

    entry = -1
    if lg.entry_word is not None and id(lg.entry_word) in index_of:
        entry = index_of[id(lg.entry_word)]

    reachable: Set[int] = set()
    if entry >= 0:
        stack = [entry]
        reachable.add(entry)
        while stack:
            u = stack.pop()
            for v in succs[u]:
                if v not in reachable:
                    reachable.add(v)
                    stack.append(v)
    return WordCFG(words=words, succs=succs, preds=preds, entry=entry,
                   reachable=reachable)


# -- dominators / postdominators ---------------------------------------------------


def _compute_idoms(n: int, succs: List[List[int]],
                   entry: int) -> List[Optional[int]]:
    """Cooper-Harvey-Kennedy immediate dominators; ``None`` = unreachable.

    ``idom[entry] == entry`` by convention.
    """
    preds: List[List[int]] = [[] for _ in range(n)]
    for u in range(n):
        for v in succs[u]:
            preds[v].append(u)

    # Iterative postorder DFS from the entry.
    order: List[int] = []
    seen = [False] * n
    seen[entry] = True
    stack = [(entry, iter(succs[entry]))]
    while stack:
        node, it = stack[-1]
        advanced = False
        for v in it:
            if not seen[v]:
                seen[v] = True
                stack.append((v, iter(succs[v])))
                advanced = True
                break
        if not advanced:
            order.append(node)
            stack.pop()
    po_num = {node: i for i, node in enumerate(order)}
    rpo = list(reversed(order))

    idom: List[Optional[int]] = [None] * n
    idom[entry] = entry

    def intersect(a: int, b: int) -> int:
        while a != b:
            while po_num[a] < po_num[b]:
                a = idom[a]
            while po_num[b] < po_num[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == entry:
                continue
            new = None
            for p in preds[node]:
                if idom[p] is None:
                    continue
                new = p if new is None else intersect(p, new)
            if new is not None and idom[node] != new:
                idom[node] = new
                changed = True
    return idom


def immediate_dominators(cfg: WordCFG) -> List[Optional[int]]:
    """Per-word immediate dominator (``None`` for unreachable words)."""
    if cfg.entry < 0 or not cfg.words:
        return [None] * cfg.n
    return _compute_idoms(cfg.n, cfg.succs, cfg.entry)


def immediate_postdominators(cfg: WordCFG) -> List[Optional[int]]:
    """Per-word immediate postdominator.

    Computed as dominators of the reversed CFG rooted at a virtual exit
    that collects every word with no successors (returns and error words).
    ``None`` means the word's only postdominator is the virtual exit — its
    two branch legs return separately — or the word cannot reach an exit
    at all (an all-fall-through loop).
    """
    n = cfg.n
    if n == 0:
        return []
    rev: List[List[int]] = [[] for _ in range(n + 1)]
    for u in range(n):
        if not cfg.succs[u]:
            rev[n].append(u)
        for v in cfg.succs[u]:
            rev[v].append(u)
    idom = _compute_idoms(n + 1, rev, n)
    return [None if d is None or d == n else d for d in idom[:n]]


def dead_words(lg, cfg: Optional[WordCFG] = None) -> List[int]:
    """Indices of member words unreachable from the entry word."""
    if cfg is None:
        cfg = build_word_cfg(lg)
    if cfg.entry < 0:
        return list(range(len(lg.words)))
    return [i for i in range(len(lg.words)) if i not in cfg.reachable]
