"""Static validation of exec :class:`Task` graphs before submission.

:func:`repro.exec.scheduler.run_tasks` used to discover a dependency
cycle only *mid-run* — after every acyclic prefix of the schedule had
already executed — and reported it as a bare "dependency cycle in
schedule".  This module checks the whole graph up front and names the
offending structure: the cycle itself (``a -> b -> a``), the dangling
dependency id, the duplicated key, or an affinity hint that points at no
real worker group.

The checks are pure graph walks over :class:`Task` metadata — no task
function ever runs — so they are safe to call on a schedule destined for
a process pool.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Sequence

from repro.analysis import VerifyResult
from repro.errors import ReproError


def _find_cycle(tasks: Sequence) -> Optional[List[Hashable]]:
    """One dependency cycle as a key path ``[a, b, ..., a]``, or None.

    Iterative three-color DFS in schedule order, so the reported cycle is
    deterministic for a given task sequence.
    """
    deps_of = {task.key: [d for d in task.deps] for task in tasks}
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {key: WHITE for key in deps_of}
    for root in deps_of:
        if color[root] != WHITE:
            continue
        stack = [(root, iter(deps_of[root]))]
        color[root] = GRAY
        path = [root]
        while stack:
            key, it = stack[-1]
            advanced = False
            for dep in it:
                if dep not in deps_of:
                    continue  # dangling: reported separately
                if color[dep] == GRAY:
                    return path[path.index(dep):] + [dep]
                if color[dep] == WHITE:
                    color[dep] = GRAY
                    stack.append((dep, iter(deps_of[dep])))
                    path.append(dep)
                    advanced = True
                    break
            if not advanced:
                color[key] = BLACK
                stack.pop()
                path.pop()
    return None


def format_cycle(cycle: Iterable[Hashable]) -> str:
    return " -> ".join(repr(key) for key in cycle)


def verify_task_graph(tasks: Sequence,
                      affinities: Optional[Iterable[Hashable]] = None
                      ) -> VerifyResult:
    """Check *tasks* for duplicate keys, dangling deps, cycles and —
    when *affinities* lists the real worker groups — unknown affinity
    hints.  Pure; nothing is executed."""
    result = VerifyResult()
    keys = [task.key for task in tasks]
    seen = set()
    dupes = []
    for key in keys:
        if key in seen:
            dupes.append(key)
        seen.add(key)
    result.check(not dupes, "duplicate-task-key",
                 f"duplicate task keys in schedule: {dupes[:5]!r}")
    for task in tasks:
        for dep in task.deps:
            result.check(dep in seen, "unknown-dep",
                         f"task {task.key!r} depends on unknown task "
                         f"{dep!r}")
    cycle = _find_cycle(tasks)
    result.check(cycle is None, "dependency-cycle",
                 "dependency cycle in schedule: "
                 + (format_cycle(cycle) if cycle else ""))
    if affinities is not None:
        known = set(affinities)
        for task in tasks:
            hint = getattr(task, "affinity", None)
            result.check(hint is None or hint in known,
                         "unknown-affinity",
                         f"task {task.key!r} has affinity hint {hint!r} "
                         f"matching no worker group")
    return result


def check_task_graph(tasks: Sequence) -> None:
    """Raise :class:`ReproError` on the first structural defect.

    Error-message prefixes are stable API, matched by existing callers
    and tests: ``duplicate task keys in schedule``, ``task ... depends
    on unknown task ...``, ``dependency cycle in schedule``.
    """
    keys = [task.key for task in tasks]
    if len(set(keys)) != len(keys):
        seen = set()
        dupes = [k for k in keys if k in seen or seen.add(k)]
        raise ReproError(
            f"duplicate task keys in schedule: {dupes[:5]!r}")
    known = set(keys)
    for task in tasks:
        for dep in task.deps:
            if dep not in known:
                raise ReproError(
                    f"task {task.key!r} depends on unknown task {dep!r}")
    cycle = _find_cycle(tasks)
    if cycle is not None:
        raise ReproError(
            f"dependency cycle in schedule: {format_cycle(cycle)}")
