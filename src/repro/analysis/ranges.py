"""Value-range abstract interpretation with proof-carrying bounds certificates.

An interval-domain abstract interpreter over the lowered word CFG
(:func:`repro.analysis.cfg.build_word_cfg`).  Per register slot the domain
tracks *defined-integer intervals*: an environment entry ``slot -> (lo, hi)``
claims the register holds a defined ``int`` (or ``bool``) value within the
closed interval — ``None`` on either side means unbounded.  An absent entry
is top (any value, possibly ``_UNDEF`` or a float).  Integer-ness is the
load-bearing half of the claim: it is what makes ``arr.data[index]`` on a
proven index bit-identical to the guarded form the emitters otherwise
produce (the guard on a proven-in-bounds defined ``int`` index always takes
its then-branch).

The analysis runs the classic Cousot widening/narrowing recipe: a worklist
fixpoint in reverse postorder with widening (threshold 0) at the targets of
retreating edges, followed by one narrowing sweep.  Branch conditions are
refined on both edges of a compare-and-branch by resolving the condition
register back to its defining comparison word through unmodified copy
chains.  Calls keep the caller's register facts (frames are private) and
bound the destination with a callee return summary when one is available;
everything else about a callee is conservatively top.

Global scalars (size-1 global arrays carrying an initializer) that no word
in the whole module can ever write become *premises*: the analysis may
assume their initializer value, and every artifact that relies on a premise
records it in its certificate.  Premises are validated twice — statically
by :func:`check_bounds_payload` (initializer matches, scalar is genuinely
unwritable) and dynamically at run entry (the engines compare the bound
globals against the premise values and fall back to the guarded build on
any mismatch), so speculative guard elimination never changes behavior.

From the fixpoint every subscripted load/store gets a :class:`BoundsProof`
classifying it SAFE / UNSAFE / UNKNOWN against the array's length.  SAFE
*loads* may be emitted unguarded by the codegen and lanes tiers; the
certificate (claimed invariant environments + safe word indices + premises)
travels in the cached payload, and :func:`check_bounds_payload` re-derives
every fact from the certificate's premises — entry coverage, per-edge
inductiveness, and the in-bounds conclusion — without trusting the
analyzer's fixpoint, widening or summaries.
"""

from __future__ import annotations

import operator
import os
from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.cfg import build_word_cfg, word_successor_slots
from repro.sim import engine as _eng
from repro.sim.codegen import (_BINF, _MOV_CONSTS, _MOV_REGS, _RETS,
                               _STORES, _STORES_D)
from repro.sim.values import int_div, int_mod, shift_left, shift_right

#: Environment variable disabling proof-carrying guard elimination.
RANGES_ENV_VAR = "REPRO_RANGES"


def ranges_enabled() -> bool:
    """True unless ``REPRO_RANGES=0`` (the escape hatch)."""
    return os.environ.get(RANGES_ENV_VAR, "").strip() != "0"


# -- the interval domain -----------------------------------------------------------

#: ``(lo, hi)`` with ``None`` = unbounded on that side.
TOP = (None, None)


def _join_iv(a: Tuple, b: Tuple) -> Tuple:
    lo = min(a[0], b[0]) if (a[0] is not None and b[0] is not None) \
        else None
    hi = max(a[1], b[1]) if (a[1] is not None and b[1] is not None) \
        else None
    return (lo, hi)


def _meet_iv(a: Tuple, b: Tuple) -> Optional[Tuple]:
    """Intersection; ``None`` when empty (the edge is dead)."""
    lo = a[0] if b[0] is None else (b[0] if a[0] is None
                                    else max(a[0], b[0]))
    hi = a[1] if b[1] is None else (b[1] if a[1] is None
                                    else min(a[1], b[1]))
    if lo is not None and hi is not None and lo > hi:
        return None
    return (lo, hi)


def _widen_iv(old: Tuple, new: Tuple) -> Tuple:
    """Standard widening with a single threshold at 0."""
    if old[0] is None or new[0] is None:
        lo = None
    elif new[0] >= old[0]:
        lo = old[0]
    else:
        lo = 0 if new[0] >= 0 else None
    if old[1] is None or new[1] is None:
        hi = None
    elif new[1] <= old[1]:
        hi = old[1]
    else:
        hi = None
    return (lo, hi)


def _within(inner: Tuple, outer: Tuple) -> bool:
    """``inner`` interval contained in ``outer``."""
    if outer[0] is not None and (inner[0] is None or inner[0] < outer[0]):
        return False
    if outer[1] is not None and (inner[1] is None or inner[1] > outer[1]):
        return False
    return True


def _add_iv(a: Tuple, b: Tuple) -> Tuple:
    lo = None if a[0] is None or b[0] is None else a[0] + b[0]
    hi = None if a[1] is None or b[1] is None else a[1] + b[1]
    return (lo, hi)


def _sub_iv(a: Tuple, b: Tuple) -> Tuple:
    lo = None if a[0] is None or b[1] is None else a[0] - b[1]
    hi = None if a[1] is None or b[0] is None else a[1] - b[0]
    return (lo, hi)


def _neg_iv(a: Tuple) -> Tuple:
    lo = None if a[1] is None else -a[1]
    hi = None if a[0] is None else -a[0]
    return (lo, hi)


def _mul_iv(a: Tuple, b: Tuple) -> Tuple:
    if None in a or None in b:
        return TOP
    products = (a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1])
    return (min(products), max(products))


def _int_const(value) -> Optional[int]:
    """The premise-grade integer of an inline constant (bools count)."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    return None


# -- word decoding -----------------------------------------------------------------

#: Fused op -> its canonical un-fused form (same operand layout).
_CANON = {fused: base for base, fused in _eng._FUSED_FORM.items()}

#: Canonical arithmetic opcodes with interval transfer: op -> (fn, kinds).
_ARITH = {
    _eng.ADD_RR: (_add_iv, "rr"), _eng.ADD_RC: (_add_iv, "rc"),
    _eng.SUB_RR: (_sub_iv, "rr"), _eng.SUB_RC: (_sub_iv, "rc"),
    _eng.MUL_RR: (_mul_iv, "rr"), _eng.MUL_RC: (_mul_iv, "rc"),
}

#: Comparison function objects (recognized by identity) -> predicate tag.
_CMP_TAG = {
    _eng._cmp_eq: "eq", _eng._cmp_ne: "ne",
    _eng._cmp_lt: "lt", _eng._cmp_le: "le",
    _eng._cmp_gt: "gt", _eng._cmp_ge: "ge",
}

#: Negated predicate tag on the false edge.
_NEGATE = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt",
           "le": "gt", "gt": "le"}

#: Function objects that return an ``int`` whenever they return at all
#: (a non-int operand raises instead of producing a value).
_INT_OR_RAISE = (operator.and_, operator.or_, operator.xor,
                 shift_left, shift_right, int, operator.invert)

_LOAD_KIND = {_eng.LOAD: "r", _eng.LOADC: "c"}


def _word_reg_writes(word: list) -> Tuple[int, ...]:
    """Register slots a canonical-form word writes."""
    op = _CANON.get(word[0], word[0])
    if op in (_eng.BR, _eng.J, _eng.JB, _eng.ERROR) or op in _RETS \
            or op in _STORES or op in _STORES_D:
        return ()
    if op == _eng.CP2:
        return (word[1], word[3])
    if op == _eng.CALL:
        return () if word[2] is None else (word[2],)
    return (word[1],)


def _access_of(word: list) -> Optional[Tuple[str, int, str, object]]:
    """``(kind, array_slot, index_kind, index_payload)`` of a subscripted
    access word, or ``None``.  ``kind`` is ``"load"``/``"store"``;
    ``index_kind`` is ``"r"`` (register slot) or ``"c"`` (constant)."""
    op = _CANON.get(word[0], word[0])
    if op in _LOAD_KIND:
        return ("load", word[2], _LOAD_KIND[op], word[3])
    if op in _STORES:
        return ("store", word[1], _STORES[op][1], word[3])
    if op in _STORES_D:
        return ("store", word[1], _STORES_D[op][0], word[2])
    return None


def load_key(word: list) -> Optional[Tuple[int, str, object]]:
    """Emission key of a load word: ``(array_slot, index_kind, payload)``.

    Two loads with the same key render to the same array/index source
    text in both emitters, so guard elision (and the verifier's
    acceptance of the unguarded shape) is decided per key: a key is
    elidable only when *every* load word carrying it is proven SAFE.
    """
    acc = _access_of(word)
    if acc is None or acc[0] != "load":
        return None
    return (acc[1], acc[2], acc[3])


# -- per-graph analysis context ----------------------------------------------------


class _Ctx:
    """Facts a graph's transfer function consults."""

    __slots__ = ("lengths", "scalar_slots", "summaries", "used_premises")

    def __init__(self, lengths: Dict[int, Optional[int]],
                 scalar_slots: Dict[int, Tuple[str, int]],
                 summaries: Dict[str, Tuple]):
        self.lengths = lengths
        self.scalar_slots = scalar_slots
        self.summaries = summaries
        self.used_premises: Set[str] = set()


def _iv_of(env: Dict[int, Tuple], kind: str, payload) -> Optional[Tuple]:
    """Defined-int interval of an operand, or ``None`` (top / non-int)."""
    if kind == "r":
        return env.get(payload)
    c = _int_const(payload)
    return None if c is None else (c, c)


def _transfer(word: list, env: Dict[int, Tuple], ctx: _Ctx
              ) -> Dict[int, Tuple]:
    """Environment after one non-branch word (input env is not mutated)."""
    op = _CANON.get(word[0], word[0])
    arith = _ARITH.get(op)
    out = dict(env)
    if arith is not None:
        fn, kinds = arith
        a = _iv_of(env, kinds[0], word[2])
        b = _iv_of(env, kinds[1], word[3])
        if a is not None and b is not None:
            out[word[1]] = fn(a, b)
        else:
            out.pop(word[1], None)
        return out
    kinds = _BINF.get(op)
    if kinds is not None:
        out.pop(word[1], None)
        fn = word[2]
        tag = _CMP_TAG.get(fn)
        if tag is not None:
            out[word[1]] = (0, 1)
            return out
        a = _iv_of(env, kinds[0], word[3])
        b = _iv_of(env, kinds[1], word[4])
        if fn in (int_div, int_mod):
            if a is not None and b is not None:
                iv = (None, None)
                if fn is int_mod and b[0] is not None and b[0] > 0 \
                        and b[1] is not None and a[0] is not None \
                        and a[0] >= 0:
                    iv = (0, b[1] - 1)
                out[word[1]] = iv
            return out
        if fn in _INT_OR_RAISE:
            iv = (None, None)
            if a is not None and b is not None \
                    and a[0] is not None and a[0] >= 0 \
                    and b[0] is not None and b[0] >= 0:
                if fn is operator.and_:
                    iv = (0, a[1] if b[1] is None or (
                        a[1] is not None and a[1] <= b[1]) else b[1])
                elif fn in (operator.or_, operator.xor):
                    hi = None if a[1] is None or b[1] is None \
                        else a[1] + b[1]
                    iv = (0, hi)
                elif fn is shift_right and a[1] is not None:
                    iv = (0, a[1] >> max(b[0], 0))
            out[word[1]] = iv
        return out
    if op in _LOAD_KIND:
        out.pop(word[1], None)
        premise = ctx.scalar_slots.get(word[2])
        kind = _LOAD_KIND[op]
        index = _iv_of(env, kind, word[3])
        if premise is not None and index == (0, 0):
            gname, value = premise
            ctx.used_premises.add(gname)
            out[word[1]] = (value, value)
        return out
    if op in _MOV_CONSTS:
        c = _int_const(word[2])
        if c is not None:
            out[word[1]] = (c, c)
        else:
            out.pop(word[1], None)
        return out
    if op in _MOV_REGS or op == _eng.RETREAD or op == _eng.CP:
        iv = env.get(word[2])
        if iv is not None:
            out[word[1]] = iv
        else:
            out.pop(word[1], None)
        return out
    if op == _eng.CP2:
        a = env.get(word[2])
        b = env.get(word[4])
        for dest, iv in ((word[1], a), (word[3], b)):
            if iv is not None:
                out[dest] = iv
            else:
                out.pop(dest, None)
        return out
    if op == _eng.TEST:
        out[word[1]] = (0, 1)
        return out
    if op == _eng.NEG:
        iv = env.get(word[2])
        if iv is not None:
            out[word[1]] = _neg_iv(iv)
        else:
            out.pop(word[1], None)
        return out
    if op == _eng.UNF or op == _eng.UNFC:
        fn = word[2]
        if fn in (int, operator.invert):
            out[word[1]] = (None, None)
        else:
            out.pop(word[1], None)
        return out
    if op == _eng.INTRN:
        out.pop(word[1], None)
        return out
    if op == _eng.CALL:
        if word[2] is not None:
            summary = ctx.summaries.get(word[1])
            if summary is not None and summary != TOP:
                out[word[2]] = summary
            else:
                out.pop(word[2], None)
        return out
    return out


# -- branch predicates -------------------------------------------------------------


def _branch_predicate(words: List[list], preds: List[List[int]],
                      br_idx: int) -> Optional[Tuple]:
    """Resolve a BR's condition to ``("cmp", tag, aspec, bspec)`` or
    ``("truth", slot)``, following single-predecessor copy chains.

    A spec is ``("r", slot)`` or ``("c", value)``.  The predicate is only
    returned when no word between the defining comparison and the branch
    redefines any operand register, so the operand facts in the branch's
    environment still describe the compared values.
    """
    target = words[br_idx][1]
    cur = br_idx
    path: List[int] = []
    seen: Set[int] = set()
    pred: Optional[Tuple] = None
    for _ in range(256):
        ps = preds[cur]
        if len(ps) != 1 or ps[0] in seen:
            return None
        cur = ps[0]
        seen.add(cur)
        word = words[cur]
        writes = _word_reg_writes(word)
        if target not in writes:
            path.append(cur)
            continue
        op = _CANON.get(word[0], word[0])
        if op == _eng.CP and word[1] == target:
            target = word[2]
            path.append(cur)
            continue
        if op == _eng.TEST and word[1] == target:
            # regs[target] = regs[c] != 0: same truth value as regs[c].
            target = word[2]
            pred = ("truth", target)
            path.append(cur)
            continue
        kinds = _BINF.get(op)
        if kinds is not None:
            tag = _CMP_TAG.get(word[2])
            if tag is None:
                return None
            aspec = ("r", word[3]) if kinds[0] == "r" else ("c", word[3])
            bspec = ("r", word[4]) if kinds[1] == "r" else ("c", word[4])
            protected = {spec[1] for spec in (aspec, bspec)
                         if spec[0] == "r"}
            for j in path:
                if protected.intersection(_word_reg_writes(words[j])):
                    return None
            return ("cmp", tag, aspec, bspec)
        return pred if pred is not None and _usable_truth(
            pred, path, words) else None
    return None


def _usable_truth(pred: Tuple, path: List[int],
                  words: List[list]) -> bool:
    slot = pred[1]
    return not any(slot in _word_reg_writes(words[j]) for j in path)


def _refine(env: Dict[int, Tuple], pred: Optional[Tuple],
            taken: bool) -> Optional[Dict[int, Tuple]]:
    """Environment on one edge of a branch; ``None`` = edge is dead.

    Refinement only ever *narrows* existing defined-int entries — a top
    register stays top (a comparison cannot establish integer-ness).
    """
    if pred is None:
        return env
    if pred[0] == "truth":
        slot = pred[1]
        iv = env.get(slot)
        if iv is None:
            return env
        if taken:
            # Exclude 0: shrink an endpoint that sits exactly on it.
            new = iv
            if iv == (0, 0):
                return None
            if iv[0] == 0:
                new = (1, iv[1])
            elif iv[1] == 0:
                new = (iv[0], -1)
            out = dict(env)
            out[slot] = new
            return out
        narrowed = _meet_iv(iv, (0, 0))
        if narrowed is None:
            return None
        out = dict(env)
        out[slot] = narrowed
        return out
    _, tag, aspec, bspec = pred
    if not taken:
        tag = _NEGATE[tag]
    a = _iv_of(env, aspec[0], aspec[1])
    b = _iv_of(env, bspec[0], bspec[1])
    out = dict(env)
    dead = False

    def narrow(spec, bound: Tuple) -> None:
        nonlocal dead
        if spec[0] != "r":
            return
        iv = out.get(spec[1])
        if iv is None:
            return  # top stays top: int-ness is not established here
        narrowed = _meet_iv(iv, bound)
        if narrowed is None:
            dead = True
        else:
            out[spec[1]] = narrowed

    if tag == "eq":
        if b is not None:
            narrow(aspec, b)
        if a is not None:
            narrow(bspec, a)
    elif tag == "ne":
        for spec, other in ((aspec, b), (bspec, a)):
            if other is None or other[0] is None \
                    or other[0] != other[1]:
                continue
            k = other[0]
            iv = out.get(spec[1]) if spec[0] == "r" else None
            if iv is None:
                continue
            if iv[0] is not None and iv[0] == k:
                narrow(spec, (k + 1, None))
            elif iv[1] is not None and iv[1] == k:
                narrow(spec, (None, k - 1))
            elif iv == (k, k):
                dead = True
    elif tag in ("lt", "le"):
        shift = 1 if tag == "lt" else 0
        if b is not None and b[1] is not None:
            narrow(aspec, (None, b[1] - shift))
        if a is not None and a[0] is not None:
            narrow(bspec, (a[0] + shift, None))
    else:  # gt / ge
        shift = 1 if tag == "gt" else 0
        if b is not None and b[0] is not None:
            narrow(aspec, (b[0] + shift, None))
        if a is not None and a[1] is not None:
            narrow(bspec, (None, a[1] - shift))
    return None if dead else out


# -- proofs ------------------------------------------------------------------------

SAFE = "SAFE"
UNSAFE = "UNSAFE"
UNKNOWN = "UNKNOWN"


class BoundsProof:
    """Classification of one subscripted access word."""

    __slots__ = ("word_index", "kind", "array", "array_slot",
                 "index_interval", "length", "classification")

    def __init__(self, word_index: int, kind: str, array: Optional[str],
                 array_slot: int, index_interval: Optional[Tuple],
                 length: Optional[int], classification: str):
        self.word_index = word_index
        self.kind = kind
        self.array = array
        self.array_slot = array_slot
        self.index_interval = index_interval
        self.length = length
        self.classification = classification

    def __repr__(self) -> str:
        return (f"<BoundsProof {self.classification} {self.kind} "
                f"{self.array}[{self.index_interval}] len={self.length}>")


def _classify(index: Optional[Tuple], length: Optional[int]) -> str:
    if index is None or length is None:
        return UNKNOWN
    lo, hi = index
    if lo is not None and hi is not None and 0 <= lo and hi < length:
        return SAFE
    if (hi is not None and hi < 0) or (lo is not None and lo >= length):
        return UNSAFE
    return UNKNOWN


def array_lengths(lg, module) -> Dict[int, Optional[int]]:
    """Array slot -> length, resolved against the *live* module.

    Local arrays resolve by name through the live graph's symbol list and
    globals through ``module.global_arrays``, so a tampered payload plan
    cannot inflate a length; parameter and missing-array slots have no
    known length and can never prove anything.
    """
    live = module.graphs.get(lg.name)
    local_sizes = {} if live is None else {
        arr.name: arr.size for arr in live.local_arrays}
    lengths: Dict[int, Optional[int]] = {}
    for slot, symbol in lg.local_plan:
        lengths[slot] = local_sizes.get(symbol.name)
    for slot, gname in lg.global_plan:
        symbol = module.global_arrays.get(gname)
        lengths[slot] = None if symbol is None else symbol.size
    return lengths


def _array_names(lg) -> Dict[int, str]:
    names: Dict[int, str] = {}
    for _is_reg, slot, pname in lg.param_plan:
        if not _is_reg:
            names[slot] = pname
    for slot, symbol in lg.local_plan:
        names[slot] = symbol.name
    for slot, gname in lg.global_plan:
        names[slot] = gname
    for slot, placeholder in lg.missing_plan:
        names[slot] = getattr(placeholder, "name", "?")
    return names


# -- premises ----------------------------------------------------------------------


def stable_global_scalars(module, graphs) -> Dict[str, int]:
    """Global scalars provably constant for any run of *graphs*.

    A global scalar qualifies when it is a size-1 non-float global array
    with an integer initializer and no word in any graph can reach its
    storage for writing: no store targets its slot and no call passes it
    as an array argument (the only way a callee frame could alias it).
    """
    candidates: Dict[str, int] = {}
    for name, spec in module.global_scalars.items():
        is_float, value = spec[0], spec[1]
        symbol = module.global_arrays.get(name)
        c = _int_const(value)
        if not is_float and c is not None and symbol is not None \
                and symbol.size == 1 and not symbol.is_float:
            candidates[name] = c
    if not candidates:
        return {}
    for lg in graphs.values():
        global_of = dict(lg.global_plan)
        for word in lg.words:
            if not isinstance(word, list):
                continue
            acc = _access_of(word)
            if acc is not None and acc[0] == "store":
                gname = global_of.get(acc[1])
                if gname is not None:
                    candidates.pop(gname, None)
                continue
            if _CANON.get(word[0], word[0]) == _eng.CALL:
                for spec in word[3]:
                    if spec[0] == 2:
                        gname = global_of.get(spec[1])
                        if gname is not None:
                            candidates.pop(gname, None)
        if not candidates:
            return {}
    return candidates


def premises_hold(premises: Dict[str, int], globals_) -> bool:
    """Runtime validation: every premise scalar still carries its
    analyzed value in the bound globals (inputs may override any global
    array, including a scalar's one-element cell)."""
    for name in sorted(premises):
        storage = globals_.get(name)
        if storage is None or not storage.data \
            or storage.data[0] != premises[name]:
            return False
    return True


# -- the fixpoint ------------------------------------------------------------------


class GraphRanges:
    """Analysis result for one lowered graph."""

    __slots__ = ("name", "envs", "proofs", "safe_loads", "ret_interval",
                 "used_premises")

    def __init__(self, name: str, envs: Dict[int, Dict[int, Tuple]],
                 proofs: List[BoundsProof], safe_loads: Set[int],
                 ret_interval: Tuple, used_premises: Set[str]):
        self.name = name
        self.envs = envs
        self.proofs = proofs
        self.safe_loads = safe_loads
        self.ret_interval = ret_interval
        self.used_premises = used_premises


def _join_env(a: Dict[int, Tuple], b: Dict[int, Tuple]) -> Dict[int, Tuple]:
    out: Dict[int, Tuple] = {}
    for slot, iv in a.items():
        other = b.get(slot)
        if other is not None:
            out[slot] = _join_iv(iv, other)
    return out


def _env_leq(a: Dict[int, Tuple], b: Dict[int, Tuple]) -> bool:
    """``a`` at least as precise as ``b`` (every claim of b holds in a)."""
    for slot, iv in b.items():
        mine = a.get(slot)
        if mine is None or not _within(mine, iv):
            return False
    return True


def _flow(words: List[list], idx: int, env: Dict[int, Tuple], ctx: _Ctx,
          index_of: Dict[int, int],
          predicates: Dict[int, Optional[Tuple]]
          ) -> List[Tuple[int, Optional[Dict[int, Tuple]]]]:
    """``(successor index, env)`` pairs out of one word; a ``None`` env
    marks a refinement-dead edge."""
    word = words[idx]
    op = word[0]
    if op == _eng.BR:
        pred = predicates.get(idx)
        out = []
        for slot, taken in ((3, True), (5, False)):
            target = word[slot]
            tgt_idx = index_of.get(id(target))
            if tgt_idx is not None:
                out.append((tgt_idx, _refine(env, pred, taken)))
        return out
    if op in _RETS or op == _eng.ERROR:
        return []
    if op == _eng.J or op == _eng.JB:
        target = index_of.get(id(word[1]))
        return [] if target is None else [(target, env)]
    succ_slot = word_successor_slots(word)
    target = index_of.get(id(word[succ_slot[0]])) if succ_slot else None
    if target is None:
        return []
    return [(target, _transfer(word, env, ctx))]


def _rpo(n: int, succs: List[List[int]], entry: int) -> List[int]:
    order: List[int] = []
    seen = [False] * n
    stack: List[Tuple[int, int]] = [(entry, 0)]
    seen[entry] = True
    while stack:
        node, i = stack.pop()
        if i < len(succs[node]):
            stack.append((node, i + 1))
            nxt = succs[node][i]
            if not seen[nxt]:
                seen[nxt] = True
                stack.append((nxt, 0))
        else:
            order.append(node)
    order.reverse()
    return order


def analyze_graph(lg, module, scalar_values: Dict[str, int],
                  summaries: Dict[str, Tuple]) -> GraphRanges:
    """Run the interval fixpoint over one lowered graph."""
    cfg = build_word_cfg(lg)
    words = cfg.words
    index_of = {id(word): i for i, word in enumerate(words)}
    lengths = array_lengths(lg, module)
    global_of = dict(lg.global_plan)
    scalar_slots = {slot: (gname, scalar_values[gname])
                    for slot, gname in lg.global_plan
                    if gname in scalar_values}
    ctx = _Ctx(lengths, scalar_slots, summaries)

    empty = GraphRanges(lg.name, {}, [], set(), TOP, set())
    if cfg.entry < 0:
        return empty

    order = _rpo(cfg.n, cfg.succs, cfg.entry)
    rpo_num = {idx: i for i, idx in enumerate(order)}
    widen_at = {v for u in order for v in cfg.succs[u]
                if v in rpo_num and rpo_num[v] <= rpo_num[u]}

    predicates: Dict[int, Optional[Tuple]] = {}
    for i in order:
        if words[i][0] == _eng.BR:
            predicates[i] = _branch_predicate(words, cfg.preds, i)

    in_env: Dict[int, Dict[int, Tuple]] = {cfg.entry: {}}
    work = deque(sorted(in_env, key=rpo_num.get))
    queued = set(work)
    steps = 0
    limit = 64 * (cfg.n + 1)
    while work and steps < limit:
        steps += 1
        u = work.popleft()
        queued.discard(u)
        for v, env_v in _flow(words, u, in_env[u], ctx, index_of,
                              predicates):
            if env_v is None or v not in rpo_num:
                continue
            cur = in_env.get(v)
            if cur is None:
                joined = dict(env_v)
            else:
                joined = _join_env(cur, env_v)
                if v in widen_at:
                    joined = {slot: _widen_iv(cur[slot], iv)
                              for slot, iv in joined.items()}
            if cur is not None and _env_leq(cur, joined) \
                    and _env_leq(joined, cur):
                continue
            in_env[v] = joined
            if v not in queued:
                queued.add(v)
                work.append(v)
    if steps >= limit:
        # Paranoia backstop: a fixpoint that refuses to stabilize yields
        # no facts rather than wrong ones.
        return empty

    # One narrowing sweep: recompute each environment from its
    # predecessors without widening.  The pre-narrowing state is a
    # post-fixpoint, so one decreasing application stays inductive.
    for v in order:
        if v == cfg.entry:
            continue
        incoming: Optional[Dict[int, Tuple]] = None
        for u in cfg.preds[v]:
            if u not in in_env:
                continue
            for tgt, env_v in _flow(words, u, in_env[u], ctx, index_of,
                                    predicates):
                if tgt != v or env_v is None:
                    continue
                incoming = dict(env_v) if incoming is None \
                    else _join_env(incoming, env_v)
        if incoming is not None and v in in_env:
            in_env[v] = incoming

    names = _array_names(lg)
    proofs: List[BoundsProof] = []
    safe_loads: Set[int] = set()
    member_count = len([w for w in lg.words if isinstance(w, list)])
    for i in range(member_count):
        if i not in in_env:
            continue
        word = words[i]
        acc = _access_of(word)
        if acc is None:
            continue
        kind, array_slot, ikind, payload = acc
        if ikind == "r":
            index = in_env[i].get(payload)
        else:
            c = _int_const(payload)
            index = None if c is None else (c, c)
        length = lengths.get(array_slot)
        cls = _classify(index, length)
        proofs.append(BoundsProof(i, kind, names.get(array_slot),
                                  array_slot, index, length, cls))
        if cls == SAFE and kind == "load":
            safe_loads.add(i)

    ret = None
    for i in range(member_count):
        if i not in in_env:
            continue
        word = words[i]
        op = word[0]
        if op not in _RETS:
            continue
        if op == _eng.RET_C:
            c = _int_const(word[1])
            iv = TOP if c is None else (c, c)
        elif op == _eng.RET_N:
            iv = TOP
        else:  # RET_R / RET_S
            iv = in_env[i].get(word[1], TOP)
        ret = iv if ret is None else _join_iv(ret, iv)
    if ret is None:
        ret = TOP

    envs = {i: env for i, env in in_env.items()
            if env and i < member_count}
    return GraphRanges(lg.name, envs, proofs, safe_loads, ret,
                       set(ctx.used_premises))


class ModuleRanges:
    """Analysis results for every graph of one module."""

    __slots__ = ("graphs", "premises", "stable_scalars")

    def __init__(self, graphs: Dict[str, GraphRanges],
                 premises: Dict[str, int],
                 stable_scalars: Dict[str, int]):
        self.graphs = graphs
        self.premises = premises
        self.stable_scalars = stable_scalars

    def counts(self) -> Dict[str, int]:
        tally = {SAFE: 0, UNSAFE: 0, UNKNOWN: 0}
        for granges in self.graphs.values():
            for proof in granges.proofs:
                tally[proof.classification] += 1
        return tally

    def unsafe_accesses(self) -> List[Tuple[str, BoundsProof]]:
        out = []
        for name, granges in self.graphs.items():
            out.extend((name, proof) for proof in granges.proofs
                       if proof.classification == UNSAFE)
        return out


def _call_order(graphs) -> List[str]:
    """Graph names, callees before callers where the call graph allows
    (members of call cycles keep their original order and see top
    summaries for in-cycle callees)."""
    callees: Dict[str, Set[str]] = {}
    for name, lg in graphs.items():
        out: Set[str] = set()
        for word in lg.words:
            if isinstance(word, list) \
                    and _CANON.get(word[0], word[0]) == _eng.CALL \
                    and isinstance(word[1], str) and word[1] in graphs:
                out.add(word[1])
        callees[name] = out
    order: List[str] = []
    placed: Set[str] = set()
    pending = list(graphs)
    while pending:
        progressed = False
        remaining = []
        for name in pending:
            if callees[name] <= placed | {name}:
                order.append(name)
                placed.add(name)
                progressed = True
            else:
                remaining.append(name)
        if not progressed:
            order.extend(remaining)  # cycle: analyzed with top summaries
            break
        pending = remaining
    return order


def analyze_lowered(module, lowered) -> ModuleRanges:
    """Analyze every graph of an already-lowered module."""
    graphs = lowered.graphs
    stable = stable_global_scalars(module, graphs)
    summaries: Dict[str, Tuple] = {}
    results: Dict[str, GraphRanges] = {}
    for name in _call_order(graphs):
        granges = analyze_graph(graphs[name], module, stable, summaries)
        results[name] = granges
        summaries[name] = granges.ret_interval
    used: Set[str] = set()
    for granges in results.values():
        used.update(granges.used_premises)
    premises = {name: stable[name] for name in sorted(used)}
    ordered = {name: results[name] for name in graphs}
    return ModuleRanges(ordered, premises, stable)


def analyze_module(module) -> ModuleRanges:
    """Lower *module* (cached) and run the range analysis."""
    from repro.sim.engine import lower_module
    return analyze_lowered(module, lower_module(module))


# -- certificates ------------------------------------------------------------------


def elidable_loads(lg, safe_loads: Set[int]) -> Set[int]:
    """SAFE load word indices whose emission key is *entirely* safe.

    The emitters and the verifier agree on this closure: a key shared by
    a proven and an unproven load keeps its guards everywhere, so an
    unguarded occurrence in the source is only ever legal when every
    word that could have produced it carries a verified proof.
    """
    groups: Dict[Tuple, List[int]] = {}
    for i, word in enumerate(lg.words):
        if not isinstance(word, list):
            continue
        key = load_key(word)
        if key is not None:
            groups.setdefault(key, []).append(i)
    out: Set[int] = set()
    for indices in groups.values():
        if all(i in safe_loads for i in indices):
            out.update(indices)
    return out


def module_certificates(lowered, ranges: ModuleRanges) -> Dict[str, object]:
    """The ``"bounds"`` payload entry: per-graph claimed invariant
    environments, elidable-safe word indices, return summaries, and the
    global-scalar premises the proofs assume."""
    graphs_cert: Dict[str, Dict[str, object]] = {}
    for name, lg in lowered.graphs.items():
        granges = ranges.graphs.get(name)
        if granges is None:
            continue
        safe = elidable_loads(lg, granges.safe_loads)
        envs = {idx: {slot: list(iv) for slot, iv in sorted(env.items())}
                for idx, env in sorted(granges.envs.items())}
        graphs_cert[name] = {"envs": envs, "safe": sorted(safe),
                             "ret": list(granges.ret_interval)}
    return {"premises": dict(ranges.premises), "graphs": graphs_cert}


# -- the independent checker -------------------------------------------------------


def _valid_interval(iv) -> bool:
    if not isinstance(iv, (list, tuple)) or len(iv) != 2:
        return False
    lo, hi = iv
    for side in (lo, hi):
        if side is not None and (_int_const(side) is None):
            return False
    return not (lo is not None and hi is not None and lo > hi)


def _check_premises(module, graphs, premises, problems: List[str]) -> bool:
    if not isinstance(premises, dict):
        problems.append("premises: not a mapping")
        return False
    names = sorted(premises)
    for name in names:
        value = premises[name]
        if not isinstance(name, str) or _int_const(value) is None:
            problems.append(f"premises: malformed entry {name!r}")
            return False
    stable = stable_global_scalars(module, graphs)
    for name in names:
        if stable.get(name) != premises[name]:
            problems.append(
                f"premises: {name!r}={premises[name]!r} is not a "
                f"provably-stable global scalar of this module")
            return False
    return True


def check_graph_proof(lg, module, cert, premises: Dict[str, int],
                      summaries: Dict[str, Tuple],
                      problems: List[str]) -> Set[int]:
    """Re-derive one graph's certificate from its premises.

    Validates entry coverage (no claims about the initial state), the
    inductiveness of every claimed environment along every CFG edge
    (re-running the single-word transfer and branch refinement — never
    the analyzer's fixpoint), the return summary, and finally the
    in-bounds conclusion of every claimed-safe load against array
    lengths resolved from the live module.  Returns the verified safe
    word indices; any discrepancy is reported and verification fails.
    """
    name = lg.name
    envs_claim = cert.get("envs")
    safe_claim = cert.get("safe")
    ret_claim = cert.get("ret", [None, None])
    if not isinstance(envs_claim, dict) or not isinstance(safe_claim, list):
        problems.append(f"{name}: malformed certificate")
        return set()
    if not _valid_interval(ret_claim):
        problems.append(f"{name}: malformed return summary")
        return set()
    cfg = build_word_cfg(lg)
    words = cfg.words
    index_of = {id(word): i for i, word in enumerate(words)}
    member_count = len([w for w in lg.words if isinstance(w, list)])

    claimed: Dict[int, Dict[int, Tuple]] = {}
    for idx, env in sorted(envs_claim.items()):
        if not isinstance(idx, int) or not 0 <= idx < member_count \
                or not isinstance(env, dict):
            problems.append(f"{name}: malformed environment claim "
                            f"at word {idx!r}")
            return set()
        checked: Dict[int, Tuple] = {}
        for slot, iv in sorted(env.items()):
            if not isinstance(slot, int) or not _valid_interval(iv):
                problems.append(f"{name}: malformed interval for slot "
                                f"{slot!r} at word {idx}")
                return set()
            checked[slot] = (iv[0], iv[1])
        claimed[idx] = checked

    lengths = array_lengths(lg, module)
    scalar_slots = {slot: (gname, premises[gname])
                    for slot, gname in lg.global_plan if gname in premises}
    ctx = _Ctx(lengths, scalar_slots, summaries)
    predicates: Dict[int, Optional[Tuple]] = {}
    for i, word in enumerate(words):
        if word[0] == _eng.BR:
            predicates[i] = _branch_predicate(words, cfg.preds, i)

    def env_at(idx: int) -> Dict[int, Tuple]:
        return claimed.get(idx, {})

    if cfg.entry < 0:
        if safe_claim:
            problems.append(f"{name}: safe claims in a graph with "
                            f"no entry")
        return set()
    if claimed.get(cfg.entry):
        problems.append(f"{name}: certificate constrains the entry "
                        f"state")
        return set()

    reachable = sorted(cfg.reachable)
    for u in reachable:
        for v, env_v in _flow(words, u, env_at(u), ctx, index_of,
                              predicates):
            if env_v is None:
                continue
            target_claim = claimed.get(v)
            if not target_claim:
                continue
            if not _env_leq(env_v, target_claim):
                problems.append(
                    f"{name}: claimed environment at word {v} is not "
                    f"inductive along the edge from word {u}")
                return set()

    ret_iv = (ret_claim[0], ret_claim[1])
    if ret_iv != TOP:
        for i in reachable:
            word = words[i]
            op = word[0]
            if op not in _RETS:
                continue
            if op == _eng.RET_C:
                c = _int_const(word[1])
                iv = None if c is None else (c, c)
            elif op == _eng.RET_N:
                iv = None
            else:
                iv = env_at(i).get(word[1])
            if iv is None or not _within(iv, ret_iv):
                problems.append(f"{name}: return summary {ret_iv} not "
                                f"justified at word {i}")
                return set()

    verified: Set[int] = set()
    for idx in safe_claim:
        if not isinstance(idx, int) or not 0 <= idx < member_count \
                or idx not in cfg.reachable:
            problems.append(f"{name}: safe claim on invalid word "
                            f"{idx!r}")
            return set()
        word = words[idx]
        acc = _access_of(word)
        if acc is None or acc[0] != "load":
            problems.append(f"{name}: safe claim on non-load word {idx}")
            return set()
        _kind, array_slot, ikind, payload = acc
        if ikind == "r":
            index = env_at(idx).get(payload)
        else:
            c = _int_const(payload)
            index = None if c is None else (c, c)
        if _classify(index, lengths.get(array_slot)) != SAFE:
            problems.append(
                f"{name}: word {idx} is not provably in bounds "
                f"(index {index}, length {lengths.get(array_slot)})")
            return set()
        verified.add(idx)
    return verified


def check_bounds_payload(module, graphs, bounds
                         ) -> Tuple[Dict[str, Set[int]], List[str]]:
    """Independently re-check a payload's ``"bounds"`` certificate.

    Returns ``(verified safe load indices per graph, problems)`` — an
    empty problem list means every claim was re-derived.  The checker
    trusts only the certificate's premises (which it validates against
    the live module) and the claimed environments' own inductiveness;
    claimed return summaries are usable by callers precisely because
    each graph's summary is itself checked against that graph's claimed
    environments (sound by induction on call depth).
    """
    problems: List[str] = []
    if not isinstance(bounds, dict):
        return {}, ["bounds: not a mapping"]
    premises = bounds.get("premises", {})
    graph_certs = bounds.get("graphs", {})
    if not isinstance(graph_certs, dict):
        return {}, ["bounds: malformed graph certificates"]
    if not _check_premises(module, graphs, premises, problems):
        return {}, problems
    summaries: Dict[str, Tuple] = {}
    for name in graphs:
        cert = graph_certs.get(name)
        if isinstance(cert, dict):
            ret = cert.get("ret", [None, None])
            if _valid_interval(ret):
                summaries[name] = (ret[0], ret[1])
    verified: Dict[str, Set[int]] = {}
    for name, lg in graphs.items():
        cert = graph_certs.get(name)
        if cert is None:
            verified[name] = set()
            continue
        if not isinstance(cert, dict):
            problems.append(f"{name}: malformed certificate")
            return {}, problems
        verified[name] = check_graph_proof(lg, module, cert, premises,
                                           summaries, problems)
        if problems:
            return {}, problems
    return verified, problems
