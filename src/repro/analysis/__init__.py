"""Static verification of lowered artifacts, generated source and task graphs.

The five engine tiers are pinned bit-identical *dynamically* by the
differential and fuzz suites, which execute every artifact.  This package is
the static counterpart: it proves a lowered bytecode stream, a generated
codegen/lanes source, a disk-cache payload or an exec task graph well-formed
*without running it*, the way LLVM's IR verifier or Cranelift's CFG validator
gate every pass with a machine-checked invariant sweep.

Submodules
----------
``cfg``
    Reconstructs the control-flow graph over the direct-threaded words
    emitted by ``lower_module`` (reachability, dominators, immediate
    postdominators) and checks per-word layout invariants.
``verify_lowered``
    Cross-checks a :class:`_LoweredGraph` against its source
    :class:`ProgramGraph`: edge tables, branch-counter coverage, fused
    op+jump consistency, frame plans.
``verify_codegen``
    Parses generated codegen/lanes source with :mod:`ast` and checks
    definite assignment, counter write-back discipline, load bounds guards
    and lanes reconvergence points.
``taskgraph``
    Validates exec :class:`Task` graphs before submission (cycles with the
    named cycle, dangling deps, duplicate keys, affinity hints).
``lint``
    An AST determinism lint over ``sim/`` and ``exec/`` source that bans
    unordered set iteration and unsorted filesystem enumeration.
``sweep``
    Drives the whole verifier across the benchmark suite and renders the
    ``repro verify`` Markdown summary.

Only this module and the dataclasses below are imported eagerly; submodules
pull in the simulator lazily so that cheap consumers (the exec scheduler,
the CLI parser) do not pay the import cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import VerificationError

__all__ = ["Violation", "VerifyResult", "VerificationError"]


@dataclass(frozen=True)
class Violation:
    """One violated invariant, named so mutation tests can assert on it.

    ``invariant`` is a stable kebab-case identifier (``successor-ref``,
    ``counter-writeback`` ...); ``detail`` is the human-readable diagnostic;
    ``graph`` names the function/graph the violation was found in, when
    there is one.
    """

    invariant: str
    detail: str
    graph: Optional[str] = None

    def __str__(self) -> str:
        where = f" [{self.graph}]" if self.graph else ""
        return f"{self.invariant}{where}: {self.detail}"


@dataclass
class VerifyResult:
    """Outcome of one verification pass: checks attempted and violations."""

    checks: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def check(self, ok: bool, invariant: str, detail: str,
              graph: Optional[str] = None) -> bool:
        """Record one check; collect a :class:`Violation` when it fails."""
        self.checks += 1
        if not ok:
            self.violations.append(Violation(invariant, detail, graph))
        return ok

    def merge(self, other: "VerifyResult") -> "VerifyResult":
        self.checks += other.checks
        self.violations.extend(other.violations)
        return self

    def raise_if_failed(self) -> None:
        """Raise :class:`VerificationError` naming every violation."""
        if self.violations:
            lines = "; ".join(str(v) for v in self.violations[:8])
            more = len(self.violations) - 8
            if more > 0:
                lines += f" (+{more} more)"
            raise VerificationError(
                f"{len(self.violations)} invariant violation(s): {lines}")
