"""Drive the static verifier across the benchmark suite (``repro verify``).

For every benchmark x optimization level, each of the five engine tiers'
artifacts is built and checked statically:

* **reference** — the :class:`ProgramGraph` structure itself;
* **compiled**  — the closure tier's node/edge/step tables;
* **bytecode**  — the direct-threaded words against the graph
  (:func:`verify_lowered_module`);
* **codegen**   — the exec-compiled source's AST
  (:func:`verify_generated_module`);
* **lanes**     — the lane-parallel source plus reconvergence points
  (:func:`verify_lane_module`).

The result renders as a Markdown table of checks passed per
(benchmark, level, tier) — any cell with violations fails the sweep, and
the violations are listed below the table by invariant name.

:func:`scan_cache_entries` is the self-contained sibling used by
``repro cache show --verify``: it walks a disk cache directory and
classifies every entry as well-formed or corrupt from the payload alone
(no source module needed).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import VerifyResult, Violation

TIERS = ("reference", "compiled", "bytecode", "codegen", "lanes")

DEFAULT_LEVELS = (0, 1, 2)

DEFAULT_LANES = 4


@dataclass
class SweepCell:
    """One (benchmark, level, tier) verification outcome."""

    benchmark: str
    level: int
    tier: str
    checks: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class SweepReport:
    """Every cell of one ``repro verify`` sweep."""

    cells: List[SweepCell] = field(default_factory=list)
    #: (benchmark, level) -> {"SAFE": n, "UNKNOWN": n, "UNSAFE": n} when the
    #: sweep ran with range analysis enabled.
    ranges: Dict[Tuple[str, int], Dict[str, int]] = field(
        default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    @property
    def checks(self) -> int:
        return sum(cell.checks for cell in self.cells)

    @property
    def violations(self) -> List[Tuple[SweepCell, Violation]]:
        return [(cell, v) for cell in self.cells for v in cell.violations]


def _verify_tier(tier: str, graph_module, n_lanes: int) -> VerifyResult:
    from repro.analysis.verify_codegen import (verify_generated_module,
                                               verify_lane_module)
    from repro.analysis.verify_lowered import (verify_compiled_module,
                                               verify_graph,
                                               verify_lowered_module)
    from repro.sim.codegen import generate_module
    from repro.sim.engine import compile_module, lower_module
    from repro.sim.lanes import generate_lane_module

    if tier == "reference":
        result = VerifyResult()
        for name in sorted(graph_module.graphs):
            result.merge(verify_graph(graph_module.graphs[name]))
        return result
    if tier == "compiled":
        return verify_compiled_module(graph_module,
                                      compile_module(graph_module))
    if tier == "bytecode":
        lower_module(graph_module)
        return verify_lowered_module(graph_module,
                                     graph_module._lowered_cache)
    if tier == "codegen":
        return verify_generated_module(graph_module,
                                       generate_module(graph_module))
    if tier == "lanes":
        return verify_lane_module(
            graph_module, generate_lane_module(graph_module, n_lanes))
    raise ValueError(f"unknown tier {tier!r}")


def _range_cell(benchmark: str, level: int, graph_module) -> Tuple[
        SweepCell, Dict[str, int]]:
    """Run the interval analysis over one optimized module.

    Every classified access counts as one check; a definite ``UNSAFE``
    access is a static violation — the program is reported without ever
    being executed.
    """
    from repro.analysis import ranges as _ranges

    cell = SweepCell(benchmark, level, "ranges")
    try:
        mranges = _ranges.analyze_module(graph_module)
    except Exception as exc:  # a crash is itself a finding
        cell.checks += 1
        cell.violations.append(Violation(
            "verifier-crash", f"{type(exc).__name__}: {exc}", benchmark))
        return cell, {_ranges.SAFE: 0, _ranges.UNSAFE: 0,
                      _ranges.UNKNOWN: 0}
    counts = mranges.counts()
    cell.checks = sum(counts.values())
    for graph_name, proof in mranges.unsafe_accesses():
        iv = proof.index_interval
        span = "?" if iv is None else f"[{iv[0]}, {iv[1]}]"
        cell.violations.append(Violation(
            "bounds-unsafe",
            f"{proof.kind} {proof.array or '<array>'}{span} is out of "
            f"bounds for length {proof.length} at word "
            f"{proof.word_index}", graph_name))
    return cell, counts


def run_sweep(benchmarks: Optional[Sequence[str]] = None,
              levels: Sequence[int] = DEFAULT_LEVELS,
              tiers: Sequence[str] = TIERS,
              n_lanes: int = DEFAULT_LANES,
              ranges: bool = False,
              progress=None) -> SweepReport:
    """Statically verify every (benchmark, level, tier) artifact."""
    from repro.opt.pipeline import OptLevel, optimize_module
    from repro.suite.registry import all_benchmarks, get_benchmark
    from repro.suite.runner import compile_benchmark

    if benchmarks is None:
        specs = all_benchmarks()
    else:
        specs = [get_benchmark(name) for name in benchmarks]
    report = SweepReport()
    for spec in specs:
        module = compile_benchmark(spec)
        for level in levels:
            graph_module, _ = optimize_module(module, OptLevel(level))
            for tier in tiers:
                if progress is not None:
                    progress(spec.name, level, tier)
                cell = SweepCell(spec.name, level, tier)
                try:
                    result = _verify_tier(tier, graph_module, n_lanes)
                except Exception as exc:  # a crash is itself a finding
                    cell.checks += 1
                    cell.violations.append(Violation(
                        "verifier-crash", f"{type(exc).__name__}: {exc}",
                        spec.name))
                else:
                    cell.checks = result.checks
                    cell.violations = result.violations
                report.cells.append(cell)
            if ranges:
                if progress is not None:
                    progress(spec.name, level, "ranges")
                cell, counts = _range_cell(spec.name, level, graph_module)
                report.cells.append(cell)
                report.ranges[(spec.name, level)] = counts
    return report


def render_markdown(report: SweepReport,
                    tiers: Sequence[str] = TIERS) -> str:
    """The ``repro verify`` summary: one row per (benchmark, level)."""
    lines = ["# Static artifact verification", ""]
    header = "| benchmark | level | " + " | ".join(tiers) + " |"
    rule = "|---|---|" + "|".join("---" for _ in tiers) + "|"
    lines += [header, rule]
    by_row: Dict[Tuple[str, int], Dict[str, SweepCell]] = {}
    order: List[Tuple[str, int]] = []
    for cell in report.cells:
        key = (cell.benchmark, cell.level)
        if key not in by_row:
            by_row[key] = {}
            order.append(key)
        by_row[key][cell.tier] = cell
    for benchmark, level in order:
        row = [benchmark, str(level)]
        for tier in tiers:
            cell = by_row[(benchmark, level)].get(tier)
            if cell is None:
                row.append("—")
            elif cell.ok:
                row.append(f"{cell.checks} ✓")
            else:
                row.append(f"FAIL({len(cell.violations)})")
        lines.append("| " + " | ".join(row) + " |")
    if report.ranges:
        lines += ["", "## Range analysis", "",
                  "| benchmark | level | SAFE | UNKNOWN | UNSAFE |",
                  "|---|---|---|---|---|"]
        for (benchmark, level), counts in report.ranges.items():
            unsafe = counts.get("UNSAFE", 0)
            lines.append(
                f"| {benchmark} | {level} | {counts.get('SAFE', 0)} | "
                f"{counts.get('UNKNOWN', 0)} | "
                + (f"**{unsafe}**" if unsafe else "0") + " |")
    lines.append("")
    total = len(report.cells)
    failed = sum(1 for cell in report.cells if not cell.ok)
    lines.append(f"{report.checks} checks over {total} cells; "
                 f"{failed} cell(s) failed.")
    if failed:
        lines.append("")
        lines.append("## Violations")
        lines.append("")
        for cell, violation in report.violations:
            lines.append(f"- `{cell.benchmark}` L{cell.level} "
                         f"{cell.tier}: {violation}")
    return "\n".join(lines) + "\n"


def report_json(report: SweepReport,
                lint: Optional[VerifyResult] = None) -> Dict:
    """Machine-readable form of one sweep (``repro verify --json``)."""
    doc: Dict = {
        "ok": report.ok and (lint is None or lint.ok),
        "checks": report.checks,
        "cells": [
            {"benchmark": cell.benchmark, "level": cell.level,
             "tier": cell.tier, "checks": cell.checks, "ok": cell.ok}
            for cell in report.cells],
        "violations": [
            {"benchmark": cell.benchmark, "level": cell.level,
             "tier": cell.tier, "invariant": violation.invariant,
             "graph": violation.graph, "detail": violation.detail}
            for cell, violation in report.violations],
    }
    if report.ranges:
        doc["ranges"] = [
            {"benchmark": benchmark, "level": level, **counts}
            for (benchmark, level), counts in report.ranges.items()]
    if lint is not None:
        doc["lint"] = {
            "ok": lint.ok,
            "checks": lint.checks,
            "findings": [
                {"invariant": violation.invariant,
                 "graph": violation.graph, "detail": violation.detail}
                for violation in lint.violations],
        }
    return doc


# -- cache scanning (repro cache show --verify) ------------------------------------


def _scan_payload(kind: str, payload) -> VerifyResult:
    """Self-contained well-formedness checks on one cache payload —
    no source module available, so cross-tier checks are skipped."""
    from repro.analysis.cfg import verify_words

    result = VerifyResult()
    if kind in ("bytecode", "codegen", "lanes"):
        graphs = payload.get("graphs") if isinstance(payload, dict) \
            else None
        if not result.check(isinstance(graphs, dict), "payload-shape",
                            f"{kind} payload has no graphs table"):
            return result
        for name in sorted(graphs):
            result.merge(verify_words(graphs[name]))
    if kind in ("codegen", "lanes"):
        source = payload.get("source")
        if result.check(isinstance(source, str), "payload-shape",
                        f"{kind} payload has no source text"):
            try:
                ast.parse(source)
                result.check(True, "source-syntax", "")
            except SyntaxError as exc:
                result.check(False, "source-syntax",
                             f"stored source does not parse: {exc}")
        blob = payload.get("code")
        if blob is not None:
            import hashlib
            sha = hashlib.sha256(blob).hexdigest()
            result.check(sha == payload.get("code_sha"), "code-sha",
                         "marshalled code blob does not match its "
                         "recorded digest")
    if kind == "lanes":
        result.check(isinstance(payload.get("n_lanes"), int),
                     "payload-shape", "lanes payload has no lane count")
    return result


def scan_cache_entries(cache) -> Tuple[int, int, List[str]]:
    """Scan every entry of *cache*: (well-formed, corrupt, details).

    An entry that fails to unpickle or whose payload violates the
    self-contained invariants counts as corrupt; details name the file
    and the violated invariant.
    """
    import pickle

    well_formed = 0
    corrupt = 0
    details: List[str] = []
    for kind, path in cache.entries():
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
            payload = entry["payload"]
        except Exception as exc:
            corrupt += 1
            details.append(f"{path.name}: unreadable "
                           f"({type(exc).__name__})")
            continue
        try:
            result = _scan_payload(kind, payload)
        except Exception as exc:
            corrupt += 1
            details.append(f"{path.name}: verifier crash "
                           f"({type(exc).__name__}: {exc})")
            continue
        if result.ok:
            well_formed += 1
        else:
            corrupt += 1
            first = result.violations[0]
            details.append(f"{path.name}: {first}")
    return well_formed, corrupt, details
